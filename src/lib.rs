//! Umbrella crate for the Carrefour-LP reproduction.
//!
//! Simulation-based reproduction of *Large Pages May Be Harmful on NUMA
//! Systems* (USENIX ATC 2014). The workspace is split into substrate
//! crates (`numa-topology`, `memsys`, `vmem`, `profiling`, `workloads`),
//! the epoch simulation `engine`, and the `carrefour` policy crate; this
//! crate re-exports them whole and offers a [`prelude`] with the names the
//! examples and downstream users need.
//!
//! # Examples
//!
//! ```
//! use carrefour_lp::prelude::*;
//!
//! let machine = MachineSpec::machine_a();
//! let spec = Benchmark::UaB.spec(&machine);
//! let config = SimConfig::fast_test();
//! let result = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
//! assert!(result.runtime_cycles > 0);
//! ```

pub use carrefour;
pub use engine;
pub use memsys;
pub use numa_topology;
pub use profiling;
pub use vmem;
pub use workloads;

pub mod prelude {
    //! Everything a simulation driver typically needs, one import away.

    pub use carrefour::{
        Carrefour, CarrefourConfig, CarrefourLp, LpParams, LpThresholds, Mitosis, NumaPte,
        NumaPteConfig, RobustnessConfig,
    };
    pub use engine::{
        ActionError, Checkpoint, CheckpointError, CountingSink, DigestSink, EpochCtx, EpochDigest,
        EpochRecord, EpochSnap, EventKind, FailedAction, FaultConfig, FaultRates, JsonlSink,
        LifetimeStats, MemoryPressure, NullPolicy, NumaPolicy, PageMetrics, PolicyAction,
        PolicyDecision, RingSink, RobustnessStats, SimConfig, SimResult, Simulation, TeeSink,
        TraceDigest, TraceEvent, TraceSink, VecSink,
    };
    pub use numa_topology::{CoreId, MachineSpec, NodeId, NodeSpec};
    pub use profiling::{IbsConfig, IbsSample, IbsSampler};
    pub use vmem::{PageSize, ThpControls, VirtAddr, GIB, KIB, MIB};
    pub use workloads::{AccessPattern, Benchmark, PhaseSpec, RegionSpec, WorkloadSpec};
}
