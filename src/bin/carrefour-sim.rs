//! `carrefour-sim` — run any (machine, benchmark, policy) combination
//! from the command line.
//!
//! ```text
//! carrefour-sim --machine b --bench WC --policy carrefour-lp [--json]
//! carrefour-sim --list
//! ```
//!
//! Optional fault injection (`--fault-rate`, `--fault-seed`) drives the
//! deterministic chaos layer; with the default rate of 0 the run is
//! bit-identical to a build without the fault layer. Misuse (unknown
//! machine/bench/policy, missing value) prints usage and exits 2. Same
//! arguments → byte-identical output, including `--json`.

use carrefour::{Carrefour, CarrefourLp, LpParams, Mitosis, NumaPte};
use engine::{FaultConfig, NullPolicy, NumaPolicy, SimConfig, SimResult, Simulation};
use numa_topology::MachineSpec;
use std::process::ExitCode;
use vmem::ThpControls;
use workloads::Benchmark;

const POLICIES: &[&str] = &[
    "linux-4k",
    "linux-thp",
    "carrefour-4k",
    "carrefour-2m",
    "conservative",
    "reactive",
    "carrefour-lp",
    "carrefour-lp-tuned",
    "carrefour-lp-noretry",
    "mitosis",
    "numapte",
    "linux-1g",
    "carrefour-lp-1g",
];

fn usage() {
    eprintln!(
        "usage: carrefour-sim --bench <name> [--machine a|b] [--policy <name>]\n\
         \x20                    [--seed <u64>] [--fault-rate <0..1>] [--fault-seed <u64>]\n\
         \x20                    [--json] [--list]\n\
         \n\
         \x20 --machine     a (4 nodes / 24 cores, default) or b (8 nodes / 64 cores)\n\
         \x20 --bench       benchmark name as the paper prints it (e.g. CG.D, WC, SSCA.20)\n\
         \x20 --policy      one of: {}\n\
         \x20 --seed        workload RNG seed (default 42)\n\
         \x20 --fault-rate  operational fault-injection rate (default 0 = no faults)\n\
         \x20 --fault-seed  fault-plan RNG seed (default 20140619)\n\
         \x20 --json        print the result as one JSON object instead of a table\n\
         \x20 --list        enumerate machines, benchmarks, and policies, then exit",
        POLICIES.join(", ")
    );
}

fn parse_machine(s: &str) -> Option<MachineSpec> {
    match s {
        "a" | "A" | "machine-a" => Some(MachineSpec::machine_a()),
        "b" | "B" | "machine-b" => Some(MachineSpec::machine_b()),
        _ => None,
    }
}

fn parse_bench(s: &str) -> Option<Benchmark> {
    Benchmark::all()
        .iter()
        .copied()
        .find(|b| b.name().eq_ignore_ascii_case(s))
}

fn make_policy(name: &str) -> Option<(Box<dyn NumaPolicy>, ThpControls)> {
    let p: (Box<dyn NumaPolicy>, ThpControls) = match name {
        "linux-4k" | "linux" => (Box::new(NullPolicy), ThpControls::small_only()),
        "linux-thp" | "thp" => (Box::new(NullPolicy), ThpControls::thp()),
        "carrefour-4k" => (Box::new(Carrefour::new()), ThpControls::small_only()),
        "carrefour-2m" => (Box::new(Carrefour::new()), ThpControls::thp()),
        "conservative" => (
            Box::new(CarrefourLp::conservative_only()),
            ThpControls::small_only(),
        ),
        "reactive" => (Box::new(CarrefourLp::reactive_only()), ThpControls::thp()),
        "carrefour-lp" => (Box::new(CarrefourLp::new()), ThpControls::thp()),
        "carrefour-lp-tuned" => (
            Box::new(CarrefourLp::with_params(LpParams::tuned()).named("carrefour-lp-tuned")),
            ThpControls::thp(),
        ),
        "carrefour-lp-noretry" => (Box::new(CarrefourLp::without_retries()), ThpControls::thp()),
        "mitosis" => (Box::new(Mitosis::new()), ThpControls::small_only()),
        "numapte" => (Box::new(NumaPte::new()), ThpControls::small_only()),
        "linux-1g" => (Box::new(NullPolicy), ThpControls::giant()),
        "carrefour-lp-1g" => (Box::new(CarrefourLp::new()), ThpControls::giant()),
        _ => return None,
    };
    Some(p)
}

fn list() {
    println!("machines:");
    println!("  a  machine-a (4 nodes / 24 cores)");
    println!("  b  machine-b (8 nodes / 64 cores)");
    println!("benchmarks:");
    for b in Benchmark::all() {
        println!("  {}", b.name());
    }
    println!("policies:");
    for p in POLICIES {
        println!("  {p}");
    }
}

fn print_json(r: &SimResult) {
    let rb = &r.robustness;
    println!(
        "{{\"machine\":\"{}\",\"benchmark\":\"{}\",\"policy\":\"{}\",\
         \"runtime_cycles\":{},\"runtime_ms\":{:.6},\"lar\":{:.6},\
         \"imbalance\":{:.6},\"walk_miss_fraction\":{:.6},\
         \"fault_cycles\":{},\"splits\":{},\"migrations_4k\":{},\
         \"table_replications\":{},\"table_migrations\":{},\
         \"robustness\":{{\"failed_migrations\":{},\"failed_splits\":{},\
         \"failed_replications\":{},\"fallback_allocs\":{},\
         \"busy_rejections\":{},\"dropped_samples\":{},\
         \"misattributed_samples\":{},\"retries\":{},\"oom_reclaims\":{}}}}}",
        r.machine,
        r.workload,
        r.policy,
        r.runtime_cycles,
        r.runtime_ms,
        r.lifetime.lar,
        r.lifetime.imbalance,
        r.lifetime.walk_miss_fraction,
        r.lifetime.total_fault_cycles,
        r.lifetime.vmem.splits,
        r.lifetime.vmem.migrations_4k,
        r.lifetime.vmem.table_replications,
        r.lifetime.vmem.table_migrations,
        rb.failed_migrations,
        rb.failed_splits,
        rb.failed_replications,
        rb.fallback_allocs,
        rb.busy_rejections,
        rb.dropped_samples,
        rb.misattributed_samples,
        rb.retries,
        rb.oom_reclaims,
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut machine = "a".to_string();
    let mut bench = None;
    let mut policy = "carrefour-lp".to_string();
    let mut seed = None;
    let mut fault_rate = 0.0f64;
    let mut fault_seed = 20140619u64;
    let mut json = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, ()> {
            it.next().map(|v| v.to_string()).ok_or_else(|| {
                eprintln!("carrefour-sim: {flag} needs a value");
            })
        };
        match arg.as_str() {
            "--list" => {
                list();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--machine" => match value("--machine") {
                Ok(v) => machine = v,
                Err(()) => {
                    usage();
                    return ExitCode::from(2);
                }
            },
            "--bench" => match value("--bench") {
                Ok(v) => bench = Some(v),
                Err(()) => {
                    usage();
                    return ExitCode::from(2);
                }
            },
            "--policy" => match value("--policy") {
                Ok(v) => policy = v,
                Err(()) => {
                    usage();
                    return ExitCode::from(2);
                }
            },
            "--seed" | "--fault-rate" | "--fault-seed" => {
                let flag = arg.clone();
                let Ok(v) = value(&flag) else {
                    usage();
                    return ExitCode::from(2);
                };
                let ok = match flag.as_str() {
                    "--seed" => v.parse().map(|s| seed = Some(s)).is_ok(),
                    "--fault-rate" => v
                        .parse()
                        .map(|r: f64| fault_rate = r)
                        .map(|()| (0.0..=1.0).contains(&fault_rate))
                        .unwrap_or(false),
                    _ => v.parse().map(|s| fault_seed = s).is_ok(),
                };
                if !ok {
                    eprintln!("carrefour-sim: bad value {v:?} for {flag}");
                    usage();
                    return ExitCode::from(2);
                }
            }
            other => {
                eprintln!("carrefour-sim: unknown argument {other:?}");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let Some(machine) = parse_machine(&machine) else {
        eprintln!("carrefour-sim: unknown machine (use a or b)");
        usage();
        return ExitCode::from(2);
    };
    let Some(bench) = bench else {
        eprintln!("carrefour-sim: --bench is required");
        usage();
        return ExitCode::from(2);
    };
    let Some(bench) = parse_bench(&bench) else {
        eprintln!("carrefour-sim: unknown benchmark {bench:?} (see --list)");
        usage();
        return ExitCode::from(2);
    };
    let Some((mut policy_obj, thp)) = make_policy(&policy) else {
        eprintln!("carrefour-sim: unknown policy {policy:?} (see --list)");
        usage();
        return ExitCode::from(2);
    };

    let spec = bench.spec(&machine);
    let mut config = SimConfig::for_machine(&machine, thp);
    if let Some(s) = seed {
        config.seed = s;
    }
    if fault_rate > 0.0 {
        config.faults = FaultConfig::uniform(fault_seed, fault_rate);
    }
    let mut result = Simulation::run(&machine, &spec, &config, policy_obj.as_mut());
    result.policy = policy.clone();

    if json {
        print_json(&result);
    } else {
        println!(
            "{} on {}: {} threads, policy {}",
            bench.name(),
            machine.name(),
            spec.threads,
            policy
        );
        println!(
            "  runtime {:.2} ms ({} cycles)   LAR {:.0}%   imbalance {:.1}%",
            result.runtime_ms,
            result.runtime_cycles,
            result.lifetime.lar * 100.0,
            result.lifetime.imbalance
        );
        println!(
            "  splits {}   migrations(4K) {}   walk-miss {:.1}%   fault time {:.2} ms",
            result.lifetime.vmem.splits,
            result.lifetime.vmem.migrations_4k,
            result.lifetime.walk_miss_fraction * 100.0,
            machine.cycles_to_ms(result.lifetime.total_fault_cycles),
        );
        let rb = &result.robustness;
        if rb != &Default::default() {
            println!(
                "  robustness: {} failed actions ({} migrations, {} splits), \
                 {} fallback allocs, {} busy, {} dropped samples, {} retries",
                rb.failed_actions(),
                rb.failed_migrations,
                rb.failed_splits,
                rb.fallback_allocs,
                rb.busy_rejections,
                rb.dropped_samples,
                rb.retries,
            );
        }
    }
    ExitCode::SUCCESS
}
