//! Address newtypes, size constants, and alignment helpers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One kibibyte.
pub const KIB: u64 = 1 << 10;
/// One mebibyte.
pub const MIB: u64 = 1 << 20;
/// One gibibyte.
pub const GIB: u64 = 1 << 30;

/// Size of a base page (4 KiB).
pub const PAGE_4K: u64 = 4 * KIB;
/// Size of a large page (2 MiB).
pub const PAGE_2M: u64 = 2 * MIB;
/// Size of a very large ("giant") page (1 GiB).
pub const PAGE_1G: u64 = GIB;

/// A virtual address.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(pub u64);

/// A physical address.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(pub u64);

impl VirtAddr {
    /// Rounds down to a multiple of `align` (a power of two).
    #[inline]
    pub fn align_down(self, align: u64) -> VirtAddr {
        debug_assert!(align.is_power_of_two());
        VirtAddr(self.0 & !(align - 1))
    }

    /// Offset of this address within an `align`-sized naturally-aligned block.
    #[inline]
    pub fn offset_in(self, align: u64) -> u64 {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1)
    }

    /// Whether this address is a multiple of `align` (a power of two).
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        self.offset_in(align) == 0
    }
}

impl PhysAddr {
    /// Rounds down to a multiple of `align` (a power of two).
    #[inline]
    pub fn align_down(self, align: u64) -> PhysAddr {
        debug_assert!(align.is_power_of_two());
        PhysAddr(self.0 & !(align - 1))
    }

    /// Whether this address is a multiple of `align` (a power of two).
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(v: u64) -> Self {
        VirtAddr(v)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(PAGE_2M / PAGE_4K, 512);
        assert_eq!(PAGE_1G / PAGE_2M, 512);
        assert_eq!(PAGE_1G / PAGE_4K, 512 * 512);
    }

    #[test]
    fn align_down_masks_low_bits() {
        let a = VirtAddr(0x20_1234);
        assert_eq!(a.align_down(PAGE_4K), VirtAddr(0x20_1000));
        assert_eq!(a.align_down(PAGE_2M), VirtAddr(0x20_0000));
        assert_eq!(a.offset_in(PAGE_4K), 0x234);
    }

    #[test]
    fn alignment_predicate() {
        assert!(VirtAddr(0x40_0000).is_aligned(PAGE_2M));
        assert!(!VirtAddr(0x40_1000).is_aligned(PAGE_2M));
        assert!(VirtAddr(0x40_1000).is_aligned(PAGE_4K));
        assert!(PhysAddr(0).is_aligned(PAGE_1G));
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtAddr(0x1000).to_string(), "v0x1000");
        assert_eq!(PhysAddr(0x2000).to_string(), "p0x2000");
    }
}
