//! Cycle cost model for page faults and page operations.
//!
//! The paper's algorithm constantly weighs the *cost* of fixing a NUMA
//! problem (migrating, splitting, collapsing pages — each with TLB
//! shootdowns) against the benefit. This module centralizes those costs so
//! that policies and the engine charge consistent numbers, and so that the
//! ablation benches can vary them.

use crate::table::PageSize;
use serde::{Deserialize, Serialize};

/// The cycles charged for one virtual-memory operation.
pub type OpCost = u64;

/// Tunable cost model, in cycles (calibrated for a ≈2 GHz core).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OpCostModel {
    /// Fixed entry/exit cost of a page fault (trap, locks, bookkeeping).
    pub fault_fixed: u64,
    /// Cost per KiB of zeroing freshly allocated memory.
    pub zero_per_kib: u64,
    /// Extra fault cycles per *other* thread concurrently in the fault
    /// handler — models page-table lock and mmap_sem contention, the reason
    /// the paper tracks the *maximum* per-core fault time.
    pub fault_contention_per_thread: u64,
    /// Fixed cost of migrating one page (syscall, PTE rewrite, bookkeeping).
    pub migrate_fixed: u64,
    /// Cost per KiB copied during migration or collapse.
    pub copy_per_kib: u64,
    /// Fixed cost of splitting a huge page (PTE table population; no copy).
    pub split_fixed: u64,
    /// Fixed cost of collapsing 512 small pages into a huge one, excluding
    /// the copy (scan, locks).
    pub collapse_fixed: u64,
    /// Cost per core of a TLB shootdown IPI.
    pub shootdown_per_core: u64,
    /// Cost per replica copy of propagating one structural page-table
    /// write when the written table is replicated (the Mitosis write
    /// fanout: a PTE install/rewrite must reach every node's copy). Zero
    /// fanout — no replicas — charges nothing.
    pub table_replica_write: u64,
}

impl Default for OpCostModel {
    fn default() -> Self {
        OpCostModel {
            fault_fixed: 500,
            zero_per_kib: 40,
            fault_contention_per_thread: 22,
            migrate_fixed: 2600,
            copy_per_kib: 60,
            split_fixed: 9000,
            collapse_fixed: 14000,
            shootdown_per_core: 40,
            table_replica_write: 150,
        }
    }
}

impl OpCostModel {
    /// Cost of propagating one structural table write to `copies` replica
    /// frames (zero when the table is unreplicated).
    pub fn table_write_fanout(&self, copies: usize) -> OpCost {
        self.table_replica_write * copies as u64
    }
}

impl OpCostModel {
    /// Cost of a demand-zero page fault for a page of `size`, with
    /// `concurrent` other threads in the fault handler at the same time.
    ///
    /// Giant (1 GiB) pages are excluded from the zeroing charge: they come
    /// from libhugetlbfs's boot-time reserved pool, which is populated and
    /// zeroed before the application starts.
    pub fn fault(&self, size: PageSize, concurrent: usize) -> OpCost {
        let zero = if size == PageSize::Size1G {
            0
        } else {
            self.zero_per_kib * (size.bytes() >> 10)
        };
        self.fault_fixed + zero + self.fault_contention_per_thread * concurrent as u64
    }

    /// Cost of migrating one page of `size` to another node, including the
    /// copy and a shootdown across `cores` cores.
    pub fn migrate(&self, size: PageSize, cores: usize) -> OpCost {
        self.migrate_fixed
            + self.copy_per_kib * (size.bytes() >> 10)
            + self.shootdown_per_core * cores as u64
    }

    /// Cost of splitting one huge or giant page (no data copy), including a
    /// shootdown across `cores` cores.
    pub fn split(&self, cores: usize) -> OpCost {
        self.split_fixed + self.shootdown_per_core * cores as u64
    }

    /// Cost of collapsing into one page of `size` (khugepaged-style copy
    /// into a fresh frame), including a shootdown across `cores` cores.
    pub fn collapse(&self, size: PageSize, cores: usize) -> OpCost {
        self.collapse_fixed
            + self.copy_per_kib * (size.bytes() >> 10)
            + self.shootdown_per_core * cores as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huge_fault_costs_more_than_small_but_less_than_512_small() {
        let m = OpCostModel::default();
        let small = m.fault(PageSize::Size4K, 0);
        let huge = m.fault(PageSize::Size2M, 0);
        assert!(huge > small);
        // The whole point of THP for fault-bound phases: one huge fault is
        // far cheaper than the 512 small faults it replaces.
        assert!(
            huge < 512 * small,
            "huge {huge} vs 512*small {}",
            512 * small
        );
    }

    #[test]
    fn contention_raises_fault_cost() {
        let m = OpCostModel::default();
        assert!(m.fault(PageSize::Size4K, 23) > m.fault(PageSize::Size4K, 0));
    }

    #[test]
    fn migration_scales_with_size() {
        let m = OpCostModel::default();
        let small = m.migrate(PageSize::Size4K, 24);
        let huge = m.migrate(PageSize::Size2M, 24);
        assert!(
            huge > 20 * small,
            "2 MiB migration dominated by the copy: {huge} vs {small}"
        );
    }

    #[test]
    fn split_is_much_cheaper_than_huge_migration() {
        let m = OpCostModel::default();
        assert!(m.split(24) * 10 < m.migrate(PageSize::Size2M, 24));
    }

    #[test]
    fn collapse_includes_copy() {
        let m = OpCostModel::default();
        let c = m.collapse(PageSize::Size2M, 24);
        assert!(c > m.copy_per_kib * 2048);
    }
}
