//! x86-64-style 4-level page table with physically-addressed walk steps.
//!
//! The table is a radix tree: PML4 → PDPT → PD → PT. Leaves can sit at three
//! levels, giving the three page sizes (1 GiB at the PDPT, 2 MiB at the PD,
//! 4 KiB at the PT). Every table node occupies a real simulated physical
//! frame, so a hardware walk is a sequence of physical reads — [`WalkResult`]
//! reports their addresses and the simulator runs them through the cache
//! hierarchy. This is how "% of L2 misses caused by page table walks", the
//! paper's TLB-pressure metric, is produced rather than assumed.

use crate::addr::{PhysAddr, VirtAddr, PAGE_1G, PAGE_2M, PAGE_4K};
use crate::frame::{FrameAllocator, FrameError};
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Hardware page sizes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum PageSize {
    /// A base 4 KiB page.
    Size4K,
    /// A large 2 MiB page (the THP size).
    Size2M,
    /// A very large 1 GiB page (Section 4.4 of the paper).
    Size1G,
}

impl PageSize {
    /// Page size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => PAGE_4K,
            PageSize::Size2M => PAGE_2M,
            PageSize::Size1G => PAGE_1G,
        }
    }

    /// Buddy-allocator order of a frame of this size.
    #[inline]
    pub fn order(self) -> u32 {
        match self {
            PageSize::Size4K => 0,
            PageSize::Size2M => 9,
            PageSize::Size1G => 18,
        }
    }

    /// Number of page-table references a hardware walk performs for this
    /// size: 4 for 4 KiB, 3 for 2 MiB, 2 for 1 GiB.
    #[inline]
    pub fn walk_levels(self) -> usize {
        match self {
            PageSize::Size4K => 4,
            PageSize::Size2M => 3,
            PageSize::Size1G => 2,
        }
    }

    /// The next smaller size, if any.
    #[inline]
    pub fn smaller(self) -> Option<PageSize> {
        match self {
            PageSize::Size4K => None,
            PageSize::Size2M => Some(PageSize::Size4K),
            PageSize::Size1G => Some(PageSize::Size2M),
        }
    }

    /// Number of next-smaller pages that tile one page of this size (512),
    /// or 1 for the smallest size.
    #[inline]
    pub fn fanout(self) -> u64 {
        if self.smaller().is_some() {
            512
        } else {
            1
        }
    }
}

impl std::fmt::Display for PageSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4K"),
            PageSize::Size2M => write!(f, "2M"),
            PageSize::Size1G => write!(f, "1G"),
        }
    }
}

/// A leaf translation: one mapped page.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Mapping {
    /// Virtual base of the page (aligned to `size`).
    pub vbase: VirtAddr,
    /// Physical frame backing the page (aligned to `size`).
    pub frame: PhysAddr,
    /// NUMA node hosting the frame.
    pub node: NodeId,
    /// Page size.
    pub size: PageSize,
}

impl Mapping {
    /// Translates an address inside this page to its physical address.
    ///
    /// # Panics
    ///
    /// Debug-panics if `vaddr` is outside the page.
    #[inline]
    pub fn translate(&self, vaddr: VirtAddr) -> PhysAddr {
        debug_assert!(self.contains(vaddr));
        PhysAddr(self.frame.0 + vaddr.offset_in(self.size.bytes()))
    }

    /// Whether `vaddr` falls inside this page.
    #[inline]
    pub fn contains(&self, vaddr: VirtAddr) -> bool {
        vaddr.align_down(self.size.bytes()) == self.vbase
    }
}

/// One reference performed by a hardware page-table walk.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WalkStep {
    /// Physical address of the page-table entry read at this level.
    pub pte_addr: PhysAddr,
    /// NUMA node hosting the table frame.
    pub node: NodeId,
}

/// The result of walking the table for one virtual address.
#[derive(Clone, Copy, Debug)]
pub struct WalkResult {
    steps: [WalkStep; 4],
    len: usize,
    /// The translation found, or `None` (page fault).
    pub mapping: Option<Mapping>,
}

impl WalkResult {
    /// The physical references the walk performed, outermost level first.
    #[inline]
    pub fn steps(&self) -> &[WalkStep] {
        &self.steps[..self.len]
    }

    /// Number of page-table levels referenced: 4 for a 4 KiB leaf, 3 for
    /// 2 MiB, 2 for 1 GiB — the paper's "huge pages shorten the walk"
    /// effect, exposed for attribution.
    #[inline]
    pub fn depth(&self) -> usize {
        self.len
    }
}

/// Errors from page-table structural operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TableError {
    /// The address is already mapped (at any level covering it).
    AlreadyMapped,
    /// Expected a leaf of a particular size and found something else.
    NotMappedAsExpected,
    /// A frame allocation for an intermediate table failed.
    Frame(FrameError),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::AlreadyMapped => write!(f, "address already mapped"),
            TableError::NotMappedAsExpected => write!(f, "mapping not in the expected state"),
            TableError::Frame(e) => write!(f, "table frame allocation failed: {e}"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<FrameError> for TableError {
    fn from(e: FrameError) -> Self {
        TableError::Frame(e)
    }
}

/// What a successful [`PageTable::collapse`] releases back to the caller.
#[derive(Clone, Debug)]
pub struct CollapseOutcome {
    /// The 512 small mappings that were replaced; their frames are dead.
    pub old_children: Vec<Mapping>,
    /// The 4 KiB frame of the retired page-table node.
    pub table_frame: PhysAddr,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Entry {
    Table(u32),
    Leaf(Mapping),
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct TableNode {
    base: PhysAddr,
    node: NodeId,
    entries: BTreeMap<u16, Entry>,
}

/// A 4-level page table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PageTable {
    arena: Vec<TableNode>,
    /// 4 KiB frames consumed by table nodes (a paper motivation: page-table
    /// memory itself).
    table_bytes: u64,
    /// Bumped by every structural change that can invalidate a
    /// [`WalkCache`] entry: split (leaf → table), collapse (table → leaf),
    /// remap (a leaf's frame/node rewritten in place), and rehome (a table
    /// page migrated to another node — cached upper-level steps record the
    /// old frame and home, so they would silently charge walk traffic to
    /// the wrong node). `map` never bumps it — installing a new leaf only
    /// fills a previously-empty slot, which no cached entry can refer to
    /// (4 KiB leaves are looked up live through the cached PT node).
    generation: u64,
}

/// A software paging-structure/translation cache in front of
/// [`PageTable::walk`].
///
/// The simulator's per-access hot path re-walks the radix table on every
/// TLB miss; for any 2 MiB-aligned virtual region the three upper walk
/// steps (PML4/PDPT/PD references) are fixed as long as the table's
/// structure does not change, so they are memoized here per region. A
/// region mapped by a huge or giant leaf caches the full result; a region
/// mapped through a last-level PT node caches the PT's arena index and
/// resolves the 4 KiB leaf with a single lookup (so demand faults that add
/// sibling pages need no invalidation at all).
///
/// Coherence is by generation: [`PageTable`] bumps its generation on
/// split, collapse, and remap (the policy-driven epoch operations —
/// migrate, split, promote — are exactly these), and the cache clears
/// itself wholesale when the generations diverge. The cached walk is
/// therefore *provably* equal to the uncached one: between two generation
/// bumps the table's structure is immutable apart from leaf insertions,
/// which the cache reads through live.
#[derive(Clone, Debug, Default)]
pub struct WalkCache {
    generation: u64,
    entries: crate::hash::FastMap<u64, CacheEntry>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

#[derive(Clone, Copy, Debug)]
enum CacheEntry {
    /// The region is covered by one huge (2 MiB, 3 steps) or giant
    /// (1 GiB, 2 steps) leaf.
    Huge {
        steps: [WalkStep; 4],
        len: usize,
        mapping: Mapping,
    },
    /// The region is mapped through a last-level (PT) node: the upper
    /// three steps are fixed, the fourth is computed from the PT base, and
    /// the leaf is looked up live in the PT node.
    Pt { steps: [WalkStep; 3], table: u32 },
}

impl WalkCache {
    /// An empty cache.
    pub fn new() -> Self {
        WalkCache::default()
    }

    /// Cached-walk hits since creation.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cached-walk misses since creation.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whole-cache invalidations (generation bumps observed).
    #[inline]
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Number of regions currently cached.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the cache for the `ckpt-v1` snapshot. Entries are written
    /// in sorted key order: the backing map's iteration order is not
    /// canonical, and checkpoint bytes must be deterministic.
    pub fn save_into(&self, e: &mut codec::Enc) {
        e.u64(self.generation);
        let mut keys: Vec<u64> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        e.seq(keys.into_iter(), |e, k| {
            e.u64(k);
            match self.entries[&k] {
                CacheEntry::Huge {
                    steps,
                    len,
                    mapping,
                } => {
                    e.u8(0);
                    e.usize(len);
                    for s in &steps {
                        enc_step(e, s);
                    }
                    enc_mapping(e, &mapping);
                }
                CacheEntry::Pt { steps, table } => {
                    e.u8(1);
                    for s in &steps {
                        enc_step(e, s);
                    }
                    e.u32(table);
                }
            }
        });
        e.u64(self.hits);
        e.u64(self.misses);
        e.u64(self.invalidations);
    }

    /// Restores state captured by [`WalkCache::save_into`].
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        self.generation = d.u64();
        self.entries.clear();
        let n = d.usize();
        for _ in 0..n {
            let k = d.u64();
            let entry = match d.u8() {
                0 => {
                    let len = d.usize();
                    CacheEntry::Huge {
                        steps: [dec_step(d), dec_step(d), dec_step(d), dec_step(d)],
                        len,
                        mapping: dec_mapping(d),
                    }
                }
                1 => CacheEntry::Pt {
                    steps: [dec_step(d), dec_step(d), dec_step(d)],
                    table: d.u32(),
                },
                t => panic!("ckpt: invalid walk-cache entry tag {t}"),
            };
            self.entries.insert(k, entry);
        }
        self.hits = d.u64();
        self.misses = d.u64();
        self.invalidations = d.u64();
    }
}

/// Writes a [`PageSize`] as a one-byte tag (checkpoint codec).
pub(crate) fn enc_page_size(e: &mut codec::Enc, s: PageSize) {
    e.u8(match s {
        PageSize::Size4K => 0,
        PageSize::Size2M => 1,
        PageSize::Size1G => 2,
    });
}

/// Reads a [`PageSize`] tag written by [`enc_page_size`].
pub(crate) fn dec_page_size(d: &mut codec::Dec<'_>) -> PageSize {
    match d.u8() {
        0 => PageSize::Size4K,
        1 => PageSize::Size2M,
        2 => PageSize::Size1G,
        t => panic!("ckpt: invalid PageSize tag {t}"),
    }
}

/// Writes a [`Mapping`] (checkpoint codec, shared with the TLB module).
pub(crate) fn enc_mapping(e: &mut codec::Enc, m: &Mapping) {
    e.u64(m.vbase.0);
    e.u64(m.frame.0);
    e.u16(m.node.0);
    enc_page_size(e, m.size);
}

/// Reads a [`Mapping`] written by [`enc_mapping`].
pub(crate) fn dec_mapping(d: &mut codec::Dec<'_>) -> Mapping {
    Mapping {
        vbase: VirtAddr(d.u64()),
        frame: PhysAddr(d.u64()),
        node: NodeId(d.u16()),
        size: dec_page_size(d),
    }
}

fn enc_step(e: &mut codec::Enc, s: &WalkStep) {
    e.u64(s.pte_addr.0);
    e.u16(s.node.0);
}

fn dec_step(d: &mut codec::Dec<'_>) -> WalkStep {
    WalkStep {
        pte_addr: PhysAddr(d.u64()),
        node: NodeId(d.u16()),
    }
}

/// Index of the root (PML4) node in the arena.
const ROOT: u32 = 0;

/// Virtual-address bit ranges per level, outermost first.
const LEVEL_SHIFTS: [u32; 4] = [39, 30, 21, 12];

fn level_index(vaddr: VirtAddr, level: usize) -> u16 {
    ((vaddr.0 >> LEVEL_SHIFTS[level]) & 0x1ff) as u16
}

/// The level at which a leaf of `size` lives (index into `LEVEL_SHIFTS`).
fn leaf_level(size: PageSize) -> usize {
    match size {
        PageSize::Size1G => 1,
        PageSize::Size2M => 2,
        PageSize::Size4K => 3,
    }
}

impl PageTable {
    /// Creates an empty table whose root node lives on `root_node`.
    ///
    /// The root frame is taken from `frames`.
    pub fn new(frames: &mut FrameAllocator, root_node: NodeId) -> Result<Self, TableError> {
        let base = frames.alloc(root_node, PageSize::Size4K)?;
        Ok(PageTable {
            arena: vec![TableNode {
                base,
                node: root_node,
                entries: BTreeMap::new(),
            }],
            table_bytes: PAGE_4K,
            generation: 0,
        })
    }

    /// Current structural generation (see [`WalkCache`]).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bytes of physical memory consumed by page-table nodes.
    #[inline]
    pub fn table_bytes(&self) -> u64 {
        self.table_bytes
    }

    /// Fast-path translation without recording walk steps.
    pub fn translate(&self, vaddr: VirtAddr) -> Option<Mapping> {
        let mut node = ROOT;
        for level in 0..4 {
            let idx = level_index(vaddr, level);
            match self.arena[node as usize].entries.get(&idx) {
                Some(Entry::Table(next)) => node = *next,
                Some(Entry::Leaf(m)) => return Some(*m),
                None => return None,
            }
        }
        None
    }

    /// Simulates a hardware walk: records the physical PTE reference at each
    /// level traversed and returns the translation if one exists.
    pub fn walk(&self, vaddr: VirtAddr) -> WalkResult {
        let mut steps = [WalkStep {
            pte_addr: PhysAddr(0),
            node: NodeId(0),
        }; 4];
        let mut len = 0;
        let mut node = ROOT;
        for level in 0..4 {
            let idx = level_index(vaddr, level);
            let table = &self.arena[node as usize];
            steps[len] = WalkStep {
                pte_addr: PhysAddr(table.base.0 + u64::from(idx) * 8),
                node: table.node,
            };
            len += 1;
            match table.entries.get(&idx) {
                Some(Entry::Table(next)) => node = *next,
                Some(Entry::Leaf(m)) => {
                    return WalkResult {
                        steps,
                        len,
                        mapping: Some(*m),
                    }
                }
                None => break,
            }
        }
        WalkResult {
            steps,
            len,
            mapping: None,
        }
    }

    /// Like [`PageTable::walk`], but consults (and fills) `cache` first.
    /// Returns a [`WalkResult`] bit-identical to the uncached walk — same
    /// steps, same mapping — skipping the radix traversal on a hit.
    pub fn walk_cached(&self, vaddr: VirtAddr, cache: &mut WalkCache) -> WalkResult {
        if cache.generation != self.generation {
            cache.entries.clear();
            cache.generation = self.generation;
            cache.invalidations += 1;
        }
        let key = vaddr.0 >> 21;
        if let Some(e) = cache.entries.get(&key) {
            cache.hits += 1;
            match *e {
                CacheEntry::Huge {
                    steps,
                    len,
                    mapping,
                } => {
                    return WalkResult {
                        steps,
                        len,
                        mapping: Some(mapping),
                    }
                }
                CacheEntry::Pt {
                    steps: upper,
                    table,
                } => {
                    let t = &self.arena[table as usize];
                    let idx = level_index(vaddr, 3);
                    let mut steps = [WalkStep {
                        pte_addr: PhysAddr(0),
                        node: NodeId(0),
                    }; 4];
                    steps[..3].copy_from_slice(&upper);
                    steps[3] = WalkStep {
                        pte_addr: PhysAddr(t.base.0 + u64::from(idx) * 8),
                        node: t.node,
                    };
                    let mapping = match t.entries.get(&idx) {
                        Some(Entry::Leaf(m)) => Some(*m),
                        _ => None,
                    };
                    return WalkResult {
                        steps,
                        len: 4,
                        mapping,
                    };
                }
            }
        }
        cache.misses += 1;
        // Slow path: the real walk, additionally noting the arena index of
        // the last-level table so the region becomes cacheable.
        let mut steps = [WalkStep {
            pte_addr: PhysAddr(0),
            node: NodeId(0),
        }; 4];
        let mut len = 0;
        let mut node = ROOT;
        for level in 0..4 {
            let idx = level_index(vaddr, level);
            let table = &self.arena[node as usize];
            steps[len] = WalkStep {
                pte_addr: PhysAddr(table.base.0 + u64::from(idx) * 8),
                node: table.node,
            };
            len += 1;
            match table.entries.get(&idx) {
                Some(Entry::Table(next)) => {
                    if level == 2 {
                        // Reached the PT covering this 2 MiB region. Cache
                        // it even when the 4 KiB leaf itself is still
                        // absent: the upper path is stable across demand
                        // faults, and the leaf is looked up live.
                        let mut upper = [steps[0]; 3];
                        upper.copy_from_slice(&steps[..3]);
                        cache.entries.insert(
                            key,
                            CacheEntry::Pt {
                                steps: upper,
                                table: *next,
                            },
                        );
                    }
                    node = *next;
                }
                Some(Entry::Leaf(m)) => {
                    if m.size != PageSize::Size4K {
                        cache.entries.insert(
                            key,
                            CacheEntry::Huge {
                                steps,
                                len,
                                mapping: *m,
                            },
                        );
                    }
                    return WalkResult {
                        steps,
                        len,
                        mapping: Some(*m),
                    };
                }
                None => {
                    return WalkResult {
                        steps,
                        len,
                        mapping: None,
                    }
                }
            }
        }
        WalkResult {
            steps,
            len,
            mapping: None,
        }
    }

    /// Ensures intermediate tables exist down to the level holding leaves of
    /// `size`, returning the arena index of that table node.
    fn ensure_path(
        &mut self,
        vaddr: VirtAddr,
        size: PageSize,
        frames: &mut FrameAllocator,
        pref_node: NodeId,
    ) -> Result<u32, TableError> {
        let target_level = leaf_level(size);
        let mut node = ROOT;
        for level in 0..target_level {
            let idx = level_index(vaddr, level);
            let next = match self.arena[node as usize].entries.get(&idx) {
                Some(Entry::Table(next)) => *next,
                Some(Entry::Leaf(_)) => return Err(TableError::AlreadyMapped),
                None => {
                    let (base, got_node) = frames
                        .alloc_fallback(pref_node, PageSize::Size4K)
                        .map_err(TableError::Frame)?;
                    let new_idx = self.arena.len() as u32;
                    self.arena.push(TableNode {
                        base,
                        node: got_node,
                        entries: BTreeMap::new(),
                    });
                    self.table_bytes += PAGE_4K;
                    self.arena[node as usize]
                        .entries
                        .insert(idx, Entry::Table(new_idx));
                    new_idx
                }
            };
            node = next;
        }
        Ok(node)
    }

    /// Installs a leaf mapping.
    ///
    /// Intermediate table frames are allocated near `pref_node` (the faulting
    /// node — Linux allocates page tables on the faulting node too).
    pub fn map(
        &mut self,
        mapping: Mapping,
        frames: &mut FrameAllocator,
        pref_node: NodeId,
    ) -> Result<(), TableError> {
        debug_assert!(mapping.vbase.is_aligned(mapping.size.bytes()));
        debug_assert!(mapping.frame.is_aligned(mapping.size.bytes()));
        let table = self.ensure_path(mapping.vbase, mapping.size, frames, pref_node)?;
        let idx = level_index(mapping.vbase, leaf_level(mapping.size));
        match self.arena[table as usize].entries.get(&idx) {
            Some(_) => Err(TableError::AlreadyMapped),
            None => {
                self.arena[table as usize]
                    .entries
                    .insert(idx, Entry::Leaf(mapping));
                Ok(())
            }
        }
    }

    /// Finds the leaf covering `vaddr` and rewrites its frame and node
    /// (used by page migration — the virtual page stays put, the physical
    /// frame moves).
    pub fn remap(
        &mut self,
        vaddr: VirtAddr,
        new_frame: PhysAddr,
        new_node: NodeId,
    ) -> Result<Mapping, TableError> {
        let mut node = ROOT;
        for level in 0..4 {
            let idx = level_index(vaddr, level);
            match self.arena[node as usize].entries.get_mut(&idx) {
                Some(Entry::Table(next)) => node = *next,
                Some(Entry::Leaf(m)) => {
                    let old = *m;
                    m.frame = new_frame;
                    m.node = new_node;
                    self.generation += 1;
                    return Ok(old);
                }
                None => break,
            }
        }
        Err(TableError::NotMappedAsExpected)
    }

    /// Splits the large or giant leaf covering `vaddr` into 512 leaves of the
    /// next smaller size, backed by the *same* physical range (no copy, as in
    /// Linux's THP split). Returns the mapping that was split.
    pub fn split(
        &mut self,
        vaddr: VirtAddr,
        frames: &mut FrameAllocator,
    ) -> Result<Mapping, TableError> {
        // Locate the parent table and index of the leaf.
        let mut node = ROOT;
        for level in 0..4 {
            let idx = level_index(vaddr, level);
            let entry = self.arena[node as usize].entries.get(&idx);
            match entry {
                Some(Entry::Table(next)) => node = *next,
                Some(Entry::Leaf(m)) => {
                    let m = *m;
                    let small = m.size.smaller().ok_or(TableError::NotMappedAsExpected)?;
                    // New table node for the 512 smaller entries; placed on
                    // the node that hosts the data, like Linux's split path.
                    let (base, got_node) = frames
                        .alloc_fallback(m.node, PageSize::Size4K)
                        .map_err(TableError::Frame)?;
                    let new_idx = self.arena.len() as u32;
                    let mut entries = BTreeMap::new();
                    for i in 0..512u64 {
                        let child = Mapping {
                            vbase: VirtAddr(m.vbase.0 + i * small.bytes()),
                            frame: PhysAddr(m.frame.0 + i * small.bytes()),
                            node: m.node,
                            size: small,
                        };
                        entries.insert(i as u16, Entry::Leaf(child));
                    }
                    self.arena.push(TableNode {
                        base,
                        node: got_node,
                        entries,
                    });
                    self.table_bytes += PAGE_4K;
                    self.arena[node as usize]
                        .entries
                        .insert(idx, Entry::Table(new_idx));
                    self.generation += 1;
                    return Ok(m);
                }
                None => break,
            }
        }
        Err(TableError::NotMappedAsExpected)
    }

    /// Collapses 512 fully-populated smaller leaves under the naturally
    /// aligned page at `vbase` into one leaf of `size`, backed by
    /// `new_frame` on `new_node` (khugepaged copies into a fresh huge frame).
    ///
    /// Returns the old child mappings and the retired table frame so the
    /// caller can free them.
    pub fn collapse(
        &mut self,
        vbase: VirtAddr,
        size: PageSize,
        new_frame: PhysAddr,
        new_node: NodeId,
    ) -> Result<CollapseOutcome, TableError> {
        debug_assert!(vbase.is_aligned(size.bytes()));
        let small = size.smaller().ok_or(TableError::NotMappedAsExpected)?;
        let target_level = leaf_level(size);
        // Find the table entry at the target level.
        let mut node = ROOT;
        for level in 0..target_level {
            let idx = level_index(vbase, level);
            match self.arena[node as usize].entries.get(&idx) {
                Some(Entry::Table(next)) => node = *next,
                _ => return Err(TableError::NotMappedAsExpected),
            }
        }
        let idx = level_index(vbase, target_level);
        let child_table = match self.arena[node as usize].entries.get(&idx) {
            Some(Entry::Table(t)) => *t,
            _ => return Err(TableError::NotMappedAsExpected),
        };
        // All 512 children must be leaves of the smaller size.
        let child = &self.arena[child_table as usize];
        if child.entries.len() != 512 {
            return Err(TableError::NotMappedAsExpected);
        }
        let mut old = Vec::with_capacity(512);
        for e in child.entries.values() {
            match e {
                Entry::Leaf(m) if m.size == small => old.push(*m),
                _ => return Err(TableError::NotMappedAsExpected),
            }
        }
        // Replace the table entry with the new huge leaf. The child table
        // node's frame is abandoned (arena slot stays; its frame is freed).
        let child_base = self.arena[child_table as usize].base;
        self.arena[node as usize].entries.insert(
            idx,
            Entry::Leaf(Mapping {
                vbase,
                frame: new_frame,
                node: new_node,
                size,
            }),
        );
        self.table_bytes -= PAGE_4K;
        self.generation += 1;
        Ok(CollapseOutcome {
            old_children: old,
            table_frame: child_base,
        })
    }

    /// Visits every leaf mapping in virtual-address order.
    pub fn for_each_leaf(&self, mut f: impl FnMut(&Mapping)) {
        // Iterative DFS, order preserved by BTreeMap iteration.
        fn rec(arena: &[TableNode], node: u32, f: &mut impl FnMut(&Mapping)) {
            for e in arena[node as usize].entries.values() {
                match e {
                    Entry::Table(next) => rec(arena, *next, f),
                    Entry::Leaf(m) => f(m),
                }
            }
        }
        rec(&self.arena, ROOT, &mut f);
    }

    /// Collects every leaf mapping in virtual-address order.
    pub fn leaves(&self) -> Vec<Mapping> {
        let mut v = Vec::new();
        self.for_each_leaf(|m| v.push(*m));
        v
    }

    /// Serializes the whole arena verbatim — including slots abandoned by
    /// collapse — so arena indices held by [`WalkCache`] entries (and the
    /// deterministic index assignment of future splits) survive a resume.
    pub fn save_into(&self, e: &mut codec::Enc) {
        e.seq(self.arena.iter(), |e, t| {
            e.u64(t.base.0);
            e.u16(t.node.0);
            e.seq(t.entries.iter(), |e, (&idx, entry)| {
                e.u16(idx);
                match entry {
                    Entry::Table(next) => {
                        e.u8(0);
                        e.u32(*next);
                    }
                    Entry::Leaf(m) => {
                        e.u8(1);
                        enc_mapping(e, m);
                    }
                }
            });
        });
        e.u64(self.table_bytes);
        e.u64(self.generation);
    }

    /// Restores state captured by [`PageTable::save_into`], replacing this
    /// table's structure entirely (the root frame address comes from the
    /// snapshot, not from this instance's constructor).
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        self.arena = d.seq(|d| {
            let base = PhysAddr(d.u64());
            let node = NodeId(d.u16());
            let entries = d
                .seq(|d| {
                    let idx = d.u16();
                    let entry = match d.u8() {
                        0 => Entry::Table(d.u32()),
                        1 => Entry::Leaf(dec_mapping(d)),
                        t => panic!("ckpt: invalid page-table entry tag {t}"),
                    };
                    (idx, entry)
                })
                .into_iter()
                .collect();
            TableNode {
                base,
                node,
                entries,
            }
        });
        self.table_bytes = d.u64();
        self.generation = d.u64();
    }

    /// Number of arena slots ever created (including slots abandoned by
    /// collapse). New table nodes always append, so a caller can snapshot
    /// this before an operation and inspect exactly the nodes it created.
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// The frame base and home node of the arena slot at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn table_frame(&self, idx: usize) -> (PhysAddr, NodeId) {
        let t = &self.arena[idx];
        (t.base, t.node)
    }

    /// The frame base of the deepest table node traversed when walking
    /// `vaddr` — the table a leaf install/rewrite at `vaddr` structurally
    /// writes (used to charge the replica write-fanout cost).
    pub fn deepest_table_frame(&self, vaddr: VirtAddr) -> PhysAddr {
        let mut node = ROOT;
        for level in 0..4 {
            let idx = level_index(vaddr, level);
            match self.arena[node as usize].entries.get(&idx) {
                Some(Entry::Table(next)) => node = *next,
                _ => break,
            }
        }
        self.arena[node as usize].base
    }

    /// Migrates the deepest *non-root* table node on the walk path of
    /// `vaddr` into the caller-provided frame `new_base` on `new_node`
    /// (the numaPTE mechanism: the PTE page moves toward the walker; the
    /// translations it holds do not change). Returns the old frame and
    /// home so the caller can free the frame.
    ///
    /// Bumps the structural generation: [`WalkCache`] entries memoize the
    /// upper-level steps *including* each table's frame address and home
    /// node, so a rehome with a stale cache would keep charging walk
    /// traffic to the old node forever — the exact silent-staleness hazard
    /// the walk-cycle test battery pins down.
    pub fn rehome_deepest_table(
        &mut self,
        vaddr: VirtAddr,
        new_base: PhysAddr,
        new_node: NodeId,
    ) -> Result<(PhysAddr, NodeId), TableError> {
        let mut node = ROOT;
        for level in 0..4 {
            let idx = level_index(vaddr, level);
            match self.arena[node as usize].entries.get(&idx) {
                Some(Entry::Table(next)) => node = *next,
                _ => break,
            }
        }
        if node == ROOT {
            // Nothing below the root on this path; the PGD never moves
            // (every walk starts there — it has no single "walking node").
            return Err(TableError::NotMappedAsExpected);
        }
        let t = &mut self.arena[node as usize];
        let old = (t.base, t.node);
        t.base = new_base;
        t.node = new_node;
        self.generation += 1;
        Ok(old)
    }

    /// Physical frames of every table node *reachable from the root*, with
    /// the node hosting each. Collapse abandons its child's arena slot
    /// (the slot stays, its frame is freed), so the arena itself
    /// over-approximates the live tables — only reachability is truth.
    pub fn reachable_table_frames(&self) -> Vec<(PhysAddr, NodeId)> {
        let mut out = Vec::new();
        let mut stack = vec![ROOT];
        while let Some(node) = stack.pop() {
            let table = &self.arena[node as usize];
            out.push((table.base, table.node));
            for e in table.entries.values() {
                if let Entry::Table(next) = e {
                    stack.push(*next);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::MachineSpec;

    fn setup() -> (FrameAllocator, PageTable) {
        // 4 GiB per node so 1 GiB blocks survive the small allocations that
        // page-table nodes consume.
        let machine = MachineSpec::homogeneous(
            "table-test",
            2.0,
            2,
            2,
            4 << 30,
            numa_topology::Interconnect::full_mesh(2),
        );
        let mut frames = FrameAllocator::new(&machine);
        let table = PageTable::new(&mut frames, NodeId(0)).unwrap();
        (frames, table)
    }

    fn map4k(t: &mut PageTable, f: &mut FrameAllocator, vaddr: u64, node: NodeId) -> Mapping {
        let frame = f.alloc(node, PageSize::Size4K).unwrap();
        let m = Mapping {
            vbase: VirtAddr(vaddr),
            frame,
            node,
            size: PageSize::Size4K,
        };
        t.map(m, f, node).unwrap();
        m
    }

    #[test]
    fn translate_after_map() {
        let (mut f, mut t) = setup();
        let m = map4k(&mut t, &mut f, 0x7000_1000, NodeId(0));
        let got = t.translate(VirtAddr(0x7000_1234)).unwrap();
        assert_eq!(got, m);
        assert_eq!(
            got.translate(VirtAddr(0x7000_1234)),
            PhysAddr(m.frame.0 + 0x234)
        );
        assert!(t.translate(VirtAddr(0x7000_2000)).is_none());
    }

    #[test]
    fn walk_counts_levels_per_size() {
        let (mut f, mut t) = setup();
        map4k(&mut t, &mut f, 0x10_0000_0000, NodeId(0));
        let w = t.walk(VirtAddr(0x10_0000_0042));
        assert_eq!(w.steps().len(), 4);
        assert!(w.mapping.is_some());

        let frame = f.alloc(NodeId(1), PageSize::Size2M).unwrap();
        t.map(
            Mapping {
                vbase: VirtAddr(0x20_0000_0000),
                frame,
                node: NodeId(1),
                size: PageSize::Size2M,
            },
            &mut f,
            NodeId(1),
        )
        .unwrap();
        let w = t.walk(VirtAddr(0x20_0000_1234));
        assert_eq!(w.steps().len(), 3);

        let frame = f.alloc(NodeId(0), PageSize::Size1G).unwrap();
        t.map(
            Mapping {
                vbase: VirtAddr(0x40_0000_0000),
                frame,
                node: NodeId(0),
                size: PageSize::Size1G,
            },
            &mut f,
            NodeId(0),
        )
        .unwrap();
        let w = t.walk(VirtAddr(0x40_3fff_ffff));
        assert_eq!(w.steps().len(), 2);
    }

    #[test]
    fn walk_of_unmapped_address_reports_fault() {
        let (_, t) = setup();
        let w = t.walk(VirtAddr(0x123_4567));
        assert!(w.mapping.is_none());
        assert_eq!(w.steps().len(), 1); // stopped at the empty root entry
    }

    #[test]
    fn double_map_fails() {
        let (mut f, mut t) = setup();
        let m = map4k(&mut t, &mut f, 0x5000, NodeId(0));
        let err = t.map(m, &mut f, NodeId(0)).unwrap_err();
        assert_eq!(err, TableError::AlreadyMapped);
    }

    #[test]
    fn split_preserves_translations() {
        let (mut f, mut t) = setup();
        let frame = f.alloc(NodeId(1), PageSize::Size2M).unwrap();
        t.map(
            Mapping {
                vbase: VirtAddr(0x8000_0000),
                frame,
                node: NodeId(1),
                size: PageSize::Size2M,
            },
            &mut f,
            NodeId(1),
        )
        .unwrap();
        let before = t.translate(VirtAddr(0x8000_1234)).unwrap();
        let split = t.split(VirtAddr(0x8000_0000), &mut f).unwrap();
        assert_eq!(split.size, PageSize::Size2M);
        let after = t.translate(VirtAddr(0x8000_1234)).unwrap();
        assert_eq!(after.size, PageSize::Size4K);
        // Same physical bytes before and after the split.
        assert_eq!(
            before.translate(VirtAddr(0x8000_1234)),
            after.translate(VirtAddr(0x8000_1234))
        );
        // Walks now traverse 4 levels.
        assert_eq!(t.walk(VirtAddr(0x8000_1234)).steps().len(), 4);
    }

    #[test]
    fn split_4k_fails() {
        let (mut f, mut t) = setup();
        map4k(&mut t, &mut f, 0x9000, NodeId(0));
        assert_eq!(
            t.split(VirtAddr(0x9000), &mut f).unwrap_err(),
            TableError::NotMappedAsExpected
        );
    }

    #[test]
    fn remap_moves_frame() {
        let (mut f, mut t) = setup();
        map4k(&mut t, &mut f, 0xa000, NodeId(0));
        let new_frame = f.alloc(NodeId(1), PageSize::Size4K).unwrap();
        let old = t.remap(VirtAddr(0xa123), new_frame, NodeId(1)).unwrap();
        assert_eq!(old.node, NodeId(0));
        let m = t.translate(VirtAddr(0xa000)).unwrap();
        assert_eq!(m.node, NodeId(1));
        assert_eq!(m.frame, new_frame);
    }

    #[test]
    fn collapse_requires_full_population() {
        let (mut f, mut t) = setup();
        // Map only 10 of the 512 children.
        for i in 0..10u64 {
            map4k(&mut t, &mut f, 0x4000_0000 + i * PAGE_4K, NodeId(0));
        }
        let frame = f.alloc(NodeId(0), PageSize::Size2M).unwrap();
        let err = t
            .collapse(VirtAddr(0x4000_0000), PageSize::Size2M, frame, NodeId(0))
            .unwrap_err();
        assert_eq!(err, TableError::NotMappedAsExpected);
    }

    #[test]
    fn collapse_roundtrip() {
        let (mut f, mut t) = setup();
        for i in 0..512u64 {
            map4k(&mut t, &mut f, 0x4000_0000 + i * PAGE_4K, NodeId(0));
        }
        let huge = f.alloc(NodeId(1), PageSize::Size2M).unwrap();
        let out = t
            .collapse(VirtAddr(0x4000_0000), PageSize::Size2M, huge, NodeId(1))
            .unwrap();
        assert_eq!(out.old_children.len(), 512);
        let m = t.translate(VirtAddr(0x4000_1000)).unwrap();
        assert_eq!(m.size, PageSize::Size2M);
        assert_eq!(m.node, NodeId(1));
        // Walks are now 3 levels.
        assert_eq!(t.walk(VirtAddr(0x4000_1000)).steps().len(), 3);
    }

    #[test]
    fn leaves_are_sorted_and_complete() {
        let (mut f, mut t) = setup();
        for vaddr in [0x3000u64, 0x1000, 0x2000, 0x10_0000_0000] {
            map4k(&mut t, &mut f, vaddr, NodeId(0));
        }
        let leaves = t.leaves();
        let addrs: Vec<u64> = leaves.iter().map(|m| m.vbase.0).collect();
        assert_eq!(addrs, vec![0x1000, 0x2000, 0x3000, 0x10_0000_0000]);
    }

    #[test]
    fn reachable_frames_shrink_after_collapse() {
        let (mut f, mut t) = setup();
        for i in 0..512u64 {
            map4k(&mut t, &mut f, 0x4000_0000 + i * PAGE_4K, NodeId(0));
        }
        let before = t.reachable_table_frames().len();
        let huge = f.alloc(NodeId(0), PageSize::Size2M).unwrap();
        t.collapse(VirtAddr(0x4000_0000), PageSize::Size2M, huge, NodeId(0))
            .unwrap();
        let after = t.reachable_table_frames();
        // The PT node retired; its arena slot remains but is unreachable.
        assert_eq!(after.len(), before - 1);
        assert_eq!(after.len() as u64 * PAGE_4K, t.table_bytes());
    }

    #[test]
    fn table_bytes_grow_with_structure() {
        let (mut f, mut t) = setup();
        let before = t.table_bytes();
        map4k(&mut t, &mut f, 0x1000, NodeId(0));
        // Root existed; three intermediate levels were created.
        assert_eq!(t.table_bytes(), before + 3 * PAGE_4K);
        // A nearby page reuses the whole path.
        map4k(&mut t, &mut f, 0x2000, NodeId(0));
        assert_eq!(t.table_bytes(), before + 3 * PAGE_4K);
    }

    /// Asserts a cached walk is bit-identical to the uncached one.
    fn assert_walk_equal(t: &PageTable, cache: &mut WalkCache, vaddr: u64) {
        let plain = t.walk(VirtAddr(vaddr));
        let cached = t.walk_cached(VirtAddr(vaddr), cache);
        assert_eq!(plain.mapping, cached.mapping, "mapping at {vaddr:#x}");
        assert_eq!(plain.steps().len(), cached.steps().len());
        for (a, b) in plain.steps().iter().zip(cached.steps()) {
            assert_eq!(a.pte_addr, b.pte_addr, "step addr at {vaddr:#x}");
            assert_eq!(a.node, b.node, "step node at {vaddr:#x}");
        }
    }

    #[test]
    fn walk_cache_hits_after_first_walk_and_matches_plain_walk() {
        let (mut f, mut t) = setup();
        for i in 0..8u64 {
            map4k(&mut t, &mut f, 0x4000_0000 + i * PAGE_4K, NodeId(0));
        }
        let mut cache = WalkCache::new();
        assert_walk_equal(&t, &mut cache, 0x4000_0000);
        assert_eq!(cache.misses(), 1);
        for i in 0..8u64 {
            assert_walk_equal(&t, &mut cache, 0x4000_0000 + i * PAGE_4K + 0x42);
        }
        // All subsequent walks in the region hit the cached PT entry.
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 8);
        // An unmapped sibling in the same region is answered (as a fault)
        // from the cache too.
        assert_walk_equal(&t, &mut cache, 0x4000_0000 + 100 * PAGE_4K);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn walk_cache_reads_new_leaves_through_without_invalidation() {
        let (mut f, mut t) = setup();
        map4k(&mut t, &mut f, 0x4000_0000, NodeId(0));
        let mut cache = WalkCache::new();
        assert_walk_equal(&t, &mut cache, 0x4000_0000);
        // A demand fault installs a sibling; no generation bump happens and
        // the cached PT entry resolves the new leaf live.
        map4k(&mut t, &mut f, 0x4000_0000 + PAGE_4K, NodeId(1));
        assert_eq!(t.generation(), 0);
        assert_walk_equal(&t, &mut cache, 0x4000_0000 + PAGE_4K);
        assert_eq!(cache.invalidations(), 0);
    }

    #[test]
    fn walk_cache_invalidated_on_split() {
        let (mut f, mut t) = setup();
        let frame = f.alloc(NodeId(0), PageSize::Size2M).unwrap();
        t.map(
            Mapping {
                vbase: VirtAddr(0x8000_0000),
                frame,
                node: NodeId(0),
                size: PageSize::Size2M,
            },
            &mut f,
            NodeId(0),
        )
        .unwrap();
        let mut cache = WalkCache::new();
        assert_walk_equal(&t, &mut cache, 0x8000_1234);
        assert_eq!(cache.len(), 1);
        t.split(VirtAddr(0x8000_0000), &mut f).unwrap();
        // The cached huge entry must not survive: the next walk sees the
        // 4 KiB children.
        assert_walk_equal(&t, &mut cache, 0x8000_1234);
        assert!(cache.invalidations() >= 1);
        let m = t
            .walk_cached(VirtAddr(0x8000_1234), &mut cache)
            .mapping
            .unwrap();
        assert_eq!(m.size, PageSize::Size4K);
    }

    #[test]
    fn walk_cache_invalidated_on_remap() {
        let (mut f, mut t) = setup();
        let frame = f.alloc(NodeId(0), PageSize::Size2M).unwrap();
        t.map(
            Mapping {
                vbase: VirtAddr(0x8000_0000),
                frame,
                node: NodeId(0),
                size: PageSize::Size2M,
            },
            &mut f,
            NodeId(0),
        )
        .unwrap();
        let mut cache = WalkCache::new();
        assert_walk_equal(&t, &mut cache, 0x8000_0000);
        // Migration rewrites the leaf in place; a stale cached mapping
        // would report the old node.
        let new_frame = f.alloc(NodeId(1), PageSize::Size2M).unwrap();
        t.remap(VirtAddr(0x8000_0000), new_frame, NodeId(1))
            .unwrap();
        let m = t
            .walk_cached(VirtAddr(0x8000_0042), &mut cache)
            .mapping
            .unwrap();
        assert_eq!(m.node, NodeId(1));
        assert_eq!(m.frame, new_frame);
        assert_walk_equal(&t, &mut cache, 0x8000_0042);
    }

    #[test]
    fn walk_cache_invalidated_on_collapse() {
        let (mut f, mut t) = setup();
        for i in 0..512u64 {
            map4k(&mut t, &mut f, 0x4000_0000 + i * PAGE_4K, NodeId(0));
        }
        let mut cache = WalkCache::new();
        assert_walk_equal(&t, &mut cache, 0x4000_0000);
        let huge = f.alloc(NodeId(1), PageSize::Size2M).unwrap();
        t.collapse(VirtAddr(0x4000_0000), PageSize::Size2M, huge, NodeId(1))
            .unwrap();
        // A stale PT entry would read the abandoned child table's leaves.
        let m = t
            .walk_cached(VirtAddr(0x4000_1000), &mut cache)
            .mapping
            .unwrap();
        assert_eq!(m.size, PageSize::Size2M);
        assert_eq!(m.node, NodeId(1));
        assert_walk_equal(&t, &mut cache, 0x4000_1000);
    }

    #[test]
    fn walk_cache_invalidated_on_table_rehome() {
        // The satellite-4 hazard: migrating a table page changes nothing
        // the walk *resolves* (same translations), only where the walk
        // *pays* — cached upper-level steps memoize the old frame address
        // and home node, so without a generation bump every subsequent
        // cached walk would keep charging the old node.
        let (mut f, mut t) = setup();
        map4k(&mut t, &mut f, 0x4000_0000, NodeId(0));
        let mut cache = WalkCache::new();
        assert_walk_equal(&t, &mut cache, 0x4000_0000);
        let gen_before = t.generation();
        let new_frame = f.alloc(NodeId(1), PageSize::Size4K).unwrap();
        let (old_base, old_node) = t
            .rehome_deepest_table(VirtAddr(0x4000_0000), new_frame, NodeId(1))
            .unwrap();
        assert_eq!(old_node, NodeId(0));
        f.free(old_base, PageSize::Size4K);
        assert!(
            t.generation() > gen_before,
            "a table rehome must bump the generation — cached steps hold \
             the old frame and home node"
        );
        // The cached walk reflects the new home at the rehomed level.
        let w = t.walk_cached(VirtAddr(0x4000_0000), &mut cache);
        let last = *w.steps().last().unwrap();
        assert_eq!(last.node, NodeId(1));
        assert_eq!(last.pte_addr.0 & !(PAGE_4K - 1), new_frame.0);
        assert_walk_equal(&t, &mut cache, 0x4000_0000);
    }

    #[test]
    fn rehome_refuses_a_root_only_path() {
        let (mut f, mut t) = setup();
        let frame = f.alloc(NodeId(1), PageSize::Size4K).unwrap();
        // Nothing mapped: the only table on the path is the PML4.
        assert_eq!(
            t.rehome_deepest_table(VirtAddr(0x7000_0000), frame, NodeId(1))
                .unwrap_err(),
            TableError::NotMappedAsExpected
        );
    }

    #[test]
    fn deepest_table_frame_tracks_the_leaf_holder() {
        let (mut f, mut t) = setup();
        map4k(&mut t, &mut f, 0x4000_0000, NodeId(0));
        let deepest = t.deepest_table_frame(VirtAddr(0x4000_0000));
        // It is the PT node: the 4th step of a walk lands inside it.
        let w = t.walk(VirtAddr(0x4000_0000));
        let last = w.steps().last().unwrap();
        assert_eq!(last.pte_addr.0 & !(PAGE_4K - 1), deepest.0);
    }

    #[test]
    fn walk_cache_covers_giant_leaves() {
        let (mut f, mut t) = setup();
        let frame = f.alloc(NodeId(1), PageSize::Size1G).unwrap();
        t.map(
            Mapping {
                vbase: VirtAddr(0x40_0000_0000),
                frame,
                node: NodeId(1),
                size: PageSize::Size1G,
            },
            &mut f,
            NodeId(1),
        )
        .unwrap();
        let mut cache = WalkCache::new();
        // Two different 2 MiB regions of the same giant page: one cache
        // entry each, both two-step walks.
        assert_walk_equal(&t, &mut cache, 0x40_0000_0042);
        assert_walk_equal(&t, &mut cache, 0x40_0020_0042);
        assert_eq!(cache.len(), 2);
        let w = t.walk_cached(VirtAddr(0x40_0000_0042), &mut cache);
        assert_eq!(w.steps().len(), 2);
        assert_eq!(w.mapping.unwrap().size, PageSize::Size1G);
    }

    #[test]
    fn page_size_properties() {
        assert_eq!(PageSize::Size4K.walk_levels(), 4);
        assert_eq!(PageSize::Size2M.walk_levels(), 3);
        assert_eq!(PageSize::Size1G.walk_levels(), 2);
        assert_eq!(PageSize::Size2M.smaller(), Some(PageSize::Size4K));
        assert_eq!(PageSize::Size1G.fanout(), 512);
        assert_eq!(PageSize::Size4K.fanout(), 1);
        assert_eq!(PageSize::Size2M.to_string(), "2M");
    }
}
