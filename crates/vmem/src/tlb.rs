//! Per-core translation lookaside buffers.
//!
//! Models the Opteron's two-level TLB: small per-size-class L1 arrays backed
//! by a larger unified L2. Larger pages need fewer entries to cover the same
//! footprint — the entire mechanism by which large pages help — so the TLB
//! stores one entry per *page*, whatever its size.

use crate::addr::VirtAddr;
use crate::table::{Mapping, PageSize};
use serde::{Deserialize, Serialize};

/// Geometry of the two TLB levels.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TlbConfig {
    /// L1 entries for 4 KiB pages.
    pub l1_4k_entries: usize,
    /// L1 entries for 2 MiB pages.
    pub l1_2m_entries: usize,
    /// L1 entries for 1 GiB pages.
    pub l1_1g_entries: usize,
    /// Unified L2 entries (all sizes).
    pub l2_entries: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Extra cycles charged on an L2 TLB hit (L1 hits are free).
    pub l2_hit_cycles: u32,
}

impl TlbConfig {
    /// Opteron-like geometry scaled down by `scale` (1 = full size:
    /// 48/32/8-entry L1 arrays, 1024-entry 8-way L2).
    pub fn scaled_default(scale: usize) -> Self {
        let scale = scale.max(1);
        let d = |n: usize| (n / scale).max(2);
        TlbConfig {
            l1_4k_entries: d(48),
            l1_2m_entries: d(32),
            l1_1g_entries: d(8),
            l2_entries: d(1024),
            l2_ways: 8,
            l2_hit_cycles: 7,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig::scaled_default(1)
    }
}

/// One cached translation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TlbEntry {
    /// The mapping this entry caches.
    pub mapping: Mapping,
}

/// Result of a TLB lookup.
#[derive(Clone, Copy, Debug)]
pub enum TlbLookup {
    /// Hit in the first level: zero added latency.
    HitL1(Mapping),
    /// Hit in the unified second level.
    HitL2(Mapping),
    /// Miss: a page-table walk is required.
    Miss,
}

/// One set of a `SubTlb`: keys and mappings in parallel arrays, MRU first.
///
/// Keys are scanned on every lookup, so they live in their own dense vector
/// (8 bytes/entry) instead of interleaved with the ~40-byte mappings — a
/// fully-associative 48-entry probe then touches 384 bytes, not ~2 KiB.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct TlbSet {
    keys: Vec<u64>,
    vals: Vec<Mapping>,
}

/// A set-associative translation array with LRU replacement.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct SubTlb {
    sets: Vec<TlbSet>,
    ways: usize,
    set_mask: u64,
}

impl SubTlb {
    fn new(entries: usize, ways: usize) -> Self {
        let ways = ways.max(1).min(entries.max(1));
        let sets = (entries / ways).max(1).next_power_of_two();
        SubTlb {
            sets: vec![TlbSet::default(); sets],
            ways,
            set_mask: (sets - 1) as u64,
        }
    }

    #[inline]
    fn set_of(&self, key: u64) -> usize {
        // Multiplicative hash: the scaled-down set count would otherwise
        // alias regularly-strided VPNs far more than a full-size TLB does.
        ((key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) & self.set_mask) as usize
    }

    #[inline]
    fn lookup(&mut self, key: u64) -> Option<Mapping> {
        let idx = self.set_of(key);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.keys.iter().position(|&k| k == key) {
            if pos != 0 {
                // Move to MRU by rotating the prefix: identical ordering to
                // remove+insert(0), without the double memmove.
                set.keys[..=pos].rotate_right(1);
                set.vals[..=pos].rotate_right(1);
            }
            Some(set.vals[0])
        } else {
            None
        }
    }

    #[inline]
    fn insert(&mut self, key: u64, mapping: Mapping) {
        let idx = self.set_of(key);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.keys.iter().position(|&k| k == key) {
            if pos != 0 {
                set.keys[..=pos].rotate_right(1);
                set.vals[..=pos].rotate_right(1);
            }
            set.keys[0] = key;
            set.vals[0] = mapping;
            return;
        }
        if set.keys.len() >= self.ways {
            set.keys.pop();
            set.vals.pop();
        }
        set.keys.insert(0, key);
        set.vals.insert(0, mapping);
    }

    fn invalidate(&mut self, key: u64) {
        let idx = self.set_of(key);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.keys.iter().position(|&k| k == key) {
            set.keys.remove(pos);
            set.vals.remove(pos);
        }
    }

    fn flush(&mut self) {
        for s in &mut self.sets {
            s.keys.clear();
            s.vals.clear();
        }
    }

    /// Serializes the set contents (MRU-first order preserved); geometry
    /// (`ways`, `set_mask`) is rebuilt from the config by the caller.
    fn save_into(&self, e: &mut codec::Enc) {
        e.seq(self.sets.iter(), |e, s| {
            e.seq(s.keys.iter(), |e, &k| e.u64(k));
            e.seq(s.vals.iter(), crate::table::enc_mapping);
        });
    }

    /// Restores state captured by [`SubTlb::save_into`] onto a sub-TLB
    /// built with the same geometry.
    fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        let n = d.usize();
        assert_eq!(n, self.sets.len(), "checkpoint TLB set count mismatch");
        for s in &mut self.sets {
            s.keys = d.seq(|d| d.u64());
            s.vals = d.seq(crate::table::dec_mapping);
            assert_eq!(s.keys.len(), s.vals.len(), "checkpoint TLB set torn");
        }
    }
}

/// Lifetime TLB statistics.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TlbStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (L1 misses that the L2 caught).
    pub l2_hits: u64,
    /// Full misses (walk required).
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio over all lookups; 0 when idle.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.l1_hits + self.l2_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Total lookups (hits at either level plus full misses).
    pub fn total_lookups(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.misses
    }

    /// Lookups that probed the L2 (L2 hits plus full misses) — exactly the
    /// lookups that pay the L2-probe latency the attribution ledger books
    /// under `tlb_lookup`.
    pub fn l2_probes(&self) -> u64 {
        self.l2_hits + self.misses
    }
}

/// A per-core two-level TLB.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Tlb {
    l1_4k: SubTlb,
    l1_2m: SubTlb,
    l1_1g: SubTlb,
    l2: SubTlb,
    stats: TlbStats,
}

/// Unified-L2 key: VPN disambiguated by size class. The class lives in the
/// high bits so that consecutive VPNs still map to consecutive sets.
#[inline]
fn l2_key(vaddr: VirtAddr, size: PageSize) -> u64 {
    let class = match size {
        PageSize::Size4K => 0u64,
        PageSize::Size2M => 1,
        PageSize::Size1G => 2,
    };
    (vaddr.0 >> size.bytes().trailing_zeros()) | class << 56
}

#[inline]
fn vpn(vaddr: VirtAddr, size: PageSize) -> u64 {
    vaddr.0 >> size.bytes().trailing_zeros()
}

impl Tlb {
    /// Creates an empty TLB with the given geometry.
    pub fn new(config: &TlbConfig) -> Self {
        Tlb {
            // L1 arrays are fully associative, as on real hardware.
            l1_4k: SubTlb::new(config.l1_4k_entries, config.l1_4k_entries),
            l1_2m: SubTlb::new(config.l1_2m_entries, config.l1_2m_entries),
            l1_1g: SubTlb::new(config.l1_1g_entries, config.l1_1g_entries),
            l2: SubTlb::new(config.l2_entries, config.l2_ways),
            stats: TlbStats::default(),
        }
    }

    /// Looks up `vaddr`, probing every size class in both levels. An L2 hit
    /// is promoted into the matching L1 array.
    pub fn lookup(&mut self, vaddr: VirtAddr) -> TlbLookup {
        for (sub, size) in [
            (&mut self.l1_4k, PageSize::Size4K),
            (&mut self.l1_2m, PageSize::Size2M),
            (&mut self.l1_1g, PageSize::Size1G),
        ] {
            if let Some(m) = sub.lookup(vpn(vaddr, size)) {
                self.stats.l1_hits += 1;
                return TlbLookup::HitL1(m);
            }
        }
        for size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
            if let Some(m) = self.l2.lookup(l2_key(vaddr, size)) {
                self.stats.l2_hits += 1;
                self.l1_for(size).insert(vpn(vaddr, size), m);
                return TlbLookup::HitL2(m);
            }
        }
        self.stats.misses += 1;
        TlbLookup::Miss
    }

    fn l1_for(&mut self, size: PageSize) -> &mut SubTlb {
        match size {
            PageSize::Size4K => &mut self.l1_4k,
            PageSize::Size2M => &mut self.l1_2m,
            PageSize::Size1G => &mut self.l1_1g,
        }
    }

    /// Installs a translation after a walk (fills both levels).
    pub fn insert(&mut self, mapping: Mapping) {
        let v = mapping.vbase;
        let s = mapping.size;
        self.l1_for(s).insert(vpn(v, s), mapping);
        self.l2.insert(l2_key(v, s), mapping);
    }

    /// Removes any entry translating the page at `vbase` of `size`
    /// (one core's share of a TLB shootdown).
    pub fn invalidate(&mut self, vbase: VirtAddr, size: PageSize) {
        self.l1_for(size).invalidate(vpn(vbase, size));
        self.l2.invalidate(l2_key(vbase, size));
    }

    /// Drops every entry (full flush).
    pub fn flush(&mut self) {
        self.l1_4k.flush();
        self.l1_2m.flush();
        self.l1_1g.flush();
        self.l2.flush();
    }

    /// Lifetime statistics.
    #[inline]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Serializes the full TLB state (entries in recency order plus
    /// lifetime stats) for the `ckpt-v1` snapshot.
    pub fn save_into(&self, e: &mut codec::Enc) {
        self.l1_4k.save_into(e);
        self.l1_2m.save_into(e);
        self.l1_1g.save_into(e);
        self.l2.save_into(e);
        e.u64(self.stats.l1_hits);
        e.u64(self.stats.l2_hits);
        e.u64(self.stats.misses);
    }

    /// Restores state captured by [`Tlb::save_into`] onto a TLB built with
    /// the same [`TlbConfig`].
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        self.l1_4k.load_from(d);
        self.l1_2m.load_from(d);
        self.l1_1g.load_from(d);
        self.l2.load_from(d);
        self.stats.l1_hits = d.u64();
        self.stats.l2_hits = d.u64();
        self.stats.misses = d.u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PhysAddr, PAGE_2M, PAGE_4K};
    use numa_topology::NodeId;

    fn map(vbase: u64, size: PageSize) -> Mapping {
        Mapping {
            vbase: VirtAddr(vbase),
            frame: PhysAddr(vbase), // identity is fine for TLB tests
            node: NodeId(0),
            size,
        }
    }

    fn tiny_config() -> TlbConfig {
        TlbConfig {
            l1_4k_entries: 2,
            l1_2m_entries: 2,
            l1_1g_entries: 1,
            l2_entries: 8,
            l2_ways: 8,
            l2_hit_cycles: 7,
        }
    }

    #[test]
    fn miss_then_hit_after_insert() {
        let mut t = Tlb::new(&TlbConfig::default());
        assert!(matches!(t.lookup(VirtAddr(0x1234)), TlbLookup::Miss));
        t.insert(map(0x1000, PageSize::Size4K));
        assert!(matches!(t.lookup(VirtAddr(0x1fff)), TlbLookup::HitL1(_)));
        assert!(matches!(t.lookup(VirtAddr(0x2000)), TlbLookup::Miss));
    }

    #[test]
    fn huge_entry_covers_whole_2m() {
        let mut t = Tlb::new(&TlbConfig::default());
        t.insert(map(0x20_0000, PageSize::Size2M));
        for off in [0u64, 0x1000, PAGE_2M - 1] {
            assert!(
                matches!(t.lookup(VirtAddr(0x20_0000 + off)), TlbLookup::HitL1(_)),
                "offset {off:#x}"
            );
        }
        assert!(matches!(t.lookup(VirtAddr(0x40_0000)), TlbLookup::Miss));
    }

    #[test]
    fn evicted_l1_entry_survives_in_l2_and_promotes() {
        let mut t = Tlb::new(&tiny_config());
        // Fill the 2-entry L1 beyond capacity.
        t.insert(map(0x1000, PageSize::Size4K));
        t.insert(map(0x2000, PageSize::Size4K));
        t.insert(map(0x3000, PageSize::Size4K));
        // 0x1000 fell out of L1 but is still in the unified L2.
        assert!(matches!(t.lookup(VirtAddr(0x1000)), TlbLookup::HitL2(_)));
        // The hit promoted it back to L1.
        assert!(matches!(t.lookup(VirtAddr(0x1000)), TlbLookup::HitL1(_)));
    }

    #[test]
    fn capacity_miss_when_footprint_exceeds_both_levels() {
        let mut t = Tlb::new(&tiny_config());
        for i in 0..64u64 {
            t.insert(map(i * PAGE_4K, PageSize::Size4K));
        }
        // Streaming back over the 64-page footprint misses mostly; with
        // 8 L2 entries the oldest pages must be gone.
        assert!(matches!(t.lookup(VirtAddr(0)), TlbLookup::Miss));
    }

    #[test]
    fn one_2m_entry_replaces_512_4k_entries() {
        // The TLB-reach effect in one test: a 2 MiB footprint needs 512
        // small entries (overflowing a small TLB) but a single huge entry.
        let cfg = tiny_config();
        let mut small = Tlb::new(&cfg);
        for i in 0..512u64 {
            small.insert(map(i * PAGE_4K, PageSize::Size4K));
        }
        let misses_before = small.stats().misses;
        for i in 0..512u64 {
            let _ = small.lookup(VirtAddr(i * PAGE_4K));
        }
        assert!(small.stats().misses > misses_before, "small pages thrash");

        let mut huge = Tlb::new(&cfg);
        huge.insert(map(0, PageSize::Size2M));
        for i in 0..512u64 {
            assert!(matches!(
                huge.lookup(VirtAddr(i * PAGE_4K)),
                TlbLookup::HitL1(_)
            ));
        }
    }

    #[test]
    fn invalidate_removes_both_levels() {
        let mut t = Tlb::new(&TlbConfig::default());
        t.insert(map(0x5000, PageSize::Size4K));
        t.invalidate(VirtAddr(0x5000), PageSize::Size4K);
        assert!(matches!(t.lookup(VirtAddr(0x5000)), TlbLookup::Miss));
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = Tlb::new(&TlbConfig::default());
        t.insert(map(0x5000, PageSize::Size4K));
        t.insert(map(0x20_0000, PageSize::Size2M));
        t.flush();
        assert!(matches!(t.lookup(VirtAddr(0x5000)), TlbLookup::Miss));
        assert!(matches!(t.lookup(VirtAddr(0x20_0000)), TlbLookup::Miss));
    }

    #[test]
    fn stats_track_outcomes() {
        let mut t = Tlb::new(&TlbConfig::default());
        let _ = t.lookup(VirtAddr(0x1000)); // miss
        t.insert(map(0x1000, PageSize::Size4K));
        let _ = t.lookup(VirtAddr(0x1000)); // l1 hit
        let s = t.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.l1_hits, 1);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn l1_reach_is_exactly_its_entry_count() {
        // The full-size 4 KiB L1 is 48 entries, fully associative with
        // LRU: a cyclic stream over exactly 48 pages fits (all L1 hits
        // once warm), while 49 pages thrash the L1 on every access and
        // fall through to the unified L2.
        let cfg = TlbConfig::default();
        let mut t = Tlb::new(&cfg);
        for i in 0..48u64 {
            t.insert(map(i * PAGE_4K, PageSize::Size4K));
        }
        for round in 0..3 {
            for i in 0..48u64 {
                assert!(
                    matches!(t.lookup(VirtAddr(i * PAGE_4K)), TlbLookup::HitL1(_)),
                    "round {round} page {i}"
                );
            }
        }

        let mut t = Tlb::new(&cfg);
        for i in 0..49u64 {
            t.insert(map(i * PAGE_4K, PageSize::Size4K));
        }
        let before = t.stats().l1_hits;
        for i in 0..49u64 {
            // One more page than the L1 holds: cyclic LRU evicts each
            // page just before its reuse, so nothing ever hits L1.
            assert!(matches!(
                t.lookup(VirtAddr(i * PAGE_4K)),
                TlbLookup::HitL2(_)
            ));
        }
        assert_eq!(t.stats().l1_hits, before);
    }

    #[test]
    fn lru_evicts_least_recently_used_entry() {
        // 2-entry fully-associative L1: touching A makes B the LRU
        // victim when C arrives, so A stays in L1 and B survives only
        // in the L2.
        let mut t = Tlb::new(&tiny_config());
        t.insert(map(0x1000, PageSize::Size4K)); // A
        t.insert(map(0x2000, PageSize::Size4K)); // B
        assert!(matches!(t.lookup(VirtAddr(0x1000)), TlbLookup::HitL1(_)));
        t.insert(map(0x3000, PageSize::Size4K)); // C evicts B
        assert!(matches!(t.lookup(VirtAddr(0x1000)), TlbLookup::HitL1(_)));
        assert!(matches!(t.lookup(VirtAddr(0x3000)), TlbLookup::HitL1(_)));
        assert!(matches!(t.lookup(VirtAddr(0x2000)), TlbLookup::HitL2(_)));
    }

    #[test]
    fn reinserting_same_page_does_not_consume_capacity() {
        let mut t = Tlb::new(&tiny_config());
        t.insert(map(0x1000, PageSize::Size4K));
        t.insert(map(0x1000, PageSize::Size4K));
        t.insert(map(0x2000, PageSize::Size4K));
        // Both still fit in the 2-entry L1: the duplicate insert
        // replaced rather than duplicated.
        assert!(matches!(t.lookup(VirtAddr(0x1000)), TlbLookup::HitL1(_)));
        assert!(matches!(t.lookup(VirtAddr(0x2000)), TlbLookup::HitL1(_)));
    }

    #[test]
    fn l2_keys_disambiguate_size_classes() {
        // A 4 KiB entry at vaddr 0 must not be confused with a 2 MiB
        // entry at vaddr 0: invalidating one size class leaves the
        // other's translation intact.
        let mut t = Tlb::new(&TlbConfig::default());
        t.insert(map(0, PageSize::Size4K));
        t.invalidate(VirtAddr(0), PageSize::Size2M);
        assert!(matches!(t.lookup(VirtAddr(0)), TlbLookup::HitL1(_)));
        t.invalidate(VirtAddr(0), PageSize::Size4K);
        assert!(matches!(t.lookup(VirtAddr(0)), TlbLookup::Miss));
    }

    #[test]
    fn scaled_config_shrinks_but_stays_positive() {
        let c = TlbConfig::scaled_default(64);
        assert!(c.l1_4k_entries >= 2);
        assert!(c.l2_entries >= 2);
        let full = TlbConfig::scaled_default(1);
        assert_eq!(full.l1_4k_entries, 48);
        assert_eq!(full.l2_entries, 1024);
    }
}
