//! Per-node buddy frame allocator.

use crate::addr::{PhysAddr, PAGE_4K};
use crate::error::VmemError;
use crate::table::PageSize;
use numa_topology::{MachineSpec, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Highest buddy order: order 18 blocks are 4 KiB << 18 = 1 GiB.
const MAX_ORDER: u32 = 18;

/// Errors reported by the frame allocator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// No frame of the requested size is free on the requested node.
    OutOfMemory {
        /// The node that could not satisfy the allocation.
        node: NodeId,
    },
    /// No node in the whole machine could satisfy the allocation.
    OutOfMemoryEverywhere,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::OutOfMemory { node } => {
                write!(f, "out of physical memory on {node}")
            }
            FrameError::OutOfMemoryEverywhere => write!(f, "out of physical memory on all nodes"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One node's buddy allocator state.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct BuddyNode {
    /// `free[o]` holds the start addresses of free order-`o` blocks,
    /// ordered so allocation is deterministic (lowest address first).
    free: Vec<BTreeSet<u64>>,
    free_bytes: u64,
    total_bytes: u64,
}

impl BuddyNode {
    fn new(base: u64, bytes: u64) -> Self {
        let mut node = BuddyNode {
            free: vec![BTreeSet::new(); (MAX_ORDER + 1) as usize],
            free_bytes: 0,
            total_bytes: bytes,
        };
        // Carve the node's range into maximal naturally-aligned blocks.
        let mut addr = base;
        let end = base + bytes;
        while addr < end {
            let mut order = MAX_ORDER;
            loop {
                let size = PAGE_4K << order;
                if addr.is_multiple_of(size) && addr + size <= end {
                    break;
                }
                order -= 1;
            }
            node.free[order as usize].insert(addr);
            node.free_bytes += PAGE_4K << order;
            addr += PAGE_4K << order;
        }
        node
    }

    fn alloc(&mut self, order: u32) -> Option<u64> {
        // Find the smallest free block of at least the requested order.
        let mut o = order;
        while o <= MAX_ORDER && self.free[o as usize].is_empty() {
            o += 1;
        }
        if o > MAX_ORDER {
            return None;
        }
        let addr = *self.free[o as usize].iter().next()?;
        self.free[o as usize].remove(&addr);
        // Split down, returning the upper halves to the free lists.
        while o > order {
            o -= 1;
            let half = PAGE_4K << o;
            self.free[o as usize].insert(addr + half);
        }
        self.free_bytes -= PAGE_4K << order;
        Some(addr)
    }

    fn free(&mut self, mut addr: u64, order: u32) {
        let mut o = order;
        self.free_bytes += PAGE_4K << order;
        // Coalesce with the buddy while possible.
        while o < MAX_ORDER {
            let size = PAGE_4K << o;
            let buddy = addr ^ size;
            if self.free[o as usize].remove(&buddy) {
                addr = addr.min(buddy);
                o += 1;
            } else {
                break;
            }
        }
        let inserted = self.free[o as usize].insert(addr);
        debug_assert!(inserted, "double free of block {addr:#x} at order {o}");
    }
}

/// The machine-wide frame allocator: one buddy system per NUMA node.
///
/// Physical addresses are laid out node-major: node `n` owns the range
/// `[n * stride, n * stride + dram_bytes)`, so the home node of any physical
/// address is a single division. This mirrors how BIOS SRAT tables present
/// contiguous per-node ranges.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrameAllocator {
    nodes: Vec<BuddyNode>,
    stride: u64,
}

impl FrameAllocator {
    /// Builds an allocator covering all of `machine`'s DRAM.
    ///
    /// # Panics
    ///
    /// Panics if the machine spec has zero nodes; use
    /// [`FrameAllocator::try_new`] to handle that case as an error.
    pub fn new(machine: &MachineSpec) -> Self {
        Self::try_new(machine).unwrap_or_else(|e| panic!("cannot build frame allocator: {e}"))
    }

    /// Builds an allocator covering all of `machine`'s DRAM, reporting a
    /// machine with no nodes as [`VmemError::NoNodes`] instead of panicking.
    pub fn try_new(machine: &MachineSpec) -> Result<Self, VmemError> {
        let stride = machine
            .nodes()
            .iter()
            .map(|n| n.dram_bytes)
            .max()
            .ok_or(VmemError::NoNodes)?;
        let nodes = machine
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, spec)| BuddyNode::new(i as u64 * stride, spec.dram_bytes))
            .collect();
        Ok(FrameAllocator { nodes, stride })
    }

    /// Allocates a frame of `size` on exactly `node`.
    pub fn alloc(&mut self, node: NodeId, size: PageSize) -> Result<PhysAddr, FrameError> {
        self.nodes[node.index()]
            .alloc(size.order())
            .map(PhysAddr)
            .ok_or(FrameError::OutOfMemory { node })
    }

    /// Allocates on `preferred` if possible, otherwise falls back to the
    /// other nodes in increasing distance-agnostic order (round robin from
    /// the preferred node), matching Linux's default zonelist fallback.
    ///
    /// Returns the frame and the node that actually provided it.
    pub fn alloc_fallback(
        &mut self,
        preferred: NodeId,
        size: PageSize,
    ) -> Result<(PhysAddr, NodeId), FrameError> {
        let n = self.nodes.len();
        for i in 0..n {
            let node = NodeId::from((preferred.index() + i) % n);
            if let Some(addr) = self.nodes[node.index()].alloc(size.order()) {
                return Ok((PhysAddr(addr), node));
            }
        }
        Err(FrameError::OutOfMemoryEverywhere)
    }

    /// Frees a frame previously allocated at `size` granularity.
    ///
    /// A huge frame that was split (the 2 MiB region now backing 512 separate
    /// 4 KiB pages) is freed piecewise as 4 KiB frames; the buddy system
    /// coalesces the pieces back automatically.
    pub fn free(&mut self, addr: PhysAddr, size: PageSize) {
        let node = self.node_of(addr);
        self.nodes[node.index()].free(addr.0, size.order());
    }

    /// The home node of a physical address.
    #[inline]
    pub fn node_of(&self, addr: PhysAddr) -> NodeId {
        NodeId::from((addr.0 / self.stride) as usize)
    }

    /// Free bytes remaining on one node.
    pub fn free_bytes(&self, node: NodeId) -> u64 {
        self.nodes[node.index()].free_bytes
    }

    /// Total bytes managed on one node.
    pub fn total_bytes(&self, node: NodeId) -> u64 {
        self.nodes[node.index()].total_bytes
    }

    /// Number of nodes managed.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Every free block on `node` as `(start address, order)`, in address
    /// order within each order list (exposed for the invariant walker).
    pub fn free_blocks(&self, node: NodeId) -> Vec<(u64, u32)> {
        let mut blocks = Vec::new();
        for (order, list) in self.nodes[node.index()].free.iter().enumerate() {
            for &addr in list {
                blocks.push((addr, order as u32));
            }
        }
        blocks
    }

    /// Serializes the mutable allocator state (free lists and byte
    /// counters) for the `ckpt-v1` snapshot. The node layout (`stride`,
    /// per-node totals) is rebuilt from the machine spec by the caller.
    pub fn save_into(&self, e: &mut codec::Enc) {
        e.seq(self.nodes.iter(), |e, n| {
            e.seq(n.free.iter(), |e, list| {
                e.seq(list.iter(), |e, &addr| e.u64(addr));
            });
            e.u64(n.free_bytes);
            e.u64(n.total_bytes);
        });
    }

    /// Restores state captured by [`FrameAllocator::save_into`] onto an
    /// allocator freshly built for the same machine.
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        let n = d.usize();
        assert_eq!(n, self.nodes.len(), "checkpoint node count mismatch");
        for node in &mut self.nodes {
            let orders = d.usize();
            assert_eq!(orders, node.free.len(), "checkpoint buddy order mismatch");
            for list in &mut node.free {
                list.clear();
                let k = d.usize();
                for _ in 0..k {
                    list.insert(d.u64());
                }
            }
            node.free_bytes = d.u64();
            node.total_bytes = d.u64();
        }
    }

    /// Checks the buddy system's own invariants: every free block is
    /// naturally aligned, inside its node's range, disjoint from every
    /// other free block, and the per-node free-byte counters match the
    /// free lists exactly.
    pub fn validate(&self) -> Result<(), VmemError> {
        for (i, node) in self.nodes.iter().enumerate() {
            let base = i as u64 * self.stride;
            let end = base + node.total_bytes;
            let mut intervals: Vec<(u64, u64)> = Vec::new();
            let mut sum: u64 = 0;
            for (order, list) in node.free.iter().enumerate() {
                let size = PAGE_4K << order;
                for &addr in list {
                    if !addr.is_multiple_of(size) {
                        return Err(VmemError::Invariant(format!(
                            "node {i}: free block {addr:#x} misaligned for order {order}"
                        )));
                    }
                    if addr < base || addr + size > end {
                        return Err(VmemError::Invariant(format!(
                            "node {i}: free block {addr:#x}+{size:#x} outside \
                             [{base:#x}, {end:#x})"
                        )));
                    }
                    intervals.push((addr, size));
                    sum += size;
                }
            }
            if sum != node.free_bytes {
                return Err(VmemError::Invariant(format!(
                    "node {i}: free lists hold {sum} bytes but free_bytes says {}",
                    node.free_bytes
                )));
            }
            if node.free_bytes > node.total_bytes {
                return Err(VmemError::Invariant(format!(
                    "node {i}: free_bytes {} exceeds total_bytes {}",
                    node.free_bytes, node.total_bytes
                )));
            }
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                if w[0].0 + w[0].1 > w[1].0 {
                    return Err(VmemError::Invariant(format!(
                        "node {i}: free blocks {:#x}+{:#x} and {:#x} overlap",
                        w[0].0, w[0].1, w[1].0
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PAGE_1G, PAGE_2M};

    fn alloc_2node() -> FrameAllocator {
        FrameAllocator::new(&MachineSpec::test_machine()) // 1 GiB per node
    }

    #[test]
    fn fresh_allocator_is_fully_free() {
        let a = alloc_2node();
        assert_eq!(a.free_bytes(NodeId(0)), 1 << 30);
        assert_eq!(a.free_bytes(NodeId(1)), 1 << 30);
        assert_eq!(a.total_bytes(NodeId(0)), 1 << 30);
    }

    #[test]
    fn alloc_respects_node_ranges() {
        let mut a = alloc_2node();
        let f0 = a.alloc(NodeId(0), PageSize::Size4K).unwrap();
        let f1 = a.alloc(NodeId(1), PageSize::Size4K).unwrap();
        assert_eq!(a.node_of(f0), NodeId(0));
        assert_eq!(a.node_of(f1), NodeId(1));
        assert_ne!(f0, f1);
    }

    #[test]
    fn frames_are_naturally_aligned() {
        let mut a = alloc_2node();
        // Perturb the free lists first so alignment isn't trivially zero.
        let _ = a.alloc(NodeId(0), PageSize::Size4K).unwrap();
        let huge = a.alloc(NodeId(0), PageSize::Size2M).unwrap();
        assert!(huge.is_aligned(PAGE_2M), "got {huge}");
        // Node 1 is untouched, so its single 1 GiB block is still whole.
        let giant = a.alloc(NodeId(1), PageSize::Size1G).unwrap();
        assert!(giant.is_aligned(PAGE_1G), "got {giant}");
    }

    #[test]
    fn alloc_free_roundtrip_restores_free_bytes() {
        let mut a = alloc_2node();
        let before = a.free_bytes(NodeId(0));
        let f = a.alloc(NodeId(0), PageSize::Size2M).unwrap();
        assert_eq!(a.free_bytes(NodeId(0)), before - PAGE_2M);
        a.free(f, PageSize::Size2M);
        assert_eq!(a.free_bytes(NodeId(0)), before);
    }

    #[test]
    fn split_huge_frame_frees_piecewise_and_coalesces() {
        let mut a = alloc_2node();
        let huge = a.alloc(NodeId(0), PageSize::Size2M).unwrap();
        // Treat the 2 MiB frame as 512 separate 4 KiB frames and free them.
        for i in 0..512u64 {
            a.free(PhysAddr(huge.0 + i * PAGE_4K), PageSize::Size4K);
        }
        assert_eq!(a.free_bytes(NodeId(0)), 1 << 30);
        // The whole gibibyte must have coalesced back: a 1 GiB alloc works.
        assert!(a.alloc(NodeId(0), PageSize::Size1G).is_ok());
    }

    #[test]
    fn exhaustion_returns_out_of_memory() {
        let mut a = alloc_2node();
        let got = a.alloc(NodeId(0), PageSize::Size1G);
        assert!(got.is_ok());
        let err = a.alloc(NodeId(0), PageSize::Size1G).unwrap_err();
        assert_eq!(err, FrameError::OutOfMemory { node: NodeId(0) });
    }

    #[test]
    fn fallback_moves_to_next_node() {
        let mut a = alloc_2node();
        let _ = a.alloc(NodeId(0), PageSize::Size1G).unwrap();
        let (frame, node) = a.alloc_fallback(NodeId(0), PageSize::Size1G).unwrap();
        assert_eq!(node, NodeId(1));
        assert_eq!(a.node_of(frame), NodeId(1));
        // Now everything is gone.
        let err = a.alloc_fallback(NodeId(0), PageSize::Size1G).unwrap_err();
        assert_eq!(err, FrameError::OutOfMemoryEverywhere);
    }

    #[test]
    fn fragmentation_blocks_huge_allocations() {
        let mut a = alloc_2node();
        // Allocate every 4 KiB frame on node 0...
        let mut frames = Vec::new();
        while let Ok(f) = a.alloc(NodeId(0), PageSize::Size4K) {
            frames.push(f);
        }
        assert_eq!(a.free_bytes(NodeId(0)), 0);
        // ...then free every other one: half the memory is free but no 2 MiB
        // block can be built.
        for f in frames.iter().step_by(2) {
            a.free(*f, PageSize::Size4K);
        }
        assert_eq!(a.free_bytes(NodeId(0)), (1 << 30) / 2);
        assert!(a.alloc(NodeId(0), PageSize::Size2M).is_err());
        // Freeing the rest coalesces fully again.
        for f in frames.iter().skip(1).step_by(2) {
            a.free(*f, PageSize::Size4K);
        }
        assert!(a.alloc(NodeId(0), PageSize::Size1G).is_ok());
    }

    #[test]
    fn try_new_matches_new_on_real_machines() {
        // `MachineSpec` statically guarantees at least one node, so the
        // `NoNodes` branch is a defensive path; `try_new` must agree with
        // `new` everywhere a machine can actually exist.
        let a = FrameAllocator::try_new(&MachineSpec::test_machine()).unwrap();
        let b = FrameAllocator::new(&MachineSpec::test_machine());
        assert_eq!(a.free_bytes(NodeId(0)), b.free_bytes(NodeId(0)));
        assert_eq!(a.num_nodes(), b.num_nodes());
    }

    #[test]
    fn validate_accepts_live_states() {
        let mut a = alloc_2node();
        a.validate().unwrap();
        let f = a.alloc(NodeId(0), PageSize::Size2M).unwrap();
        let g = a.alloc(NodeId(1), PageSize::Size4K).unwrap();
        a.validate().unwrap();
        a.free(f, PageSize::Size2M);
        a.free(g, PageSize::Size4K);
        a.validate().unwrap();
    }

    #[test]
    fn validate_catches_corrupted_accounting() {
        let mut a = alloc_2node();
        a.nodes[0].free_bytes += 1;
        assert!(matches!(a.validate().unwrap_err(), VmemError::Invariant(_)));
    }

    #[test]
    fn free_blocks_cover_free_bytes() {
        let mut a = alloc_2node();
        let _ = a.alloc(NodeId(0), PageSize::Size2M).unwrap();
        let covered: u64 = a
            .free_blocks(NodeId(0))
            .iter()
            .map(|&(_, order)| PAGE_4K << order)
            .sum();
        assert_eq!(covered, a.free_bytes(NodeId(0)));
    }

    #[test]
    fn deterministic_allocation_order() {
        let mut a = alloc_2node();
        let mut b = alloc_2node();
        for _ in 0..100 {
            assert_eq!(
                a.alloc(NodeId(0), PageSize::Size4K).unwrap(),
                b.alloc(NodeId(0), PageSize::Size4K).unwrap()
            );
        }
    }
}
