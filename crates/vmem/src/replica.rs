//! Read-only page replication.
//!
//! The original Carrefour system (Dashti et al., ASPLOS '13) has a third
//! mechanism beside migration and interleaving: *replication* of read-mostly
//! shared pages, giving every node a local copy. This paper's summary of
//! Carrefour omits it (its benchmarks are write-heavy enough that the
//! kernel module rarely engaged it), but the reproduction implements it as
//! an optional extension so the complete mechanism space can be explored —
//! see the `replication` ablation bench.
//!
//! Model: a 4 KiB page may carry one replica frame per node. Reads are
//! serviced by the reader's local replica; any store collapses the replica
//! set back to the master copy (writes to a replicated page are rare by
//! selection — the policy only replicates pages whose samples contain no
//! stores).

use crate::addr::{PhysAddr, VirtAddr};
use crate::table::{Mapping, PageSize};
use numa_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The replica frames of one virtual page (master excluded).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReplicaSet {
    /// `frames[n]` = the frame on node `n`, if one exists.
    frames: BTreeMap<u16, PhysAddr>,
}

impl ReplicaSet {
    /// The replica frame on `node`, if any.
    #[inline]
    pub fn on(&self, node: NodeId) -> Option<PhysAddr> {
        self.frames.get(&node.0).copied()
    }

    /// Records a replica frame for `node`.
    pub fn insert(&mut self, node: NodeId, frame: PhysAddr) {
        self.frames.insert(node.0, frame);
    }

    /// All `(node, frame)` pairs, for freeing on collapse.
    pub fn drain(&mut self) -> Vec<(NodeId, PhysAddr)> {
        std::mem::take(&mut self.frames)
            .into_iter()
            .map(|(n, f)| (NodeId(n), f))
            .collect()
    }

    /// Number of replica frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// The replica table of an address space.
///
/// Kept separate from the page table: replicas are a placement-layer
/// concept (the hardware sees per-node page tables in the real system; the
/// simulator resolves them at translation time).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReplicaTable {
    pages: BTreeMap<u64, ReplicaSet>,
    /// Lifetime count of replica creations.
    pub created: u64,
    /// Lifetime count of collapses (a store hit a replicated page).
    pub collapsed: u64,
}

impl ReplicaTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any page is currently replicated (cheap fast-path check).
    #[inline]
    pub fn any(&self) -> bool {
        !self.pages.is_empty()
    }

    /// Resolves the mapping a reader on `node` should use: its local
    /// replica when one exists, the master mapping otherwise.
    #[inline]
    pub fn resolve(&self, master: Mapping, node: NodeId) -> Mapping {
        if master.size != PageSize::Size4K || self.pages.is_empty() {
            return master;
        }
        match self.pages.get(&master.vbase.0).and_then(|set| set.on(node)) {
            Some(frame) => Mapping {
                frame,
                node,
                ..master
            },
            None => master,
        }
    }

    /// Whether the page at `vbase` has replicas.
    pub fn is_replicated(&self, vbase: VirtAddr) -> bool {
        self.pages.contains_key(&vbase.0)
    }

    /// Registers a replica frame for `(vbase, node)`.
    pub fn add(&mut self, vbase: VirtAddr, node: NodeId, frame: PhysAddr) {
        self.pages.entry(vbase.0).or_default().insert(node, frame);
        self.created += 1;
    }

    /// Removes a page's replica set, returning the frames to free.
    pub fn collapse(&mut self, vbase: VirtAddr) -> Vec<(NodeId, PhysAddr)> {
        match self.pages.remove(&vbase.0) {
            Some(mut set) => {
                self.collapsed += 1;
                set.drain()
            }
            None => Vec::new(),
        }
    }

    /// Number of currently replicated pages.
    pub fn replicated_pages(&self) -> usize {
        self.pages.len()
    }

    /// Serializes the replica table for the `ckpt-v1` snapshot
    /// (BTreeMaps iterate in sorted order, so the bytes are canonical).
    pub fn save_into(&self, e: &mut codec::Enc) {
        e.seq(self.pages.iter(), |e, (&vbase, set)| {
            e.u64(vbase);
            e.seq(set.frames.iter(), |e, (&n, &f)| {
                e.u16(n);
                e.u64(f.0);
            });
        });
        e.u64(self.created);
        e.u64(self.collapsed);
    }

    /// Restores state captured by [`ReplicaTable::save_into`].
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        self.pages = d
            .seq(|d| {
                let vbase = d.u64();
                let frames = d
                    .seq(|d| (d.u16(), PhysAddr(d.u64())))
                    .into_iter()
                    .collect();
                (vbase, ReplicaSet { frames })
            })
            .into_iter()
            .collect();
        self.created = d.u64();
        self.collapsed = d.u64();
    }

    /// Visits every replica frame as `(page vbase, node, frame)` (exposed
    /// for the invariant walker — replica frames are live allocations that
    /// the page table does not know about).
    pub fn for_each_frame(&self, mut f: impl FnMut(VirtAddr, NodeId, PhysAddr)) {
        for (&vbase, set) in &self.pages {
            for (&node, &frame) in &set.frames {
                f(VirtAddr(vbase), NodeId(node), frame);
            }
        }
    }
}

/// Per-node replicas of *page-table* frames (the Mitosis mechanism).
///
/// Mitosis (Achermann et al., ASPLOS '20) replicates the page table itself
/// onto every node so that walks never cross the interconnect. The
/// simulator keeps one [`ReplicaSet`] per primary table frame, keyed by
/// the frame's 4 KiB-aligned base; a walker on node `n` resolves each walk
/// step through its local copy when one exists. The primary table stays
/// authoritative — structural writes update every copy (the write-fanout
/// cost the address space charges via
/// [`crate::OpCostModel::table_replica_write`]).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TableReplicas {
    /// Primary table frame base → per-node replica frames.
    tables: BTreeMap<u64, ReplicaSet>,
    /// Lifetime count of table-replica creations.
    pub created: u64,
    /// Lifetime count of table-replica teardowns (frames freed).
    pub dropped: u64,
}

impl TableReplicas {
    /// Creates an empty table-replica map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any table frame is replicated (hot-path fast check).
    #[inline]
    pub fn any(&self) -> bool {
        !self.tables.is_empty()
    }

    /// Number of primary table frames that currently have replicas.
    pub fn replicated_tables(&self) -> usize {
        self.tables.len()
    }

    /// Resolves one walk-step PTE reference for a walker on `node`: the
    /// same entry offset inside the node's local replica frame when one
    /// exists, `None` otherwise (the walker reads the primary).
    #[inline]
    pub fn resolve_step(&self, pte_addr: PhysAddr, node: NodeId) -> Option<PhysAddr> {
        let base = pte_addr.0 & !(crate::addr::PAGE_4K - 1);
        self.tables
            .get(&base)
            .and_then(|set| set.on(node))
            .map(|replica| PhysAddr(replica.0 | (pte_addr.0 & (crate::addr::PAGE_4K - 1))))
    }

    /// Replica frames of the table at `base` (0 when unreplicated) — the
    /// write-fanout width of a structural update to that table.
    pub fn copies_of(&self, base: PhysAddr) -> usize {
        self.tables.get(&base.0).map_or(0, ReplicaSet::len)
    }

    /// Registers a replica of the table frame at `base` for `node`.
    pub fn add(&mut self, base: PhysAddr, node: NodeId, frame: PhysAddr) {
        self.tables.entry(base.0).or_default().insert(node, frame);
        self.created += 1;
    }

    /// Removes the replica set of the table at `base` (the primary was
    /// retired by a collapse, or rehomed), returning the frames to free.
    pub fn remove(&mut self, base: PhysAddr) -> Vec<(NodeId, PhysAddr)> {
        match self.tables.remove(&base.0) {
            Some(mut set) => {
                let freed = set.drain();
                self.dropped += freed.len() as u64;
                freed
            }
            None => Vec::new(),
        }
    }

    /// Serializes for the `ckpt-v1` snapshot (canonical BTreeMap order).
    pub fn save_into(&self, e: &mut codec::Enc) {
        e.seq(self.tables.iter(), |e, (&base, set)| {
            e.u64(base);
            e.seq(set.frames.iter(), |e, (&n, &f)| {
                e.u16(n);
                e.u64(f.0);
            });
        });
        e.u64(self.created);
        e.u64(self.dropped);
    }

    /// Restores state captured by [`TableReplicas::save_into`].
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        self.tables = d
            .seq(|d| {
                let base = d.u64();
                let frames = d
                    .seq(|d| (d.u16(), PhysAddr(d.u64())))
                    .into_iter()
                    .collect();
                (base, ReplicaSet { frames })
            })
            .into_iter()
            .collect();
        self.created = d.u64();
        self.dropped = d.u64();
    }

    /// Visits every replica frame as `(primary base, node, frame)` (for
    /// the invariant walker — replica frames are live allocations the page
    /// table does not know about).
    pub fn for_each_frame(&self, mut f: impl FnMut(PhysAddr, NodeId, PhysAddr)) {
        for (&base, set) in &self.tables {
            for (&node, &frame) in &set.frames {
                f(PhysAddr(base), NodeId(node), frame);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn master(vbase: u64) -> Mapping {
        Mapping {
            vbase: VirtAddr(vbase),
            frame: PhysAddr(0x10_0000),
            node: NodeId(0),
            size: PageSize::Size4K,
        }
    }

    #[test]
    fn resolve_prefers_local_replica() {
        let mut t = ReplicaTable::new();
        let m = master(0x4000);
        t.add(m.vbase, NodeId(1), PhysAddr(0x20_0000));
        let local = t.resolve(m, NodeId(1));
        assert_eq!(local.frame, PhysAddr(0x20_0000));
        assert_eq!(local.node, NodeId(1));
        // A node without a replica uses the master.
        let remote = t.resolve(m, NodeId(2));
        assert_eq!(remote.frame, m.frame);
        assert_eq!(remote.node, NodeId(0));
    }

    #[test]
    fn huge_mappings_are_never_resolved() {
        let mut t = ReplicaTable::new();
        let mut m = master(0x20_0000);
        m.size = PageSize::Size2M;
        t.add(VirtAddr(0x20_0000), NodeId(1), PhysAddr(0x30_0000));
        let r = t.resolve(m, NodeId(1));
        assert_eq!(r.frame, m.frame, "replication is 4 KiB-only");
    }

    #[test]
    fn collapse_returns_all_frames() {
        let mut t = ReplicaTable::new();
        let m = master(0x4000);
        t.add(m.vbase, NodeId(1), PhysAddr(0x20_0000));
        t.add(m.vbase, NodeId(2), PhysAddr(0x30_0000));
        assert!(t.is_replicated(m.vbase));
        let freed = t.collapse(m.vbase);
        assert_eq!(freed.len(), 2);
        assert!(!t.is_replicated(m.vbase));
        assert_eq!(t.collapsed, 1);
        assert_eq!(t.created, 2);
        // Idempotent.
        assert!(t.collapse(m.vbase).is_empty());
    }

    #[test]
    fn any_is_a_cheap_emptiness_check() {
        let mut t = ReplicaTable::new();
        assert!(!t.any());
        t.add(VirtAddr(0x1000), NodeId(0), PhysAddr(0x999000));
        assert!(t.any());
        t.collapse(VirtAddr(0x1000));
        assert!(!t.any());
    }

    #[test]
    fn table_replicas_resolve_steps_inside_the_replica_frame() {
        let mut t = TableReplicas::new();
        assert!(!t.any());
        let primary = PhysAddr(0x40_0000);
        t.add(primary, NodeId(1), PhysAddr(0x80_1000));
        assert!(t.any());
        assert_eq!(t.copies_of(primary), 1);
        // A PTE read at offset 0x2a8 inside the primary frame resolves to
        // the same offset inside node 1's replica.
        let resolved = t.resolve_step(PhysAddr(0x40_02a8), NodeId(1)).unwrap();
        assert_eq!(resolved, PhysAddr(0x80_12a8));
        // A node without a replica reads the primary.
        assert!(t.resolve_step(PhysAddr(0x40_02a8), NodeId(2)).is_none());
        // An unreplicated table resolves to nothing.
        assert!(t.resolve_step(PhysAddr(0x99_9000), NodeId(1)).is_none());
    }

    #[test]
    fn table_replica_removal_returns_frames_and_counts() {
        let mut t = TableReplicas::new();
        let primary = PhysAddr(0x40_0000);
        t.add(primary, NodeId(1), PhysAddr(0x80_1000));
        t.add(primary, NodeId(2), PhysAddr(0x80_2000));
        assert_eq!(t.created, 2);
        let freed = t.remove(primary);
        assert_eq!(freed.len(), 2);
        assert_eq!(t.dropped, 2);
        assert!(!t.any());
        assert!(t.remove(primary).is_empty(), "idempotent");
    }
}
