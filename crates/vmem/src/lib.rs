//! Virtual memory subsystem for the NUMA simulator.
//!
//! Models the pieces of the Linux 3.9 virtual memory system that the paper's
//! mechanisms live in:
//!
//! * x86-64-style **4-level page tables** whose walk references are real
//!   physical addresses (so walks hit or miss in the simulated caches),
//! * split **TLBs** (per-size-class L1, unified L2) with LRU replacement,
//! * a per-node buddy **frame allocator** with 4 KiB / 2 MiB / 1 GiB orders,
//! * **first-touch** page placement with node fallback,
//! * a **THP engine**: huge-page backing at fault time plus khugepaged-style
//!   promotion of aligned, fully-populated small-page runs, and
//! * the page **operations** Carrefour-LP is built from: migrate, split
//!   (demote), and collapse (promote), each with a cycle cost model.
//!
//! # Examples
//!
//! ```
//! use numa_topology::{MachineSpec, NodeId};
//! use vmem::{AddressSpace, PageSize, VirtAddr, VmemConfig};
//!
//! let machine = MachineSpec::test_machine();
//! let mut space = AddressSpace::new(&machine, VmemConfig::default());
//! space.map_region(0x1_0000_0000, 4 << 20).unwrap();
//!
//! // First touch faults the page in on the local node, as a huge page when
//! // THP is enabled (the default).
//! let fault = space.fault(VirtAddr(0x1_0000_0000), NodeId(0)).unwrap();
//! assert_eq!(fault.mapping.size, PageSize::Size2M);
//! assert_eq!(fault.mapping.node, NodeId(0));
//! ```

mod addr;
mod error;
mod frame;
pub mod hash;
mod ops;
mod replica;
mod space;
mod table;
mod tlb;

pub use addr::{PhysAddr, VirtAddr};
pub use addr::{GIB, KIB, MIB, PAGE_1G, PAGE_2M, PAGE_4K};
pub use error::VmemError;
pub use frame::{FrameAllocator, FrameError};
pub use ops::{OpCost, OpCostModel};
pub use replica::{ReplicaSet, ReplicaTable};
pub use space::{
    AddressSpace, AllocGate, AllowAll, FaultOutcome, SpaceError, ThpControls, VmemConfig, VmemStats,
};
pub use table::{
    CollapseOutcome, Mapping, PageSize, PageTable, TableError, WalkCache, WalkResult, WalkStep,
};
pub use tlb::{Tlb, TlbConfig, TlbEntry, TlbLookup, TlbStats};
