//! The address space: VMAs, demand faulting, THP, and page operations.

use crate::addr::{PhysAddr, VirtAddr, PAGE_1G, PAGE_2M, PAGE_4K};
use crate::error::VmemError;
use crate::frame::{FrameAllocator, FrameError};
use crate::ops::{OpCost, OpCostModel};
use crate::replica::{ReplicaTable, TableReplicas};
use crate::table::{Mapping, PageSize, PageTable, TableError, WalkCache, WalkResult, WalkStep};
use crate::tlb::TlbConfig;
use numa_topology::{MachineSpec, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from address-space operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpaceError {
    /// The address is not inside any mapped region.
    NoRegion,
    /// The address is already mapped.
    AlreadyMapped,
    /// Expected a mapping (of a particular shape) and found none.
    NotMapped,
    /// Physical memory exhausted.
    Frame(FrameError),
    /// Regions must not overlap and must be aligned.
    BadRegion,
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::NoRegion => write!(f, "address outside every region"),
            SpaceError::AlreadyMapped => write!(f, "address already mapped"),
            SpaceError::NotMapped => write!(f, "no mapping in the expected state"),
            SpaceError::Frame(e) => write!(f, "frame allocation failed: {e}"),
            SpaceError::BadRegion => write!(f, "invalid region"),
        }
    }
}

impl std::error::Error for SpaceError {}

impl From<FrameError> for SpaceError {
    fn from(e: FrameError) -> Self {
        SpaceError::Frame(e)
    }
}

impl From<TableError> for SpaceError {
    fn from(e: TableError) -> Self {
        match e {
            TableError::AlreadyMapped => SpaceError::AlreadyMapped,
            TableError::NotMappedAsExpected => SpaceError::NotMapped,
            TableError::Frame(f) => SpaceError::Frame(f),
        }
    }
}

/// Runtime-tunable THP switches — exactly the knobs Algorithm 1 toggles.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ThpControls {
    /// Back new anonymous faults with 2 MiB pages when possible
    /// (`/sys/.../transparent_hugepage/enabled`).
    pub alloc_2m: bool,
    /// Let the promotion scanner collapse aligned small-page runs
    /// (khugepaged).
    pub promote_2m: bool,
    /// Back new faults with 1 GiB pages when possible (the libhugetlbfs-style
    /// configuration of Section 4.4).
    pub alloc_1g: bool,
}

impl ThpControls {
    /// Linux with THP enabled (the paper's "THP" configuration).
    pub fn thp() -> Self {
        ThpControls {
            alloc_2m: true,
            promote_2m: true,
            alloc_1g: false,
        }
    }

    /// Linux with 4 KiB pages only (the paper's baseline).
    pub fn small_only() -> Self {
        ThpControls {
            alloc_2m: false,
            promote_2m: false,
            alloc_1g: false,
        }
    }

    /// 1 GiB pages wherever possible (Section 4.4).
    pub fn giant() -> Self {
        ThpControls {
            alloc_2m: true,
            promote_2m: false,
            alloc_1g: true,
        }
    }
}

/// Configuration of the virtual-memory subsystem.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct VmemConfig {
    /// TLB geometry used for the per-core TLBs.
    pub tlb: TlbConfig,
    /// Cost model for faults and page operations.
    pub costs: OpCostModel,
    /// Initial THP switches.
    pub thp: ThpControls,
}

impl Default for VmemConfig {
    fn default() -> Self {
        VmemConfig {
            tlb: TlbConfig::default(),
            costs: OpCostModel::default(),
            thp: ThpControls::thp(),
        }
    }
}

/// Lifetime statistics of one address space.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmemStats {
    /// Demand faults that installed a 4 KiB page.
    pub faults_4k: u64,
    /// Demand faults that installed a 2 MiB page.
    pub faults_2m: u64,
    /// Demand faults that installed a 1 GiB page.
    pub faults_1g: u64,
    /// Pages migrated, by size.
    pub migrations_4k: u64,
    /// 2 MiB pages migrated whole.
    pub migrations_2m: u64,
    /// Huge/giant pages split.
    pub splits: u64,
    /// Small-page runs collapsed into huge pages.
    pub collapses: u64,
    /// Read-only replicas created (Carrefour replication extension).
    pub replications: u64,
    /// Replica sets collapsed by stores.
    pub replica_collapses: u64,
    /// Bytes copied by migrations and collapses.
    pub bytes_copied: u64,
    /// Page-table frames replicated onto other nodes (Mitosis).
    pub table_replications: u64,
    /// Page-table frames migrated toward their walkers (numaPTE).
    pub table_migrations: u64,
}

/// The outcome of a successful demand fault.
#[derive(Clone, Copy, Debug)]
pub struct FaultOutcome {
    /// The freshly installed mapping.
    pub mapping: Mapping,
    /// Cycles consumed in the fault handler (excluding lock contention,
    /// which the engine adds since it knows how many threads are faulting).
    pub cycles: OpCost,
}

/// A registered anonymous memory region.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct Region {
    base: u64,
    len: u64,
}

/// A veto point consulted before each huge/giant frame allocation at fault
/// time. Models transient THP allocation failure — compaction not finding
/// a contiguous block — which Linux reports as `thp_fault_fallback` and
/// answers by backing the fault with 4 KiB pages instead.
///
/// The gate is `&mut` so implementations may hold RNG state (the engine's
/// fault-injection plan does); it is consulted only for allocations that
/// would genuinely be attempted (after the region-fit and population
/// probes), so every call corresponds to one would-be huge allocation.
pub trait AllocGate {
    /// Whether a huge/giant allocation of `size` may proceed this fault.
    fn allow_huge(&mut self, size: PageSize) -> bool;
}

/// The default gate: never vetoes anything.
pub struct AllowAll;

impl AllocGate for AllowAll {
    #[inline]
    fn allow_huge(&mut self, _size: PageSize) -> bool {
        true
    }
}

/// One process's address space on one machine.
///
/// Owns the machine's frame allocator and the page table; the engine owns
/// the per-core TLBs (they are per-CPU state, not per-address-space).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AddressSpace {
    frames: FrameAllocator,
    table: PageTable,
    regions: Vec<Region>,
    thp: ThpControls,
    costs: OpCostModel,
    stats: VmemStats,
    total_cores: usize,
    /// khugepaged scan cursor (virtual address of the next 2 MiB candidate).
    scan_cursor: u64,
    /// 2 MiB ranges deliberately split by policy: khugepaged must not
    /// re-collapse them (Linux's `MADV_NOHUGEPAGE` marking) until promotion
    /// is explicitly re-enabled.
    no_promote: std::collections::BTreeSet<u64>,
    /// Read-only replicas of 4 KiB pages (the optional Carrefour
    /// replication extension).
    replicas: ReplicaTable,
    /// Per-node replicas of page-table frames (the Mitosis mechanism).
    table_replicas: TableReplicas,
    /// When nonzero, every newly created table frame is eagerly replicated
    /// onto all `eager_table_nodes` nodes (set by
    /// [`AddressSpace::replicate_tables`], persisted so faults after the
    /// initial sweep stay covered).
    eager_table_nodes: usize,
}

impl AddressSpace {
    /// Creates an empty address space for `machine`.
    ///
    /// # Panics
    ///
    /// Panics if the machine has no nodes or not even the page-table root
    /// can be allocated (a machine with no memory); use
    /// [`AddressSpace::try_new`] to handle those cases as errors.
    pub fn new(machine: &MachineSpec, config: VmemConfig) -> Self {
        Self::try_new(machine, config).unwrap_or_else(|e| panic!("cannot build address space: {e}"))
    }

    /// Creates an empty address space for `machine`, reporting an unusable
    /// machine spec (no nodes, no memory for the root table) as a typed
    /// error instead of panicking.
    pub fn try_new(machine: &MachineSpec, config: VmemConfig) -> Result<Self, VmemError> {
        let mut frames = FrameAllocator::try_new(machine)?;
        let table = PageTable::new(&mut frames, NodeId(0)).map_err(VmemError::Table)?;
        Ok(AddressSpace {
            frames,
            table,
            regions: Vec::new(),
            thp: config.thp,
            costs: config.costs,
            stats: VmemStats::default(),
            total_cores: machine.total_cores(),
            scan_cursor: 0,
            no_promote: std::collections::BTreeSet::new(),
            replicas: ReplicaTable::new(),
            table_replicas: TableReplicas::new(),
            eager_table_nodes: 0,
        })
    }

    /// Registers an anonymous region at `[base, base + len)`.
    ///
    /// `base` must be 1 GiB-aligned (so the region can hold pages of every
    /// size) and `len` a positive multiple of 4 KiB; regions must not
    /// overlap.
    pub fn map_region(&mut self, base: u64, len: u64) -> Result<(), SpaceError> {
        if !base.is_multiple_of(PAGE_1G) || len == 0 || !len.is_multiple_of(PAGE_4K) {
            return Err(SpaceError::BadRegion);
        }
        let overlaps = self
            .regions
            .iter()
            .any(|r| base < r.base + r.len && r.base < base + len);
        if overlaps {
            return Err(SpaceError::BadRegion);
        }
        self.regions.push(Region { base, len });
        Ok(())
    }

    fn region_of(&self, vaddr: VirtAddr) -> Option<Region> {
        self.regions
            .iter()
            .copied()
            .find(|r| vaddr.0 >= r.base && vaddr.0 < r.base + r.len)
    }

    /// Fast-path translation (no walk simulation).
    #[inline]
    pub fn translate(&self, vaddr: VirtAddr) -> Option<Mapping> {
        self.table.translate(vaddr)
    }

    /// Resolves a mapping for a reader on `node`, substituting the local
    /// replica frame when the page is replicated.
    #[inline]
    pub fn resolve_replica(&self, master: Mapping, node: NodeId) -> Mapping {
        self.replicas.resolve(master, node)
    }

    /// Whether any page is currently replicated (hot-path fast check).
    #[inline]
    pub fn has_replicas(&self) -> bool {
        self.replicas.any()
    }

    /// Whether the 4 KiB page at `vbase` is replicated.
    #[inline]
    pub fn is_replicated(&self, vbase: VirtAddr) -> bool {
        self.replicas.is_replicated(vbase)
    }

    /// Number of currently replicated pages.
    pub fn replicated_pages(&self) -> usize {
        self.replicas.replicated_pages()
    }

    /// Whether any page-table frame is replicated (hot-path fast check
    /// before per-step walk resolution).
    #[inline]
    pub fn has_table_replicas(&self) -> bool {
        self.table_replicas.any()
    }

    /// Number of table frames that currently carry replicas.
    pub fn replicated_table_frames(&self) -> usize {
        self.table_replicas.replicated_tables()
    }

    /// Resolves one walk step for a walker on `node`: when the referenced
    /// table frame has a replica on `node`, the step reads the local copy
    /// (same entry offset, local frame, local home); otherwise the primary.
    #[inline]
    pub fn resolve_table_step(&self, step: WalkStep, node: NodeId) -> WalkStep {
        match self.table_replicas.resolve_step(step.pte_addr, node) {
            Some(pte_addr) => WalkStep { pte_addr, node },
            None => step,
        }
    }

    /// Write-fanout cost of one structural table write at `vaddr`: the
    /// per-copy charge times the replica count of the table the write
    /// lands in. Zero whenever no table is replicated — existing policies
    /// pay nothing.
    fn table_fanout_cost(&self, vaddr: VirtAddr) -> OpCost {
        if !self.table_replicas.any() {
            return 0;
        }
        let table = self.table.deepest_table_frame(vaddr);
        self.costs
            .table_write_fanout(self.table_replicas.copies_of(table))
    }

    /// Replicates every table frame created since `arena_before` onto all
    /// eager nodes (no-op unless eager replication is on). Alloc failures
    /// skip the node — the walk simply keeps reading the primary there.
    fn replicate_new_tables(&mut self, arena_before: usize) -> OpCost {
        if self.eager_table_nodes == 0 {
            return 0;
        }
        let mut cost: OpCost = 0;
        for idx in arena_before..self.table.arena_len() {
            let (base, home) = self.table.table_frame(idx);
            for n in 0..self.eager_table_nodes {
                let node = NodeId::from(n);
                if node == home {
                    continue;
                }
                let Ok(frame) = self.frames.alloc(node, PageSize::Size4K) else {
                    continue;
                };
                self.table_replicas.add(base, node, frame);
                self.stats.table_replications += 1;
                self.stats.bytes_copied += PAGE_4K;
                cost += self.costs.migrate(PageSize::Size4K, 0);
            }
        }
        cost
    }

    /// Eagerly replicates every root-reachable page-table frame onto each
    /// of the machine's `num_nodes` nodes and turns on eager replication
    /// for tables created later (Mitosis). Frames are allocated strictly
    /// on the replica's node; a node with no free frame is skipped and
    /// retried on the next call. Returns `(copies created, cycles)`.
    pub fn replicate_tables(&mut self, num_nodes: usize) -> (u64, OpCost) {
        self.eager_table_nodes = num_nodes;
        let mut created: u64 = 0;
        let mut cost: OpCost = 0;
        for (base, home) in self.table.reachable_table_frames() {
            for n in 0..num_nodes {
                let node = NodeId::from(n);
                if node == home || self.table_replicas.resolve_step(base, node).is_some() {
                    continue;
                }
                let Ok(frame) = self.frames.alloc(node, PageSize::Size4K) else {
                    continue;
                };
                self.table_replicas.add(base, node, frame);
                self.stats.table_replications += 1;
                self.stats.bytes_copied += PAGE_4K;
                created += 1;
                cost += self.costs.migrate(PageSize::Size4K, 0);
            }
        }
        (created, cost)
    }

    /// Migrates the deepest non-root table page on the walk path of
    /// `vaddr` to `target` (numaPTE): the PTE page moves toward its
    /// walkers, the translations it holds stay put. A table already homed
    /// on `target` is a free no-op. Replicas of the old frame (if any) are
    /// torn down — the primary moved under them.
    ///
    /// Returns `(Some(old_home), cycles)` when the table moved, `(None, 0)`
    /// when it was already on `target`; the caller must flush walk caches
    /// via the generation bump this performs (and need not shoot down data
    /// TLBs — leaf translations are unchanged).
    pub fn migrate_table(
        &mut self,
        vaddr: VirtAddr,
        target: NodeId,
    ) -> Result<(Option<NodeId>, OpCost), SpaceError> {
        // Locate the deepest table without mutating: rehome wants a fresh
        // frame on `target` first, and allocation may fail.
        let probe = self.table.walk(vaddr);
        if probe.steps().len() < 2 {
            return Err(SpaceError::NotMapped);
        }
        let deepest = *probe.steps().last().unwrap();
        if deepest.node == target {
            return Ok((None, 0));
        }
        let new_frame = self.frames.alloc(target, PageSize::Size4K)?;
        let (old_base, old_node) = self
            .table
            .rehome_deepest_table(vaddr, new_frame, target)
            .inspect_err(|_| self.frames.free(new_frame, PageSize::Size4K))?;
        self.frames.free(old_base, PageSize::Size4K);
        for (_, frame) in self.table_replicas.remove(old_base) {
            self.frames.free(frame, PageSize::Size4K);
        }
        self.stats.table_migrations += 1;
        self.stats.bytes_copied += PAGE_4K;
        Ok((
            Some(old_node),
            self.costs.migrate(PageSize::Size4K, self.total_cores),
        ))
    }

    /// Replicates the 4 KiB page covering `vaddr` onto every node that
    /// lacks a copy (the Carrefour replication extension; only meaningful
    /// for read-mostly pages — any store collapses the set).
    ///
    /// Returns the cycles consumed. The caller must shoot down the page's
    /// TLB entries so readers re-resolve to their local replica.
    pub fn replicate(&mut self, vaddr: VirtAddr, num_nodes: usize) -> Result<OpCost, SpaceError> {
        let m = self.table.translate(vaddr).ok_or(SpaceError::NotMapped)?;
        if m.size != PageSize::Size4K {
            return Err(SpaceError::NotMapped);
        }
        let mut cost: OpCost = 0;
        for n in 0..num_nodes {
            let node = NodeId::from(n);
            if node == m.node || self.replicas.resolve(m, node).node == node {
                continue;
            }
            let frame = self.frames.alloc(node, PageSize::Size4K)?;
            self.replicas.add(m.vbase, node, frame);
            self.stats.replications += 1;
            self.stats.bytes_copied += PAGE_4K;
            cost += self.costs.migrate(PageSize::Size4K, 0);
        }
        Ok(cost)
    }

    /// Collapses the replica set of the page at `vbase` (a store hit it).
    /// Returns the cycles consumed; the caller must shoot down the page.
    pub fn collapse_replicas(&mut self, vbase: VirtAddr) -> OpCost {
        let freed = self.replicas.collapse(vbase);
        if freed.is_empty() {
            return 0;
        }
        self.stats.replica_collapses += 1;
        for (_, frame) in freed {
            self.frames.free(frame, PageSize::Size4K);
        }
        self.costs.split(self.total_cores) / 2
    }

    /// Simulated hardware walk (physical PTE references included).
    #[inline]
    pub fn walk(&self, vaddr: VirtAddr) -> WalkResult {
        self.table.walk(vaddr)
    }

    /// Like [`AddressSpace::walk`], but memoized through `cache` (see
    /// [`WalkCache`]): bit-identical steps and mapping, no radix traversal
    /// on a hit. The cache self-invalidates when the table's structural
    /// generation moves (split / collapse / migrate).
    #[inline]
    pub fn walk_cached(&self, vaddr: VirtAddr, cache: &mut WalkCache) -> WalkResult {
        self.table.walk_cached(vaddr, cache)
    }

    /// Whether a page of `size` covering `vaddr` would lie entirely inside
    /// the region containing `vaddr`.
    ///
    /// Giant (1 GiB) pages are exempt from the tail check: libhugetlbfs
    /// reserves mappings as whole gigabyte pages, so a region shorter than
    /// 1 GiB is still backed by one giant page whose tail is simply never
    /// touched (regions are 1 GiB-aligned by construction).
    fn size_fits(&self, region: Region, vaddr: VirtAddr, size: PageSize) -> bool {
        let pbase = vaddr.align_down(size.bytes()).0;
        if size == PageSize::Size1G {
            return pbase >= region.base;
        }
        pbase >= region.base && pbase + size.bytes() <= region.base + region.len
    }

    /// Handles a demand fault at `vaddr` from a thread on `node`.
    ///
    /// Placement is first-touch with fallback; page size is the largest
    /// enabled size that fits the region and for which a frame is free
    /// on the preferred node (falling back to smaller sizes before falling
    /// back to remote nodes, matching THP's behaviour).
    pub fn fault(&mut self, vaddr: VirtAddr, node: NodeId) -> Result<FaultOutcome, SpaceError> {
        self.fault_gated(vaddr, node, &mut AllowAll)
    }

    /// Like [`AddressSpace::fault`], but consults `gate` before each huge
    /// or giant allocation that would otherwise be attempted; a veto makes
    /// the fault fall through to the next smaller size, exactly as if the
    /// allocation itself had failed (THP compaction failure).
    pub fn fault_gated(
        &mut self,
        vaddr: VirtAddr,
        node: NodeId,
        gate: &mut dyn AllocGate,
    ) -> Result<FaultOutcome, SpaceError> {
        let region = self.region_of(vaddr).ok_or(SpaceError::NoRegion)?;
        if self.table.translate(vaddr).is_some() {
            return Err(SpaceError::AlreadyMapped);
        }
        let arena_before = self.table.arena_len();

        let mut candidates: Vec<PageSize> = Vec::with_capacity(3);
        if self.thp.alloc_1g {
            candidates.push(PageSize::Size1G);
        }
        if self.thp.alloc_2m {
            candidates.push(PageSize::Size2M);
        }
        candidates.push(PageSize::Size4K);

        for size in candidates {
            if !self.size_fits(region, vaddr, size) {
                continue;
            }
            let vbase = vaddr.align_down(size.bytes());
            // A larger page may be blocked by an existing smaller mapping
            // within its range (partial population): only take it if the
            // whole range is empty. Checking the base is sufficient for our
            // workloads' forward-touch patterns, but stay exact: scan leaf
            // presence via translate of each child base would be O(512), so
            // approximate with the two ends plus the faulting page.
            let probes = [
                vbase,
                VirtAddr(vbase.0 + size.bytes() - PAGE_4K),
                vaddr.align_down(PAGE_4K),
            ];
            if probes.iter().any(|&p| self.table.translate(p).is_some()) {
                continue;
            }
            if size != PageSize::Size4K && !gate.allow_huge(size) {
                // Vetoed: compaction "failed"; fall back to a smaller size.
                continue;
            }
            let got = if size == PageSize::Size4K {
                // Small pages may fall back to remote nodes.
                self.frames.alloc_fallback(node, size).ok()
            } else {
                // Huge pages are only taken when available locally; otherwise
                // THP falls back to smaller sizes (no remote huge pages at
                // fault time, as in Linux's default `defrag` behaviour).
                self.frames.alloc(node, size).ok().map(|f| (f, node))
            };
            let Some((frame, got_node)) = got else {
                if size == PageSize::Size4K {
                    return Err(SpaceError::Frame(FrameError::OutOfMemoryEverywhere));
                }
                continue;
            };
            let mapping = Mapping {
                vbase,
                frame,
                node: got_node,
                size,
            };
            if let Err(e) = self.table.map(mapping, &mut self.frames, got_node) {
                if matches!(e, TableError::AlreadyMapped) && size != PageSize::Size4K {
                    // The three-point probe above is a heuristic: a small
                    // page elsewhere in the range defeats a huge mapping.
                    // Give the frame back and fall through to smaller sizes.
                    self.frames.free(frame, size);
                    continue;
                }
                return Err(e.into());
            }
            match size {
                PageSize::Size4K => self.stats.faults_4k += 1,
                PageSize::Size2M => self.stats.faults_2m += 1,
                PageSize::Size1G => self.stats.faults_1g += 1,
            }
            // Under eager table replication (Mitosis), tables created for
            // this fault gain per-node copies, and the PTE install itself
            // fans out to every copy of the table it lands in. Both terms
            // are zero for every non-Mitosis configuration.
            let replicate = self.replicate_new_tables(arena_before);
            let fanout = self.table_fanout_cost(vaddr);
            return Ok(FaultOutcome {
                mapping,
                cycles: self.costs.fault(size, 0) + replicate + fanout,
            });
        }
        Err(SpaceError::NoRegion)
    }

    /// Migrates the page covering `vaddr` to `target`, copying it into a
    /// fresh frame there. Fails (leaving the page in place) if `target` has
    /// no free frame of the right size.
    ///
    /// Returns the old mapping and the cycles consumed; the caller must
    /// shoot down TLB entries for `old.vbase`.
    pub fn migrate(
        &mut self,
        vaddr: VirtAddr,
        target: NodeId,
    ) -> Result<(Mapping, OpCost), SpaceError> {
        let m = self.table.translate(vaddr).ok_or(SpaceError::NotMapped)?;
        if self.replicas.is_replicated(m.vbase) {
            self.collapse_replicas(m.vbase);
        }
        if m.node == target {
            return Ok((m, 0));
        }
        let new_frame = self.frames.alloc(target, m.size)?;
        let old = self.table.remap(m.vbase, new_frame, target)?;
        self.frames.free(old.frame, old.size);
        match m.size {
            PageSize::Size4K => self.stats.migrations_4k += 1,
            _ => self.stats.migrations_2m += 1,
        }
        self.stats.bytes_copied += m.size.bytes();
        // The PTE rewrite fans out to every replica of the holding table.
        let fanout = self.table_fanout_cost(m.vbase);
        Ok((old, self.costs.migrate(m.size, self.total_cores) + fanout))
    }

    /// Splits the huge or giant page covering `vaddr` into 512 pages of the
    /// next smaller size (no copy). Returns the pre-split mapping and the
    /// cycles consumed; the caller must shoot down TLB entries for it.
    pub fn split(&mut self, vaddr: VirtAddr) -> Result<(Mapping, OpCost), SpaceError> {
        // The split rewrites an entry in the deepest pre-split table: that
        // write fans out to the table's replicas, and the fresh child
        // table gains eager replicas of its own (both zero unless table
        // replication is on).
        let parent_fanout = self.table_fanout_cost(vaddr);
        let arena_before = self.table.arena_len();
        let old = self.table.split(vaddr, &mut self.frames)?;
        self.stats.splits += 1;
        // A deliberately-split page must not be immediately re-collapsed by
        // khugepaged (the kernel marks it, as with MADV_NOHUGEPAGE).
        if old.size == PageSize::Size2M {
            self.no_promote.insert(old.vbase.0);
        }
        let replicate = self.replicate_new_tables(arena_before);
        Ok((
            old,
            self.costs.split(self.total_cores) + parent_fanout + replicate,
        ))
    }

    /// Collapses the 2 MiB-aligned run of 512 small pages at `vbase` into
    /// one huge page on `target` (khugepaged). Returns the cycles consumed;
    /// the caller must shoot down TLB entries for the 512 old pages.
    pub fn collapse(&mut self, vbase: VirtAddr, target: NodeId) -> Result<OpCost, SpaceError> {
        let new_frame = self.frames.alloc(target, PageSize::Size2M)?;
        match self
            .table
            .collapse(vbase, PageSize::Size2M, new_frame, target)
        {
            Ok(out) => {
                for m in &out.old_children {
                    // A replicated child's replica frames die with it —
                    // otherwise they leak and, worse, resurface stale if
                    // the huge page is split again later.
                    self.collapse_replicas(m.vbase);
                    self.frames.free(m.frame, m.size);
                }
                self.frames.free(out.table_frame, PageSize::Size4K);
                // The retired PT's replicas die with it, and the huge-leaf
                // install fans out to the parent table's replicas.
                for (_, frame) in self.table_replicas.remove(out.table_frame) {
                    self.frames.free(frame, PageSize::Size4K);
                }
                let fanout = self.table_fanout_cost(vbase);
                self.stats.collapses += 1;
                self.stats.bytes_copied += PAGE_2M;
                Ok(self.costs.collapse(PageSize::Size2M, self.total_cores) + fanout)
            }
            Err(e) => {
                self.frames.free(new_frame, PageSize::Size2M);
                Err(e.into())
            }
        }
    }

    /// One khugepaged scan step: examines up to `max_candidates` aligned
    /// 2 MiB ranges (resuming where the last scan stopped) and collapses the
    /// fully-populated, promotion-eligible ones onto their majority node.
    ///
    /// Returns the collapsed bases and the cycles consumed.
    pub fn promotion_scan(&mut self, max_candidates: usize) -> (Vec<VirtAddr>, OpCost) {
        if !self.thp.promote_2m {
            return (Vec::new(), 0);
        }
        let mut collapsed = Vec::new();
        let mut cycles: OpCost = 0;
        // Gather candidate 2 MiB bases lazily: visit leaves in place and
        // group — no intermediate Vec of every mapping (this scan runs at
        // every epoch boundary, and 4 KiB-heavy workloads have hundreds of
        // thousands of leaves).
        let mut groups: std::collections::BTreeMap<u64, (usize, Vec<NodeId>)> =
            std::collections::BTreeMap::new();
        self.table.for_each_leaf(|m| {
            if m.size == PageSize::Size4K {
                let base = m.vbase.align_down(PAGE_2M).0;
                let e = groups.entry(base).or_insert_with(|| (0, Vec::new()));
                e.0 += 1;
                e.1.push(m.node);
            }
        });
        let mut window: Vec<(u64, usize, NodeId)> = Vec::with_capacity(max_candidates + 1);
        for (base, (count, nodes)) in groups.range(self.scan_cursor..) {
            if window.len() > max_candidates {
                break;
            }
            window.push((*base, *count, majority_node(nodes)));
        }
        drop(groups);
        if window.len() > max_candidates {
            // Remember where to resume; the extra element marks the cursor.
            if let Some((resume, _, _)) = window.pop() {
                self.scan_cursor = resume;
            }
        } else {
            // Wrapped around the end: restart from the beginning next time.
            self.scan_cursor = 0;
        }
        for (base, count, target) in window {
            if count != 512 || self.no_promote.contains(&base) {
                continue;
            }
            match self.collapse(VirtAddr(base), target) {
                Ok(c) => {
                    cycles += c;
                    collapsed.push(VirtAddr(base));
                }
                Err(_) => continue, // no huge frame free: skip, retry later
            }
        }
        (collapsed, cycles)
    }

    /// Current THP switches.
    #[inline]
    pub fn thp(&self) -> ThpControls {
        self.thp
    }

    /// Mutable THP switches (the knobs Algorithm 1 toggles).
    #[inline]
    pub fn thp_mut(&mut self) -> &mut ThpControls {
        &mut self.thp
    }

    /// Clears the per-range promotion inhibitions (called when promotion is
    /// explicitly re-enabled: Algorithm 1 line 6 means "promote again").
    pub fn clear_promote_inhibitions(&mut self) {
        self.no_promote.clear();
    }

    /// Lifetime statistics.
    #[inline]
    pub fn stats(&self) -> &VmemStats {
        &self.stats
    }

    /// The cost model in use.
    #[inline]
    pub fn costs(&self) -> &OpCostModel {
        &self.costs
    }

    /// All leaf mappings in virtual-address order.
    pub fn leaves(&self) -> Vec<Mapping> {
        self.table.leaves()
    }

    /// Visits every leaf mapping without allocating.
    pub fn for_each_leaf(&self, f: impl FnMut(&Mapping)) {
        self.table.for_each_leaf(f)
    }

    /// Bytes of physical memory consumed by page tables.
    pub fn table_bytes(&self) -> u64 {
        self.table.table_bytes()
    }

    /// Free bytes on a node (exposed for tests and policies).
    pub fn free_bytes(&self, node: NodeId) -> u64 {
        self.frames.free_bytes(node)
    }

    /// Allocates a raw physical frame without mapping it (experiment setup:
    /// pinned buffers, deliberate fragmentation).
    pub fn alloc_frame(
        &mut self,
        node: NodeId,
        size: PageSize,
    ) -> Result<crate::addr::PhysAddr, SpaceError> {
        Ok(self.frames.alloc(node, size)?)
    }

    /// Frees a raw frame taken with [`AddressSpace::alloc_frame`].
    pub fn free_frame(&mut self, frame: crate::addr::PhysAddr, size: PageSize) {
        self.frames.free(frame, size);
    }

    /// Serializes the full address-space state for the `ckpt-v1` snapshot:
    /// frame allocator free lists, the page-table arena, registered
    /// regions, the (runtime-mutable) THP switches, lifetime stats, the
    /// khugepaged cursor and inhibitions, and the replica table.
    pub fn save_into(&self, e: &mut codec::Enc) {
        self.frames.save_into(e);
        self.table.save_into(e);
        e.seq(self.regions.iter(), |e, r| {
            e.u64(r.base);
            e.u64(r.len);
        });
        e.bool(self.thp.alloc_2m);
        e.bool(self.thp.promote_2m);
        e.bool(self.thp.alloc_1g);
        e.u64(self.stats.faults_4k);
        e.u64(self.stats.faults_2m);
        e.u64(self.stats.faults_1g);
        e.u64(self.stats.migrations_4k);
        e.u64(self.stats.migrations_2m);
        e.u64(self.stats.splits);
        e.u64(self.stats.collapses);
        e.u64(self.stats.replications);
        e.u64(self.stats.replica_collapses);
        e.u64(self.stats.bytes_copied);
        e.u64(self.scan_cursor);
        e.seq(self.no_promote.iter(), |e, &b| e.u64(b));
        self.replicas.save_into(e);
        e.u64(self.stats.table_replications);
        e.u64(self.stats.table_migrations);
        e.usize(self.eager_table_nodes);
        self.table_replicas.save_into(e);
    }

    /// Restores state captured by [`AddressSpace::save_into`] onto a space
    /// freshly built for the same machine and config (`costs` and
    /// `total_cores` are constructor-derived and not in the snapshot).
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        self.frames.load_from(d);
        self.table.load_from(d);
        self.regions = d.seq(|d| Region {
            base: d.u64(),
            len: d.u64(),
        });
        self.thp.alloc_2m = d.bool();
        self.thp.promote_2m = d.bool();
        self.thp.alloc_1g = d.bool();
        self.stats.faults_4k = d.u64();
        self.stats.faults_2m = d.u64();
        self.stats.faults_1g = d.u64();
        self.stats.migrations_4k = d.u64();
        self.stats.migrations_2m = d.u64();
        self.stats.splits = d.u64();
        self.stats.collapses = d.u64();
        self.stats.replications = d.u64();
        self.stats.replica_collapses = d.u64();
        self.stats.bytes_copied = d.u64();
        self.scan_cursor = d.u64();
        self.no_promote = d.seq(|d| d.u64()).into_iter().collect();
        self.replicas.load_from(d);
        self.stats.table_replications = d.u64();
        self.stats.table_migrations = d.u64();
        self.eager_table_nodes = d.usize();
        self.table_replicas.load_from(d);
    }

    /// Walks every structural invariant tying the page table, the replica
    /// table, and the frame allocator together:
    ///
    /// 1. the buddy allocator's own invariants ([`FrameAllocator::validate`]);
    /// 2. every leaf mapping is aligned, lies inside a registered region,
    ///    and claims the node that physically owns its frame;
    /// 3. every replicated page is currently mapped as a 4 KiB leaf and its
    ///    replica frames live on the nodes they claim;
    /// 4. `table_bytes` equals the frames of the root-reachable table nodes;
    /// 5. leaf frames, table frames, replica frames, and free blocks are
    ///    pairwise disjoint (no double mapping, no mapped-but-free frame).
    ///
    /// Raw frames taken via [`AddressSpace::alloc_frame`] are allocated but
    /// deliberately untracked (pinned buffers), so they appear in none of
    /// the interval lists — which is consistent with every check above.
    ///
    /// O(n log n) in the number of mappings: debug/chaos aid, not a fast
    /// path. Returns the first violation found.
    pub fn validate(&self) -> Result<(), VmemError> {
        self.frames.validate()?;

        // Tagged allocated intervals: (start, bytes, what).
        let mut intervals: Vec<(u64, u64, &'static str)> = Vec::new();

        let mut leaf_err: Option<VmemError> = None;
        self.table.for_each_leaf(|m| {
            if leaf_err.is_some() {
                return;
            }
            if !m.vbase.is_aligned(m.size.bytes()) || !m.frame.is_aligned(m.size.bytes()) {
                leaf_err = Some(VmemError::Invariant(format!(
                    "leaf {} -> {} misaligned for {}",
                    m.vbase, m.frame, m.size
                )));
                return;
            }
            if self.region_of(m.vbase).is_none() {
                leaf_err = Some(VmemError::Invariant(format!(
                    "leaf {} lies outside every region",
                    m.vbase
                )));
                return;
            }
            if self.frames.node_of(m.frame) != m.node {
                leaf_err = Some(VmemError::Invariant(format!(
                    "leaf {} claims {} but frame {} belongs to {}",
                    m.vbase,
                    m.node,
                    m.frame,
                    self.frames.node_of(m.frame)
                )));
                return;
            }
            intervals.push((m.frame.0, m.size.bytes(), "leaf"));
        });
        if let Some(e) = leaf_err {
            return Err(e);
        }

        let tables = self.table.reachable_table_frames();
        if tables.len() as u64 * PAGE_4K != self.table.table_bytes() {
            return Err(VmemError::Invariant(format!(
                "{} reachable table nodes but table_bytes = {}",
                tables.len(),
                self.table.table_bytes()
            )));
        }
        for (frame, node) in tables {
            if self.frames.node_of(frame) != node {
                return Err(VmemError::Invariant(format!(
                    "table frame {frame} claims {node} but belongs to {}",
                    self.frames.node_of(frame)
                )));
            }
            intervals.push((frame.0, PAGE_4K, "table"));
        }

        // Table-page node invariants: every table-replica set must hang
        // off a *root-reachable* primary frame (a replica of a retired
        // table is a dangling allocation), and each replica frame must
        // live on the node it claims to serve.
        let reachable: std::collections::BTreeSet<u64> = self
            .table
            .reachable_table_frames()
            .iter()
            .map(|(f, _)| f.0)
            .collect();
        let mut table_replica_err: Option<VmemError> = None;
        self.table_replicas.for_each_frame(|primary, node, frame| {
            if table_replica_err.is_some() {
                return;
            }
            if !reachable.contains(&primary.0) {
                table_replica_err = Some(VmemError::Invariant(format!(
                    "table replica of {primary} dangles: the primary table \
                     frame is not root-reachable"
                )));
                return;
            }
            if self.frames.node_of(frame) != node {
                table_replica_err = Some(VmemError::Invariant(format!(
                    "table replica frame {frame} claims {node} but belongs \
                     to {}",
                    self.frames.node_of(frame)
                )));
                return;
            }
            intervals.push((frame.0, PAGE_4K, "table-replica"));
        });
        if let Some(e) = table_replica_err {
            return Err(e);
        }

        let mut replica_err: Option<VmemError> = None;
        self.replicas.for_each_frame(|vbase, node, frame| {
            if replica_err.is_some() {
                return;
            }
            match self.table.translate(vbase) {
                Some(m) if m.size == PageSize::Size4K && m.vbase == vbase => {}
                _ => {
                    replica_err = Some(VmemError::Invariant(format!(
                        "replica of {vbase} exists but the page is not a \
                         mapped 4 KiB leaf"
                    )));
                    return;
                }
            }
            if self.frames.node_of(frame) != node {
                replica_err = Some(VmemError::Invariant(format!(
                    "replica frame {frame} claims {node} but belongs to {}",
                    self.frames.node_of(frame)
                )));
                return;
            }
            intervals.push((frame.0, PAGE_4K, "replica"));
        });
        if let Some(e) = replica_err {
            return Err(e);
        }

        // Free blocks join the interval list: an allocated frame on a free
        // list is a use-after-free in the making.
        for n in 0..self.frames.num_nodes() {
            for (addr, order) in self.frames.free_blocks(NodeId::from(n)) {
                intervals.push((addr, PAGE_4K << order, "free"));
            }
        }

        intervals.sort_unstable();
        for w in intervals.windows(2) {
            let (a_start, a_len, a_what) = w[0];
            let (b_start, _, b_what) = w[1];
            if a_start + a_len > b_start {
                return Err(VmemError::Invariant(format!(
                    "{a_what} frame {} overlaps {b_what} frame {}",
                    PhysAddr(a_start),
                    PhysAddr(b_start)
                )));
            }
        }
        Ok(())
    }
}

/// The most frequent node in `nodes` (lowest id wins ties).
fn majority_node(nodes: &[NodeId]) -> NodeId {
    let mut counts: std::collections::BTreeMap<NodeId, usize> = std::collections::BTreeMap::new();
    for &n in nodes {
        *counts.entry(n).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(node, count)| (count, std::cmp::Reverse(node)))
        .map(|(node, _)| node)
        .unwrap_or(NodeId(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        let machine = MachineSpec::test_machine();
        AddressSpace::new(&machine, VmemConfig::default())
    }

    fn space_small_pages() -> AddressSpace {
        let machine = MachineSpec::test_machine();
        let config = VmemConfig {
            thp: ThpControls::small_only(),
            ..VmemConfig::default()
        };
        AddressSpace::new(&machine, config)
    }

    const BASE: u64 = 0x40_0000_0000;

    #[test]
    fn fault_with_thp_installs_huge_page() {
        let mut s = space();
        s.map_region(BASE, 64 << 20).unwrap();
        let f = s.fault(VirtAddr(BASE + 0x1234), NodeId(1)).unwrap();
        assert_eq!(f.mapping.size, PageSize::Size2M);
        assert_eq!(f.mapping.node, NodeId(1));
        assert_eq!(f.mapping.vbase, VirtAddr(BASE));
        assert_eq!(s.stats().faults_2m, 1);
    }

    #[test]
    fn fault_without_thp_installs_small_page() {
        let mut s = space_small_pages();
        s.map_region(BASE, 64 << 20).unwrap();
        let f = s.fault(VirtAddr(BASE + 0x1234), NodeId(0)).unwrap();
        assert_eq!(f.mapping.size, PageSize::Size4K);
        assert_eq!(s.stats().faults_4k, 1);
    }

    #[test]
    fn fault_outside_region_fails() {
        let mut s = space();
        s.map_region(BASE, 4 << 20).unwrap();
        assert_eq!(
            s.fault(VirtAddr(0x1000), NodeId(0)).unwrap_err(),
            SpaceError::NoRegion
        );
    }

    #[test]
    fn double_fault_fails() {
        let mut s = space();
        s.map_region(BASE, 4 << 20).unwrap();
        s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
        assert_eq!(
            s.fault(VirtAddr(BASE + 0x100), NodeId(0)).unwrap_err(),
            SpaceError::AlreadyMapped
        );
    }

    #[test]
    fn huge_page_not_used_when_region_too_small() {
        let mut s = space();
        s.map_region(BASE, PAGE_2M / 2).unwrap();
        let f = s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
        assert_eq!(f.mapping.size, PageSize::Size4K);
    }

    #[test]
    fn giant_pages_when_enabled() {
        let machine = MachineSpec::test_machine(); // 1 GiB per node
        let config = VmemConfig {
            thp: ThpControls::giant(),
            ..VmemConfig::default()
        };
        let mut s = AddressSpace::new(&machine, config);
        s.map_region(BASE, PAGE_1G).unwrap();
        // Node 0 lost a few 4 KiB frames to the page table, so a full
        // 1 GiB frame only exists on node 1.
        let f = s.fault(VirtAddr(BASE + 123), NodeId(1)).unwrap();
        assert_eq!(f.mapping.size, PageSize::Size1G);
        assert_eq!(s.stats().faults_1g, 1);
    }

    #[test]
    fn giant_falls_back_to_huge_when_no_giant_frame() {
        let machine = MachineSpec::test_machine();
        let config = VmemConfig {
            thp: ThpControls::giant(),
            ..VmemConfig::default()
        };
        let mut s = AddressSpace::new(&machine, config);
        s.map_region(BASE, PAGE_1G).unwrap();
        // Node 0's range is fragmented by the root table frame.
        let f = s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
        assert_eq!(f.mapping.size, PageSize::Size2M);
    }

    #[test]
    fn first_touch_places_locally() {
        let mut s = space_small_pages();
        s.map_region(BASE, 64 << 20).unwrap();
        let f0 = s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
        let f1 = s.fault(VirtAddr(BASE + PAGE_4K), NodeId(1)).unwrap();
        assert_eq!(f0.mapping.node, NodeId(0));
        assert_eq!(f1.mapping.node, NodeId(1));
    }

    #[test]
    fn migrate_moves_page_and_counts() {
        let mut s = space_small_pages();
        s.map_region(BASE, 4 << 20).unwrap();
        s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
        let (old, cost) = s.migrate(VirtAddr(BASE + 5), NodeId(1)).unwrap();
        assert_eq!(old.node, NodeId(0));
        assert!(cost > 0);
        let m = s.translate(VirtAddr(BASE)).unwrap();
        assert_eq!(m.node, NodeId(1));
        assert_eq!(s.stats().migrations_4k, 1);
        assert_eq!(s.stats().bytes_copied, PAGE_4K);
    }

    #[test]
    fn migrate_to_same_node_is_free() {
        let mut s = space_small_pages();
        s.map_region(BASE, 4 << 20).unwrap();
        s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
        let (_, cost) = s.migrate(VirtAddr(BASE), NodeId(0)).unwrap();
        assert_eq!(cost, 0);
        assert_eq!(s.stats().migrations_4k, 0);
    }

    #[test]
    fn split_then_migrate_subpage() {
        let mut s = space();
        s.map_region(BASE, 64 << 20).unwrap();
        s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
        let (old, _) = s.split(VirtAddr(BASE + 0x3000)).unwrap();
        assert_eq!(old.size, PageSize::Size2M);
        assert_eq!(s.stats().splits, 1);
        // Now one 4 KiB corner can move on its own.
        s.migrate(VirtAddr(BASE + 0x3000), NodeId(1)).unwrap();
        assert_eq!(
            s.translate(VirtAddr(BASE + 0x3000)).unwrap().node,
            NodeId(1)
        );
        assert_eq!(s.translate(VirtAddr(BASE)).unwrap().node, NodeId(0));
    }

    #[test]
    fn promotion_scan_collapses_full_runs() {
        let mut s = space_small_pages();
        s.map_region(BASE, 4 << 20).unwrap();
        for i in 0..512u64 {
            s.fault(VirtAddr(BASE + i * PAGE_4K), NodeId(1)).unwrap();
        }
        s.thp_mut().promote_2m = true;
        let (collapsed, cycles) = s.promotion_scan(16);
        assert_eq!(collapsed, vec![VirtAddr(BASE)]);
        assert!(cycles > 0);
        let m = s.translate(VirtAddr(BASE + 0x5000)).unwrap();
        assert_eq!(m.size, PageSize::Size2M);
        assert_eq!(m.node, NodeId(1), "majority node wins");
    }

    #[test]
    fn promotion_scan_skips_partial_runs() {
        let mut s = space_small_pages();
        s.map_region(BASE, 4 << 20).unwrap();
        for i in 0..100u64 {
            s.fault(VirtAddr(BASE + i * PAGE_4K), NodeId(0)).unwrap();
        }
        s.thp_mut().promote_2m = true;
        let (collapsed, _) = s.promotion_scan(16);
        assert!(collapsed.is_empty());
    }

    #[test]
    fn promotion_disabled_is_a_noop() {
        let mut s = space_small_pages();
        s.map_region(BASE, 4 << 20).unwrap();
        for i in 0..512u64 {
            s.fault(VirtAddr(BASE + i * PAGE_4K), NodeId(0)).unwrap();
        }
        let (collapsed, cycles) = s.promotion_scan(16);
        assert!(collapsed.is_empty());
        assert_eq!(cycles, 0);
    }

    #[test]
    fn regions_must_not_overlap() {
        let mut s = space();
        s.map_region(BASE, 1 << 30).unwrap();
        assert_eq!(s.map_region(BASE, 4096).unwrap_err(), SpaceError::BadRegion);
        assert_eq!(
            s.map_region(BASE + (1 << 30), 0).unwrap_err(),
            SpaceError::BadRegion
        );
        s.map_region(BASE + (1 << 30), 4096).unwrap();
    }

    /// A gate vetoing every huge allocation.
    struct DenyHuge;
    impl AllocGate for DenyHuge {
        fn allow_huge(&mut self, _: PageSize) -> bool {
            false
        }
    }

    #[test]
    fn gated_fault_falls_back_to_small_pages() {
        let mut s = space();
        s.map_region(BASE, 64 << 20).unwrap();
        let f = s
            .fault_gated(VirtAddr(BASE + 0x1234), NodeId(0), &mut DenyHuge)
            .unwrap();
        assert_eq!(f.mapping.size, PageSize::Size4K);
        assert_eq!(s.stats().faults_4k, 1);
        assert_eq!(s.stats().faults_2m, 0);
        // The default gate still installs huge pages.
        let f = s.fault(VirtAddr(BASE + PAGE_2M), NodeId(0)).unwrap();
        assert_eq!(f.mapping.size, PageSize::Size2M);
    }

    #[test]
    fn try_new_builds_working_spaces() {
        let machine = MachineSpec::test_machine();
        let mut s = AddressSpace::try_new(&machine, VmemConfig::default()).unwrap();
        s.map_region(BASE, 4 << 20).unwrap();
        s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
        s.validate().unwrap();
    }

    #[test]
    fn validate_accepts_a_well_exercised_space() {
        let mut s = space();
        s.map_region(BASE, 64 << 20).unwrap();
        s.validate().unwrap();
        // Fault a mix of sizes, split, migrate, collapse, replicate.
        s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
        s.fault(VirtAddr(BASE + PAGE_2M), NodeId(1)).unwrap();
        s.validate().unwrap();
        s.split(VirtAddr(BASE)).unwrap();
        s.validate().unwrap();
        s.migrate(VirtAddr(BASE + 0x3000), NodeId(1)).unwrap();
        s.validate().unwrap();
        s.replicate(VirtAddr(BASE + 0x3000), 2).unwrap();
        s.validate().unwrap();
        s.thp_mut().promote_2m = true;
        s.clear_promote_inhibitions();
        s.promotion_scan(16);
        s.validate().unwrap();
    }

    #[test]
    fn validate_catches_a_freed_mapped_frame() {
        let mut s = space_small_pages();
        s.map_region(BASE, 4 << 20).unwrap();
        let f = s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
        // Simulated corruption: free the frame while it stays mapped.
        s.free_frame(f.mapping.frame, PageSize::Size4K);
        assert!(matches!(s.validate().unwrap_err(), VmemError::Invariant(_)));
    }

    #[test]
    fn walk_cache_tracks_every_space_operation() {
        // End-to-end invalidation check at the AddressSpace level: fault,
        // split, migrate, replicate, promote — after each operation the
        // cached walk must equal the uncached one exactly.
        let mut s = space();
        s.map_region(BASE, 64 << 20).unwrap();
        let mut cache = WalkCache::new();
        let check = |s: &AddressSpace, cache: &mut WalkCache, vaddr: u64| {
            let plain = s.walk(VirtAddr(vaddr));
            let cached = s.walk_cached(VirtAddr(vaddr), cache);
            assert_eq!(plain.mapping, cached.mapping, "at {vaddr:#x}");
            assert_eq!(plain.steps().len(), cached.steps().len());
            for (a, b) in plain.steps().iter().zip(cached.steps()) {
                assert_eq!(a.pte_addr, b.pte_addr);
                assert_eq!(a.node, b.node);
            }
        };
        check(&s, &mut cache, BASE); // unmapped
        s.fault(VirtAddr(BASE), NodeId(0)).unwrap(); // 2M fault
        check(&s, &mut cache, BASE + 0x1000);
        s.split(VirtAddr(BASE)).unwrap();
        check(&s, &mut cache, BASE + 0x1000); // now a 4K child
        assert_eq!(
            s.walk_cached(VirtAddr(BASE + 0x1000), &mut cache)
                .mapping
                .unwrap()
                .size,
            PageSize::Size4K
        );
        s.migrate(VirtAddr(BASE + 0x1000), NodeId(1)).unwrap();
        check(&s, &mut cache, BASE + 0x1000);
        assert_eq!(
            s.walk_cached(VirtAddr(BASE + 0x1000), &mut cache)
                .mapping
                .unwrap()
                .node,
            NodeId(1)
        );
        // Replication never touches the page table: the cached walk keeps
        // returning the master mapping, and replica resolution downstream
        // substitutes the local copy.
        s.replicate(VirtAddr(BASE + 0x1000), 2).unwrap();
        check(&s, &mut cache, BASE + 0x1000);
        let master = s
            .walk_cached(VirtAddr(BASE + 0x1000), &mut cache)
            .mapping
            .unwrap();
        assert_eq!(master.node, NodeId(1));
        let local = s.resolve_replica(master, NodeId(0));
        assert_eq!(local.node, NodeId(0));
        // ...and a store's replica collapse keeps the cache coherent too.
        s.collapse_replicas(VirtAddr(BASE + 0x1000));
        check(&s, &mut cache, BASE + 0x1000);
        // Promotion (collapse back to 2M after re-enabling) invalidates.
        s.clear_promote_inhibitions();
        for i in 0..512u64 {
            let v = VirtAddr(BASE + i * PAGE_4K);
            if s.translate(v).is_none() {
                s.fault(v, NodeId(1)).unwrap();
            } else if s.translate(v).unwrap().node != NodeId(1) {
                s.migrate(v, NodeId(1)).unwrap();
            }
        }
        let (collapsed, _) = s.promotion_scan(64);
        assert_eq!(collapsed, vec![VirtAddr(BASE)]);
        check(&s, &mut cache, BASE + 0x1000);
        assert_eq!(
            s.walk_cached(VirtAddr(BASE + 0x1000), &mut cache)
                .mapping
                .unwrap()
                .size,
            PageSize::Size2M
        );
        s.validate().unwrap();
    }

    #[test]
    fn replicate_tables_localizes_every_walk_step() {
        let mut s = space_small_pages();
        s.map_region(BASE, 4 << 20).unwrap();
        for i in 0..16u64 {
            s.fault(VirtAddr(BASE + i * PAGE_4K), NodeId(0)).unwrap();
        }
        let (created, cost) = s.replicate_tables(2);
        assert!(created > 0);
        assert!(cost > 0);
        assert!(s.has_table_replicas());
        s.validate().unwrap();
        // Every step of a node-1 walk now resolves to a node-1 frame.
        let w = s.walk(VirtAddr(BASE));
        for step in w.steps() {
            let local = s.resolve_table_step(*step, NodeId(1));
            assert_eq!(local.node, NodeId(1), "step {:?} stayed remote", step);
            // ...while the primary keeps answering for its own node.
            let home = s.resolve_table_step(*step, step.node);
            assert_eq!(home.pte_addr, step.pte_addr);
        }
        // Idempotent: a second sweep creates nothing new.
        let (again, _) = s.replicate_tables(2);
        assert_eq!(again, 0);
    }

    #[test]
    fn eager_replication_covers_tables_created_by_later_faults() {
        let mut s = space_small_pages();
        s.map_region(BASE, 64 << 20).unwrap();
        s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
        let plain_fault = s.fault(VirtAddr(BASE + PAGE_4K), NodeId(0)).unwrap();
        s.replicate_tables(2);
        // A fault in a fresh 2 MiB region creates a new PT — it must be
        // replicated too, and the fault pays for it (replica copy + PTE
        // write fanout), so it costs more than a plain fault.
        let far = BASE + 8 * PAGE_2M;
        let f = s.fault(VirtAddr(far), NodeId(0)).unwrap();
        assert!(f.cycles > plain_fault.cycles);
        s.validate().unwrap();
        let w = s.walk(VirtAddr(far));
        let last = *w.steps().last().unwrap();
        assert_eq!(
            s.resolve_table_step(last, NodeId(1)).node,
            NodeId(1),
            "the PT created after the sweep is replicated"
        );
    }

    #[test]
    fn collapse_tears_down_the_retired_tables_replicas() {
        let mut s = space_small_pages();
        s.map_region(BASE, 4 << 20).unwrap();
        for i in 0..512u64 {
            s.fault(VirtAddr(BASE + i * PAGE_4K), NodeId(1)).unwrap();
        }
        s.replicate_tables(2);
        let before = s.replicated_table_frames();
        s.thp_mut().promote_2m = true;
        let (collapsed, _) = s.promotion_scan(16);
        assert_eq!(collapsed, vec![VirtAddr(BASE)]);
        assert_eq!(
            s.replicated_table_frames(),
            before - 1,
            "the retired PT's replica set must die with it"
        );
        s.validate().unwrap();
    }

    #[test]
    fn migrate_table_moves_the_pt_without_touching_leaves() {
        let mut s = space_small_pages();
        s.map_region(BASE, 4 << 20).unwrap();
        for i in 0..8u64 {
            s.fault(VirtAddr(BASE + i * PAGE_4K), NodeId(0)).unwrap();
        }
        let leaves_before = s.leaves();
        let home_before = *s.walk(VirtAddr(BASE)).steps().last().unwrap();
        assert_eq!(home_before.node, NodeId(0));
        let (moved, cost) = s.migrate_table(VirtAddr(BASE), NodeId(1)).unwrap();
        assert_eq!(moved, Some(NodeId(0)));
        assert!(cost > 0);
        let home_after = *s.walk(VirtAddr(BASE)).steps().last().unwrap();
        assert_eq!(home_after.node, NodeId(1));
        assert_eq!(s.leaves(), leaves_before, "translations unchanged");
        assert_eq!(s.stats().table_migrations, 1);
        s.validate().unwrap();
        // Already home: free no-op.
        let (moved, cost) = s.migrate_table(VirtAddr(BASE), NodeId(1)).unwrap();
        assert_eq!(moved, None);
        assert_eq!(cost, 0);
    }

    #[test]
    fn majority_node_prefers_most_frequent() {
        let nodes = [NodeId(1), NodeId(0), NodeId(1)];
        assert_eq!(majority_node(&nodes), NodeId(1));
        // Ties go to the lowest id.
        let tie = [NodeId(1), NodeId(0)];
        assert_eq!(majority_node(&tie), NodeId(0));
    }
}
