//! The crate-wide typed error.
//!
//! The layer-local errors ([`FrameError`], [`SpaceError`], [`TableError`])
//! stay on their fast paths; [`VmemError`] unifies them for callers that
//! cross layers — fallible constructors and the [`crate::AddressSpace::validate`]
//! invariant walker.

use crate::frame::FrameError;
use crate::space::SpaceError;
use crate::table::TableError;
use std::fmt;

/// Unified error of the virtual-memory subsystem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmemError {
    /// The machine spec describes zero NUMA nodes.
    NoNodes,
    /// Physical frame allocation failed.
    Frame(FrameError),
    /// An address-space operation failed.
    Space(SpaceError),
    /// A page-table structural operation failed.
    Table(TableError),
    /// An internal structural invariant does not hold; the message pins
    /// down which one (see [`crate::AddressSpace::validate`]).
    Invariant(String),
}

impl fmt::Display for VmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmemError::NoNodes => write!(f, "machine has no NUMA nodes"),
            VmemError::Frame(e) => write!(f, "{e}"),
            VmemError::Space(e) => write!(f, "{e}"),
            VmemError::Table(e) => write!(f, "{e}"),
            VmemError::Invariant(msg) => write!(f, "vmem invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for VmemError {}

impl From<FrameError> for VmemError {
    fn from(e: FrameError) -> Self {
        VmemError::Frame(e)
    }
}

impl From<SpaceError> for VmemError {
    fn from(e: SpaceError) -> Self {
        VmemError::Space(e)
    }
}

impl From<TableError> for VmemError {
    fn from(e: TableError) -> Self {
        VmemError::Table(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::NodeId;

    #[test]
    fn displays_are_specific() {
        let e = VmemError::NoNodes;
        assert!(e.to_string().contains("no NUMA nodes"));
        let e = VmemError::Frame(FrameError::OutOfMemory { node: NodeId(1) });
        assert!(e.to_string().contains("out of physical memory"));
        let e = VmemError::Invariant("free list overlaps leaf".into());
        assert!(e.to_string().contains("free list overlaps leaf"));
    }

    #[test]
    fn conversions_preserve_the_cause() {
        let e: VmemError = FrameError::OutOfMemoryEverywhere.into();
        assert_eq!(e, VmemError::Frame(FrameError::OutOfMemoryEverywhere));
        let e: VmemError = SpaceError::NoRegion.into();
        assert_eq!(e, VmemError::Space(SpaceError::NoRegion));
        let e: VmemError = TableError::AlreadyMapped.into();
        assert_eq!(e, VmemError::Table(TableError::AlreadyMapped));
    }
}
