//! A fast, deterministic hasher for simulation-internal maps.
//!
//! The std `HashMap` default (SipHash) is keyed and DoS-resistant, which the
//! simulator does not need: every map here is keyed by addresses the
//! simulation itself generates. The hot path pays for a page-stats insert on
//! every access and a walk-cache probe on every TLB miss, so those maps use
//! this multiply-xor hasher (FxHash-style) instead.
//!
//! Determinism note: swapping the hasher changes only bucket order. Every
//! consumer either probes by key or sorts before exposing contents, so
//! simulation results are unaffected.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher over the written words (FxHash-style).
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher(u64);

/// The odd multiplier FxHash uses for 64-bit words (derived from the golden
/// ratio, like splitmix64's increment).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Fold the high half down: a single multiply leaves the low bits of
        // an aligned key's hash constant (a 4 KiB-aligned key hashes to
        // `(k * SEED) << 12`), and hashbrown picks buckets from the LOW
        // bits — without this fold every page-base key lands in 1/4096th
        // of the table and chains pathologically.
        self.0 ^ (self.0 >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `HashMap` with the fast deterministic hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 4096, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 4096)), Some(&i));
        }
    }

    #[test]
    fn hashes_differ_on_nearby_keys() {
        use std::hash::BuildHasher;
        let b: BuildHasherDefault<FastHasher> = BuildHasherDefault::default();
        let h1 = b.hash_one(0x1000u64);
        let h2 = b.hash_one(0x2000u64);
        assert_ne!(h1, h2);
    }

    #[test]
    fn byte_writes_match_padded_words() {
        // Sanity: the generic `write` path is self-consistent for partial
        // words (it zero-pads the tail).
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FastHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
        assert_eq!(a.finish(), b.finish());
    }
}
