//! Integration tests of the virtual-memory subsystem: multi-step scenarios
//! spanning the allocator, page table, THP engine and cost model.

use numa_topology::{Interconnect, MachineSpec, NodeId};
use vmem::{
    AddressSpace, PageSize, SpaceError, ThpControls, VirtAddr, VmemConfig, PAGE_2M, PAGE_4K,
};

const BASE: u64 = 64 << 30;

fn machine() -> MachineSpec {
    MachineSpec::homogeneous("vm-int", 2.0, 2, 2, 4 << 30, Interconnect::full_mesh(2))
}

fn space_with(thp: ThpControls) -> AddressSpace {
    let config = VmemConfig {
        thp,
        ..VmemConfig::default()
    };
    AddressSpace::new(&machine(), config)
}

#[test]
fn full_lifecycle_huge_page() {
    // fault(2M) -> split -> migrate sub-pages -> collapse back.
    let mut s = space_with(ThpControls::thp());
    s.map_region(BASE, 4 << 20).unwrap();
    let f = s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
    assert_eq!(f.mapping.size, PageSize::Size2M);

    s.split(VirtAddr(BASE + 0x1000)).unwrap();
    for i in 0..512u64 {
        if i % 2 == 0 {
            s.migrate(VirtAddr(BASE + i * PAGE_4K), NodeId(1)).unwrap();
        }
    }
    // Half the pages moved; the range is still fully mapped and consistent.
    for i in 0..512u64 {
        let m = s.translate(VirtAddr(BASE + i * PAGE_4K)).unwrap();
        assert_eq!(m.size, PageSize::Size4K);
        let expected = if i % 2 == 0 { NodeId(1) } else { NodeId(0) };
        assert_eq!(m.node, expected);
    }

    // Collapse back onto node 1.
    let cost = s.collapse(VirtAddr(BASE), NodeId(1)).unwrap();
    assert!(cost > 0);
    let m = s.translate(VirtAddr(BASE + 0x5000)).unwrap();
    assert_eq!(m.size, PageSize::Size2M);
    assert_eq!(m.node, NodeId(1));
}

#[test]
fn policy_split_inhibits_promotion_until_reenabled() {
    let mut s = space_with(ThpControls::thp());
    s.map_region(BASE, 4 << 20).unwrap();
    s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
    s.split(VirtAddr(BASE)).unwrap();

    // khugepaged must skip the deliberately split range...
    s.thp_mut().promote_2m = true;
    let (collapsed, _) = s.promotion_scan(64);
    assert!(collapsed.is_empty(), "inhibited range was re-collapsed");

    // ...until promotion is explicitly re-enabled.
    s.clear_promote_inhibitions();
    let (collapsed, _) = s.promotion_scan(64);
    assert_eq!(collapsed, vec![VirtAddr(BASE)]);
}

#[test]
fn giant_page_tail_exemption_only_applies_to_giants() {
    // A 16 MiB region gets a 1 GiB page under the libhugetlbfs model...
    let mut s = space_with(ThpControls::giant());
    s.map_region(BASE, 16 << 20).unwrap();
    let f = s.fault(VirtAddr(BASE + 0x4000), NodeId(1)).unwrap();
    assert_eq!(f.mapping.size, PageSize::Size1G);
    assert_eq!(f.mapping.vbase, VirtAddr(BASE));

    // ...but a 1 MiB region must not get a 2 MiB page under THP.
    let mut s = space_with(ThpControls::thp());
    s.map_region(BASE, 1 << 20).unwrap();
    let f = s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
    assert_eq!(f.mapping.size, PageSize::Size4K);
}

#[test]
fn giant_page_split_yields_huge_pages() {
    let mut s = space_with(ThpControls::giant());
    s.map_region(BASE, 64 << 20).unwrap();
    s.fault(VirtAddr(BASE), NodeId(1)).unwrap();
    let (old, _) = s.split(VirtAddr(BASE + (5 << 21))).unwrap();
    assert_eq!(old.size, PageSize::Size1G);
    let m = s.translate(VirtAddr(BASE + (5 << 21))).unwrap();
    assert_eq!(m.size, PageSize::Size2M);
    // Huge children can split further, down to base pages.
    s.split(VirtAddr(BASE + (5 << 21))).unwrap();
    let m = s.translate(VirtAddr(BASE + (5 << 21) + 0x3000)).unwrap();
    assert_eq!(m.size, PageSize::Size4K);
}

#[test]
fn giant_faults_skip_the_zeroing_charge() {
    let machine = machine();
    let giant_cfg = VmemConfig {
        thp: ThpControls::giant(),
        ..VmemConfig::default()
    };
    let mut s = AddressSpace::new(&machine, giant_cfg);
    s.map_region(BASE, 32 << 20).unwrap();
    let giant = s.fault(VirtAddr(BASE), NodeId(1)).unwrap();

    let huge_cfg = VmemConfig::default();
    let mut s2 = AddressSpace::new(&machine, huge_cfg);
    s2.map_region(BASE, 32 << 20).unwrap();
    let huge = s2.fault(VirtAddr(BASE), NodeId(1)).unwrap();

    // A pool-backed 1 GiB fault is *cheaper* than a zeroed 2 MiB fault.
    assert!(
        giant.cycles < huge.cycles,
        "giant {} vs huge {}",
        giant.cycles,
        huge.cycles
    );
}

#[test]
fn migrate_fails_cleanly_when_target_is_full() {
    let mut s = space_with(ThpControls::small_only());
    s.map_region(BASE, 4 << 20).unwrap();
    s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
    // Exhaust node 1 entirely.
    let mut eaten = Vec::new();
    loop {
        match s.fault(
            VirtAddr(BASE + PAGE_4K * (1 + eaten.len() as u64)),
            NodeId(1),
        ) {
            Ok(f) if f.mapping.node == NodeId(1) => eaten.push(f),
            _ => break,
        }
        if eaten.len() > 1024 {
            break; // enough: node 1 still has room, claim below will differ
        }
    }
    // Direct probe: a migration to a full node returns an error and the
    // page stays put (tested via the tiny 1 GiB test machine elsewhere;
    // here we just assert the call is total).
    let before = s.translate(VirtAddr(BASE)).unwrap();
    match s.migrate(VirtAddr(BASE), NodeId(1)) {
        Ok((_, _)) => {
            let after = s.translate(VirtAddr(BASE)).unwrap();
            assert_eq!(after.node, NodeId(1));
        }
        Err(SpaceError::Frame(_)) => {
            let after = s.translate(VirtAddr(BASE)).unwrap();
            assert_eq!(after.node, before.node, "failed migration must not move");
        }
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn promotion_scan_makes_progress_across_calls() {
    let mut s = space_with(ThpControls::small_only());
    s.map_region(BASE, 8 << 20).unwrap();
    // Fully populate four 2 MiB ranges with small pages.
    for i in 0..4 * 512u64 {
        s.fault(VirtAddr(BASE + i * PAGE_4K), NodeId(0)).unwrap();
    }
    s.thp_mut().promote_2m = true;
    // With a scan budget of 2 candidates per call, four calls are enough.
    let mut total = 0;
    for _ in 0..4 {
        let (collapsed, _) = s.promotion_scan(2);
        total += collapsed.len();
    }
    assert_eq!(total, 4, "cursor-based scanning must cover all candidates");
    for k in 0..4u64 {
        let m = s.translate(VirtAddr(BASE + k * PAGE_2M)).unwrap();
        assert_eq!(m.size, PageSize::Size2M);
    }
}

#[test]
fn table_memory_shrinks_on_collapse_and_grows_on_split() {
    let mut s = space_with(ThpControls::thp());
    s.map_region(BASE, 4 << 20).unwrap();
    s.fault(VirtAddr(BASE), NodeId(0)).unwrap();
    let before = s.table_bytes();
    s.split(VirtAddr(BASE)).unwrap();
    assert_eq!(s.table_bytes(), before + PAGE_4K, "split adds one PT node");
    s.collapse(VirtAddr(BASE), NodeId(0)).unwrap();
    assert_eq!(s.table_bytes(), before, "collapse retires the PT node");
}

#[test]
fn fault_statistics_partition_by_size() {
    let mut s = space_with(ThpControls::thp());
    s.map_region(BASE, 4 << 20).unwrap();
    s.fault(VirtAddr(BASE), NodeId(0)).unwrap(); // 2M
    let mut s2 = space_with(ThpControls::small_only());
    s2.map_region(BASE, 4 << 20).unwrap();
    s2.fault(VirtAddr(BASE), NodeId(0)).unwrap(); // 4K
    assert_eq!(s.stats().faults_2m, 1);
    assert_eq!(s.stats().faults_4k, 0);
    assert_eq!(s2.stats().faults_2m, 0);
    assert_eq!(s2.stats().faults_4k, 1);
}

#[test]
fn huge_fault_falls_back_over_partially_populated_range() {
    // A small page in the middle of a 2 MiB range (not at the probe
    // points) must not panic the huge-page fault path — it falls back to
    // 4 KiB (found by review: the three-point probe is only a heuristic).
    let mut s = space_with(ThpControls::small_only());
    s.map_region(BASE, 4 << 20).unwrap();
    // Map one page mid-range while THP is off.
    s.fault(VirtAddr(BASE + 0x40_000), NodeId(0)).unwrap();
    // Re-enable THP and fault elsewhere in the same range.
    s.thp_mut().alloc_2m = true;
    let f = s.fault(VirtAddr(BASE + 0x80_000), NodeId(0)).unwrap();
    assert_eq!(f.mapping.size, PageSize::Size4K, "fell back cleanly");
}

#[test]
fn collapse_releases_child_replicas() {
    // Review finding: khugepaged collapse of a range containing a
    // replicated child must free the replicas, or they leak and resurface
    // stale after a later split.
    let mut s = space_with(ThpControls::small_only());
    s.map_region(BASE, 4 << 20).unwrap();
    for i in 0..512u64 {
        s.fault(VirtAddr(BASE + i * PAGE_4K), NodeId(0)).unwrap();
    }
    s.replicate(VirtAddr(BASE + 7 * PAGE_4K), 2).unwrap();
    assert_eq!(s.replicated_pages(), 1);
    s.thp_mut().promote_2m = true;
    let (collapsed, _) = s.promotion_scan(8);
    assert_eq!(collapsed.len(), 1);
    assert_eq!(s.replicated_pages(), 0, "replicas must die with the child");
}
