//! Carrefour-LP: Algorithm 1 of the paper.

use crate::classic::Carrefour;
use crate::config::{CarrefourConfig, LpParams, LpThresholds, RobustnessConfig};
use crate::lar;
use crate::robust::{CircuitBreaker, RetryQueue};
use engine::{EpochCtx, NumaPolicy, PolicyAction, PolicyDecision, PolicyIntrospection};
use profiling::IbsSample;
use std::collections::{BTreeMap, BTreeSet};
use vmem::PageSize;

/// Which Algorithm 1 components are active (Figure 4's ablation axes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Components {
    conservative: bool,
    reactive: bool,
}

/// The large-page extension of Carrefour (Algorithm 1).
///
/// Per epoch:
///
/// 1. **Conservative** (lines 4–9): re-enable 2 MiB allocation (and
///    promotion) when walk misses or page-fault time show large pages
///    would pay off.
/// 2. **Reactive** (lines 10–18): estimate the LAR Carrefour could reach
///    with and without splitting; when only splitting helps, split every
///    shared 2 MiB page and disable 2 MiB allocation.
/// 3. **Hot pages** (line 19): split pages hotter than 6 % of sampled
///    traffic and interleave their sub-pages.
/// 4. **Carrefour** (line 20): the baseline migrate/interleave pass.
pub struct CarrefourLp {
    carrefour: Carrefour,
    thresholds: LpThresholds,
    components: Components,
    /// Algorithm 1's sticky `SPLIT_PAGES` flag.
    split_pages: bool,
    /// Every 2 MiB base this policy has ever split. A page is split at most
    /// once: if the conservative component later re-enables promotion and
    /// khugepaged re-collapses it (onto its majority node — i.e. placed),
    /// re-splitting it would only start an oscillation.
    split_history: std::collections::BTreeSet<u64>,
    /// Bounded-backoff retry queue over the engine's failure feedback.
    /// Dormant on fault-free runs (the feedback is always empty there).
    retry: RetryQueue,
    /// Disables splitting when most split attempts bounce.
    split_breaker: CircuitBreaker,
    /// Disables the Carrefour placement pass when most moves bounce.
    move_breaker: CircuitBreaker,
    /// `false` in the `carrefour-lp-noretry` ablation: failures are
    /// observed (breakers still work) but never re-issued.
    retry_enabled: bool,
    /// Moves/splits issued last epoch, denominators for the breakers.
    issued_moves: u64,
    issued_splits: u64,
    name: &'static str,
}

impl CarrefourLp {
    /// Splits a huge page and scatters its sub-pages across the nodes (one
    /// batched kernel operation); private sub-pages are re-localized later
    /// when samples identify their owners.
    fn split_and_scatter(&mut self, ctx: &mut EpochCtx<'_>, base: u64) {
        ctx.split_scatter(base);
        for i in 0..512u64 {
            self.carrefour.mark_interleaved(base + i * 4096);
        }
    }

    /// Full Carrefour-LP (both components).
    pub fn new() -> Self {
        let robustness = RobustnessConfig::default();
        CarrefourLp {
            carrefour: Carrefour::new(),
            thresholds: LpThresholds::default(),
            components: Components {
                conservative: true,
                reactive: true,
            },
            split_pages: false,
            split_history: std::collections::BTreeSet::new(),
            retry: RetryQueue::new(robustness),
            split_breaker: CircuitBreaker::new(robustness),
            move_breaker: CircuitBreaker::new(robustness),
            retry_enabled: true,
            issued_moves: 0,
            issued_splits: 0,
            name: "carrefour-lp",
        }
    }

    /// The retry-free ablation for the `chaos` experiment: failures are
    /// still observed (the breakers work) but never re-issued, so every
    /// bounced migration or split is placement work permanently lost.
    pub fn without_retries() -> Self {
        CarrefourLp {
            retry_enabled: false,
            name: "carrefour-lp-noretry",
            ..CarrefourLp::new()
        }
    }

    /// Overrides the failure-handling tunables.
    pub fn with_robustness(mut self, cfg: RobustnessConfig) -> Self {
        self.retry = RetryQueue::new(cfg);
        self.split_breaker = CircuitBreaker::new(cfg);
        self.move_breaker = CircuitBreaker::new(cfg);
        self
    }

    /// Actions abandoned after exhausting their retry budget (for tests
    /// and experiment reporting).
    pub fn abandoned_actions(&self) -> u64 {
        self.retry.abandoned
    }

    /// Lifetime trip counts of the (split, move) circuit breakers.
    pub fn breaker_trips(&self) -> (u64, u64) {
        (self.split_breaker.trips, self.move_breaker.trips)
    }

    /// The reactive-only ablation of Figure 4 (run it with THP initially
    /// enabled, like the paper).
    pub fn reactive_only() -> Self {
        CarrefourLp {
            components: Components {
                conservative: false,
                reactive: true,
            },
            name: "reactive",
            ..CarrefourLp::new()
        }
    }

    /// The conservative-only ablation of Figure 4 (run it with THP
    /// initially *disabled*: it is the original 4 KiB Carrefour plus the
    /// component that turns large pages on when they would help).
    pub fn conservative_only() -> Self {
        CarrefourLp {
            components: Components {
                conservative: true,
                reactive: false,
            },
            name: "conservative",
            ..CarrefourLp::new()
        }
    }

    /// Overrides the Algorithm 1 thresholds (ablation benches).
    pub fn with_thresholds(mut self, thresholds: LpThresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Full Carrefour-LP under one [`LpParams`] coordinate — the sweep's
    /// constructor. `LpParams::default()` reproduces [`CarrefourLp::new`]
    /// exactly (same thresholds, same embedded-Carrefour seed), so a
    /// default-parameterized cell is bit-identical to the stock policy.
    pub fn with_params(params: LpParams) -> Self {
        CarrefourLp::new()
            .with_thresholds(params.thresholds)
            .with_carrefour(params.carrefour, crate::classic::DEFAULT_SEED)
            .with_robustness(params.robustness)
    }

    /// Renames the policy (the tuned preset reports itself distinctly in
    /// traces and experiment output).
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Overrides the embedded Carrefour configuration and seed.
    pub fn with_carrefour(mut self, cfg: CarrefourConfig, seed: u64) -> Self {
        self.carrefour = Carrefour::with_config(cfg, seed);
        self
    }

    /// Current value of the sticky `SPLIT_PAGES` flag (for tests).
    pub fn split_flag(&self) -> bool {
        self.split_pages
    }

    /// The effective 2 MiB-allocation switch after this epoch's queued
    /// toggles are applied on top of the current state.
    fn effective_alloc_2m(ctx: &EpochCtx<'_>) -> bool {
        let mut on = ctx.thp.alloc_2m;
        for a in ctx.queued() {
            if let PolicyAction::SetThpAlloc(b) = a {
                on = *b;
            }
        }
        on
    }
}

impl Default for CarrefourLp {
    fn default() -> Self {
        CarrefourLp::new()
    }
}

/// Groups one epoch's DRAM samples by page at current mapped granularity.
/// Returns `(page, size, accessing-node set size, sample count, sampled 4 KiB
/// sub-pages)` keyed by page base.
struct LargePageView {
    size: PageSize,
    nodes: BTreeSet<u16>,
    count: u32,
    subpages: BTreeSet<u64>,
}

fn group_large_pages(samples: &[IbsSample]) -> BTreeMap<u64, LargePageView> {
    let mut pages: BTreeMap<u64, LargePageView> = BTreeMap::new();
    for s in samples {
        if !s.from_dram {
            continue;
        }
        let entry = pages.entry(s.page_base()).or_insert_with(|| LargePageView {
            size: s.page_size,
            nodes: BTreeSet::new(),
            count: 0,
            subpages: BTreeSet::new(),
        });
        entry.nodes.insert(s.accessing_node.0);
        entry.count += 1;
        entry.subpages.insert(s.page_4k());
    }
    pages
}

impl NumaPolicy for CarrefourLp {
    fn name(&self) -> &str {
        self.name
    }

    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
        let t = self.thresholds;
        let epoch = ctx.epoch_index;

        // --- Failure handling (inert on fault-free runs: the feedback is
        // empty, the queue stays empty, and closed breakers gate nothing).
        let failed = ctx.failed();
        let failed_splits = failed
            .iter()
            .filter(|f| {
                matches!(
                    f.action,
                    PolicyAction::Split(_) | PolicyAction::SplitScatter(_)
                )
            })
            .count() as u64;
        let failed_moves = failed
            .iter()
            .filter(|f| {
                matches!(
                    f.action,
                    PolicyAction::Migrate(_, _) | PolicyAction::Replicate(_)
                )
            })
            .count() as u64;
        let trips_before = (self.split_breaker.trips, self.move_breaker.trips);
        self.split_breaker
            .observe(epoch, self.issued_splits, failed_splits);
        self.move_breaker
            .observe(epoch, self.issued_moves, failed_moves);
        if self.split_breaker.trips > trips_before.0 {
            ctx.note(|| PolicyDecision::BreakerTrip { breaker: "split" });
        }
        if self.move_breaker.trips > trips_before.1 {
            ctx.note(|| PolicyDecision::BreakerTrip { breaker: "move" });
        }
        if self.retry_enabled {
            self.retry.absorb_failures(epoch, failed);
            let due = self.retry.due(epoch);
            ctx.record_retries(due.len() as u64);
            for a in due {
                ctx.push(a);
            }
        }
        let split_open = self.split_breaker.is_open(epoch);
        let move_open = self.move_breaker.is_open(epoch);

        // --- Conservative component (Algorithm 1, lines 4–9). ---
        if self.components.conservative {
            let walk_miss_fraction = ctx.counters.walk_miss_fraction();
            let max_fault_fraction = ctx.counters.max_fault_fraction();
            if walk_miss_fraction > t.walk_miss_enable {
                ctx.set_thp_alloc(true);
                ctx.set_thp_promote(true);
                ctx.note(|| PolicyDecision::EnableThp {
                    walk_miss_fraction,
                    max_fault_fraction,
                    promote: true,
                });
            } else if max_fault_fraction > t.fault_time_enable {
                // Allocation only: pages that already faulted cheaply have
                // nothing to gain from promotion.
                ctx.set_thp_alloc(true);
                ctx.note(|| PolicyDecision::EnableThp {
                    walk_miss_fraction,
                    max_fault_fraction,
                    promote: false,
                });
            }
        }

        let mut split_pending: BTreeSet<u64> = BTreeSet::new();
        let mut hot_excluded: BTreeSet<u64> = BTreeSet::new();

        // --- Reactive component (lines 10–18). ---
        if self.components.reactive {
            let est = lar::estimate(ctx.samples, ctx.machine.num_nodes());
            if est.dram_samples > 0 {
                let was = self.split_pages;
                if est.carrefour_gain_pp() > t.carrefour_gain_pp {
                    self.split_pages = false;
                } else if est.split_gain_pp() > t.split_gain_pp {
                    self.split_pages = true;
                }
                if self.split_pages != was {
                    let on = self.split_pages;
                    ctx.note(|| PolicyDecision::SplitFlag {
                        on,
                        carrefour_gain_pp: est.carrefour_gain_pp(),
                        split_gain_pp: est.split_gain_pp(),
                    });
                }
            }

            let pages = group_large_pages(ctx.samples);
            let total: u32 = pages.values().map(|p| p.count).sum();

            if (self.split_pages || !Self::effective_alloc_2m(ctx)) && !split_open {
                // Line 16: split all *shared* large pages (each at most
                // once — see `split_history`).
                for (&base, view) in &pages {
                    if view.size != PageSize::Size4K
                        && view.nodes.len() >= 2
                        && !self.split_history.contains(&base)
                    {
                        split_pending.insert(base);
                        self.split_history.insert(base);
                        self.carrefour.forget(base);
                        self.split_and_scatter(ctx, base);
                        let sharers = view.nodes.len();
                        ctx.note(|| PolicyDecision::SplitShared { base, sharers });
                    }
                }
                // Line 17: stop creating new large pages.
                ctx.set_thp_alloc(false);
                ctx.set_thp_promote(false);
            }

            // Line 19: split and interleave hot large pages. Hot pages only
            // hurt through the imbalance they cause (they cannot be
            // rebalanced by migration), so the pass engages when the
            // controllers actually are imbalanced — otherwise a workload
            // with few sampled pages would see every page as "hot" and
            // needlessly lose its large pages.
            let imbalanced =
                ctx.counters.imbalance() > self.carrefour.config().imbalance_enable_above;
            let min_hot_samples = (self.carrefour.config().min_samples_per_page * 4) as u32;
            for (&base, view) in &pages {
                if imbalanced
                    && !split_open
                    && view.size != PageSize::Size4K
                    && view.count >= min_hot_samples
                    && f64::from(view.count) > t.hot_page_fraction * f64::from(total)
                {
                    if !split_pending.contains(&base) && !self.split_history.contains(&base) {
                        split_pending.insert(base);
                        self.split_history.insert(base);
                        self.carrefour.forget(base);
                        self.split_and_scatter(ctx, base);
                        let (samples, imbalance) = (view.count, ctx.counters.imbalance());
                        ctx.note(|| PolicyDecision::SplitHot {
                            base,
                            samples,
                            total,
                            imbalance,
                        });
                    }
                    for &sub in &view.subpages {
                        hot_excluded.insert(sub);
                    }
                    // The huge page itself must not be re-placed wholesale.
                    hot_excluded.insert(base);
                }
            }
        }

        // --- Line 20: interleave and migrate with Carrefour. ---
        if !move_open && self.carrefour.engaged(ctx.counters) {
            self.carrefour
                .placement_pass(ctx, &split_pending, &self.split_history, &hot_excluded);
        }

        // Remember what was issued: next epoch's failure report is scored
        // against these denominators by the breakers.
        self.issued_moves = 0;
        self.issued_splits = 0;
        for a in ctx.queued() {
            match a {
                PolicyAction::Migrate(_, _) | PolicyAction::Replicate(_) => self.issued_moves += 1,
                PolicyAction::Split(_) | PolicyAction::SplitScatter(_) => self.issued_splits += 1,
                _ => {}
            }
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut e = codec::Enc::new();
        self.carrefour.save_into(&mut e);
        e.bool(self.split_pages);
        e.seq(self.split_history.iter(), |e, &p| e.u64(p));
        self.retry.save_into(&mut e);
        self.split_breaker.save_into(&mut e);
        self.move_breaker.save_into(&mut e);
        e.u64(self.issued_moves);
        e.u64(self.issued_splits);
        e.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) {
        let mut d = codec::Dec::new(bytes);
        self.carrefour.load_from(&mut d);
        self.split_pages = d.bool();
        self.split_history = d.seq(|d| d.u64()).into_iter().collect();
        self.retry.load_from(&mut d);
        self.split_breaker.load_from(&mut d);
        self.move_breaker.load_from(&mut d);
        self.issued_moves = d.u64();
        self.issued_splits = d.u64();
        d.finish();
    }

    fn introspect(&self, epoch: u32) -> Option<PolicyIntrospection> {
        Some(PolicyIntrospection {
            retry_queue_depth: self.retry.len(),
            retries_abandoned: self.retry.abandoned,
            split_breaker_open: self.split_breaker.is_open(epoch),
            move_breaker_open: self.move_breaker.is_open(epoch),
            split_breaker_trips: self.split_breaker.trips,
            move_breaker_trips: self.move_breaker.trips,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::{MachineSpec, NodeId};
    use profiling::{CoreFaultTime, EpochCounters};
    use vmem::{ThpControls, VirtAddr};

    fn sample(vaddr: u64, accessing: u16, home: u16, size: PageSize) -> IbsSample {
        IbsSample {
            vaddr: VirtAddr(vaddr),
            accessing_node: NodeId(accessing),
            thread: accessing,
            home_node: NodeId(home),
            from_dram: true,
            is_store: false,
            page_size: size,
            walk_remote_steps: 0,
        }
    }

    fn quiet_counters() -> EpochCounters {
        EpochCounters {
            epoch_cycles: 1_000_000,
            l2_misses: 1000,
            l2_walk_misses: 0,
            dram_local: 900,
            dram_remote: 100,
            mem_ops: 10_000,
            ..EpochCounters::default()
        }
    }

    fn ctx_with<'a>(
        machine: &'a MachineSpec,
        counters: &'a EpochCounters,
        samples: &'a [IbsSample],
        thp: ThpControls,
    ) -> EpochCtx<'a> {
        EpochCtx::new(machine, counters, samples, thp, 0)
    }

    #[test]
    fn conservative_enables_thp_on_walk_misses() {
        let machine = MachineSpec::machine_a();
        let mut counters = quiet_counters();
        counters.l2_walk_misses = 200; // 20 % of misses
        let mut ctx = ctx_with(&machine, &counters, &[], ThpControls::small_only());
        CarrefourLp::conservative_only().on_epoch(&mut ctx);
        let actions = ctx.take_actions();
        assert!(actions.contains(&PolicyAction::SetThpAlloc(true)));
        assert!(actions.contains(&PolicyAction::SetThpPromote(true)));
    }

    #[test]
    fn conservative_enables_alloc_only_on_fault_time() {
        let machine = MachineSpec::machine_a();
        let mut counters = quiet_counters();
        counters.fault_time = vec![CoreFaultTime {
            fault_cycles: 100_000, // 10 % of the epoch
        }];
        let mut ctx = ctx_with(&machine, &counters, &[], ThpControls::small_only());
        CarrefourLp::conservative_only().on_epoch(&mut ctx);
        let actions = ctx.take_actions();
        assert!(actions.contains(&PolicyAction::SetThpAlloc(true)));
        assert!(!actions.contains(&PolicyAction::SetThpPromote(true)));
    }

    #[test]
    fn conservative_stays_quiet_below_thresholds() {
        let machine = MachineSpec::machine_a();
        let counters = quiet_counters();
        let mut ctx = ctx_with(&machine, &counters, &[], ThpControls::small_only());
        CarrefourLp::conservative_only().on_epoch(&mut ctx);
        assert!(ctx.take_actions().is_empty());
    }

    /// UA-shaped samples: a huge page whose sub-pages are private per node.
    fn falsely_shared_samples() -> Vec<IbsSample> {
        let mut s = Vec::new();
        for i in 0..8u64 {
            let node = (i % 4) as u16;
            for k in 0..4 {
                s.push(sample(
                    0x20_0000 + i * 4096 + k * 64,
                    node,
                    0,
                    PageSize::Size2M,
                ));
            }
        }
        s
    }

    #[test]
    fn reactive_splits_falsely_shared_pages_and_disables_thp() {
        let machine = MachineSpec::machine_a();
        // Low LAR so Carrefour engages; shared page means carrefour-only
        // gain is small but split gain is ~75 pp.
        let mut counters = quiet_counters();
        counters.dram_local = 100;
        counters.dram_remote = 900;
        let samples = falsely_shared_samples();
        let mut lp = CarrefourLp::reactive_only();
        let mut ctx = ctx_with(&machine, &counters, &samples, ThpControls::thp());
        lp.on_epoch(&mut ctx);
        assert!(lp.split_flag());
        let actions = ctx.take_actions();
        // Shared pages are split-and-scattered in one batched operation.
        assert!(actions.contains(&PolicyAction::SplitScatter(0x20_0000)));
        assert!(actions.contains(&PolicyAction::SetThpAlloc(false)));
    }

    #[test]
    fn reactive_prefers_migration_when_it_suffices() {
        // Single-node remote pages: Carrefour alone predicts +90 pp, so
        // SPLIT_PAGES stays false and no Split is issued.
        let machine = MachineSpec::machine_a();
        let mut counters = quiet_counters();
        counters.dram_local = 100;
        counters.dram_remote = 900;
        let mut samples = Vec::new();
        for p in 0..4u64 {
            for k in 0..4 {
                samples.push(sample(
                    (0x20_0000 * (p + 1)) + k * 64,
                    1,
                    0,
                    PageSize::Size2M,
                ));
            }
        }
        let mut lp = CarrefourLp::reactive_only();
        let mut ctx = ctx_with(&machine, &counters, &samples, ThpControls::thp());
        lp.on_epoch(&mut ctx);
        assert!(!lp.split_flag());
        let actions = ctx.take_actions();
        assert!(!actions.iter().any(|a| matches!(a, PolicyAction::Split(_))));
        assert!(actions
            .iter()
            .any(|a| matches!(a, PolicyAction::Migrate(_, NodeId(1)))));
    }

    #[test]
    fn hot_pages_are_split_and_interleaved() {
        // One page with 90 % of the samples: hot. CG's profile.
        let machine = MachineSpec::machine_b();
        let mut counters = quiet_counters();
        counters.dram_local = 500;
        counters.dram_remote = 500;
        counters.controller_requests = vec![800, 10, 10, 10, 10, 10, 10, 10];
        let mut samples = Vec::new();
        for k in 0..36u64 {
            samples.push(sample(
                0x20_0000 + (k % 6) * 4096,
                (k % 4) as u16,
                0,
                PageSize::Size2M,
            ));
        }
        for k in 0..4u64 {
            samples.push(sample(0x80_0000 + k * 64, 0, 0, PageSize::Size2M));
        }
        let mut lp = CarrefourLp::new();
        let mut ctx = ctx_with(&machine, &counters, &samples, ThpControls::thp());
        lp.on_epoch(&mut ctx);
        let actions = ctx.take_actions();
        // The hot page is split and scattered in one batched operation.
        assert!(actions.contains(&PolicyAction::SplitScatter(0x20_0000)));
    }

    #[test]
    fn full_lp_can_reenable_thp_after_splitting() {
        // Epoch 1: splitting was engaged. Epoch 2: heavy walk misses.
        // The conservative component must re-enable THP.
        let machine = MachineSpec::machine_a();
        let mut lp = CarrefourLp::new();
        lp.split_pages = true;

        let mut counters = quiet_counters();
        counters.l2_walk_misses = 300;
        // Carrefour-only gain is large (single-node remote pages), so the
        // reactive component clears SPLIT_PAGES.
        let mut samples = Vec::new();
        for p in 0..4u64 {
            for k in 0..4 {
                samples.push(sample(
                    (0x20_0000 * (p + 1)) + k * 64,
                    1,
                    0,
                    PageSize::Size4K,
                ));
            }
        }
        counters.dram_local = 100;
        counters.dram_remote = 900;
        let mut ctx = ctx_with(&machine, &counters, &samples, ThpControls::small_only());
        lp.on_epoch(&mut ctx);
        let actions = ctx.take_actions();
        assert!(actions.contains(&PolicyAction::SetThpAlloc(true)));
        assert!(actions.contains(&PolicyAction::SetThpPromote(true)));
        assert!(!lp.split_flag());
        // No splitting got queued: alloc was re-enabled this very epoch.
        assert!(!actions.iter().any(|a| matches!(a, PolicyAction::Split(_))));
    }

    #[test]
    fn names_distinguish_the_ablations() {
        assert_eq!(CarrefourLp::new().name(), "carrefour-lp");
        assert_eq!(CarrefourLp::reactive_only().name(), "reactive");
        assert_eq!(CarrefourLp::conservative_only().name(), "conservative");
        assert_eq!(
            CarrefourLp::without_retries().name(),
            "carrefour-lp-noretry"
        );
    }

    #[test]
    fn failed_migrations_are_retried_after_backoff() {
        use engine::{ActionError, FailedAction};
        let machine = MachineSpec::machine_a();
        let counters = quiet_counters();
        let mut lp = CarrefourLp::new();
        let failed = [FailedAction {
            action: PolicyAction::Migrate(0x20_0000, NodeId(2)),
            error: ActionError::Busy,
        }];

        // Epoch 1 reports the failure: enqueued, not yet due.
        let mut ctx = ctx_with(&machine, &counters, &[], ThpControls::thp());
        ctx.epoch_index = 1;
        ctx.set_failures(&failed);
        lp.on_epoch(&mut ctx);
        assert!(!ctx
            .queued()
            .contains(&PolicyAction::Migrate(0x20_0000, NodeId(2))));

        // Epoch 2: backoff elapsed, the action is re-issued verbatim.
        let mut ctx = ctx_with(&machine, &counters, &[], ThpControls::thp());
        ctx.epoch_index = 2;
        lp.on_epoch(&mut ctx);
        assert!(ctx
            .queued()
            .contains(&PolicyAction::Migrate(0x20_0000, NodeId(2))));
        assert_eq!(ctx.retries_recorded(), 1);
    }

    #[test]
    fn noretry_ablation_never_reissues() {
        use engine::{ActionError, FailedAction};
        let machine = MachineSpec::machine_a();
        let counters = quiet_counters();
        let mut lp = CarrefourLp::without_retries();
        let failed = [FailedAction {
            action: PolicyAction::Migrate(0x20_0000, NodeId(2)),
            error: ActionError::Busy,
        }];
        let mut ctx = ctx_with(&machine, &counters, &[], ThpControls::thp());
        ctx.epoch_index = 1;
        ctx.set_failures(&failed);
        lp.on_epoch(&mut ctx);
        for e in 2..8u32 {
            let mut ctx = ctx_with(&machine, &counters, &[], ThpControls::thp());
            ctx.epoch_index = e;
            lp.on_epoch(&mut ctx);
            assert!(ctx.queued().is_empty(), "epoch {e} re-issued an action");
        }
    }

    #[test]
    fn exhausted_retries_are_abandoned() {
        use engine::{ActionError, FailedAction};
        let machine = MachineSpec::machine_a();
        let counters = quiet_counters();
        let mut lp = CarrefourLp::new();
        let failed = [FailedAction {
            action: PolicyAction::Split(0x40_0000),
            error: ActionError::Busy,
        }];
        // Keep reporting the same failure; the queue gives up after
        // max_retries (3) attempts.
        for e in [1u32, 3, 6] {
            let mut ctx = ctx_with(&machine, &counters, &[], ThpControls::thp());
            ctx.epoch_index = e;
            ctx.set_failures(&failed);
            lp.on_epoch(&mut ctx);
        }
        assert_eq!(lp.abandoned_actions(), 1);
        for e in 7..16u32 {
            let mut ctx = ctx_with(&machine, &counters, &[], ThpControls::thp());
            ctx.epoch_index = e;
            lp.on_epoch(&mut ctx);
            assert!(ctx.queued().is_empty(), "abandoned action re-issued at {e}");
        }
    }

    #[test]
    fn move_breaker_pauses_the_placement_pass() {
        use engine::{ActionError, FailedAction};
        let machine = MachineSpec::machine_a();
        // NUMA trouble: low LAR so Carrefour engages every epoch.
        let mut counters = quiet_counters();
        counters.dram_local = 100;
        counters.dram_remote = 900;
        // Single-node remote pages → Migrate actions.
        let mut samples = Vec::new();
        for p in 0..16u64 {
            for k in 0..4 {
                samples.push(sample(
                    (0x20_0000 * (p + 1)) + k * 64,
                    1,
                    0,
                    PageSize::Size4K,
                ));
            }
        }
        let mut lp = CarrefourLp::reactive_only();

        let mut ctx = ctx_with(&machine, &counters, &samples, ThpControls::small_only());
        ctx.epoch_index = 0;
        lp.on_epoch(&mut ctx);
        let issued: Vec<PolicyAction> = ctx
            .take_actions()
            .into_iter()
            .filter(|a| matches!(a, PolicyAction::Migrate(_, _)))
            .collect();
        assert!(
            issued.len() >= 8,
            "need a meaningful batch, got {}",
            issued.len()
        );

        // Every single move bounced: the breaker must trip and the next
        // epoch must issue no migrations at all.
        let failed: Vec<FailedAction> = issued
            .iter()
            .map(|&action| FailedAction {
                action,
                error: ActionError::Busy,
            })
            .collect();
        let mut ctx = ctx_with(&machine, &counters, &samples, ThpControls::small_only());
        ctx.epoch_index = 1;
        ctx.set_failures(&failed);
        lp.on_epoch(&mut ctx);
        assert!(
            !ctx.queued()
                .iter()
                .any(|a| matches!(a, PolicyAction::Migrate(_, _))),
            "breaker open, yet migrations were issued"
        );
        assert_eq!(lp.breaker_trips().1, 1);
    }

    #[test]
    fn save_restore_preserves_retry_breaker_and_rng_state() {
        use engine::{ActionError, FailedAction, NumaPolicy as _};
        let machine = MachineSpec::machine_a();
        let mut counters = quiet_counters();
        counters.dram_local = 100;
        counters.dram_remote = 900;
        let samples = falsely_shared_samples();

        // Epoch 0: split-and-scatter fires (split history, interleave sets,
        // RNG draws). Epoch 1: a failure report populates the retry queue.
        let mut lp = CarrefourLp::new();
        let mut ctx = ctx_with(&machine, &counters, &samples, ThpControls::thp());
        lp.on_epoch(&mut ctx);
        let failed = [FailedAction {
            action: PolicyAction::Migrate(0x20_0000, NodeId(2)),
            error: ActionError::Busy,
        }];
        let mut ctx = ctx_with(&machine, &counters, &samples, ThpControls::thp());
        ctx.epoch_index = 1;
        ctx.set_failures(&failed);
        lp.on_epoch(&mut ctx);

        // Snapshot mid-scenario, restore onto a fresh instance, and drive
        // both through identical further epochs: every queued action (retry
        // re-issues, RNG-chosen interleave targets) must match.
        let bytes = lp.save_state();
        let mut restored = CarrefourLp::new();
        restored.restore_state(&bytes);
        assert_eq!(restored.split_flag(), lp.split_flag());
        assert_eq!(restored.abandoned_actions(), lp.abandoned_actions());
        assert_eq!(restored.breaker_trips(), lp.breaker_trips());
        for epoch in 2..6u32 {
            let mut ctx_a = ctx_with(&machine, &counters, &samples, ThpControls::thp());
            ctx_a.epoch_index = epoch;
            lp.on_epoch(&mut ctx_a);
            let mut ctx_b = ctx_with(&machine, &counters, &samples, ThpControls::thp());
            ctx_b.epoch_index = epoch;
            restored.on_epoch(&mut ctx_b);
            assert_eq!(
                ctx_a.queued(),
                ctx_b.queued(),
                "restored policy diverged at epoch {epoch}"
            );
        }
    }

    #[test]
    fn save_restore_keeps_custom_params_and_name() {
        // The fork tree restores checkpoints into `with_params` instances
        // (DESIGN.md §15): thresholds are *configuration*, not state, so a
        // roundtrip must neither serialize nor clobber them — a restored
        // tuned policy keeps making tuned decisions, under its own name.
        use engine::NumaPolicy as _;
        let machine = MachineSpec::machine_a();
        let mut counters = quiet_counters();
        counters.dram_local = 100;
        counters.dram_remote = 900;
        let samples = falsely_shared_samples();
        let params = crate::LpParams::tuned();
        let mut lp = CarrefourLp::with_params(params).named("carrefour-lp-tuned");
        let mut ctx = ctx_with(&machine, &counters, &samples, ThpControls::thp());
        lp.on_epoch(&mut ctx);
        let bytes = lp.save_state();

        let mut restored = CarrefourLp::with_params(params).named("carrefour-lp-tuned");
        restored.restore_state(&bytes);
        assert_eq!(restored.name(), "carrefour-lp-tuned");
        for epoch in 1..4u32 {
            let mut ctx_a = ctx_with(&machine, &counters, &samples, ThpControls::thp());
            ctx_a.epoch_index = epoch;
            lp.on_epoch(&mut ctx_a);
            let mut ctx_b = ctx_with(&machine, &counters, &samples, ThpControls::thp());
            ctx_b.epoch_index = epoch;
            restored.on_epoch(&mut ctx_b);
            assert_eq!(
                ctx_a.queued(),
                ctx_b.queued(),
                "restored tuned policy diverged at epoch {epoch}"
            );
        }
    }

    #[test]
    fn fault_free_feedback_changes_nothing() {
        // The same epoch, once with the robustness machinery untouched and
        // once after an explicit empty failure report: identical actions.
        let machine = MachineSpec::machine_b();
        let mut counters = quiet_counters();
        counters.dram_local = 100;
        counters.dram_remote = 900;
        let samples = falsely_shared_samples();
        let mut a = CarrefourLp::new();
        let mut b = CarrefourLp::new();
        let mut ctx_a = ctx_with(&machine, &counters, &samples, ThpControls::thp());
        a.on_epoch(&mut ctx_a);
        let mut ctx_b = ctx_with(&machine, &counters, &samples, ThpControls::thp());
        ctx_b.set_failures(&[]);
        b.on_epoch(&mut ctx_b);
        assert_eq!(ctx_a.queued(), ctx_b.queued());
    }
}
