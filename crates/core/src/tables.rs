//! Page-table placement policies: Mitosis-style replication and
//! numaPTE-style migration.
//!
//! Both policies leave *data* pages exactly where the kernel put them and
//! act only on the radix tables a hardware walk traverses. Mitosis
//! (Achermann et al., ASPLOS '20) eagerly mirrors the page table onto
//! every socket so a walk never crosses the interconnect; numaPTE (the
//! lazy variant) watches where walks actually pay remote hops and moves
//! only the table pages that hurt, toward the socket doing the walking.

use engine::{EpochCtx, NumaPolicy};
use numa_topology::NodeId;
use std::collections::BTreeMap;

/// Eager full-table replication (the Mitosis model).
///
/// Every epoch it issues one idempotent [`ReplicateTables`] sweep: the
/// first fires a full replication of the radix tree onto every node;
/// later sweeps only copy tables created since (page faults growing the
/// tree). Walks then resolve each step through the walking node's local
/// replica, and every PTE store pays a write fan-out to keep the copies
/// coherent — the trade the paper's Mitosis comparison measures.
///
/// [`ReplicateTables`]: engine::PolicyAction::ReplicateTables
pub struct Mitosis;

impl Mitosis {
    /// Creates the policy.
    pub fn new() -> Self {
        Mitosis
    }
}

impl Default for Mitosis {
    fn default() -> Self {
        Mitosis::new()
    }
}

impl NumaPolicy for Mitosis {
    fn name(&self) -> &str {
        "mitosis"
    }

    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
        // On a 1-node machine every walk step is already local and a
        // replica would be the primary itself: stay provably inert.
        if ctx.machine.num_nodes() > 1 {
            ctx.replicate_tables();
        }
    }

    fn consumes_samples(&self) -> bool {
        false
    }

    // Stateless: the replica set itself lives in `AddressSpace` and
    // travels with the space checkpoint, so there is nothing to save.
}

/// Thresholds for [`NumaPte`].
#[derive(Clone, Copy, Debug)]
pub struct NumaPteConfig {
    /// Minimum remote-walk samples a 2 MiB table region needs in one
    /// epoch before its PTE page is worth moving.
    pub min_walk_samples: u32,
    /// Table migrations per epoch (each is a 4 KiB page copy plus a
    /// walk-cache shootdown; unbounded chasing would thrash).
    pub max_migrations_per_epoch: usize,
}

impl Default for NumaPteConfig {
    fn default() -> Self {
        NumaPteConfig {
            min_walk_samples: 4,
            max_migrations_per_epoch: 8,
        }
    }
}

/// Sampled, lazy table migration (the numaPTE model).
///
/// Consumes the epoch's IBS samples, keeps only those whose walk paid
/// remote steps (`walk_remote_steps > 0`), groups them by the 2 MiB
/// region one PTE page maps, and migrates the deepest table page of each
/// sufficiently-hot region to the node doing most of the walking.
/// Regions are placed once per verdict: a region already moved to node
/// *n* is not re-issued until the samples name a different winner.
pub struct NumaPte {
    cfg: NumaPteConfig,
    /// Last node each 2 MiB region's PTE page was migrated to
    /// (hysteresis: don't re-issue a placement that already happened).
    placed: BTreeMap<u64, u16>,
}

impl NumaPte {
    /// Creates the policy with default thresholds.
    pub fn new() -> Self {
        NumaPte::with_config(NumaPteConfig::default())
    }

    /// Creates the policy with explicit thresholds.
    pub fn with_config(cfg: NumaPteConfig) -> Self {
        NumaPte {
            cfg,
            placed: BTreeMap::new(),
        }
    }
}

impl Default for NumaPte {
    fn default() -> Self {
        NumaPte::new()
    }
}

const REGION_MASK: u64 = !((2u64 << 20) - 1);

impl NumaPolicy for NumaPte {
    fn name(&self) -> &str {
        "numapte"
    }

    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
        // Remote-walk votes per (region, walking node). On a 1-node
        // machine no walk step is ever remote, so this stays empty and
        // the policy is provably inert.
        let mut votes: BTreeMap<u64, BTreeMap<u16, u32>> = BTreeMap::new();
        for s in ctx.samples {
            if s.walk_remote_steps == 0 {
                continue;
            }
            *votes
                .entry(s.vaddr.0 & REGION_MASK)
                .or_default()
                .entry(s.accessing_node.0)
                .or_insert(0) += 1;
        }

        // Hottest regions first, so the budget goes where walks hurt most.
        let mut order: Vec<(u64, u16, u32)> = votes
            .into_iter()
            .filter_map(|(region, nodes)| {
                let total: u32 = nodes.values().sum();
                // Majority walking node; ties break to the lower node id
                // (BTreeMap order) for determinism.
                let (&node, &n) = nodes.iter().max_by_key(|&(&id, &n)| (n, !id))?;
                // Require a clear winner, not just traffic: a PTE page
                // walked evenly from two sockets has no good home.
                if total < self.cfg.min_walk_samples || n * 2 <= total {
                    return None;
                }
                Some((region, node, total))
            })
            .collect();
        order.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));

        let mut budget = self.cfg.max_migrations_per_epoch;
        for (region, node, _) in order {
            if budget == 0 {
                break;
            }
            if self.placed.get(&region) == Some(&node) {
                continue;
            }
            ctx.migrate_tables(region, NodeId(node));
            self.placed.insert(region, node);
            budget -= 1;
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut e = codec::Enc::new();
        e.seq(self.placed.iter(), |e, (&r, &n)| {
            e.u64(r);
            e.u16(n);
        });
        e.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) {
        let mut d = codec::Dec::new(bytes);
        self.placed = d.seq(|d| (d.u64(), d.u16())).into_iter().collect();
        d.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::PolicyAction;
    use numa_topology::MachineSpec;
    use profiling::{EpochCounters, IbsSample};
    use vmem::{PageSize, ThpControls, VirtAddr};

    fn walk_sample(vaddr: u64, accessing: u16, remote_steps: u8) -> IbsSample {
        IbsSample {
            vaddr: VirtAddr(vaddr),
            accessing_node: NodeId(accessing),
            thread: accessing,
            home_node: NodeId(0),
            from_dram: true,
            is_store: false,
            page_size: PageSize::Size4K,
            walk_remote_steps: remote_steps,
        }
    }

    fn run(policy: &mut dyn NumaPolicy, samples: &[IbsSample], epoch: u32) -> Vec<PolicyAction> {
        let machine = MachineSpec::machine_a();
        let counters = EpochCounters::default();
        let mut ctx = EpochCtx::new(
            &machine,
            &counters,
            samples,
            ThpControls::small_only(),
            epoch,
        );
        policy.on_epoch(&mut ctx);
        ctx.take_actions()
    }

    #[test]
    fn mitosis_sweeps_every_epoch() {
        let mut m = Mitosis::new();
        assert_eq!(run(&mut m, &[], 0), vec![PolicyAction::ReplicateTables]);
        assert_eq!(run(&mut m, &[], 1), vec![PolicyAction::ReplicateTables]);
        assert!(!m.consumes_samples());
    }

    #[test]
    fn mitosis_is_inert_on_one_node() {
        let machine = MachineSpec::homogeneous(
            "uma",
            2.0,
            1,
            8,
            16 << 30,
            numa_topology::Interconnect::full_mesh(1),
        );
        let counters = EpochCounters::default();
        let mut ctx = EpochCtx::new(&machine, &counters, &[], ThpControls::small_only(), 0);
        Mitosis::new().on_epoch(&mut ctx);
        assert!(ctx.take_actions().is_empty());
    }

    #[test]
    fn numapte_migrates_hot_region_to_majority_walker() {
        let mut p = NumaPte::new();
        let samples: Vec<_> = (0..5)
            .map(|i| walk_sample(0x40_0000 + i * 0x1000, 2, 3))
            .chain((0..2).map(|i| walk_sample(0x40_8000 + i * 0x1000, 1, 1)))
            .collect();
        assert_eq!(
            run(&mut p, &samples, 0),
            vec![PolicyAction::MigrateTables(0x40_0000, NodeId(2))]
        );
        // Same evidence next epoch: already placed, no churn.
        assert!(run(&mut p, &samples, 1).is_empty());
    }

    #[test]
    fn numapte_ignores_local_walks_and_thin_evidence() {
        let mut p = NumaPte::new();
        // All walks local: nothing to fix.
        let local: Vec<_> = (0..8).map(|i| walk_sample(i * 0x1000, 1, 0)).collect();
        assert!(run(&mut p, &local, 0).is_empty());
        // Below min_walk_samples.
        let thin: Vec<_> = (0..3).map(|i| walk_sample(i * 0x1000, 1, 2)).collect();
        assert!(run(&mut p, &thin, 1).is_empty());
    }

    #[test]
    fn numapte_requires_a_majority() {
        let mut p = NumaPte::new();
        // 3 votes node 1, 3 votes node 2: evenly shared, leave it alone.
        let samples: Vec<_> = (0..3)
            .map(|i| walk_sample(0x20_0000 + i * 0x1000, 1, 2))
            .chain((0..3).map(|i| walk_sample(0x20_8000 + i * 0x1000, 2, 2)))
            .collect();
        assert!(run(&mut p, &samples, 0).is_empty());
    }

    #[test]
    fn numapte_budget_bounds_migrations() {
        let cfg = NumaPteConfig {
            min_walk_samples: 1,
            max_migrations_per_epoch: 2,
        };
        let mut p = NumaPte::with_config(cfg);
        let samples: Vec<_> = (0..6u64)
            .map(|r| walk_sample(r * 0x20_0000, 1, 1))
            .collect();
        assert_eq!(run(&mut p, &samples, 0).len(), 2);
    }

    #[test]
    fn numapte_state_roundtrips() {
        let mut p = NumaPte::new();
        let samples: Vec<_> = (0..5)
            .map(|i| walk_sample(0x40_0000 + i * 0x1000, 2, 3))
            .collect();
        assert_eq!(run(&mut p, &samples, 0).len(), 1);
        let bytes = p.save_state();
        let mut q = NumaPte::new();
        q.restore_state(&bytes);
        // Restored instance remembers the placement: no re-issue.
        assert!(run(&mut q, &samples, 1).is_empty());
    }
}
