//! What-if LAR estimation from IBS samples (Section 3.2.1).
//!
//! "Estimating the LAR for various what-if scenarios (e.g., if a page were
//! migrated or if large pages were split into regular-sized) is trivial with
//! IBS samples": for every sampled page, if all of its samples came from one
//! node, Carrefour would migrate it there and every access would be local;
//! if they came from several nodes, Carrefour interleaves it and a fraction
//! `1/num_nodes` of accesses land locally in expectation. Splitting changes
//! only the grouping key: 4 KiB sub-pages instead of current pages.
//!
//! The estimator only trusts DRAM-serviced samples (cached pages do not
//! matter for placement) — also per the paper.

use profiling::IbsSample;
use std::collections::HashMap;

/// The three LAR predictions, each in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LarEstimate {
    /// LAR as currently placed.
    pub current: f64,
    /// Predicted LAR if Carrefour migrated/interleaved the current pages.
    pub with_carrefour: f64,
    /// Predicted LAR if all large pages were split and Carrefour then
    /// migrated/interleaved the resulting 4 KiB pages.
    pub with_split: f64,
    /// Number of DRAM samples the estimate is based on (its confidence).
    pub dram_samples: usize,
}

impl LarEstimate {
    /// Predicted gain of Carrefour alone, in percentage points.
    pub fn carrefour_gain_pp(&self) -> f64 {
        (self.with_carrefour - self.current) * 100.0
    }

    /// Predicted gain of Carrefour plus splitting, in percentage points.
    pub fn split_gain_pp(&self) -> f64 {
        (self.with_split - self.current) * 100.0
    }
}

/// Predicted post-Carrefour local fraction for one page's samples:
/// `counts` holds per-accessing-node sample counts.
fn page_local_fraction(counts: &HashMap<u16, u32>, num_nodes: usize) -> (f64, u32) {
    let total: u32 = counts.values().sum();
    if counts.len() <= 1 {
        // Single-node page: migrated to its accessor, everything local.
        (1.0, total)
    } else {
        // Shared page: interleaved to a random node.
        (1.0 / num_nodes as f64, total)
    }
}

/// Computes the three-way LAR estimate from one epoch's samples.
pub fn estimate(samples: &[IbsSample], num_nodes: usize) -> LarEstimate {
    let mut local = 0usize;
    let mut dram = 0usize;
    // page (current granularity) -> accessing-node counts
    let mut pages: HashMap<u64, HashMap<u16, u32>> = HashMap::new();
    // 4 KiB grouping for the split scenario
    let mut subpages: HashMap<u64, HashMap<u16, u32>> = HashMap::new();

    for s in samples {
        if !s.from_dram {
            continue;
        }
        dram += 1;
        if s.local() {
            local += 1;
        }
        *pages
            .entry(s.page_base())
            .or_default()
            .entry(s.accessing_node.0)
            .or_insert(0) += 1;
        *subpages
            .entry(s.page_4k())
            .or_default()
            .entry(s.accessing_node.0)
            .or_insert(0) += 1;
    }

    if dram == 0 {
        return LarEstimate {
            current: 1.0,
            with_carrefour: 1.0,
            with_split: 1.0,
            dram_samples: 0,
        };
    }

    let weighted = |groups: &HashMap<u64, HashMap<u16, u32>>| -> f64 {
        let mut acc = 0.0;
        for counts in groups.values() {
            let (frac, n) = page_local_fraction(counts, num_nodes);
            acc += frac * f64::from(n);
        }
        acc / dram as f64
    };

    LarEstimate {
        current: local as f64 / dram as f64,
        with_carrefour: weighted(&pages),
        with_split: weighted(&subpages),
        dram_samples: dram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::NodeId;
    use vmem::{PageSize, VirtAddr};

    fn sample(vaddr: u64, accessing: u16, home: u16, size: PageSize, dram: bool) -> IbsSample {
        IbsSample {
            vaddr: VirtAddr(vaddr),
            accessing_node: NodeId(accessing),
            thread: accessing,
            home_node: NodeId(home),
            from_dram: dram,
            is_store: false,
            page_size: size,
            walk_remote_steps: 0,
        }
    }

    #[test]
    fn empty_input_predicts_unity() {
        let e = estimate(&[], 4);
        assert_eq!(e.dram_samples, 0);
        assert_eq!(e.carrefour_gain_pp(), 0.0);
    }

    #[test]
    fn cached_samples_are_ignored() {
        let s = [sample(0x1000, 0, 1, PageSize::Size4K, false)];
        assert_eq!(estimate(&s, 4).dram_samples, 0);
    }

    #[test]
    fn single_node_remote_page_is_predicted_fixable() {
        // One page, always accessed by node 0, but homed on node 1:
        // current LAR 0, Carrefour prediction 1.
        let s: Vec<_> = (0..10)
            .map(|i| sample(0x20_0000 + i * 64, 0, 1, PageSize::Size4K, true))
            .collect();
        let e = estimate(&s, 4);
        assert_eq!(e.current, 0.0);
        assert_eq!(e.with_carrefour, 1.0);
        assert!((e.carrefour_gain_pp() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn shared_page_is_predicted_interleaved() {
        // One page accessed from two nodes: Carrefour interleaves; on a
        // 4-node machine the predicted LAR is 0.25.
        let mut s = Vec::new();
        for i in 0..5 {
            s.push(sample(0x20_0000 + i * 64, 0, 0, PageSize::Size2M, true));
            s.push(sample(0x20_0000 + i * 64, 1, 0, PageSize::Size2M, true));
        }
        let e = estimate(&s, 4);
        assert!((e.with_carrefour - 0.25).abs() < 1e-9);
    }

    #[test]
    fn splitting_helps_falsely_shared_huge_page() {
        // A 2 MiB page whose 4 KiB sub-pages are each private to one node:
        // as a huge page it is "shared" (interleave: 0.25); split, every
        // sub-page is single-node (predict 1.0). This is UA's profile.
        let mut s = Vec::new();
        for i in 0..8u64 {
            let node = (i % 4) as u16;
            for k in 0..3 {
                s.push(sample(
                    0x20_0000 + i * 4096 + k * 64,
                    node,
                    0,
                    PageSize::Size2M,
                    true,
                ));
            }
        }
        let e = estimate(&s, 4);
        assert!((e.with_carrefour - 0.25).abs() < 1e-9);
        assert!((e.with_split - 1.0).abs() < 1e-9);
        assert!(e.split_gain_pp() > e.carrefour_gain_pp());
    }

    #[test]
    fn sparse_sampling_overestimates_split_gain() {
        // The SSCA pathology: a page truly shared by all nodes, but each
        // 4 KiB sub-page catches exactly ONE sample. The split prediction
        // believes every sub-page is private and predicts LAR 1.0 — wildly
        // optimistic. (This emerges from grouping, not from special-casing.)
        let mut s = Vec::new();
        for i in 0..16u64 {
            s.push(sample(
                0x20_0000 + i * 4096,
                (i % 4) as u16,
                0,
                PageSize::Size2M,
                true,
            ));
        }
        let e = estimate(&s, 4);
        assert!((e.with_split - 1.0).abs() < 1e-9, "optimistic by design");
        assert!((e.with_carrefour - 0.25).abs() < 1e-9);
    }

    #[test]
    fn current_lar_counts_locals() {
        let s = [
            sample(0x1000, 0, 0, PageSize::Size4K, true),
            sample(0x2000, 0, 1, PageSize::Size4K, true),
        ];
        let e = estimate(&s, 2);
        assert!((e.current - 0.5).abs() < 1e-9);
        assert_eq!(e.dram_samples, 2);
    }
}
