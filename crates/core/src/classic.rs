//! The baseline Carrefour placement algorithm (Section 3.1).

use crate::config::CarrefourConfig;
use engine::{EpochCtx, NumaPolicy};
use numa_topology::NodeId;
use profiling::{EpochCounters, IbsSample};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Per-page view assembled from one epoch's DRAM samples.
#[derive(Clone, Debug, Default)]
struct PageInfo {
    /// Samples per accessing node.
    nodes: BTreeMap<u16, u32>,
    /// Home node seen in the most recent sample.
    home: u16,
    /// Total samples.
    total: u32,
    /// Sampled stores (reads-only pages are replication candidates).
    stores: u32,
    /// Whether the grouped page is larger than 4 KiB.
    huge: bool,
    /// Whether this is a sub-page of a policy-split huge page.
    from_split: bool,
}

/// Groups DRAM samples by page. Pages in `split_pending` (this epoch's
/// queued splits) are grouped at 4 KiB granularity — placement decisions
/// must be made on their sub-pages. 4 KiB samples that fall inside a range
/// in `split_history` are marked `from_split` so placement acts on minimal
/// evidence; if khugepaged later re-collapses such a range, its samples
/// report 2 MiB again and are treated as a normal huge page.
fn group_pages(
    samples: &[IbsSample],
    split_pending: &BTreeSet<u64>,
    split_history: &BTreeSet<u64>,
) -> BTreeMap<u64, PageInfo> {
    let mut pages: BTreeMap<u64, PageInfo> = BTreeMap::new();
    for s in samples {
        if !s.from_dram {
            continue;
        }
        let pending = split_pending.contains(&s.page_base());
        let key = if pending { s.page_4k() } else { s.page_base() };
        let from_split = pending
            || (s.page_size == vmem::PageSize::Size4K
                && split_history.contains(&(s.page_4k() & !((2u64 << 20) - 1))));
        let info = pages.entry(key).or_default();
        *info.nodes.entry(s.accessing_node.0).or_insert(0) += 1;
        info.home = s.home_node.0;
        info.total += 1;
        info.stores += u32::from(s.is_store);
        info.huge = !pending && s.page_size != vmem::PageSize::Size4K;
        info.from_split = from_split;
    }
    pages
}

/// The Carrefour page-placement policy.
///
/// Identical machinery serves as *Carrefour-4K* (run it in a simulation
/// whose THP switches are off) and *Carrefour-2M* (run it under THP): the
/// algorithm acts on whatever page granularity the samples report, exactly
/// like the kernel module did.
pub struct Carrefour {
    cfg: CarrefourConfig,
    rng: SmallRng,
    /// Pages already interleaved (don't re-randomize them every epoch).
    interleaved: BTreeSet<u64>,
    /// Sub-pages already placed on single-sample (post-split) evidence; one
    /// sample is enough to place a page once, but not to keep chasing it.
    placed_once: BTreeSet<u64>,
    /// Cross-epoch memory: the node a page was last migrated to on
    /// single-node evidence. A later single-node verdict naming a
    /// *different* node reveals the page as shared — interleave it instead
    /// of chasing every new sample (the kernel module keeps per-page state
    /// across intervals for the same reason).
    node_seen: BTreeMap<u64, u16>,
    /// Pages already replicated (don't re-issue every epoch).
    replicated: BTreeSet<u64>,
}

/// The RNG seed every default-constructed Carrefour uses. Exposed so
/// parameterized constructions ([`crate::CarrefourLp::with_params`]) can
/// reproduce the stock policy bit-for-bit when handed default tunables.
pub const DEFAULT_SEED: u64 = 0xCA44EF04;

impl Carrefour {
    /// Creates the policy with default thresholds.
    pub fn new() -> Self {
        Carrefour::with_config(CarrefourConfig::default(), DEFAULT_SEED)
    }

    /// Creates the policy with replication enabled (the original
    /// Carrefour's full mechanism set; see `CarrefourConfig`).
    pub fn with_replication() -> Self {
        let cfg = CarrefourConfig {
            enable_replication: true,
            ..CarrefourConfig::default()
        };
        Carrefour::with_config(cfg, DEFAULT_SEED)
    }

    /// Creates the policy with explicit thresholds and RNG seed.
    pub fn with_config(cfg: CarrefourConfig, seed: u64) -> Self {
        Carrefour {
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            interleaved: BTreeSet::new(),
            placed_once: BTreeSet::new(),
            node_seen: BTreeMap::new(),
            replicated: BTreeSet::new(),
        }
    }

    /// Whether the enable heuristics fire: a memory-intensive epoch with a
    /// visible NUMA problem (low LAR or controller imbalance).
    pub fn engaged(&self, counters: &EpochCounters) -> bool {
        counters.dram_per_op() >= self.cfg.intensity_min_dram_per_op
            && (counters.lar() < self.cfg.lar_enable_below
                || counters.imbalance() > self.cfg.imbalance_enable_above)
    }

    /// One placement pass: migrate single-node pages to their accessor,
    /// interleave multi-node pages (once).
    ///
    /// `split_pending` holds large pages queued for splitting this epoch —
    /// their samples are treated at 4 KiB granularity. `exclude` holds
    /// pages another component already placed (hot-page interleaving).
    pub fn placement_pass(
        &mut self,
        ctx: &mut EpochCtx<'_>,
        split_pending: &BTreeSet<u64>,
        split_history: &BTreeSet<u64>,
        exclude: &BTreeSet<u64>,
    ) {
        let pages = group_pages(ctx.samples, split_pending, split_history);
        // Hottest pages first: the migration budget should go where the
        // traffic is.
        // Larger pages are costlier to move and more likely to be shared, so
        // they need proportionally more evidence before we act on them.
        let mut order: Vec<(&u64, &PageInfo)> = pages
            .iter()
            .filter(|(page, info)| {
                // Sub-pages of a deliberately split huge page are placed on
                // any evidence: splitting only pays if they move, and one
                // sample identifies a private sub-page's owner.
                let min = if info.from_split {
                    1
                } else if info.huge {
                    self.cfg.min_samples_per_page * 2
                } else {
                    self.cfg.min_samples_per_page
                };
                info.total as usize >= min && !exclude.contains(page)
            })
            .collect();
        order.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(b.0)));

        let num_nodes = ctx.machine.num_nodes();
        let mut budget = self.cfg.max_migrations_per_epoch;
        for (&page, info) in order {
            if budget == 0 {
                break;
            }
            // Single-sample (post-split) evidence places a page only once;
            // a shared sub-page would otherwise chase every new sample.
            let weak = info.from_split && (info.total as usize) < self.cfg.min_samples_per_page;
            if weak && self.placed_once.contains(&page) {
                continue;
            }
            if info.nodes.len() == 1 {
                let node = *info.nodes.keys().next().expect("non-empty");
                match self.node_seen.get(&page) {
                    // Conflicting single-node verdicts across epochs: the
                    // page is really shared; interleave it once.
                    Some(&prev) if prev != node => {
                        if !self.interleaved.contains(&page) {
                            let target = self.random_node(num_nodes);
                            ctx.migrate(page, target);
                            self.interleaved.insert(page);
                            budget -= 1;
                        }
                    }
                    Some(_) => {} // stable verdict: already placed
                    None => {
                        if node != info.home {
                            ctx.migrate(page, NodeId(node));
                            self.interleaved.remove(&page);
                            if weak {
                                self.placed_once.insert(page);
                            }
                            budget -= 1;
                        }
                        self.node_seen.insert(page, node);
                    }
                }
            } else if self.cfg.enable_replication
                && !info.huge
                && info.stores == 0
                && !self.replicated.contains(&page)
            {
                // Multi-node, read-only, small: give every node a copy.
                ctx.replicate(page);
                self.replicated.insert(page);
                budget -= 1;
            } else if !self.interleaved.contains(&page) && !self.replicated.contains(&page) {
                let target = self.random_node(num_nodes);
                ctx.migrate(page, target);
                self.interleaved.insert(page);
                budget -= 1;
            }
        }
    }

    /// Marks a page as interleaved (used by Carrefour-LP's hot-page path so
    /// the next pass does not fight its placement).
    pub(crate) fn mark_interleaved(&mut self, page: u64) {
        self.interleaved.insert(page);
    }

    /// Forgets all placement state about a page (called when Carrefour-LP
    /// splits it: the post-split — and post-recollapse — page is new).
    pub(crate) fn forget(&mut self, page: u64) {
        self.interleaved.remove(&page);
        self.node_seen.remove(&page);
        self.placed_once.remove(&page);
        self.replicated.remove(&page);
    }

    /// Picks a random node (shared RNG so composition stays deterministic).
    pub(crate) fn random_node(&mut self, num_nodes: usize) -> NodeId {
        NodeId::from(self.rng.random_range(0..num_nodes))
    }

    /// The thresholds in use.
    pub fn config(&self) -> &CarrefourConfig {
        &self.cfg
    }

    /// Serializes the cross-epoch placement state for a `ckpt-v1`
    /// snapshot. `cfg` is constructor-provided and not serialized.
    pub(crate) fn save_into(&self, e: &mut codec::Enc) {
        for w in self.rng.state() {
            e.u64(w);
        }
        e.seq(self.interleaved.iter(), |e, &p| e.u64(p));
        e.seq(self.placed_once.iter(), |e, &p| e.u64(p));
        e.seq(self.node_seen.iter(), |e, (&p, &n)| {
            e.u64(p);
            e.u16(n);
        });
        e.seq(self.replicated.iter(), |e, &p| e.u64(p));
    }

    /// Restores state captured by [`Carrefour::save_into`] onto a
    /// freshly-constructed instance with the same config.
    pub(crate) fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        let s = [d.u64(), d.u64(), d.u64(), d.u64()];
        self.rng = SmallRng::from_state(s);
        self.interleaved = d.seq(|d| d.u64()).into_iter().collect();
        self.placed_once = d.seq(|d| d.u64()).into_iter().collect();
        self.node_seen = d.seq(|d| (d.u64(), d.u16())).into_iter().collect();
        self.replicated = d.seq(|d| d.u64()).into_iter().collect();
    }
}

impl Default for Carrefour {
    fn default() -> Self {
        Carrefour::new()
    }
}

impl NumaPolicy for Carrefour {
    fn name(&self) -> &str {
        "carrefour"
    }

    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
        if self.engaged(ctx.counters) {
            let empty = BTreeSet::new();
            self.placement_pass(ctx, &empty, &empty, &empty);
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut e = codec::Enc::new();
        self.save_into(&mut e);
        e.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) {
        let mut d = codec::Dec::new(bytes);
        self.load_from(&mut d);
        d.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::PolicyAction;
    use numa_topology::MachineSpec;
    use vmem::{PageSize, ThpControls, VirtAddr};

    fn sample(vaddr: u64, accessing: u16, home: u16) -> IbsSample {
        IbsSample {
            vaddr: VirtAddr(vaddr),
            accessing_node: NodeId(accessing),
            thread: accessing,
            home_node: NodeId(home),
            from_dram: true,
            is_store: false,
            page_size: PageSize::Size4K,
            walk_remote_steps: 0,
        }
    }

    fn needy_counters() -> EpochCounters {
        EpochCounters {
            epoch_cycles: 1_000_000,
            dram_local: 100,
            dram_remote: 900, // LAR 0.1: clearly a NUMA problem
            mem_ops: 10_000,
            l2_misses: 1000,
            ..EpochCounters::default()
        }
    }

    fn run_pass(samples: &[IbsSample]) -> Vec<PolicyAction> {
        let machine = MachineSpec::machine_a();
        let counters = needy_counters();
        let mut ctx = EpochCtx::new(&machine, &counters, samples, ThpControls::thp(), 0);
        let mut c = Carrefour::new();
        c.on_epoch(&mut ctx);
        ctx.take_actions()
    }

    #[test]
    fn engages_on_low_lar_and_high_imbalance_only() {
        let c = Carrefour::new();
        assert!(c.engaged(&needy_counters()));

        let healthy = EpochCounters {
            epoch_cycles: 1_000_000,
            dram_local: 950,
            dram_remote: 50,
            controller_requests: vec![250, 250, 250, 250],
            mem_ops: 10_000,
            ..EpochCounters::default()
        };
        assert!(!c.engaged(&healthy));

        let idle = EpochCounters {
            epoch_cycles: 1_000_000,
            dram_local: 1,
            dram_remote: 5,
            mem_ops: 1_000_000, // not memory-intensive
            ..EpochCounters::default()
        };
        assert!(!c.engaged(&idle));
    }

    #[test]
    fn single_node_remote_page_is_migrated_home() {
        let samples = vec![sample(0x1000, 2, 0), sample(0x1040, 2, 0)];
        let actions = run_pass(&samples);
        assert_eq!(actions, vec![PolicyAction::Migrate(0x1000, NodeId(2))]);
    }

    #[test]
    fn local_single_node_page_is_left_alone() {
        let samples = vec![sample(0x1000, 2, 2), sample(0x1040, 2, 2)];
        assert!(run_pass(&samples).is_empty());
    }

    #[test]
    fn shared_page_is_interleaved_once() {
        let samples = vec![sample(0x1000, 0, 0), sample(0x1040, 1, 0)];
        let machine = MachineSpec::machine_a();
        let counters = needy_counters();
        let mut c = Carrefour::new();

        let mut ctx = EpochCtx::new(&machine, &counters, &samples, ThpControls::thp(), 0);
        c.on_epoch(&mut ctx);
        let first = ctx.take_actions();
        assert_eq!(first.len(), 1);
        assert!(matches!(first[0], PolicyAction::Migrate(0x1000, _)));

        // Same samples next epoch: already interleaved, no churn.
        let mut ctx = EpochCtx::new(&machine, &counters, &samples, ThpControls::thp(), 1);
        c.on_epoch(&mut ctx);
        assert!(ctx.take_actions().is_empty());
    }

    #[test]
    fn under_sampled_pages_are_ignored() {
        let samples = vec![sample(0x1000, 2, 0)]; // 1 sample < min 2
        assert!(run_pass(&samples).is_empty());
    }

    #[test]
    fn cached_samples_are_ignored() {
        let mut s = sample(0x1000, 2, 0);
        s.from_dram = false;
        let samples = vec![s, s];
        assert!(run_pass(&samples).is_empty());
    }

    #[test]
    fn budget_limits_migrations() {
        let cfg = CarrefourConfig {
            max_migrations_per_epoch: 3,
            ..CarrefourConfig::default()
        };
        let mut c = Carrefour::with_config(cfg, 1);
        let machine = MachineSpec::machine_a();
        let counters = needy_counters();
        let samples: Vec<_> = (0..20u64)
            .flat_map(|p| vec![sample(p * 4096, 2, 0), sample(p * 4096 + 64, 2, 0)])
            .collect();
        let mut ctx = EpochCtx::new(&machine, &counters, &samples, ThpControls::thp(), 0);
        c.on_epoch(&mut ctx);
        assert_eq!(ctx.take_actions().len(), 3);
    }

    #[test]
    fn huge_pages_group_at_their_own_granularity() {
        // Two samples in the same 2 MiB page from different nodes, at
        // different 4 KiB offsets: one interleave of the huge page.
        let mk = |off: u64, node: u16| IbsSample {
            vaddr: VirtAddr(0x20_0000 + off),
            accessing_node: NodeId(node),
            thread: node,
            home_node: NodeId(0),
            from_dram: true,
            is_store: false,
            page_size: PageSize::Size2M,
            walk_remote_steps: 0,
        };
        // Huge pages need twice the small-page evidence (4 samples).
        let samples = vec![mk(0x1000, 0), mk(0x5000, 1), mk(0x9000, 0), mk(0xd000, 1)];
        let actions = run_pass(&samples);
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], PolicyAction::Migrate(0x20_0000, _)));
        // Two samples are not enough for a huge page.
        let thin = vec![mk(0x1000, 0), mk(0x5000, 1)];
        assert!(run_pass(&thin).is_empty());
    }

    #[test]
    fn split_pending_forces_4k_granularity() {
        let mk = |off: u64, node: u16| IbsSample {
            vaddr: VirtAddr(0x20_0000 + off),
            accessing_node: NodeId(node),
            thread: node,
            home_node: NodeId(0),
            from_dram: true,
            is_store: false,
            page_size: PageSize::Size2M,
            walk_remote_steps: 0,
        };
        // Sub-page 0x20_1000 is private to node 1; sub-page 0x20_5000 to
        // node 2: after the split they should be migrated individually.
        let samples = vec![mk(0x1000, 1), mk(0x1040, 1), mk(0x5000, 2), mk(0x5040, 2)];
        let machine = MachineSpec::machine_a();
        let counters = needy_counters();
        let mut ctx = EpochCtx::new(&machine, &counters, &samples, ThpControls::thp(), 0);
        let mut c = Carrefour::new();
        let pending: BTreeSet<u64> = [0x20_0000u64].into();
        c.placement_pass(&mut ctx, &pending, &BTreeSet::new(), &BTreeSet::new());
        let actions = ctx.take_actions();
        assert_eq!(
            actions,
            vec![
                PolicyAction::Migrate(0x20_1000, NodeId(1)),
                PolicyAction::Migrate(0x20_5000, NodeId(2)),
            ]
        );
    }
}
