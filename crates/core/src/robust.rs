//! Failure handling for Carrefour-LP: bounded retry with exponential
//! backoff, and circuit breakers that disable a misbehaving component.
//!
//! The kernel module the paper describes runs in an environment where
//! migrations fail (`-EBUSY` pins, allocation failures) routinely; a
//! placement daemon that retries immediately re-fails against the same
//! pin, and one that never retries silently loses its placement work.
//! The machinery here is deliberately epoch-granular — Carrefour-LP only
//! wakes once per monitoring interval, so backoff is measured in epochs,
//! and a breaker that trips mirrors Algorithm 1's own enable/disable
//! hysteresis: when most of a component's actions fail, the component is
//! cheaper to pause than to keep feeding a failing syscall path.
//!
//! Everything here is pure bookkeeping over the [`FailedAction`] feedback
//! the engine delivers on fault-injected runs; on fault-free runs the
//! feedback is empty and both structures are provably inert.

use crate::config::RobustnessConfig;
use engine::{FailedAction, PolicyAction};
use std::collections::BTreeMap;

/// A stable identity for a retryable action: the address it targets plus
/// a class tag, so a `Split` and a `Migrate` of the same page are tracked
/// independently.
fn retry_key(action: &PolicyAction) -> Option<(u8, u64)> {
    match *action {
        PolicyAction::Migrate(v, _) => Some((0, v)),
        PolicyAction::Split(v) => Some((1, v)),
        PolicyAction::SplitScatter(v) => Some((2, v)),
        PolicyAction::Replicate(v) => Some((3, v)),
        PolicyAction::MigrateTables(v, _) => Some((4, v)),
        // THP toggles cannot fail, and a table-replication sweep absorbs
        // its own allocation failures; none is ever enqueued.
        PolicyAction::SetThpAlloc(_)
        | PolicyAction::SetThpPromote(_)
        | PolicyAction::ReplicateTables => None,
    }
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    action: PolicyAction,
    /// Failed attempts so far (≥ 1; entries exist only after a failure).
    attempts: u32,
    /// First epoch at which the action may be re-issued.
    due: u32,
    /// Whether the action was re-issued and is awaiting its verdict.
    in_flight: bool,
}

/// Bounded retry queue with epoch-granularity exponential backoff.
///
/// Lifecycle of one action: issued by the policy → fails → enqueued with
/// `attempts = 1`, due after `backoff_base_epochs` → re-issued when due
/// (marked in-flight) → either absent from the next failure report
/// (success: dequeued) or present again (backoff doubles) → abandoned
/// after `max_retries` failed attempts.
#[derive(Clone, Debug, Default)]
pub struct RetryQueue {
    cfg: RobustnessConfig,
    pending: BTreeMap<(u8, u64), Pending>,
    /// Actions given up on after `max_retries` attempts.
    pub abandoned: u64,
}

impl RetryQueue {
    /// Creates an empty queue.
    pub fn new(cfg: RobustnessConfig) -> Self {
        RetryQueue {
            cfg,
            pending: BTreeMap::new(),
            abandoned: 0,
        }
    }

    /// Number of actions awaiting a retry.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is awaiting a retry.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Digests one epoch's failure report (the engine's feedback about the
    /// *previous* epoch). In-flight entries that did not fail again have
    /// succeeded and are dequeued; fresh or re-failed retryable actions are
    /// (re)scheduled with doubled backoff; exhausted ones are abandoned.
    pub fn absorb_failures(&mut self, epoch: u32, failed: &[FailedAction]) {
        // Success detection first: an in-flight entry absent from this
        // report went through.
        let failed_keys: Vec<(u8, u64)> =
            failed.iter().filter_map(|f| retry_key(&f.action)).collect();
        self.pending.retain(|key, p| {
            if p.in_flight && !failed_keys.contains(key) {
                return false; // succeeded
            }
            true
        });

        for f in failed {
            if !f.error.is_retryable() {
                // `Gone` means the world moved on (page unmapped or
                // already split); drop any pending entry too.
                if let Some(key) = retry_key(&f.action) {
                    self.pending.remove(&key);
                }
                continue;
            }
            let Some(key) = retry_key(&f.action) else {
                continue;
            };
            let base = self.cfg.backoff_base_epochs.max(1);
            let max_retries = self.cfg.max_retries;
            let entry = self.pending.entry(key).or_insert(Pending {
                action: f.action,
                attempts: 0,
                due: 0,
                in_flight: false,
            });
            entry.attempts += 1;
            entry.in_flight = false;
            if entry.attempts >= max_retries {
                self.pending.remove(&key);
                self.abandoned += 1;
                continue;
            }
            // Exponential: base, 2*base, 4*base, ...
            entry.due = epoch + (base << (entry.attempts - 1));
        }
    }

    /// Actions whose backoff has elapsed, marked in-flight. The caller
    /// re-issues them verbatim this epoch.
    pub fn due(&mut self, epoch: u32) -> Vec<PolicyAction> {
        let mut out = Vec::new();
        for p in self.pending.values_mut() {
            if !p.in_flight && p.due <= epoch {
                p.in_flight = true;
                out.push(p.action);
            }
        }
        out
    }

    /// Serializes the queue's mutable state for a `ckpt-v1` snapshot. Keys
    /// are re-derived from the actions on load, so only the entries travel.
    pub(crate) fn save_into(&self, e: &mut codec::Enc) {
        e.seq(self.pending.values(), |e, p| {
            engine::checkpoint::enc_action(e, &p.action);
            e.u32(p.attempts);
            e.u32(p.due);
            e.bool(p.in_flight);
        });
        e.u64(self.abandoned);
    }

    /// Restores state captured by [`RetryQueue::save_into`].
    pub(crate) fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        let entries = d.seq(|d| Pending {
            action: engine::checkpoint::dec_action(d),
            attempts: d.u32(),
            due: d.u32(),
            in_flight: d.bool(),
        });
        self.pending = entries
            .into_iter()
            .map(|p| {
                let key = retry_key(&p.action).expect("queued actions are retryable");
                (key, p)
            })
            .collect();
        self.abandoned = d.u64();
    }
}

/// A per-component circuit breaker.
///
/// Observes each epoch's (attempted, failed) action counts for one
/// component; when the failure rate of a meaningfully-sized batch exceeds
/// the threshold, the component is disabled for a cool-off period. This
/// is Algorithm 1's enable/disable hysteresis applied to the policy's own
/// health: a component whose actions mostly bounce is burning overhead
/// cycles (Section 4.2's concern) without placing anything.
#[derive(Clone, Debug, Default)]
pub struct CircuitBreaker {
    cfg: RobustnessConfig,
    /// The component stays disabled while `epoch < open_until`.
    open_until: Option<u32>,
    /// Lifetime trip count (for reporting).
    pub trips: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(cfg: RobustnessConfig) -> Self {
        CircuitBreaker {
            cfg,
            open_until: None,
            trips: 0,
        }
    }

    /// Feeds one epoch's outcome; may trip the breaker.
    pub fn observe(&mut self, epoch: u32, attempted: u64, failed: u64) {
        if attempted < self.cfg.breaker_min_actions {
            return;
        }
        if failed as f64 > self.cfg.breaker_failure_rate * attempted as f64 {
            // +1: "open for N epochs" starting from the next one.
            self.open_until = Some(epoch + self.cfg.breaker_cooloff_epochs + 1);
            self.trips += 1;
        }
    }

    /// Whether the component is currently disabled.
    pub fn is_open(&self, epoch: u32) -> bool {
        self.open_until.is_some_and(|until| epoch < until)
    }

    /// Serializes the breaker's mutable state for a `ckpt-v1` snapshot.
    pub(crate) fn save_into(&self, e: &mut codec::Enc) {
        e.opt(&self.open_until, |e, &until| e.u32(until));
        e.u64(self.trips);
    }

    /// Restores state captured by [`CircuitBreaker::save_into`].
    pub(crate) fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        self.open_until = d.opt(|d| d.u32());
        self.trips = d.u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::ActionError;
    use numa_topology::NodeId;

    fn busy(action: PolicyAction) -> FailedAction {
        FailedAction {
            action,
            error: ActionError::Busy,
        }
    }

    #[test]
    fn failed_actions_are_retried_with_backoff() {
        let mut q = RetryQueue::new(RobustnessConfig::default());
        let a = PolicyAction::Migrate(0x20_0000, NodeId(1));
        q.absorb_failures(1, &[busy(a)]);
        assert_eq!(q.len(), 1);
        assert!(q.due(1).is_empty(), "first retry waits one epoch");
        assert_eq!(q.due(2), vec![a]);
        assert!(q.due(2).is_empty(), "in-flight actions are not re-issued");
        // It fails again: backoff doubles (due at 3 + 2 = 5).
        q.absorb_failures(3, &[busy(a)]);
        assert!(q.due(4).is_empty());
        assert_eq!(q.due(5), vec![a]);
    }

    #[test]
    fn success_dequeues_in_flight_actions() {
        let mut q = RetryQueue::new(RobustnessConfig::default());
        let a = PolicyAction::Split(0x40_0000);
        q.absorb_failures(0, &[busy(a)]);
        assert_eq!(q.due(1), vec![a]);
        // Next epoch's report has no failure for it → success.
        q.absorb_failures(2, &[]);
        assert!(q.is_empty());
        assert_eq!(q.abandoned, 0);
    }

    #[test]
    fn retries_are_bounded() {
        let cfg = RobustnessConfig::default(); // max_retries = 3
        let mut q = RetryQueue::new(cfg);
        let a = PolicyAction::Migrate(0x20_0000, NodeId(2));
        q.absorb_failures(0, &[busy(a)]);
        q.absorb_failures(2, &[busy(a)]);
        assert_eq!(q.len(), 1);
        // Third failure exhausts the budget.
        q.absorb_failures(5, &[busy(a)]);
        assert!(q.is_empty());
        assert_eq!(q.abandoned, 1);
    }

    #[test]
    fn gone_actions_are_never_retried() {
        let mut q = RetryQueue::new(RobustnessConfig::default());
        let a = PolicyAction::Replicate(0x60_0000);
        q.absorb_failures(
            0,
            &[FailedAction {
                action: a,
                error: ActionError::Gone,
            }],
        );
        assert!(q.is_empty());
        assert_eq!(q.abandoned, 0, "gone is not an exhausted retry");
    }

    #[test]
    fn toggles_are_not_retryable() {
        let mut q = RetryQueue::new(RobustnessConfig::default());
        q.absorb_failures(0, &[busy(PolicyAction::SetThpAlloc(true))]);
        assert!(q.is_empty());
    }

    #[test]
    fn breaker_trips_on_high_failure_rates_only() {
        let cfg = RobustnessConfig::default(); // rate 0.5, min 8, cooloff 4
        let mut b = CircuitBreaker::new(cfg);
        b.observe(0, 20, 8); // 40 % — fine
        assert!(!b.is_open(1));
        b.observe(1, 20, 11); // 55 % — trip
        assert!(b.is_open(2));
        assert!(b.is_open(5), "open through the cool-off window");
        assert!(!b.is_open(6), "closes after the cool-off");
        assert_eq!(b.trips, 1);
    }

    #[test]
    fn breaker_ignores_tiny_batches() {
        let mut b = CircuitBreaker::new(RobustnessConfig::default());
        b.observe(0, 3, 3); // 100 % of 3 — below min_actions
        assert!(!b.is_open(1));
    }
}
