//! Thresholds and tunables for Carrefour and Carrefour-LP.

use serde::{Deserialize, Serialize};

/// Tunables of the baseline Carrefour algorithm.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CarrefourConfig {
    /// Minimum DRAM-serviced samples before a page is acted on.
    pub min_samples_per_page: usize,
    /// Engage when the epoch LAR falls below this value, in `[0, 1]`.
    pub lar_enable_below: f64,
    /// Engage when controller imbalance exceeds this percentage.
    pub imbalance_enable_above: f64,
    /// Only engage on memory-intensive phases: DRAM accesses per retired
    /// memory operation must exceed this.
    pub intensity_min_dram_per_op: f64,
    /// Rate limit: at most this many page migrations per epoch.
    pub max_migrations_per_epoch: usize,
    /// Enable read-only page replication for multi-node pages with no
    /// sampled stores (the original Carrefour's third mechanism; off by
    /// default because this paper's description of Carrefour covers only
    /// migration and interleaving).
    pub enable_replication: bool,
}

impl Default for CarrefourConfig {
    fn default() -> Self {
        CarrefourConfig {
            min_samples_per_page: 2,
            lar_enable_below: 0.80,
            imbalance_enable_above: 35.0,
            intensity_min_dram_per_op: 0.001,
            max_migrations_per_epoch: 4096,
            enable_replication: false,
        }
    }
}

/// Tunables of Carrefour-LP's failure handling: bounded retry with
/// epoch-granularity exponential backoff, plus per-component circuit
/// breakers (the same enable/disable philosophy as Algorithm 1's
/// thresholds, applied to the policy's own action-failure rate).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RobustnessConfig {
    /// Give up on an action after this many failed attempts.
    pub max_retries: u32,
    /// First retry waits this many epochs; each further attempt doubles
    /// the wait (`base`, `2*base`, `4*base`, ...).
    pub backoff_base_epochs: u32,
    /// Trip a component's breaker when more than this fraction of its
    /// epoch's actions failed, in `[0, 1]`.
    pub breaker_failure_rate: f64,
    /// Never trip on fewer than this many attempted actions (small epochs
    /// are statistically meaningless).
    pub breaker_min_actions: u64,
    /// A tripped breaker keeps its component disabled for this many epochs.
    pub breaker_cooloff_epochs: u32,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            max_retries: 3,
            backoff_base_epochs: 1,
            breaker_failure_rate: 0.5,
            breaker_min_actions: 8,
            breaker_cooloff_epochs: 4,
        }
    }
}

/// Algorithm 1's thresholds, exactly as the paper sets them.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LpThresholds {
    /// Line 4: re-enable 2 MiB allocation + promotion when more than this
    /// fraction of L2 misses come from page-table walks (paper: 5 %).
    pub walk_miss_enable: f64,
    /// Line 7: re-enable 2 MiB allocation when any core spends more than
    /// this fraction of its time in the fault handler (paper: 5 %).
    pub fault_time_enable: f64,
    /// Line 10: skip splitting when Carrefour alone is predicted to improve
    /// the LAR by more than this many percentage points (paper: 15 %).
    pub carrefour_gain_pp: f64,
    /// Line 12: split when Carrefour *with splitting* is predicted to gain
    /// at least this many percentage points (paper: 5 %).
    pub split_gain_pp: f64,
    /// Line 19: split-and-interleave pages receiving more than this
    /// fraction of sampled accesses (paper: 6 %, Section 3.1 footnote).
    pub hot_page_fraction: f64,
}

impl Default for LpThresholds {
    fn default() -> Self {
        LpThresholds {
            walk_miss_enable: 0.05,
            fault_time_enable: 0.05,
            carrefour_gain_pp: 15.0,
            split_gain_pp: 5.0,
            hot_page_fraction: profiling::metrics::HOT_PAGE_FRACTION,
        }
    }
}

/// The complete tunable surface of Carrefour-LP in one serializable value:
/// Algorithm 1's thresholds, the underlying Carrefour's engagement knobs,
/// and PR 1's retry/backoff constants. This is the coordinate the `sweep`
/// binary searches over (ROADMAP item 4) and the payload a
/// `carrefour_bench::runner::CellSpec` carries to parameterize a cell.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LpParams {
    /// Algorithm 1's enable/split thresholds.
    pub thresholds: LpThresholds,
    /// Baseline Carrefour engagement and rate-limit knobs.
    pub carrefour: CarrefourConfig,
    /// Retry/backoff/circuit-breaker constants.
    pub robustness: RobustnessConfig,
}

impl LpParams {
    /// The winning configuration of the threshold sweep
    /// (`results/SWEEP_lp.json`, EXPERIMENTS.md "Threshold sweep"): the
    /// paper's thresholds with a *more patient* reactive split gate
    /// (split only on predicted gains ≥ 7.5 pp instead of 5), an earlier
    /// imbalance trigger (25 % instead of 35), and a doubled migration
    /// rate limit. On the sweep's 16 (machine × benchmark) scenarios this
    /// sits on the Pareto frontier with zero worst-case regression.
    /// Checked in as the `carrefour-lp-tuned` preset with its own golden
    /// cell.
    pub fn tuned() -> Self {
        LpParams {
            thresholds: LpThresholds {
                walk_miss_enable: 0.05,
                fault_time_enable: 0.05,
                carrefour_gain_pp: 15.0,
                split_gain_pp: 7.5,
                hot_page_fraction: 0.06,
            },
            carrefour: CarrefourConfig {
                min_samples_per_page: 2,
                lar_enable_below: 0.80,
                imbalance_enable_above: 25.0,
                intensity_min_dram_per_op: 0.001,
                max_migrations_per_epoch: 8192,
                enable_replication: false,
            },
            robustness: RobustnessConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let t = LpThresholds::default();
        assert!((t.walk_miss_enable - 0.05).abs() < 1e-12);
        assert!((t.fault_time_enable - 0.05).abs() < 1e-12);
        assert!((t.carrefour_gain_pp - 15.0).abs() < 1e-12);
        assert!((t.split_gain_pp - 5.0).abs() < 1e-12);
        assert!((t.hot_page_fraction - 0.06).abs() < 1e-12);
    }

    #[test]
    fn carrefour_defaults_are_sane() {
        let c = CarrefourConfig::default();
        assert!(c.min_samples_per_page >= 1);
        assert!(c.lar_enable_below < 1.0);
        assert!(c.imbalance_enable_above > 0.0);
    }
}
