//! Carrefour and Carrefour-LP: NUMA-aware page placement with large-page
//! extensions — the paper's contribution, reimplemented in full.
//!
//! Three layers:
//!
//! * [`Carrefour`] — the baseline placement algorithm from Dashti et al.
//!   (ASPLOS '13), as summarized in Section 3.1 of this paper: gather IBS
//!   samples per page; migrate single-node pages to their accessor,
//!   interleave multi-node pages; engage only when hardware counters show a
//!   NUMA problem (low LAR or high imbalance on a memory-intensive phase).
//!   Run it under small pages and you have *Carrefour-4K*; run it under THP
//!   and you have *Carrefour-2M*.
//! * [`lar`] — the what-if local-access-ratio estimator (Section 3.2.1):
//!   from the same IBS samples, predict the LAR that Carrefour placement
//!   would achieve with the current pages, and with every large page split
//!   into 4 KiB pages. Sampling sparsity makes the split prediction
//!   optimistic — the mis-estimation the paper observed on SSCA.
//! * [`CarrefourLp`] — Algorithm 1: the **reactive** component (split hot
//!   pages; split shared large pages and disable THP when only splitting
//!   can recover locality) plus the **conservative** component (re-enable
//!   THP when walk misses or fault time say large pages would pay off).
//!   The reactive-only and conservative-only variants of Figure 4 are
//!   provided as constructors.
//!
//! # Examples
//!
//! ```
//! use carrefour::{Carrefour, CarrefourLp};
//! use engine::{SimConfig, Simulation};
//! use numa_topology::MachineSpec;
//! use vmem::ThpControls;
//! use workloads::Benchmark;
//!
//! let machine = MachineSpec::machine_a();
//! let config = SimConfig::with_thp(ThpControls::thp());
//! let spec = Benchmark::SpecJbb.spec(&machine);
//! let mut lp = CarrefourLp::new();
//! let result = Simulation::run(&machine, &spec, &config, &mut lp);
//! assert_eq!(result.policy, "carrefour-lp");
//! # let _ = Carrefour::new();
//! ```

mod classic;
mod config;
pub mod lar;
mod lp;
mod robust;
mod tables;

pub use classic::Carrefour;
pub use config::{CarrefourConfig, LpParams, LpThresholds, RobustnessConfig};
pub use lp::CarrefourLp;
pub use robust::{CircuitBreaker, RetryQueue};
pub use tables::{Mitosis, NumaPte, NumaPteConfig};
