//! Integration tests of the policies against real simulations.

use carrefour::{Carrefour, CarrefourConfig, CarrefourLp, LpThresholds};
use engine::{NullPolicy, NumaPolicy, SimConfig, SimResult, Simulation};
use numa_topology::MachineSpec;
use vmem::ThpControls;
use workloads::{AccessPattern, Benchmark, RegionSpec, WorkloadSpec};

fn run(
    machine: &MachineSpec,
    spec: &WorkloadSpec,
    thp: ThpControls,
    policy: &mut dyn NumaPolicy,
) -> SimResult {
    let config = SimConfig::for_machine(machine, thp);
    Simulation::run(machine, spec, &config, policy)
}

/// A skewed workload (everything loader-initialized on node 0).
fn skewed_spec(machine: &MachineSpec) -> WorkloadSpec {
    WorkloadSpec {
        name: "skewed".into(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: 64 << 30,
            bytes: 16 << 20,
            share: 1.0,
            pattern: AccessPattern::SharedUniform,
            alloc_skew: 1.0,
            loader_headers: 0.0,
            rw_shared: false,
            read_only: false,
        }],
        ops_per_round: 800,
        compute_rounds: 30,
        think_cycles_per_op: 10,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    }
}

#[test]
fn carrefour_interleaves_a_skewed_heap() {
    // Under THP the skewed heap is a handful of huge pages, each sampled
    // densely enough for Carrefour to interleave within an epoch or two.
    // (At 4 KiB granularity the same fix needs minutes of samples — the
    // sample-starvation limit the paper discusses in Section 4.3.)
    let machine = MachineSpec::machine_a();
    let spec = skewed_spec(&machine);
    let base = run(&machine, &spec, ThpControls::thp(), &mut NullPolicy);
    let fixed = run(&machine, &spec, ThpControls::thp(), &mut Carrefour::new());
    assert!(base.lifetime.imbalance > 100.0);
    // The lifetime number still contains the pre-fix epochs; the steady
    // state is what must be balanced.
    let late = &fixed.epochs[fixed.epochs.len() * 3 / 4..];
    let steady = late.iter().map(|e| e.counters.imbalance()).sum::<f64>() / late.len() as f64;
    // Random interleaving of a handful of huge pages is inherently lumpy
    // (8 pages over 4 nodes); the bar is a large improvement, not zero.
    assert!(
        steady < base.lifetime.imbalance / 2.0,
        "steady-state imbalance {steady:.1} vs skewed {:.1}",
        base.lifetime.imbalance
    );
    assert!(fixed.runtime_cycles < base.runtime_cycles);
    assert!(fixed.lifetime.vmem.migrations_2m > 0);
}

#[test]
fn carrefour_stays_idle_on_healthy_workloads() {
    // The enable thresholds must keep Carrefour quiet when LAR is high and
    // the controllers are balanced (the "only enabled if NUMA problems are
    // detected" property).
    let machine = MachineSpec::machine_a();
    let spec = WorkloadSpec {
        name: "healthy".into(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: 64 << 30,
            bytes: (machine.total_cores() as u64) << 21,
            share: 1.0,
            pattern: AccessPattern::PrivateBlocked {
                block_bytes: 256 * 1024,
                dwell_ops: 1500,
            },
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: false,
            read_only: false,
        }],
        ops_per_round: 800,
        compute_rounds: 20,
        think_cycles_per_op: 20,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    };
    let r = run(&machine, &spec, ThpControls::thp(), &mut Carrefour::new());
    assert_eq!(
        r.lifetime.vmem.migrations_4k + r.lifetime.vmem.migrations_2m,
        0,
        "no NUMA problem, no migrations"
    );
}

#[test]
fn lp_split_history_prevents_oscillation() {
    // On a falsely-shared workload the mis-estimation keeps predicting a
    // split gain; LP must split each page at most once even with the
    // conservative component re-enabling promotion throughout.
    let machine = MachineSpec::machine_a();
    let spec = WorkloadSpec {
        name: "oscillate-bait".into(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: 64 << 30,
            bytes: 8 << 20,
            share: 1.0,
            pattern: AccessPattern::SharedUniform,
            alloc_skew: 0.0,
            loader_headers: 0.3,
            rw_shared: false,
            read_only: false,
        }],
        ops_per_round: 800,
        compute_rounds: 60,
        think_cycles_per_op: 5,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    };
    let r = run(&machine, &spec, ThpControls::thp(), &mut CarrefourLp::new());
    let pages_2m = (8 << 20) / (2 << 20);
    assert!(
        r.lifetime.vmem.splits <= pages_2m,
        "{} splits for {} huge pages — oscillation",
        r.lifetime.vmem.splits,
        pages_2m
    );
}

#[test]
fn never_split_thresholds_degenerate_to_carrefour_2m() {
    let machine = MachineSpec::machine_b();
    let spec = Benchmark::UaB.spec(&machine);
    let thresholds = LpThresholds {
        split_gain_pp: 1e9,
        carrefour_gain_pp: 1e9,
        hot_page_fraction: 2.0, // > 1: no page can qualify
        ..LpThresholds::default()
    };
    let config = SimConfig::for_machine(&machine, ThpControls::thp());
    let mut lp = CarrefourLp::new().with_thresholds(thresholds);
    let lp_r = Simulation::run(&machine, &spec, &config, &mut lp);
    // Hot-page splitting is also gated on imbalance, and UA is not
    // imbalanced enough — with unreachable thresholds nothing splits.
    assert_eq!(lp_r.lifetime.vmem.splits, 0);
}

#[test]
fn custom_carrefour_config_throttles_migrations() {
    let machine = MachineSpec::machine_a();
    let spec = skewed_spec(&machine);
    let throttled_cfg = CarrefourConfig {
        max_migrations_per_epoch: 2,
        ..CarrefourConfig::default()
    };
    let mut throttled = Carrefour::with_config(throttled_cfg, 7);
    let config = SimConfig::for_machine(&machine, ThpControls::small_only());
    let r = Simulation::run(&machine, &spec, &config, &mut throttled);
    let epochs = r.epochs.len() as u64;
    assert!(
        r.lifetime.vmem.migrations_4k + r.lifetime.vmem.migrations_2m <= 2 * epochs,
        "budget must bound migrations"
    );
}

#[test]
fn conservative_only_enables_thp_for_fault_bound_apps() {
    // WC under conservative-only: starts at 4 KiB, and the >5% fault-time
    // trigger must enable 2 MiB allocation at some point.
    let machine = MachineSpec::machine_b();
    let spec = Benchmark::Wc.spec(&machine);
    let config = SimConfig::for_machine(&machine, ThpControls::small_only());
    let mut policy = CarrefourLp::conservative_only();
    let r = Simulation::run(&machine, &spec, &config, &mut policy);
    assert!(
        r.epochs.iter().any(|e| e.thp_alloc_enabled),
        "fault pressure must re-enable 2 MiB allocation"
    );
}

#[test]
fn lp_and_ablations_have_stable_names() {
    assert_eq!(CarrefourLp::new().name(), "carrefour-lp");
    assert_eq!(CarrefourLp::reactive_only().name(), "reactive");
    assert_eq!(CarrefourLp::conservative_only().name(), "conservative");
    assert_eq!(Carrefour::new().name(), "carrefour");
}
