//! Point-to-point interconnect graph and shortest-path routing.
//!
//! NUMA nodes are connected by directed links (a physical HyperTransport
//! cable is modelled as two directed links, one per direction, because the
//! two directions carry independent traffic). Routes are shortest paths
//! computed with BFS; ties are broken deterministically by preferring the
//! lowest-numbered next hop, which mirrors the static routing tables of real
//! Opteron systems.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a directed interconnect link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LinkId(pub u16);

impl LinkId {
    /// Returns the link id as a `usize` index, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A route between two nodes: the ordered list of directed links traversed.
///
/// A route between a node and itself is empty.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Route {
    links: Vec<LinkId>,
}

impl Route {
    /// Number of interconnect hops on this route.
    #[inline]
    pub fn hops(&self) -> u32 {
        self.links.len() as u32
    }

    /// The directed links traversed, in order.
    #[inline]
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }
}

/// The interconnect: a directed link graph plus precomputed all-pairs routes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Interconnect {
    num_nodes: usize,
    /// `endpoints[l]` = (source node, destination node) of directed link `l`.
    endpoints: Vec<(NodeId, NodeId)>,
    /// `routes[src * num_nodes + dst]`.
    routes: Vec<Route>,
}

impl Interconnect {
    /// Builds an interconnect from an undirected adjacency list.
    ///
    /// Each `(a, b)` pair creates two directed links, `a -> b` and `b -> a`.
    /// Routes are then precomputed for every ordered node pair.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= num_nodes`, if an edge is a
    /// self-loop, or if the resulting graph is not connected (a NUMA machine
    /// with unreachable memory is not a meaningful configuration).
    pub fn new(num_nodes: usize, undirected_edges: &[(usize, usize)]) -> Self {
        assert!(num_nodes > 0, "interconnect needs at least one node");
        let mut endpoints = Vec::with_capacity(undirected_edges.len() * 2);
        // `adj[n]` = list of (neighbor, link id used to reach it).
        let mut adj: Vec<Vec<(usize, LinkId)>> = vec![Vec::new(); num_nodes];
        for &(a, b) in undirected_edges {
            assert!(
                a < num_nodes && b < num_nodes,
                "edge ({a},{b}) out of range"
            );
            assert_ne!(a, b, "self-loop edge on node {a}");
            let fwd = LinkId(endpoints.len() as u16);
            endpoints.push((NodeId::from(a), NodeId::from(b)));
            let rev = LinkId(endpoints.len() as u16);
            endpoints.push((NodeId::from(b), NodeId::from(a)));
            adj[a].push((b, fwd));
            adj[b].push((a, rev));
        }
        // Deterministic tie-break: explore lowest-numbered neighbors first.
        for list in &mut adj {
            list.sort_by_key(|&(n, _)| n);
        }

        let mut routes = vec![Route::default(); num_nodes * num_nodes];
        for src in 0..num_nodes {
            // BFS from `src`, recording the (parent, link) tree.
            let mut parent: Vec<Option<(usize, LinkId)>> = vec![None; num_nodes];
            let mut visited = vec![false; num_nodes];
            visited[src] = true;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(src);
            while let Some(n) = queue.pop_front() {
                for &(next, link) in &adj[n] {
                    if !visited[next] {
                        visited[next] = true;
                        parent[next] = Some((n, link));
                        queue.push_back(next);
                    }
                }
            }
            for dst in 0..num_nodes {
                if dst == src {
                    continue;
                }
                assert!(
                    visited[dst],
                    "interconnect graph is disconnected: {dst} unreachable from {src}"
                );
                let mut links = Vec::new();
                let mut cur = dst;
                while cur != src {
                    let (prev, link) = parent[cur].expect("BFS parent missing");
                    links.push(link);
                    cur = prev;
                }
                links.reverse();
                routes[src * num_nodes + dst] = Route { links };
            }
        }

        Interconnect {
            num_nodes,
            endpoints,
            routes,
        }
    }

    /// Builds a fully-connected interconnect (every node pair is one hop).
    pub fn full_mesh(num_nodes: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..num_nodes {
            for b in (a + 1)..num_nodes {
                edges.push((a, b));
            }
        }
        Interconnect::new(num_nodes, &edges)
    }

    /// Number of nodes in the graph.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed links in the graph.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.endpoints.len()
    }

    /// Source and destination nodes of a directed link.
    #[inline]
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
        self.endpoints[link.index()]
    }

    /// The precomputed shortest route from `src` to `dst`.
    #[inline]
    pub fn route(&self, src: NodeId, dst: NodeId) -> &Route {
        &self.routes[src.index() * self.num_nodes + dst.index()]
    }

    /// Number of hops between two nodes (0 if they are the same node).
    #[inline]
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        self.route(src, dst).hops()
    }

    /// The largest hop count between any node pair (the network diameter).
    pub fn diameter(&self) -> u32 {
        self.routes.iter().map(Route::hops).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from(i)
    }

    #[test]
    fn full_mesh_is_one_hop() {
        let ic = Interconnect::full_mesh(4);
        assert_eq!(ic.num_nodes(), 4);
        assert_eq!(ic.num_links(), 4 * 3);
        for a in 0..4usize {
            for b in 0..4usize {
                let expect = u32::from(a != b);
                assert_eq!(ic.hops(n(a), n(b)), expect);
            }
        }
        assert_eq!(ic.diameter(), 1);
    }

    #[test]
    fn line_graph_routes_are_shortest() {
        // 0 - 1 - 2 - 3
        let ic = Interconnect::new(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(ic.hops(n(0), n(3)), 3);
        assert_eq!(ic.hops(n(3), n(0)), 3);
        assert_eq!(ic.hops(n(1), n(2)), 1);
        assert_eq!(ic.diameter(), 3);
    }

    #[test]
    fn routes_traverse_consistent_links() {
        let ic = Interconnect::new(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let route = ic.route(n(0), n(2));
        assert_eq!(route.hops(), 2);
        // The route must form a connected chain from 0 to 2.
        let mut at = NodeId(0);
        for &l in route.links() {
            let (src, dst) = ic.link_endpoints(l);
            assert_eq!(src, at);
            at = dst;
        }
        assert_eq!(at, NodeId(2));
    }

    #[test]
    fn self_route_is_empty() {
        let ic = Interconnect::full_mesh(3);
        assert_eq!(ic.route(n(1), n(1)).hops(), 0);
        assert!(ic.route(n(1), n(1)).links().is_empty());
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_graph_panics() {
        let _ = Interconnect::new(4, &[(0, 1), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = Interconnect::new(2, &[(0, 0), (0, 1)]);
    }

    #[test]
    fn routing_is_deterministic() {
        let a = Interconnect::new(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let b = Interconnect::new(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        for s in 0..5usize {
            for d in 0..5usize {
                assert_eq!(a.route(n(s), n(d)), b.route(n(s), n(d)));
            }
        }
    }
}
