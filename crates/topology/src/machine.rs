//! Machine specifications: node/core layout plus the paper's two presets.

use crate::ids::{CoreId, NodeId};
use crate::interconnect::Interconnect;
use serde::{Deserialize, Serialize};

/// Per-node hardware description.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Number of cores on this node.
    pub cores: u16,
    /// Bytes of DRAM attached to this node's memory controller.
    pub dram_bytes: u64,
}

/// A full NUMA machine description.
///
/// A `MachineSpec` is pure data: it has no behaviour beyond lookups. The
/// memory-system and virtual-memory simulators are configured from it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MachineSpec {
    name: String,
    clock_ghz: f64,
    nodes: Vec<NodeSpec>,
    topology: Interconnect,
    /// `core_node[c]` = node hosting global core `c`.
    core_node: Vec<NodeId>,
}

impl MachineSpec {
    /// Builds a machine from homogeneous nodes.
    ///
    /// Cores are numbered node-major: node 0 owns cores `0..cores_per_node`,
    /// node 1 the next block, and so on — matching how the paper's machines
    /// expose cores to the OS.
    ///
    /// # Panics
    ///
    /// Panics if `topology.num_nodes()` does not match `num_nodes`, or if any
    /// count is zero.
    pub fn homogeneous(
        name: impl Into<String>,
        clock_ghz: f64,
        num_nodes: usize,
        cores_per_node: u16,
        dram_bytes_per_node: u64,
        topology: Interconnect,
    ) -> Self {
        assert!(num_nodes > 0, "machine needs at least one node");
        assert!(cores_per_node > 0, "nodes need at least one core");
        assert!(clock_ghz > 0.0, "clock must be positive");
        assert_eq!(
            topology.num_nodes(),
            num_nodes,
            "interconnect size must match node count"
        );
        let nodes = vec![
            NodeSpec {
                cores: cores_per_node,
                dram_bytes: dram_bytes_per_node,
            };
            num_nodes
        ];
        let mut core_node = Vec::with_capacity(num_nodes * cores_per_node as usize);
        for n in 0..num_nodes {
            for _ in 0..cores_per_node {
                core_node.push(NodeId::from(n));
            }
        }
        MachineSpec {
            name: name.into(),
            clock_ghz,
            nodes,
            topology,
            core_node,
        }
    }

    /// "Machine A" from the paper: two 1.7 GHz AMD Opteron 6164 HE packages
    /// (Magny-Cours), 4 NUMA nodes × 6 cores × 16 GB, HyperTransport 3.0.
    ///
    /// Each package holds two dies; the four dies are fully connected (in the
    /// real machine one pair is connected at half link width, which we fold
    /// into the uniform per-hop latency).
    pub fn machine_a() -> Self {
        MachineSpec::homogeneous("machine-a", 1.7, 4, 6, 16 << 30, Interconnect::full_mesh(4))
    }

    /// "Machine B" from the paper: four AMD Opteron 6272 packages
    /// (Interlagos), 8 NUMA nodes × 8 cores × 64 GB, HyperTransport 3.0.
    ///
    /// The dies form the twisted-ladder topology typical of 4-package G34
    /// boards: intra-package links plus a partial mesh between packages, with
    /// a network diameter of 2 hops.
    pub fn machine_b() -> Self {
        // Nodes 2k and 2k+1 are the two dies of package k.
        let edges = [
            // Intra-package links.
            (0, 1),
            (2, 3),
            (4, 5),
            (6, 7),
            // Inter-package ladder (each die reaches two remote packages).
            (0, 2),
            (0, 4),
            (1, 3),
            (1, 5),
            (2, 6),
            (3, 7),
            (4, 6),
            (5, 7),
            (2, 4),
            (3, 5),
            // Diagonals that give the real machine its 2-hop diameter.
            (0, 6),
            (1, 7),
        ];
        MachineSpec::homogeneous(
            "machine-b",
            2.1,
            8,
            8,
            64 << 30,
            Interconnect::new(8, &edges),
        )
    }

    /// A tiny two-node machine, convenient for unit tests.
    pub fn test_machine() -> Self {
        MachineSpec::homogeneous("test-2node", 2.0, 2, 2, 1 << 30, Interconnect::full_mesh(2))
    }

    /// Human-readable machine name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Core clock frequency in GHz; used to convert cycles to wall time.
    #[inline]
    pub fn clock_ghz(&self) -> f64 {
        self.clock_ghz
    }

    /// Converts a cycle count to milliseconds at this machine's clock.
    #[inline]
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e6)
    }

    /// Converts milliseconds to cycles at this machine's clock.
    #[inline]
    pub fn ms_to_cycles(&self, ms: f64) -> u64 {
        (ms * self.clock_ghz * 1e6) as u64
    }

    /// Number of NUMA nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Per-node specifications.
    #[inline]
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Total number of cores across the machine.
    #[inline]
    pub fn total_cores(&self) -> usize {
        self.core_node.len()
    }

    /// Total DRAM across all nodes, in bytes.
    #[inline]
    pub fn total_dram_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.dram_bytes).sum()
    }

    /// The node hosting a given core.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    #[inline]
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        self.core_node[core.index()]
    }

    /// Global ids of the cores on a given node.
    pub fn cores_of_node(&self, node: NodeId) -> impl Iterator<Item = CoreId> + '_ {
        self.core_node
            .iter()
            .enumerate()
            .filter(move |&(_, &n)| n == node)
            .map(|(i, _)| CoreId::from(i))
    }

    /// The interconnect graph and routing tables.
    #[inline]
    pub fn topology(&self) -> &Interconnect {
        &self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_a_matches_paper() {
        let m = MachineSpec::machine_a();
        assert_eq!(m.num_nodes(), 4);
        assert_eq!(m.total_cores(), 24);
        assert_eq!(m.total_dram_bytes(), 64 << 30);
        assert_eq!(m.topology().diameter(), 1);
        assert!((m.clock_ghz() - 1.7).abs() < 1e-9);
    }

    #[test]
    fn machine_b_matches_paper() {
        let m = MachineSpec::machine_b();
        assert_eq!(m.num_nodes(), 8);
        assert_eq!(m.total_cores(), 64);
        assert_eq!(m.total_dram_bytes(), 512 << 30);
        // The twisted ladder keeps every node within 2 hops.
        assert_eq!(m.topology().diameter(), 2);
    }

    #[test]
    fn cores_are_node_major() {
        let m = MachineSpec::machine_a();
        assert_eq!(m.node_of_core(CoreId(0)), NodeId(0));
        assert_eq!(m.node_of_core(CoreId(5)), NodeId(0));
        assert_eq!(m.node_of_core(CoreId(6)), NodeId(1));
        assert_eq!(m.node_of_core(CoreId(23)), NodeId(3));
    }

    #[test]
    fn cores_of_node_is_inverse_of_node_of_core() {
        let m = MachineSpec::machine_b();
        for n in 0..m.num_nodes() {
            let node = NodeId::from(n);
            let cores: Vec<_> = m.cores_of_node(node).collect();
            assert_eq!(cores.len(), 8);
            for c in cores {
                assert_eq!(m.node_of_core(c), node);
            }
        }
    }

    #[test]
    fn cycle_time_conversions_roundtrip() {
        let m = MachineSpec::machine_b();
        let cycles = 2_100_000; // 1 ms at 2.1 GHz.
        assert!((m.cycles_to_ms(cycles) - 1.0).abs() < 1e-9);
        assert_eq!(m.ms_to_cycles(1.0), cycles);
    }

    #[test]
    fn test_machine_is_small() {
        let m = MachineSpec::test_machine();
        assert_eq!(m.num_nodes(), 2);
        assert_eq!(m.total_cores(), 4);
    }
}
