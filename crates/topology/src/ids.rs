//! Strongly-typed identifiers for NUMA nodes and CPU cores.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a NUMA node (a die with its local memory controller).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Returns the node id as a `usize` index, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize, "node id out of range: {v}");
        NodeId(v as u16)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a CPU core, global across the machine.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct CoreId(pub u16);

impl CoreId {
    /// Returns the core id as a `usize` index, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for CoreId {
    fn from(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize, "core id out of range: {v}");
        CoreId(v as u16)
    }
}

impl From<u16> for CoreId {
    fn from(v: u16) -> Self {
        CoreId(v)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n: NodeId = 3usize.into();
        assert_eq!(n.index(), 3);
        assert_eq!(n, NodeId(3));
        assert_eq!(n.to_string(), "node3");
    }

    #[test]
    fn core_id_roundtrip() {
        let c: CoreId = 17usize.into();
        assert_eq!(c.index(), 17);
        assert_eq!(c.to_string(), "core17");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(CoreId(5) < CoreId(6));
    }
}
