//! NUMA machine topology model.
//!
//! This crate describes the *shape* of a cache-coherent NUMA machine: how many
//! nodes it has, how many cores live on each node, how much DRAM each node
//! hosts, and how the nodes are wired together by point-to-point interconnect
//! links (HyperTransport on the AMD Opteron machines used by the paper).
//!
//! The two machine presets from the paper are provided:
//!
//! * [`MachineSpec::machine_a`] — "Machine A": two 1.7 GHz AMD Opteron
//!   6164 HE packages, 24 cores, 4 NUMA nodes, 64 GB of RAM.
//! * [`MachineSpec::machine_b`] — "Machine B": four AMD Opteron 6272
//!   packages, 64 cores, 8 NUMA nodes, 512 GB of RAM.
//!
//! Routing between nodes is computed with breadth-first search over the link
//! graph, yielding a deterministic shortest path per (source, destination)
//! pair. The memory system simulator charges per-hop latency and accounts
//! per-link traffic using these routes.
//!
//! # Examples
//!
//! ```
//! use numa_topology::MachineSpec;
//!
//! let m = MachineSpec::machine_b();
//! assert_eq!(m.num_nodes(), 8);
//! assert_eq!(m.total_cores(), 64);
//! // Remote accesses traverse at least one hop.
//! let hops = m.topology().hops(0usize.into(), 5usize.into());
//! assert!(hops >= 1);
//! ```

mod ids;
mod interconnect;
mod machine;

pub use ids::{CoreId, NodeId};
pub use interconnect::{Interconnect, LinkId, Route};
pub use machine::{MachineSpec, NodeSpec};
