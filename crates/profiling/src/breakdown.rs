//! Cycle attribution: exhaustive, mutually exclusive wall-time buckets.
//!
//! The paper's whole argument is an attribution exercise — IBS and PMU
//! counters showing *where* cycles go when large pages hurt (controller
//! queueing, remote access) versus help (TLB reach, fault cost). The
//! simulator computes every one of those delays internally;
//! [`CycleBreakdown`] is the ledger that keeps them separated instead of
//! collapsing them into one opaque total.
//!
//! The defining property is **conservation**: the engine charges every
//! simulated cycle to exactly one bucket, so [`CycleBreakdown::total`]
//! equals the wall-clock cycles of whatever interval the breakdown covers
//! — exactly, as integers, including under MLP division and per-thread
//! overhead amortization (the engine uses prefix-sum differencing so the
//! integer shares sum to the integer quotient). Tier-1 tests enforce this
//! across every golden configuration and under fault injection.

use serde::{Deserialize, Serialize};

/// Number of buckets in a [`CycleBreakdown`].
pub const BUCKET_COUNT: usize = 19;

/// One interval's wall cycles, split by architectural cause.
///
/// Buckets are mutually exclusive and exhaustive; see DESIGN.md §11 for
/// the precise charging rules and when a bucket may legitimately be zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Think/compute cycles between memory operations.
    pub compute: u64,
    /// L2-TLB probe cycles (charged on L2 hits and on misses that walk).
    pub tlb_lookup: u64,
    /// Data accesses serviced by the L1.
    pub cache_l1: u64,
    /// Data accesses serviced by the L2.
    pub cache_l2: u64,
    /// Data accesses serviced by the shared L3.
    pub cache_l3: u64,
    /// DRAM service time proper (L3-miss detection + array access), after
    /// MLP overlap.
    pub dram_service: u64,
    /// Memory-controller queueing delay, after MLP overlap.
    pub ctrl_queue: u64,
    /// Interconnect time (hop latency + link queueing), after MLP overlap.
    pub interconnect: u64,
    /// Page-walk step references to table frames *local* to the walking
    /// node, on walks whose upper levels hit the paging-structure (walk)
    /// cache.
    pub walk_pwc_hit_local: u64,
    /// Page-walk step references to *remote* table frames on walks whose
    /// upper levels hit the walk cache — the Mitosis/numaPTE target.
    pub walk_pwc_hit_remote: u64,
    /// Page-walk step references to local table frames on full walks
    /// (walk-cache miss).
    pub walk_pwc_miss_local: u64,
    /// Page-walk step references to remote table frames on full walks
    /// (walk-cache miss).
    pub walk_pwc_miss_remote: u64,
    /// Page-fault handling (allocation + lock contention).
    pub fault: u64,
    /// In-line replica-collapse copies triggered by stores to replicated
    /// pages.
    pub replica_collapse: u64,
    /// khugepaged promotion-scan overhead (per-thread share).
    pub khugepaged: u64,
    /// IBS sampling NMI overhead (per-thread share).
    pub ibs_sampling: u64,
    /// Policy page-migration cost (per-thread share).
    pub policy_migration: u64,
    /// Policy split / split-scatter cost, including scatter copies
    /// (per-thread share).
    pub policy_split: u64,
    /// Policy replication cost (per-thread share).
    pub policy_replication: u64,
}

impl CycleBreakdown {
    /// Sum of all buckets — the wall cycles of the covered interval.
    pub fn total(&self) -> u64 {
        self.pairs().iter().map(|&(_, v)| v).sum()
    }

    /// Adds every bucket of `other` into `self`.
    pub fn add(&mut self, other: &CycleBreakdown) {
        self.compute += other.compute;
        self.tlb_lookup += other.tlb_lookup;
        self.cache_l1 += other.cache_l1;
        self.cache_l2 += other.cache_l2;
        self.cache_l3 += other.cache_l3;
        self.dram_service += other.dram_service;
        self.ctrl_queue += other.ctrl_queue;
        self.interconnect += other.interconnect;
        self.walk_pwc_hit_local += other.walk_pwc_hit_local;
        self.walk_pwc_hit_remote += other.walk_pwc_hit_remote;
        self.walk_pwc_miss_local += other.walk_pwc_miss_local;
        self.walk_pwc_miss_remote += other.walk_pwc_miss_remote;
        self.fault += other.fault;
        self.replica_collapse += other.replica_collapse;
        self.khugepaged += other.khugepaged;
        self.ibs_sampling += other.ibs_sampling;
        self.policy_migration += other.policy_migration;
        self.policy_split += other.policy_split;
        self.policy_replication += other.policy_replication;
    }

    /// Every bucket as a `(name, value)` pair, in declaration order. The
    /// single source of truth for serializers and diff reports — a bucket
    /// added to the struct but not here fails the exhaustiveness test.
    pub fn pairs(&self) -> [(&'static str, u64); BUCKET_COUNT] {
        [
            ("compute", self.compute),
            ("tlb_lookup", self.tlb_lookup),
            ("cache_l1", self.cache_l1),
            ("cache_l2", self.cache_l2),
            ("cache_l3", self.cache_l3),
            ("dram_service", self.dram_service),
            ("ctrl_queue", self.ctrl_queue),
            ("interconnect", self.interconnect),
            ("walk_pwc_hit_local", self.walk_pwc_hit_local),
            ("walk_pwc_hit_remote", self.walk_pwc_hit_remote),
            ("walk_pwc_miss_local", self.walk_pwc_miss_local),
            ("walk_pwc_miss_remote", self.walk_pwc_miss_remote),
            ("fault", self.fault),
            ("replica_collapse", self.replica_collapse),
            ("khugepaged", self.khugepaged),
            ("ibs_sampling", self.ibs_sampling),
            ("policy_migration", self.policy_migration),
            ("policy_split", self.policy_split),
            ("policy_replication", self.policy_replication),
        ]
    }

    /// Combined page-walk time (both walk-cache outcomes, both localities).
    pub fn walk_cycles(&self) -> u64 {
        self.walk_local_cycles() + self.walk_remote_cycles()
    }

    /// Page-walk time spent on table frames local to the walking node.
    pub fn walk_local_cycles(&self) -> u64 {
        self.walk_pwc_hit_local + self.walk_pwc_miss_local
    }

    /// Page-walk time spent on remote table frames — the cycles page-table
    /// replication (Mitosis) and migration (numaPTE) exist to remove.
    pub fn walk_remote_cycles(&self) -> u64 {
        self.walk_pwc_hit_remote + self.walk_pwc_miss_remote
    }

    /// Combined DRAM-path time (service + queueing + interconnect).
    pub fn dram_cycles(&self) -> u64 {
        self.dram_service + self.ctrl_queue + self.interconnect
    }

    /// Combined policy-action overhead share.
    pub fn policy_cycles(&self) -> u64 {
        self.policy_migration + self.policy_split + self.policy_replication
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> CycleBreakdown {
        // Distinct primes so any dropped/duplicated bucket changes the sum.
        let mut b = CycleBreakdown::default();
        let primes = [
            2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
        ];
        b.compute = primes[0];
        b.tlb_lookup = primes[1];
        b.cache_l1 = primes[2];
        b.cache_l2 = primes[3];
        b.cache_l3 = primes[4];
        b.dram_service = primes[5];
        b.ctrl_queue = primes[6];
        b.interconnect = primes[7];
        b.walk_pwc_hit_local = primes[8];
        b.walk_pwc_hit_remote = primes[9];
        b.walk_pwc_miss_local = primes[10];
        b.walk_pwc_miss_remote = primes[11];
        b.fault = primes[12];
        b.replica_collapse = primes[13];
        b.khugepaged = primes[14];
        b.ibs_sampling = primes[15];
        b.policy_migration = primes[16];
        b.policy_split = primes[17];
        b.policy_replication = primes[18];
        b
    }

    #[test]
    fn total_sums_every_bucket() {
        let b = filled();
        let expected: u64 = [
            2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
        ]
        .iter()
        .sum();
        assert_eq!(b.total(), expected);
    }

    #[test]
    fn pairs_are_exhaustive_and_uniquely_named() {
        let b = filled();
        let pairs = b.pairs();
        assert_eq!(pairs.len(), BUCKET_COUNT);
        let names: std::collections::BTreeSet<_> = pairs.iter().map(|&(n, _)| n).collect();
        assert_eq!(names.len(), BUCKET_COUNT, "duplicate bucket name");
        // pairs() carries every field: its sum is the struct total.
        let sum: u64 = pairs.iter().map(|&(_, v)| v).sum();
        assert_eq!(sum, b.total());
        // And every value is distinct in the prime fill, so no field is
        // reported twice under two names.
        let values: std::collections::BTreeSet<_> = pairs.iter().map(|&(_, v)| v).collect();
        assert_eq!(values.len(), BUCKET_COUNT);
    }

    #[test]
    fn add_is_fieldwise() {
        let mut a = filled();
        let b = filled();
        a.add(&b);
        assert_eq!(a.total(), 2 * b.total());
        assert_eq!(a.compute, 2 * b.compute);
        assert_eq!(a.policy_replication, 2 * b.policy_replication);
    }

    #[test]
    fn group_helpers_cover_their_buckets() {
        let b = filled();
        assert_eq!(
            b.walk_cycles(),
            b.walk_pwc_hit_local
                + b.walk_pwc_hit_remote
                + b.walk_pwc_miss_local
                + b.walk_pwc_miss_remote
        );
        assert_eq!(
            b.walk_local_cycles(),
            b.walk_pwc_hit_local + b.walk_pwc_miss_local
        );
        assert_eq!(
            b.walk_remote_cycles(),
            b.walk_pwc_hit_remote + b.walk_pwc_miss_remote
        );
        assert_eq!(
            b.dram_cycles(),
            b.dram_service + b.ctrl_queue + b.interconnect
        );
        assert_eq!(
            b.policy_cycles(),
            b.policy_migration + b.policy_split + b.policy_replication
        );
    }
}
