//! Exact per-page access statistics (for the Table 2 metrics).
//!
//! Policies never see these — they only get IBS samples and counters. The
//! exact statistics exist so that experiments can *report* PAMUP, NHP and
//! PSP the way the paper's offline profiling did.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vmem::{VirtAddr, PAGE_4K};

/// Access statistics of one 4 KiB page.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PageCell {
    /// Number of accesses observed.
    pub count: u64,
    /// Bitmask of the (up to 64) thread ids that touched the page.
    pub threads: u64,
}

/// Exact access counts and thread masks at 4 KiB granularity.
///
/// 4 KiB is the finest granularity any policy can act on, so coarser page
/// sizes are derived by aggregation ([`PageAccessStats::aggregate`]).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PageAccessStats {
    cells: HashMap<u64, PageCell>,
    total: u64,
}

impl PageAccessStats {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access by `thread` (ids ≥ 64 share the last mask bit).
    #[inline]
    pub fn record(&mut self, vaddr: VirtAddr, thread: u16) {
        let base = vaddr.align_down(PAGE_4K).0;
        let cell = self.cells.entry(base).or_default();
        cell.count += 1;
        cell.threads |= 1u64 << (thread.min(63));
        self.total += 1;
    }

    /// Total accesses recorded.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct 4 KiB pages touched.
    #[inline]
    pub fn pages_touched(&self) -> usize {
        self.cells.len()
    }

    /// Aggregates the 4 KiB cells to a coarser granularity.
    ///
    /// `container_of` maps a 4 KiB page base to the base of the page that
    /// *currently contains* it (e.g. its 2 MiB huge page base, or itself if
    /// the page is small). Returns `(container_base, count, thread_mask)`
    /// rows sorted by container base.
    pub fn aggregate(&self, container_of: impl Fn(u64) -> u64) -> Vec<(u64, u64, u64)> {
        let mut merged: HashMap<u64, PageCell> = HashMap::with_capacity(self.cells.len());
        for (&base, cell) in &self.cells {
            let c = merged.entry(container_of(base)).or_default();
            c.count += cell.count;
            c.threads |= cell.threads;
        }
        let mut rows: Vec<(u64, u64, u64)> = merged
            .into_iter()
            .map(|(base, cell)| (base, cell.count, cell.threads))
            .collect();
        rows.sort_unstable_by_key(|&(base, _, _)| base);
        rows
    }

    /// Clears all cells (start of a new measurement window).
    pub fn reset(&mut self) {
        self.cells.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_counts_and_threads() {
        let mut s = PageAccessStats::new();
        s.record(VirtAddr(0x1000), 0);
        s.record(VirtAddr(0x1fff), 1);
        s.record(VirtAddr(0x2000), 0);
        assert_eq!(s.total(), 3);
        assert_eq!(s.pages_touched(), 2);
        let rows = s.aggregate(|b| b);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (0x1000, 2, 0b11));
        assert_eq!(rows[1], (0x2000, 1, 0b01));
    }

    #[test]
    fn aggregate_merges_into_containers() {
        let mut s = PageAccessStats::new();
        // Two 4 KiB pages inside the same 2 MiB range, one outside.
        s.record(VirtAddr(0x20_0000), 0);
        s.record(VirtAddr(0x20_1000), 1);
        s.record(VirtAddr(0x40_0000), 2);
        let rows = s.aggregate(|b| b & !(0x20_0000 - 1));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (0x20_0000, 2, 0b11));
        assert_eq!(rows[1], (0x40_0000, 1, 0b100));
    }

    #[test]
    fn high_thread_ids_saturate_mask() {
        let mut s = PageAccessStats::new();
        s.record(VirtAddr(0), 63);
        s.record(VirtAddr(0), 200);
        let rows = s.aggregate(|b| b);
        assert_eq!(rows[0].2, 1u64 << 63);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = PageAccessStats::new();
        s.record(VirtAddr(0x1000), 0);
        s.reset();
        assert_eq!(s.total(), 0);
        assert_eq!(s.pages_touched(), 0);
    }
}
