//! Exact per-page access statistics (for the Table 2 metrics).
//!
//! Policies never see these — they only get IBS samples and counters. The
//! exact statistics exist so that experiments can *report* PAMUP, NHP and
//! PSP the way the paper's offline profiling did.

use serde::{Deserialize, Serialize};
use vmem::hash::FastMap;
use vmem::{VirtAddr, PAGE_4K};

/// Access statistics of one 4 KiB page.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PageCell {
    /// Number of accesses observed.
    pub count: u64,
    /// Bitmask of the (up to 64) thread ids that touched the page.
    pub threads: u64,
}

/// Exact access counts and thread masks at 4 KiB granularity.
///
/// 4 KiB is the finest granularity any policy can act on, so coarser page
/// sizes are derived by aggregation ([`PageAccessStats::aggregate`]).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PageAccessStats {
    /// Keyed by 4 KiB page base. Uses the simulator's fast deterministic
    /// hasher: `record` runs once per simulated access, and the default
    /// SipHash dominated its cost. Bucket order never leaks — `aggregate`
    /// sorts its rows.
    cells: FastMap<u64, PageCell>,
    total: u64,
}

impl PageAccessStats {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access by `thread` (ids ≥ 64 share the last mask bit).
    #[inline]
    pub fn record(&mut self, vaddr: VirtAddr, thread: u16) {
        let base = vaddr.align_down(PAGE_4K).0;
        let cell = self.cells.entry(base).or_default();
        cell.count += 1;
        cell.threads |= 1u64 << (thread.min(63));
        self.total += 1;
    }

    /// Total accesses recorded.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct 4 KiB pages touched.
    #[inline]
    pub fn pages_touched(&self) -> usize {
        self.cells.len()
    }

    /// Aggregates the 4 KiB cells to a coarser granularity.
    ///
    /// `container_of` maps a 4 KiB page base to the base of the page that
    /// *currently contains* it (e.g. its 2 MiB huge page base, or itself if
    /// the page is small). Returns `(container_base, count, thread_mask)`
    /// rows sorted by container base.
    pub fn aggregate(&self, container_of: impl Fn(u64) -> u64) -> Vec<(u64, u64, u64)> {
        let mut merged: FastMap<u64, PageCell> =
            FastMap::with_capacity_and_hasher(self.cells.len(), Default::default());
        for (&base, cell) in &self.cells {
            let c = merged.entry(container_of(base)).or_default();
            c.count += cell.count;
            c.threads |= cell.threads;
        }
        let mut rows: Vec<(u64, u64, u64)> = merged
            .into_iter()
            .map(|(base, cell)| (base, cell.count, cell.threads))
            .collect();
        rows.sort_unstable_by_key(|&(base, _, _)| base);
        rows
    }

    /// Folds another tracker's cells in: counts add, thread masks union.
    /// Shard lanes start from an empty tracker ([`PageAccessStats::new`]),
    /// so absorbing every lane reproduces the serial cells exactly —
    /// per-page stats are commutative sums/unions, and no observable order
    /// exists to preserve (`aggregate` and `save_into` both sort).
    pub fn absorb(&mut self, other: &PageAccessStats) {
        for (&base, cell) in &other.cells {
            let c = self.cells.entry(base).or_default();
            c.count += cell.count;
            c.threads |= cell.threads;
        }
        self.total += other.total;
    }

    /// Clears all cells (start of a new measurement window).
    pub fn reset(&mut self) {
        self.cells.clear();
        self.total = 0;
    }

    /// Serializes the cells (in sorted key order — the hash map's bucket
    /// order is not canonical) and the total, for the `ckpt-v1` snapshot.
    pub fn save_into(&self, e: &mut codec::Enc) {
        let mut keys: Vec<u64> = self.cells.keys().copied().collect();
        keys.sort_unstable();
        e.seq(keys.into_iter(), |e, k| {
            let cell = &self.cells[&k];
            e.u64(k);
            e.u64(cell.count);
            e.u64(cell.threads);
        });
        e.u64(self.total);
    }

    /// Restores state captured by [`PageAccessStats::save_into`].
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        self.cells.clear();
        let n = d.usize();
        for _ in 0..n {
            let k = d.u64();
            self.cells.insert(
                k,
                PageCell {
                    count: d.u64(),
                    threads: d.u64(),
                },
            );
        }
        self.total = d.u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_counts_and_threads() {
        let mut s = PageAccessStats::new();
        s.record(VirtAddr(0x1000), 0);
        s.record(VirtAddr(0x1fff), 1);
        s.record(VirtAddr(0x2000), 0);
        assert_eq!(s.total(), 3);
        assert_eq!(s.pages_touched(), 2);
        let rows = s.aggregate(|b| b);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (0x1000, 2, 0b11));
        assert_eq!(rows[1], (0x2000, 1, 0b01));
    }

    #[test]
    fn aggregate_merges_into_containers() {
        let mut s = PageAccessStats::new();
        // Two 4 KiB pages inside the same 2 MiB range, one outside.
        s.record(VirtAddr(0x20_0000), 0);
        s.record(VirtAddr(0x20_1000), 1);
        s.record(VirtAddr(0x40_0000), 2);
        let rows = s.aggregate(|b| b & !(0x20_0000 - 1));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (0x20_0000, 2, 0b11));
        assert_eq!(rows[1], (0x40_0000, 1, 0b100));
    }

    #[test]
    fn high_thread_ids_saturate_mask() {
        let mut s = PageAccessStats::new();
        s.record(VirtAddr(0), 63);
        s.record(VirtAddr(0), 200);
        let rows = s.aggregate(|b| b);
        assert_eq!(rows[0].2, 1u64 << 63);
    }

    #[test]
    fn aggregate_preserves_totals_for_any_container_map() {
        let mut s = PageAccessStats::new();
        for i in 0..100u64 {
            // Skewed: page i gets i accesses from thread (i % 4).
            for _ in 0..i {
                s.record(VirtAddr(i * 0x1000), (i % 4) as u16);
            }
        }
        let expected: u64 = (0..100).sum();
        assert_eq!(s.total(), expected);
        for container in [
            |b: u64| b,                    // identity (4 KiB)
            |b: u64| b & !(0x20_0000 - 1), // 2 MiB
            |_: u64| 0,                    // everything in one bucket
        ] {
            let rows = s.aggregate(container);
            let sum: u64 = rows.iter().map(|&(_, c, _)| c).sum();
            assert_eq!(sum, expected, "aggregation must conserve accesses");
        }
    }

    #[test]
    fn hottest_container_ranking_survives_aggregation() {
        let mut s = PageAccessStats::new();
        // Hot 2 MiB region: 64 accesses spread over its 4 KiB pages.
        for i in 0..64u64 {
            s.record(VirtAddr(0x20_0000 + (i % 8) * 0x1000), 0);
        }
        // Cold region: 3 accesses on one page.
        for _ in 0..3 {
            s.record(VirtAddr(0x60_0000), 1);
        }
        let rows = s.aggregate(|b| b & !(0x20_0000 - 1));
        let hottest = rows.iter().max_by_key(|&&(_, c, _)| c).unwrap();
        assert_eq!(hottest.0, 0x20_0000);
        assert_eq!(hottest.1, 64);
        // Per-4KiB view keeps the heat split 8 ways.
        let fine = s.aggregate(|b| b);
        assert!(fine
            .iter()
            .filter(|&&(b, _, _)| (0x20_0000..0x40_0000).contains(&b))
            .all(|&(_, c, _)| c == 8));
    }

    #[test]
    fn thread_masks_union_under_aggregation() {
        let mut s = PageAccessStats::new();
        s.record(VirtAddr(0x20_0000), 0);
        s.record(VirtAddr(0x20_1000), 1);
        s.record(VirtAddr(0x20_2000), 2);
        let rows = s.aggregate(|b| b & !(0x20_0000 - 1));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].2, 0b111, "container mask is the union");
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = PageAccessStats::new();
        s.record(VirtAddr(0x1000), 0);
        s.reset();
        assert_eq!(s.total(), 0);
        assert_eq!(s.pages_touched(), 0);
    }
}
