//! The per-epoch performance-counter snapshot that policies read.

use serde::{Deserialize, Serialize};

/// Page-fault time attribution for one core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreFaultTime {
    /// Cycles this core spent in the page-fault handler this epoch.
    pub fault_cycles: u64,
}

/// One epoch's worth of hardware counters, as a policy would read them from
/// the PMU at the end of its monitoring interval (Algorithm 1 line 3).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochCounters {
    /// Length of the epoch in cycles.
    pub epoch_cycles: u64,
    /// Data + walk accesses that reached the L2 (i.e. L1 misses).
    pub l2_accesses: u64,
    /// L2 misses, all causes.
    pub l2_misses: u64,
    /// L2 misses caused by page-table walks.
    pub l2_walk_misses: u64,
    /// DRAM accesses serviced on the issuing core's node.
    pub dram_local: u64,
    /// DRAM accesses serviced on a remote node.
    pub dram_remote: u64,
    /// Requests serviced per memory controller.
    pub controller_requests: Vec<u64>,
    /// Per-core page-fault time.
    pub fault_time: Vec<CoreFaultTime>,
    /// Retired memory operations (the denominator for intensity checks).
    pub mem_ops: u64,
}

impl EpochCounters {
    /// Fraction of L2 misses caused by page-table walks, in `[0, 1]`.
    ///
    /// This is the paper's proxy for TLB pressure (Section 3.2.2): walks
    /// that escape the L2 hit L3 or DRAM and are expensive.
    pub fn walk_miss_fraction(&self) -> f64 {
        if self.l2_misses == 0 {
            0.0
        } else {
            self.l2_walk_misses as f64 / self.l2_misses as f64
        }
    }

    /// Local access ratio over DRAM accesses, in `[0, 1]`; 1 when idle.
    pub fn lar(&self) -> f64 {
        let total = self.dram_local + self.dram_remote;
        if total == 0 {
            1.0
        } else {
            self.dram_local as f64 / total as f64
        }
    }

    /// Memory-controller imbalance: the standard deviation of per-controller
    /// request counts as a percent of the mean (the paper's definition).
    pub fn imbalance(&self) -> f64 {
        crate::metrics::imbalance(&self.controller_requests)
    }

    /// The largest fraction of the epoch any single core spent in the page
    /// fault handler, in `[0, 1]` (Algorithm 1 line 7 uses the max because
    /// fault-handler lock contention is set by the slowest core).
    pub fn max_fault_fraction(&self) -> f64 {
        if self.epoch_cycles == 0 {
            return 0.0;
        }
        let worst = self
            .fault_time
            .iter()
            .map(|c| c.fault_cycles)
            .max()
            .unwrap_or(0);
        (worst as f64 / self.epoch_cycles as f64).min(1.0)
    }

    /// DRAM accesses per retired memory operation — a cheap intensity test
    /// (Carrefour only engages on memory-intensive phases).
    pub fn dram_per_op(&self) -> f64 {
        if self.mem_ops == 0 {
            0.0
        } else {
            (self.dram_local + self.dram_remote) as f64 / self.mem_ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> EpochCounters {
        EpochCounters {
            epoch_cycles: 1_000_000,
            l2_accesses: 10_000,
            l2_misses: 2_000,
            l2_walk_misses: 300,
            dram_local: 600,
            dram_remote: 400,
            controller_requests: vec![500, 500],
            fault_time: vec![
                CoreFaultTime {
                    fault_cycles: 50_000,
                },
                CoreFaultTime {
                    fault_cycles: 120_000,
                },
            ],
            mem_ops: 100_000,
        }
    }

    #[test]
    fn walk_miss_fraction_is_ratio_of_misses() {
        assert!((base().walk_miss_fraction() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn lar_is_local_share() {
        assert!((base().lar() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn max_fault_fraction_takes_worst_core() {
        assert!((base().max_fault_fraction() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn idle_counters_are_benign() {
        let c = EpochCounters::default();
        assert_eq!(c.walk_miss_fraction(), 0.0);
        assert_eq!(c.lar(), 1.0);
        assert_eq!(c.max_fault_fraction(), 0.0);
        assert_eq!(c.imbalance(), 0.0);
        assert_eq!(c.dram_per_op(), 0.0);
    }

    #[test]
    fn dram_per_op_is_intensity() {
        assert!((base().dram_per_op() - 0.01).abs() < 1e-12);
    }
}
