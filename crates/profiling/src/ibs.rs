//! Instruction-based-sampling (IBS) simulation.

use numa_topology::NodeId;
use serde::{Deserialize, Serialize};
use vmem::{PageSize, VirtAddr, PAGE_4K};

/// Configuration of the sampler.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IbsConfig {
    /// Take one sample every `period` data accesses (per machine, matching
    /// the aggregate rate the kernel module configures across cores).
    pub period: u64,
    /// Cycles of interrupt-handler overhead charged per sample taken.
    /// IBS raises an NMI per sample; the paper's Section 4.2 overhead is
    /// dominated by this plus the decision pass.
    pub sample_overhead_cycles: u64,
}

impl Default for IbsConfig {
    fn default() -> Self {
        IbsConfig {
            period: 4096,
            sample_overhead_cycles: 2200,
        }
    }
}

/// One IBS sample: a tagged memory access.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IbsSample {
    /// Sampled data virtual address.
    pub vaddr: VirtAddr,
    /// Node of the core that issued the access.
    pub accessing_node: NodeId,
    /// Simulated thread id of the issuer.
    pub thread: u16,
    /// Home node of the physical frame.
    pub home_node: NodeId,
    /// Whether the access was serviced from DRAM (cache misses only);
    /// the paper only trusts pages with at least one DRAM-serviced sample.
    pub from_dram: bool,
    /// Whether the sampled operation was a store (IBS tags each op).
    pub is_store: bool,
    /// Size of the page backing the access at sample time.
    pub page_size: PageSize,
    /// Page-walk steps this access paid to *remote* table frames (0 when
    /// the TLB hit and no walk ran). Real IBS exposes tablewalk-latency
    /// tags; numaPTE keys its table-migration decisions off exactly this.
    pub walk_remote_steps: u8,
}

impl IbsSample {
    /// Base of the 4 KiB page containing the sampled address.
    #[inline]
    pub fn page_4k(&self) -> u64 {
        self.vaddr.align_down(PAGE_4K).0
    }

    /// Base of the page (at its current mapped size) containing the address.
    #[inline]
    pub fn page_base(&self) -> u64 {
        self.vaddr.align_down(self.page_size.bytes()).0
    }

    /// Whether the access was serviced by the issuer's own node.
    #[inline]
    pub fn local(&self) -> bool {
        self.accessing_node == self.home_node
    }
}

/// The sampling engine with per-node sample stores.
///
/// Real IBS tags one in N ops per core; the simulator keeps one countdown
/// for the whole machine, which produces the same aggregate density. The
/// per-node stores mirror the paper's Section 4.3 fix: samples are filed
/// under the *accessing* node, as the kernel module does to avoid a
/// centralized, cross-node-locked buffer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IbsSampler {
    config: IbsConfig,
    countdown: u64,
    stores: Vec<Vec<IbsSample>>,
    taken: u64,
    overhead_cycles: u64,
    store: bool,
}

impl IbsSampler {
    /// Creates a sampler for a machine with `num_nodes` nodes.
    pub fn new(num_nodes: usize, config: IbsConfig) -> Self {
        IbsSampler {
            config,
            countdown: config.period,
            stores: vec![Vec::new(); num_nodes],
            taken: 0,
            overhead_cycles: 0,
            store: true,
        }
    }

    /// Enables or disables sample *storage*. The NMI still fires — `taken`
    /// and the per-sample overhead are unchanged, since the hardware does
    /// not know nobody will read the buffer — but samples are not built or
    /// filed. For runs whose policy never reads samples, this elides the
    /// profiling bookkeeping without perturbing any timing.
    pub fn set_store(&mut self, store: bool) {
        self.store = store;
    }

    /// Observes one memory access; returns `true` if it was sampled.
    ///
    /// The caller provides a fully-formed sample (cheap to build) and the
    /// sampler decides whether to keep it.
    #[inline]
    pub fn observe(&mut self, make_sample: impl FnOnce() -> IbsSample) -> bool {
        self.countdown -= 1;
        if self.countdown > 0 {
            return false;
        }
        self.countdown = self.config.period;
        self.taken += 1;
        self.overhead_cycles += self.config.sample_overhead_cycles;
        if self.store {
            let s = make_sample();
            self.stores[s.accessing_node.index()].push(s);
        }
        true
    }

    /// Ops until the next sampled op, counting that op: `1` means the very
    /// next observed op is sampled. The skip-ahead primitive — a caller
    /// processing a batch can run `until_next() - 1` ops with zero sampler
    /// work, then materialise the sample for the op that lands on the
    /// countdown.
    #[inline]
    pub fn until_next(&self) -> u64 {
        self.countdown
    }

    /// How many of the next `n_ops` observed ops would be sampled.
    ///
    /// Pure arithmetic over the countdown and period; `observe`-ing `n_ops`
    /// ops one by one takes exactly this many samples.
    #[inline]
    pub fn samples_in(&self, n_ops: u64) -> u64 {
        if n_ops >= self.countdown {
            1 + (n_ops - self.countdown) / self.config.period
        } else {
            0
        }
    }

    /// Advances past `n` *unsampled* ops in one step. Exactly equivalent to
    /// `n` [`IbsSampler::observe`] calls that all return `false`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `n >= until_next()` — the caller skipped over an op
    /// that should have been sampled.
    #[inline]
    pub fn advance_unsampled(&mut self, n: u64) {
        debug_assert!(
            n < self.countdown,
            "skip-ahead of {n} ops would jump a sample due in {}",
            self.countdown
        );
        self.countdown -= n;
    }

    /// Observes the op the countdown lands on (`until_next()` must be 1) and
    /// takes its sample: together with [`IbsSampler::advance_unsampled`]
    /// this is the batched equivalent of per-op [`IbsSampler::observe`]
    /// calls, with samples materialised at exactly the same op indices.
    #[inline]
    pub fn take_sample(&mut self, make_sample: impl FnOnce() -> IbsSample) {
        debug_assert_eq!(self.countdown, 1, "take_sample off the sample op");
        self.countdown = self.config.period;
        self.taken += 1;
        self.overhead_cycles += self.config.sample_overhead_cycles;
        if self.store {
            let s = make_sample();
            self.stores[s.accessing_node.index()].push(s);
        }
    }

    /// Drains every per-node store into one vector (the policy's periodic
    /// collection pass) and resets the per-epoch overhead accumulator.
    ///
    /// Returns the samples and the cycles of sampling overhead accumulated
    /// since the last drain.
    pub fn drain(&mut self) -> (Vec<IbsSample>, u64) {
        let mut all = Vec::with_capacity(self.stores.iter().map(Vec::len).sum());
        for store in &mut self.stores {
            all.append(store);
        }
        let overhead = self.overhead_cycles;
        self.overhead_cycles = 0;
        (all, overhead)
    }

    /// A shard lane's view of the sampler. The machine keeps ONE global
    /// countdown over the serial op order, so a lane replays the *entire*
    /// global sequence against its fork: its own threads' ops through the
    /// normal observe/skip-ahead path, and every other lane's ops through
    /// [`IbsSampler::advance_foreign`]. Samples then land at exactly the
    /// serial global op indices, each built by the one lane that owns the
    /// issuing thread; counts and overhead accumulate as pure deltas for
    /// [`IbsSampler::absorb_lane`].
    pub fn fork_lane(&self) -> Self {
        IbsSampler {
            config: self.config,
            countdown: self.countdown,
            stores: vec![Vec::new(); self.stores.len()],
            taken: 0,
            overhead_cycles: 0,
            store: self.store,
        }
    }

    /// Advances the countdown past `n` *foreign* ops — ops issued by
    /// threads another lane owns. Sample points among them still roll the
    /// countdown over (the owning lane materialises those samples), but no
    /// count, overhead, or storage is charged here. Exactly equivalent to
    /// `n` [`IbsSampler::observe`] calls with counting/storage suppressed.
    #[inline]
    pub fn advance_foreign(&mut self, n: u64) {
        if n < self.countdown {
            self.countdown -= n;
        } else {
            // The countdown hits zero on foreign op `countdown` and resets;
            // the remainder then walks whole periods. `m == 0` means the
            // last foreign op was itself a sample point, leaving a full
            // period on the clock.
            let m = (n - self.countdown) % self.config.period;
            self.countdown = self.config.period - m;
        }
    }

    /// Folds a lane's sampling deltas back in: take/overhead counts are
    /// added and the lane's per-node samples are appended. Each node's
    /// store is filled by exactly one lane (samples file under the
    /// *accessing* node, and lanes own whole node-groups of threads), so
    /// appending reproduces the serial per-node order; the countdown is
    /// identical in every lane (all replayed the same global sequence) and
    /// is taken from the lane.
    pub fn absorb_lane(&mut self, lane: &mut IbsSampler) {
        debug_assert_eq!(
            self.config.period, lane.config.period,
            "lane sampler config mismatch"
        );
        self.countdown = lane.countdown;
        self.taken += lane.taken;
        self.overhead_cycles += lane.overhead_cycles;
        for (store, ls) in self.stores.iter_mut().zip(&mut lane.stores) {
            debug_assert!(
                store.is_empty() || ls.is_empty(),
                "two lanes filed samples under one node"
            );
            store.append(ls);
        }
    }

    /// Serializes the sampler's mutable state — countdown, per-node stores,
    /// lifetime/overhead counters, and the storage flag — for the `ckpt-v1`
    /// snapshot (the config is constructor-fixed).
    pub fn save_into(&self, e: &mut codec::Enc) {
        e.u64(self.countdown);
        e.seq(self.stores.iter(), |e, store| {
            e.seq(store.iter(), |e, s| {
                e.u64(s.vaddr.0);
                e.u16(s.accessing_node.0);
                e.u16(s.thread);
                e.u16(s.home_node.0);
                e.bool(s.from_dram);
                e.bool(s.is_store);
                e.u8(match s.page_size {
                    PageSize::Size4K => 0,
                    PageSize::Size2M => 1,
                    PageSize::Size1G => 2,
                });
                e.u8(s.walk_remote_steps);
            });
        });
        e.u64(self.taken);
        e.u64(self.overhead_cycles);
        e.bool(self.store);
    }

    /// Restores state captured by [`IbsSampler::save_into`] onto a sampler
    /// built for the same machine and config.
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        self.countdown = d.u64();
        let n = d.usize();
        assert_eq!(n, self.stores.len(), "checkpoint sampler node count");
        for store in &mut self.stores {
            *store = d.seq(|d| IbsSample {
                vaddr: VirtAddr(d.u64()),
                accessing_node: NodeId(d.u16()),
                thread: d.u16(),
                home_node: NodeId(d.u16()),
                from_dram: d.bool(),
                is_store: d.bool(),
                page_size: match d.u8() {
                    0 => PageSize::Size4K,
                    1 => PageSize::Size2M,
                    2 => PageSize::Size1G,
                    t => panic!("ckpt: invalid PageSize tag {t}"),
                },
                walk_remote_steps: d.u8(),
            });
        }
        self.taken = d.u64();
        self.overhead_cycles = d.u64();
        self.store = d.bool();
    }

    /// Samples taken over the sampler's lifetime.
    #[inline]
    pub fn total_taken(&self) -> u64 {
        self.taken
    }

    /// The configured sampling period.
    #[inline]
    pub fn period(&self) -> u64 {
        self.config.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_at(vaddr: u64, node: usize) -> IbsSample {
        IbsSample {
            vaddr: VirtAddr(vaddr),
            accessing_node: NodeId::from(node),
            thread: 0,
            home_node: NodeId(0),
            from_dram: true,
            is_store: false,
            page_size: PageSize::Size2M,
            walk_remote_steps: 0,
        }
    }

    #[test]
    fn samples_every_period() {
        let mut s = IbsSampler::new(
            2,
            IbsConfig {
                period: 10,
                sample_overhead_cycles: 100,
            },
        );
        let mut hits = 0;
        for i in 0..100 {
            if s.observe(|| sample_at(i * 64, 0)) {
                hits += 1;
            }
        }
        assert_eq!(hits, 10);
        assert_eq!(s.total_taken(), 10);
    }

    #[test]
    fn drain_returns_and_clears() {
        let mut s = IbsSampler::new(
            2,
            IbsConfig {
                period: 1,
                sample_overhead_cycles: 100,
            },
        );
        for i in 0..5 {
            s.observe(|| sample_at(i, i as usize % 2));
        }
        let (samples, overhead) = s.drain();
        assert_eq!(samples.len(), 5);
        assert_eq!(overhead, 500);
        let (samples2, overhead2) = s.drain();
        assert!(samples2.is_empty());
        assert_eq!(overhead2, 0);
    }

    #[test]
    fn samples_filed_per_accessing_node() {
        let mut s = IbsSampler::new(
            2,
            IbsConfig {
                period: 1,
                sample_overhead_cycles: 0,
            },
        );
        s.observe(|| sample_at(0x1000, 1));
        assert_eq!(s.stores[0].len(), 0);
        assert_eq!(s.stores[1].len(), 1);
    }

    #[test]
    fn sample_page_helpers() {
        let s = IbsSample {
            vaddr: VirtAddr(0x20_1234),
            accessing_node: NodeId(0),
            thread: 3,
            home_node: NodeId(1),
            from_dram: true,
            is_store: false,
            page_size: PageSize::Size2M,
            walk_remote_steps: 0,
        };
        assert_eq!(s.page_4k(), 0x20_1000);
        assert_eq!(s.page_base(), 0x20_0000);
        assert!(!s.local());
    }

    #[test]
    fn storage_off_keeps_counts_and_overhead_but_files_nothing() {
        let config = IbsConfig {
            period: 2,
            sample_overhead_cycles: 100,
        };
        let mut on = IbsSampler::new(2, config);
        let mut off = IbsSampler::new(2, config);
        off.set_store(false);
        for i in 0..10 {
            on.observe(|| sample_at(i * 64, 0));
            off.observe(|| panic!("must not build samples with storage off"));
        }
        assert_eq!(on.total_taken(), off.total_taken());
        let (s_on, o_on) = on.drain();
        let (s_off, o_off) = off.drain();
        assert_eq!(o_on, o_off, "overhead identical either way");
        assert_eq!(s_on.len(), 5);
        assert!(s_off.is_empty());
    }

    #[test]
    fn advance_foreign_matches_observe_rollover() {
        // advance_foreign(n) must leave the countdown exactly where n
        // suppressed observes would, for every phase and n (including the
        // m == 0 edge where the last foreign op is itself a sample point).
        let config = IbsConfig {
            period: 5,
            sample_overhead_cycles: 10,
        };
        for pre in 0..5u64 {
            for n in 0..17u64 {
                let mut a = IbsSampler::new(1, config);
                let mut b = IbsSampler::new(1, config);
                for i in 0..pre {
                    a.observe(|| sample_at(i, 0));
                    b.observe(|| sample_at(i, 0));
                }
                for _ in 0..n {
                    a.observe(|| sample_at(0, 0));
                }
                b.advance_foreign(n);
                assert_eq!(
                    a.until_next(),
                    b.until_next(),
                    "countdown after pre={pre} n={n}"
                );
            }
        }
    }

    #[test]
    fn lane_replay_merges_to_serial_sampler() {
        // Two lanes each replay the full global sequence — own ops via
        // observe, foreign ops via advance_foreign — and the absorbed
        // result must match the serial sampler exactly: sample addresses,
        // per-node order, counts, overhead, and final countdown.
        let config = IbsConfig {
            period: 3,
            sample_overhead_cycles: 7,
        };
        // Global sequence: (owner_lane, vaddr), owner is also the node.
        let seq: Vec<(usize, u64)> = (0..50).map(|i| ((i * 3 + 1) % 2, i as u64 * 64)).collect();
        let mut serial = IbsSampler::new(2, config);
        // Desync from a period boundary.
        serial.observe(|| sample_at(999, 0));
        let mut main = serial.clone();
        for &(lane, vaddr) in &seq {
            serial.observe(|| sample_at(vaddr, lane));
        }
        let mut lanes = [main.fork_lane(), main.fork_lane()];
        for (li, l) in lanes.iter_mut().enumerate() {
            for &(owner, vaddr) in &seq {
                if owner == li {
                    l.observe(|| sample_at(vaddr, owner));
                } else {
                    l.advance_foreign(1);
                }
            }
        }
        for l in &mut lanes {
            main.absorb_lane(l);
        }
        assert_eq!(serial.until_next(), main.until_next());
        assert_eq!(serial.total_taken(), main.total_taken());
        let (ss, so) = serial.drain();
        let (ms, mo) = main.drain();
        assert_eq!(so, mo);
        assert_eq!(ss.len(), ms.len());
        for (a, b) in ss.iter().zip(&ms) {
            assert_eq!((a.vaddr, a.accessing_node), (b.vaddr, b.accessing_node));
        }
    }

    #[test]
    fn closure_not_called_when_not_sampling() {
        let mut s = IbsSampler::new(
            1,
            IbsConfig {
                period: 1000,
                sample_overhead_cycles: 0,
            },
        );
        let mut called = 0;
        for _ in 0..10 {
            s.observe(|| {
                called += 1;
                sample_at(0, 0)
            });
        }
        assert_eq!(called, 0, "sample construction must be lazy");
    }
}
