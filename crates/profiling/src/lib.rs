//! Hardware-profiling simulation: IBS sampling, counters, NUMA metrics.
//!
//! Carrefour and Carrefour-LP are *profile-driven*: every decision they make
//! reads either AMD's instruction-based sampling (IBS) or a handful of
//! performance counters. This crate reproduces those observation channels:
//!
//! * [`IbsSampler`] — samples every N-th memory access, recording the data
//!   address, the accessing node and thread, the home node, and whether the
//!   access was serviced from DRAM. Samples live in **per-node stores**
//!   (the scalability fix described in Section 4.3 of the paper). Sampling
//!   is sparse by construction, which is exactly why the paper's LAR
//!   estimates are sometimes wrong — that pathology is reproduced, not
//!   assumed.
//! * [`EpochCounters`] — the per-epoch "perf counter" snapshot policies
//!   read: L2 misses (total and walk-caused), DRAM locality, per-controller
//!   request counts, per-core page-fault time.
//! * [`CycleBreakdown`] — the cycle-attribution ledger: one interval's
//!   wall cycles split into exhaustive, mutually exclusive buckets
//!   (compute, cache levels, DRAM service, controller queueing,
//!   interconnect, page walks, faults, policy overhead), conserving the
//!   total exactly.
//! * [`metrics`] — the paper's derived metrics: local access ratio (LAR),
//!   memory-controller imbalance, PAMUP, NHP, and PSP (Table 2).
//! * [`PageAccessStats`] — exact per-4KiB-page access counts and thread
//!   masks, aggregatable to any page granularity, used to *report* the
//!   Table 2 metrics (the paper gathered these offline the same way).
//!
//! # Examples
//!
//! ```
//! use profiling::metrics;
//!
//! // Perfectly balanced controllers have zero imbalance...
//! assert_eq!(metrics::imbalance(&[100, 100, 100, 100]), 0.0);
//! // ...while a lone hot controller drives it up (percent of mean).
//! assert!(metrics::imbalance(&[400, 0, 0, 0]) > 150.0);
//! ```

mod breakdown;
mod counters;
mod ibs;
pub mod metrics;
mod pagestats;

pub use breakdown::{CycleBreakdown, BUCKET_COUNT};
pub use counters::{CoreFaultTime, EpochCounters};
pub use ibs::{IbsConfig, IbsSample, IbsSampler};
pub use pagestats::{PageAccessStats, PageCell};
