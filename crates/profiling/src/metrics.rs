//! The paper's derived NUMA metrics.
//!
//! Definitions follow Sections 2.2 and 3.1 of the paper:
//!
//! * **Imbalance** — standard deviation of the per-controller memory request
//!   rate, as a percent of the mean.
//! * **PAMUP** — percentage of total accesses going to the most-used page.
//! * **NHP** — number of *hot* pages, i.e. pages receiving more than 6 % of
//!   all accesses (half of the 12.5 % that would perfectly load one of 8
//!   nodes — the paper's footnote 3).
//! * **PSP** — percentage of accesses going to pages touched by at least two
//!   threads (page-level sharing).

/// The paper's hot-page threshold: a page is hot if it receives more than
/// this fraction of all accesses (6 %).
pub const HOT_PAGE_FRACTION: f64 = 0.06;

/// Standard deviation of `values` as a percent of their mean.
///
/// Returns 0 for empty input or a zero mean (an idle memory system is
/// balanced by definition).
pub fn imbalance(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = values
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean * 100.0
}

/// Percentage of accesses to the most-used page.
///
/// `pages` holds `(page_base, access_count, thread_mask)` rows, e.g. from
/// [`crate::PageAccessStats::aggregate`].
pub fn pamup(pages: &[(u64, u64, u64)]) -> f64 {
    let total: u64 = pages.iter().map(|&(_, c, _)| c).sum();
    if total == 0 {
        return 0.0;
    }
    let max = pages.iter().map(|&(_, c, _)| c).max().unwrap_or(0);
    max as f64 / total as f64 * 100.0
}

/// Number of hot pages (pages receiving more than [`HOT_PAGE_FRACTION`] of
/// all accesses).
pub fn nhp(pages: &[(u64, u64, u64)]) -> usize {
    let total: u64 = pages.iter().map(|&(_, c, _)| c).sum();
    if total == 0 {
        return 0;
    }
    pages
        .iter()
        .filter(|&&(_, c, _)| c as f64 > HOT_PAGE_FRACTION * total as f64)
        .count()
}

/// Percentage of accesses going to pages shared by at least two threads.
pub fn psp(pages: &[(u64, u64, u64)]) -> f64 {
    let total: u64 = pages.iter().map(|&(_, c, _)| c).sum();
    if total == 0 {
        return 0.0;
    }
    let shared: u64 = pages
        .iter()
        .filter(|&&(_, _, mask)| mask.count_ones() >= 2)
        .map(|&(_, c, _)| c)
        .sum();
    shared as f64 / total as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_zero_when_equal() {
        assert_eq!(imbalance(&[5, 5, 5]), 0.0);
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0, 0]), 0.0);
    }

    #[test]
    fn imbalance_of_single_hot_controller() {
        // One of four controllers takes all traffic: sd = sqrt(3)*mean,
        // i.e. ≈173 % of the mean.
        let v = imbalance(&[400, 0, 0, 0]);
        assert!((v - 173.2).abs() < 0.1, "got {v}");
    }

    #[test]
    fn imbalance_is_scale_invariant() {
        let a = imbalance(&[10, 20, 30, 40]);
        let b = imbalance(&[100, 200, 300, 400]);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn pamup_picks_the_top_page() {
        let pages = [(0u64, 80u64, 1u64), (4096, 10, 1), (8192, 10, 1)];
        assert!((pamup(&pages) - 80.0).abs() < 1e-12);
        assert_eq!(pamup(&[]), 0.0);
    }

    #[test]
    fn nhp_counts_pages_over_six_percent() {
        // 100 accesses: pages with >6 are hot.
        let pages = [
            (0u64, 50u64, 1u64),
            (4096, 30, 1),
            (8192, 7, 1),
            (12288, 6, 1), // exactly 6 %: not hot (strictly greater)
            (16384, 7, 1),
        ];
        assert_eq!(nhp(&pages), 4);
        assert_eq!(nhp(&[]), 0);
    }

    #[test]
    fn psp_weights_by_access_count() {
        let pages = [
            (0u64, 70u64, 0b11u64), // shared
            (4096, 30, 0b01),       // private
        ];
        assert!((psp(&pages) - 70.0).abs() < 1e-12);
        assert_eq!(psp(&[]), 0.0);
    }

    #[test]
    fn hot_page_fraction_matches_paper() {
        assert!((HOT_PAGE_FRACTION - 0.06).abs() < 1e-12);
    }

    #[test]
    fn imbalance_with_single_controller_is_zero() {
        // A one-controller machine cannot be imbalanced: the standard
        // deviation of a single sample is 0 regardless of its load.
        assert_eq!(imbalance(&[0]), 0.0);
        assert_eq!(imbalance(&[1]), 0.0);
        assert_eq!(imbalance(&[u64::MAX >> 16]), 0.0);
    }

    #[test]
    fn page_metrics_on_empty_access_sets_are_zero() {
        // Both shapes of "no accesses": no page rows at all, and page
        // rows whose counts are all zero (pages mapped but never
        // touched during the profiling epoch).
        let untouched = [(0u64, 0u64, 0b11u64), (4096, 0, 0b01)];
        assert_eq!(pamup(&[]), 0.0);
        assert_eq!(pamup(&untouched), 0.0);
        assert_eq!(nhp(&[]), 0);
        assert_eq!(nhp(&untouched), 0);
        assert_eq!(psp(&[]), 0.0);
        assert_eq!(psp(&untouched), 0.0);
    }

    #[test]
    fn nhp_threshold_is_exclusive_at_hot_page_fraction() {
        // 1000 accesses: 60 is exactly HOT_PAGE_FRACTION (6 %) and must
        // NOT count (paper footnote 3 says *more than*); 61 must.
        let at = [(0u64, 60u64, 1u64), (4096, 940, 1)];
        let over = [(0u64, 61u64, 1u64), (4096, 939, 1)];
        assert_eq!(nhp(&at), 1, "only the 940-count page is hot");
        assert_eq!(nhp(&over), 2, "61/1000 is strictly over 6 %");
    }

    #[test]
    fn single_page_takes_the_whole_profile() {
        // One page receives every access: PAMUP is 100 % by definition,
        // the page is trivially hot (100 % > 6 %), and sharing follows
        // its mask alone.
        let private = [(0u64, 123u64, 0b1u64)];
        assert!((pamup(&private) - 100.0).abs() < 1e-12);
        assert_eq!(nhp(&private), 1);
        assert_eq!(psp(&private), 0.0, "one accessing thread is private");
        let shared = [(0u64, 123u64, 0b101u64)];
        assert!((psp(&shared) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn one_bit_masks_are_private_whatever_the_bit() {
        // PSP counts *pages accessed by more than one thread*; a mask
        // with exactly one bit set is private no matter which thread's
        // bit it is (including the highest).
        let pages = [
            (0u64, 10u64, 1u64 << 0),
            (4096, 20, 1 << 7),
            (8192, 30, 1 << 63),
        ];
        assert_eq!(psp(&pages), 0.0);
        // Flipping a second bit on the heaviest page moves exactly its
        // weight into the shared share.
        let half = [(0u64, 50u64, 1u64 << 63), (4096, 50, (1 << 63) | 1)];
        assert!((psp(&half) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn nhp_boundary_survives_fractional_thresholds() {
        // 50 accesses: the threshold is 3.0 exactly — a 3-count page sits
        // *at* 6 % and must not count; 4 counts (8 %) must. This guards
        // the `>` against an `>=` regression where the product
        // `HOT_PAGE_FRACTION * total` is representable exactly.
        let rows = [(0u64, 3u64, 1u64), (4096, 4, 1), (8192, 43, 1)];
        assert_eq!(nhp(&rows), 2, "3/50 is exactly 6% and not hot");
    }
}
