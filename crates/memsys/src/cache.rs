//! A set-associative cache with true-LRU replacement.

use serde::{Deserialize, Serialize};

/// A single set-associative cache keyed by cache-line address.
///
/// The cache stores line *tags* only (it models presence, not contents).
/// Replacement is true LRU within each set, kept MRU-first — associativities
/// are small (≤ 32), so a linear scan is faster than any fancier structure.
///
/// Storage is one flat tag array (`ways` slots per set) plus a per-set
/// occupancy count, not a `Vec` per set: a probe costs one indexed load
/// instead of a pointer chase through a per-set heap allocation. On big L3
/// geometries the probe pattern is random, so every dependent load is a
/// host cache miss — this layout halved the simulator's hot-path cost.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SetAssocCache {
    /// Line tags, MRU-first; set `s` owns `tags[s*ways .. s*ways+lens[s]]`.
    tags: Vec<u64>,
    /// Valid slots per set (≤ `ways`).
    lens: Vec<u8>,
    ways: usize,
    set_mask: u64,
    line_shift: u32,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache with `num_sets` sets (rounded up to a power of two),
    /// `ways` lines per set, and `line_bytes` line size (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or above 255, or `line_bytes` is not a
    /// power of two.
    pub fn new(num_sets: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(ways > 0, "cache needs at least one way");
        assert!(ways <= u8::MAX as usize, "per-set occupancy is a u8");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let num_sets = num_sets.max(1).next_power_of_two();
        SetAssocCache {
            tags: vec![0; num_sets * ways],
            lens: vec![0; num_sets],
            ways,
            set_mask: (num_sets - 1) as u64,
            line_shift: line_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.lens.len() * self.ways * (1usize << self.line_shift)
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        // Mix the upper bits in so that strided physical layouts do not all
        // land in the same set (cheap xor-fold, not a hash).
        ((line ^ (line >> 13)) & self.set_mask) as usize
    }

    /// Accesses a physical address: returns `true` on hit. On miss the line
    /// is filled, evicting the LRU way if the set is full.
    #[inline]
    pub fn access(&mut self, paddr: u64) -> bool {
        let line = paddr >> self.line_shift;
        let idx = self.set_index(line);
        let base = idx * self.ways;
        let len = self.lens[idx] as usize;
        let set = &mut self.tags[base..base + len];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            if pos != 0 {
                // Move to MRU by rotating the prefix: identical ordering to
                // remove+insert(0), without the double memmove.
                set[..=pos].rotate_right(1);
            }
            self.hits += 1;
            true
        } else {
            // Insert at MRU; a full set drops its LRU (last) tag.
            if len < self.ways {
                self.lens[idx] = len as u8 + 1;
            }
            let keep = (self.lens[idx] - 1) as usize;
            self.tags.copy_within(base..base + keep, base + 1);
            self.tags[base] = line;
            self.misses += 1;
            false
        }
    }

    /// Like [`SetAssocCache::access`], additionally reporting whether the
    /// hit was *stable*: the line was already in the MRU way, so the access
    /// changed nothing but the hit counter. Returns `(hit, stable)`.
    #[inline]
    pub fn access_stable(&mut self, paddr: u64) -> (bool, bool) {
        let line = paddr >> self.line_shift;
        let idx = self.set_index(line);
        let base = idx * self.ways;
        let len = self.lens[idx] as usize;
        let set = &mut self.tags[base..base + len];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            if pos != 0 {
                set[..=pos].rotate_right(1);
            }
            self.hits += 1;
            (true, pos == 0)
        } else {
            if len < self.ways {
                self.lens[idx] = len as u8 + 1;
            }
            let keep = (self.lens[idx] - 1) as usize;
            self.tags.copy_within(base..base + keep, base + 1);
            self.tags[base] = line;
            self.misses += 1;
            (false, false)
        }
    }

    /// Adds `n` hits without probing — the bulk-charge path for stable
    /// (MRU) hits, which change no other state.
    #[inline]
    pub fn add_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// Hints the host CPU to pull this address's set into its cache.
    ///
    /// Purely a host-side prefetch: no simulated state or statistics are
    /// touched. The hierarchy issues these for the L2/L3 sets before the
    /// serial L1→L2→L3 probe chain, so the (random, usually host-cold)
    /// set loads overlap instead of serializing.
    #[inline]
    pub fn prefetch_probe(&self, paddr: u64) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the prefetched range is the set's tag slots, which always
        // lie within `tags` (set_index < num_sets), and prefetch has no
        // architectural effect regardless.
        unsafe {
            let line = paddr >> self.line_shift;
            let base = self.set_index(line) * self.ways;
            let p = self.tags.as_ptr().add(base) as *const i8;
            std::arch::x86_64::_mm_prefetch(p, std::arch::x86_64::_MM_HINT_T0);
            // A set wider than 8 ways spans a second host cache line.
            if self.ways > 8 {
                std::arch::x86_64::_mm_prefetch(p.add(64), std::arch::x86_64::_MM_HINT_T0);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = paddr;
    }

    /// Checks for presence without updating LRU state or statistics.
    #[inline]
    pub fn probe(&self, paddr: u64) -> bool {
        let line = paddr >> self.line_shift;
        let idx = self.set_index(line);
        let base = idx * self.ways;
        let len = self.lens[idx] as usize;
        self.tags[base..base + len].contains(&line)
    }

    /// Invalidates a line if present; returns `true` if it was present.
    pub fn invalidate(&mut self, paddr: u64) -> bool {
        let line = paddr >> self.line_shift;
        let idx = self.set_index(line);
        let base = idx * self.ways;
        let len = self.lens[idx] as usize;
        let set = &self.tags[base..base + len];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            self.tags
                .copy_within(base + pos + 1..base + len, base + pos);
            self.lens[idx] = len as u8 - 1;
            true
        } else {
            false
        }
    }

    /// Drops every cached line (e.g. after a wholesale migration).
    pub fn flush(&mut self) {
        self.lens.fill(0);
    }

    /// Lifetime hit count.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Serializes the tag arrays and counters (geometry fields are
    /// constructor-fixed and rebuilt by the caller).
    pub fn save_into(&self, e: &mut codec::Enc) {
        e.seq(self.tags.iter(), |e, &t| e.u64(t));
        e.seq(self.lens.iter(), |e, &l| e.u8(l));
        e.u64(self.hits);
        e.u64(self.misses);
    }

    /// Restores state captured by [`SetAssocCache::save_into`] onto a cache
    /// built with the same geometry.
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        let tags = d.seq(|d| d.u64());
        assert_eq!(tags.len(), self.tags.len(), "checkpoint cache geometry");
        self.tags = tags;
        let lens = d.seq(|d| d.u8());
        assert_eq!(lens.len(), self.lens.len(), "checkpoint cache geometry");
        self.lens = lens;
        self.hits = d.u64();
        self.misses = d.u64();
    }

    /// Lifetime hit ratio in `[0, 1]`; `0` before any access.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SetAssocCache::new(16, 2, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103f)); // same 64-byte line
        assert!(!c.access(0x1040)); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Single set, 2 ways: force all addresses into set 0 by using a
        // 1-set cache.
        let mut c = SetAssocCache::new(1, 2, 64);
        assert!(!c.access(0x0));
        assert!(!c.access(0x40));
        // Touch 0x0 so that 0x40 becomes LRU.
        assert!(c.access(0x0));
        // New line evicts 0x40.
        assert!(!c.access(0x80));
        assert!(c.access(0x0));
        assert!(!c.access(0x40)); // was evicted
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0x0);
        c.access(0x40);
        let hits_before = c.hits();
        assert!(c.probe(0x0));
        assert!(!c.probe(0x1000));
        assert_eq!(c.hits(), hits_before);
        // Probing 0x0 must not have promoted it: 0x0 is still LRU, so a new
        // line evicts it.
        c.access(0x80);
        assert!(!c.probe(0x0));
        assert!(c.probe(0x40));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SetAssocCache::new(4, 2, 64);
        c.access(0x100);
        assert!(c.invalidate(0x100));
        assert!(!c.invalidate(0x100));
        assert!(!c.probe(0x100));
    }

    #[test]
    fn invalidate_preserves_lru_order_of_survivors() {
        let mut c = SetAssocCache::new(1, 3, 64);
        c.access(0x0);
        c.access(0x40);
        c.access(0x80); // MRU-first order: 0x80, 0x40, 0x0
        assert!(c.invalidate(0x40));
        // Two survivors + one new line: nothing evicted yet.
        assert!(!c.access(0xc0)); // order: 0xc0, 0x80, 0x0
        assert!(c.probe(0x0));
        // Next fill evicts the LRU survivor (0x0), not 0x80.
        assert!(!c.access(0x100));
        assert!(!c.probe(0x0));
        assert!(c.probe(0x80));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = SetAssocCache::new(4, 4, 64);
        for i in 0..16u64 {
            c.access(i * 64);
        }
        c.flush();
        for i in 0..16u64 {
            assert!(!c.probe(i * 64));
        }
    }

    #[test]
    fn capacity_is_sets_times_ways_times_line() {
        let c = SetAssocCache::new(64, 8, 64);
        assert_eq!(c.capacity_bytes(), 64 * 8 * 64);
    }

    #[test]
    fn sets_rounded_to_power_of_two() {
        let c = SetAssocCache::new(48, 1, 64);
        assert_eq!(c.capacity_bytes(), 64 * 64);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = SetAssocCache::new(8, 2, 64); // 1 KiB
                                                  // Stream over 64 KiB twice: second pass should still miss nearly
                                                  // everywhere because the working set is 64x the capacity.
        let lines = 1024u64;
        for _ in 0..2 {
            for i in 0..lines {
                c.access(i * 64);
            }
        }
        assert!(c.hit_ratio() < 0.05, "hit ratio {}", c.hit_ratio());
    }

    #[test]
    fn working_set_smaller_than_cache_hits() {
        let mut c = SetAssocCache::new(64, 8, 64); // 32 KiB
        for pass in 0..4 {
            for i in 0..128u64 {
                let hit = c.access(i * 64);
                if pass > 0 {
                    assert!(hit, "pass {pass} line {i} should hit");
                }
            }
        }
    }
}
