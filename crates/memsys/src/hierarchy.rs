//! The cache hierarchy: per-core L1/L2, per-node shared L3.

use crate::cache::SetAssocCache;
use crate::config::MemSysConfig;
use numa_topology::{CoreId, MachineSpec, NodeId};
use serde::{Deserialize, Serialize};

/// Where a memory access was serviced.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ServiceLevel {
    /// Hit in the core's L1 data cache.
    L1,
    /// Hit in the core's L2 cache.
    L2,
    /// Hit in the node's shared L3 cache.
    L3,
    /// Missed all caches; serviced from DRAM.
    Dram,
}

/// The full cache hierarchy of a machine.
///
/// Mirrors the AMD Opteron layout the paper ran on: private L1d and L2 per
/// core, one shared L3 per NUMA node. Caches are mostly-inclusive: a fill
/// from DRAM installs the line at every level on the access path.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheHierarchy {
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: Vec<SetAssocCache>,
}

impl CacheHierarchy {
    /// Builds the hierarchy for `machine` using the geometries in `config`.
    pub fn new(machine: &MachineSpec, config: &MemSysConfig) -> Self {
        let cores = machine.total_cores();
        let nodes = machine.num_nodes();
        let mk =
            |g: &crate::config::CacheGeometry| SetAssocCache::new(g.sets, g.ways, g.line_bytes);
        CacheHierarchy {
            l1: (0..cores).map(|_| mk(&config.l1)).collect(),
            l2: (0..cores).map(|_| mk(&config.l2)).collect(),
            l3: (0..nodes).map(|_| mk(&config.l3)).collect(),
        }
    }

    /// Looks up `paddr` on behalf of `core` (whose node is `node`), filling
    /// lines on the way back. Returns the level that serviced the access.
    #[inline]
    pub fn access(&mut self, core: CoreId, node: NodeId, paddr: u64) -> ServiceLevel {
        if self.l1[core.index()].access(paddr) {
            return ServiceLevel::L1;
        }
        if self.l2[core.index()].access(paddr) {
            return ServiceLevel::L2;
        }
        if self.l3[node.index()].access(paddr) {
            return ServiceLevel::L3;
        }
        ServiceLevel::Dram
    }

    /// Like [`CacheHierarchy::access`], additionally reporting whether the
    /// access was *stable*: serviced by L1 with the line already in the MRU
    /// way, meaning the probe changed nothing but the L1 hit counter. Only
    /// L1 hits can be stable — any deeper service level fills lines and
    /// reorders LRU stacks on the way back.
    #[inline]
    pub fn access_stable(
        &mut self,
        core: CoreId,
        node: NodeId,
        paddr: u64,
    ) -> (ServiceLevel, bool) {
        let (hit, mru) = self.l1[core.index()].access_stable(paddr);
        if hit {
            return (ServiceLevel::L1, mru);
        }
        if self.l2[core.index()].access(paddr) {
            return (ServiceLevel::L2, false);
        }
        if self.l3[node.index()].access(paddr) {
            return (ServiceLevel::L3, false);
        }
        (ServiceLevel::Dram, false)
    }

    /// Adds `n` L1 hits for `core` without probing: the bulk-charge
    /// primitive for stable (MRU) hits, whose replay is a pure counter
    /// increment.
    #[inline]
    pub fn add_l1_hits(&mut self, core: CoreId, n: u64) {
        self.l1[core.index()].add_hits(n);
    }

    /// Host-side prefetch of the three sets an access by `core` (on
    /// `node`) to `paddr` would probe. Touches no simulated state: the
    /// engine calls this ahead of time — one op ahead for data accesses,
    /// before the replay loop for page-walk steps — so the three
    /// independent (and usually host-cold) set loads overlap instead of
    /// serializing through the L1→L2→L3 probe chain.
    #[inline]
    pub fn prefetch_access(&self, core: CoreId, node: NodeId, paddr: u64) {
        self.l1[core.index()].prefetch_probe(paddr);
        self.l2[core.index()].prefetch_probe(paddr);
        self.l3[node.index()].prefetch_probe(paddr);
    }

    /// Invalidates a line everywhere (models the coherence shootdown after a
    /// page migration rewrites its physical frame).
    pub fn invalidate_everywhere(&mut self, paddr: u64) {
        for c in &mut self.l1 {
            c.invalidate(paddr);
        }
        for c in &mut self.l2 {
            c.invalidate(paddr);
        }
        for c in &mut self.l3 {
            c.invalidate(paddr);
        }
    }

    /// Takes back the cache state a shard lane owned: the lane cloned the
    /// whole hierarchy but only probed the caches of its own `cores` and
    /// `nodes`, so moving exactly those back (tags, LRU stacks, and hit
    /// counters, which kept counting from their cloned absolute values)
    /// reproduces the serial hierarchy state.
    pub fn adopt_from(&mut self, lane: &mut CacheHierarchy, cores: &[usize], nodes: &[usize]) {
        for &c in cores {
            std::mem::swap(&mut self.l1[c], &mut lane.l1[c]);
            std::mem::swap(&mut self.l2[c], &mut lane.l2[c]);
        }
        for &n in nodes {
            std::mem::swap(&mut self.l3[n], &mut lane.l3[n]);
        }
    }

    /// Lifetime L2 miss count summed over all cores.
    pub fn l2_misses(&self) -> u64 {
        self.l2.iter().map(SetAssocCache::misses).sum()
    }

    /// Lifetime L2 access count summed over all cores.
    pub fn l2_accesses(&self) -> u64 {
        self.l2.iter().map(|c| c.hits() + c.misses()).sum()
    }

    /// Serializes every cache's tag state and counters.
    pub fn save_into(&self, e: &mut codec::Enc) {
        for level in [&self.l1, &self.l2, &self.l3] {
            e.seq(level.iter(), |e, c| c.save_into(e));
        }
    }

    /// Restores state captured by [`CacheHierarchy::save_into`] onto a
    /// hierarchy built for the same machine and config.
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        for level in [&mut self.l1, &mut self.l2, &mut self.l3] {
            let n = d.usize();
            assert_eq!(n, level.len(), "checkpoint cache hierarchy shape");
            for c in level.iter_mut() {
                c.load_from(d);
            }
        }
    }

    /// The L1 cache of one core (for inspection in tests and benches).
    pub fn l1_of(&self, core: CoreId) -> &SetAssocCache {
        &self.l1[core.index()]
    }

    /// The L3 cache of one node (for inspection in tests and benches).
    pub fn l3_of(&self, node: NodeId) -> &SetAssocCache {
        &self.l3[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MachineSpec, CacheHierarchy) {
        let m = MachineSpec::test_machine();
        let h = CacheHierarchy::new(&m, &MemSysConfig::scaled_default(1));
        (m, h)
    }

    #[test]
    fn cold_access_reaches_dram_then_warms_all_levels() {
        let (_, mut h) = setup();
        let core = CoreId(0);
        let node = NodeId(0);
        assert_eq!(h.access(core, node, 0x4000), ServiceLevel::Dram);
        assert_eq!(h.access(core, node, 0x4000), ServiceLevel::L1);
    }

    #[test]
    fn sibling_core_hits_shared_l3() {
        let (m, mut h) = setup();
        let c0 = CoreId(0);
        let c1 = CoreId(1); // same node as core 0 on the test machine
        assert_eq!(m.node_of_core(c0), m.node_of_core(c1));
        let node = m.node_of_core(c0);
        h.access(c0, node, 0x8000);
        // Core 1 misses its private L1/L2 but hits the node's L3.
        assert_eq!(h.access(c1, node, 0x8000), ServiceLevel::L3);
    }

    #[test]
    fn remote_core_has_its_own_l3() {
        let (m, mut h) = setup();
        let c0 = CoreId(0);
        let c2 = CoreId(2); // other node on the test machine
        let n0 = m.node_of_core(c0);
        let n1 = m.node_of_core(c2);
        assert_ne!(n0, n1);
        h.access(c0, n0, 0xc000);
        assert_eq!(h.access(c2, n1, 0xc000), ServiceLevel::Dram);
    }

    #[test]
    fn invalidate_everywhere_forces_dram() {
        let (_, mut h) = setup();
        let core = CoreId(0);
        let node = NodeId(0);
        h.access(core, node, 0x1234);
        h.invalidate_everywhere(0x1234);
        assert_eq!(h.access(core, node, 0x1234), ServiceLevel::Dram);
    }

    #[test]
    fn l2_miss_counting() {
        let (_, mut h) = setup();
        let core = CoreId(0);
        let node = NodeId(0);
        assert_eq!(h.l2_misses(), 0);
        h.access(core, node, 0x0);
        assert_eq!(h.l2_misses(), 1);
        assert_eq!(h.l2_accesses(), 1);
        h.access(core, node, 0x0); // L1 hit: no L2 access
        assert_eq!(h.l2_accesses(), 1);
    }
}
