//! The assembled memory system: caches + controllers + interconnect.

use crate::config::MemSysConfig;
use crate::controller::MemoryController;
use crate::hierarchy::{CacheHierarchy, ServiceLevel};
use crate::links::LinkTraffic;
use numa_topology::{CoreId, Interconnect, MachineSpec, NodeId};
use serde::{Deserialize, Serialize};

/// What kind of reference an access is; used to attribute L2 misses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AccessKind {
    /// An ordinary program load or store.
    Data,
    /// A page-table-walk reference issued by the MMU on a TLB miss.
    PageWalk,
}

/// The outcome of a single memory access.
///
/// For DRAM-serviced accesses the total is reported *attributed*: `queue`
/// and `inter` name the controller-queueing and interconnect components
/// included in `cycles` (the remainder is DRAM service proper — L3-miss
/// detection plus array access). Cache hits have both components zero.
/// The invariant `queue + inter <= cycles` always holds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// Total latency charged for the access, in cycles.
    pub cycles: u32,
    /// The level of the hierarchy that serviced it.
    pub level: ServiceLevel,
    /// Node of the requesting core.
    pub from_node: NodeId,
    /// Home node of the physical address (meaningful when `level` is DRAM).
    pub home_node: NodeId,
    /// Controller queueing delay included in `cycles` (DRAM only, else 0).
    pub queue: u32,
    /// Interconnect delay included in `cycles`: hop latency plus link
    /// queueing (DRAM only, else 0).
    pub inter: u32,
}

impl AccessOutcome {
    /// Whether the access was serviced from DRAM.
    #[inline]
    pub fn dram(&self) -> bool {
        self.level == ServiceLevel::Dram
    }

    /// Whether a DRAM access was serviced by the requesting core's own node.
    #[inline]
    pub fn local(&self) -> bool {
        self.from_node == self.home_node
    }
}

/// Running epoch-scoped and lifetime counters kept by the memory system.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MemEpochStats {
    /// L2 accesses (i.e. L1 misses) this epoch.
    pub l2_accesses: u64,
    /// L2 misses this epoch.
    pub l2_misses: u64,
    /// L2 misses caused by page-table walks this epoch.
    pub l2_walk_misses: u64,
    /// DRAM accesses serviced by the requesting core's node.
    pub dram_local: u64,
    /// DRAM accesses serviced by a remote node.
    pub dram_remote: u64,
}

impl MemEpochStats {
    /// Local access ratio over DRAM accesses, in `[0, 1]`; 1 when idle.
    pub fn lar(&self) -> f64 {
        let total = self.dram_local + self.dram_remote;
        if total == 0 {
            1.0
        } else {
            self.dram_local as f64 / total as f64
        }
    }

    fn merge(&mut self, other: &MemEpochStats) {
        self.l2_accesses += other.l2_accesses;
        self.l2_misses += other.l2_misses;
        self.l2_walk_misses += other.l2_walk_misses;
        self.dram_local += other.dram_local;
        self.dram_remote += other.dram_remote;
    }

    /// Adds `n` copies of a per-access counter `delta` in one step — the
    /// bulk-charge primitive of the epoch-scoped access fast path. Exactly
    /// equivalent to merging `delta` `n` times (counters are sums).
    #[inline]
    pub fn add_n(&mut self, delta: &MemEpochStats, n: u64) {
        self.l2_accesses += delta.l2_accesses * n;
        self.l2_misses += delta.l2_misses * n;
        self.l2_walk_misses += delta.l2_walk_misses * n;
        self.dram_local += delta.dram_local * n;
        self.dram_remote += delta.dram_remote * n;
    }
}

/// One controller's view at an epoch boundary, for observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerSnap {
    /// Requests serviced during the epoch.
    pub requests: u64,
    /// Queueing delay currently charged per request, in cycles.
    pub queue_delay: u32,
}

/// The complete memory system of one simulated machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MemorySystem {
    config: MemSysConfig,
    hierarchy: CacheHierarchy,
    controllers: Vec<MemoryController>,
    links: LinkTraffic,
    topology: Interconnect,
    core_node: Vec<NodeId>,
    epoch: MemEpochStats,
    lifetime: MemEpochStats,
}

impl MemorySystem {
    /// Builds the memory system for `machine` with the given configuration.
    pub fn new(machine: &MachineSpec, config: MemSysConfig) -> Self {
        let topology = machine.topology().clone();
        let controllers = (0..machine.num_nodes())
            .map(|_| {
                MemoryController::new(
                    config.controller_service_cycles,
                    config.controller_queue_coeff,
                    config.controller_queue_cap,
                )
            })
            .collect();
        let links = LinkTraffic::new(
            &topology,
            config.link_service_cycles,
            config.link_queue_coeff,
            config.link_queue_cap,
        );
        let hierarchy = CacheHierarchy::new(machine, &config);
        let core_node = (0..machine.total_cores())
            .map(|c| machine.node_of_core(CoreId::from(c)))
            .collect();
        MemorySystem {
            config,
            hierarchy,
            controllers,
            links,
            topology,
            core_node,
            epoch: MemEpochStats::default(),
            lifetime: MemEpochStats::default(),
        }
    }

    /// Performs one memory access and returns its latency and outcome.
    ///
    /// `home` is the NUMA node hosting the physical frame of `paddr` (the
    /// virtual-memory layer knows this; the memory system only charges for
    /// it). Lines are filled on the way back, so subsequent accesses hit.
    pub fn access(
        &mut self,
        core: CoreId,
        paddr: u64,
        home: NodeId,
        kind: AccessKind,
    ) -> AccessOutcome {
        let from = self.core_node[core.index()];
        let level = self.hierarchy.access(core, from, paddr);
        if level != ServiceLevel::L1 {
            self.epoch.l2_accesses += 1;
        }
        let (mut queue, mut inter) = (0, 0);
        let cycles = match level {
            ServiceLevel::L1 => self.config.l1_latency,
            ServiceLevel::L2 => self.config.l2_latency,
            ServiceLevel::L3 | ServiceLevel::Dram => {
                self.epoch.l2_misses += 1;
                if kind == AccessKind::PageWalk {
                    self.epoch.l2_walk_misses += 1;
                }
                if level == ServiceLevel::L3 {
                    self.config.l3_latency
                } else {
                    if from == home {
                        self.epoch.dram_local += 1;
                    } else {
                        self.epoch.dram_remote += 1;
                    }
                    queue = self.controllers[home.index()].request();
                    let route = self.topology.route(from, home);
                    let hops = route.hops();
                    let link_delay = self.links.traverse(route);
                    inter = hops * self.config.hop_latency + link_delay;
                    self.config.l3_latency + self.config.dram_base_latency + queue + inter
                }
            }
        };
        AccessOutcome {
            cycles,
            level,
            from_node: from,
            home_node: home,
            queue,
            inter,
        }
    }

    /// Performs a cache-bypassing access (a store to line-level-shared data
    /// whose coherence traffic must reach the home controller). Charged the
    /// full DRAM path; counted as an L2 access and miss, since coherence
    /// misses are not TLB walks but do escape the core's caches.
    pub fn access_uncached(&mut self, core: CoreId, home: NodeId) -> AccessOutcome {
        let from = self.core_node[core.index()];
        self.epoch.l2_accesses += 1;
        self.epoch.l2_misses += 1;
        if from == home {
            self.epoch.dram_local += 1;
        } else {
            self.epoch.dram_remote += 1;
        }
        let queue = self.controllers[home.index()].request();
        let route = self.topology.route(from, home);
        let hops = route.hops();
        let link_delay = self.links.traverse(route);
        let inter = hops * self.config.hop_latency + link_delay;
        let cycles = self.config.l3_latency + self.config.dram_base_latency + queue + inter;
        AccessOutcome {
            cycles,
            level: ServiceLevel::Dram,
            from_node: from,
            home_node: home,
            queue,
            inter,
        }
    }

    /// Computes the outcome an uncached access would have, without charging
    /// it: the read-only companion of [`MemorySystem::access_uncached`].
    ///
    /// Within an epoch the result is a pure function of `(core, home)` —
    /// controller queueing and link congestion delays only change at
    /// [`MemorySystem::end_epoch`] — so the engine's fast path computes it
    /// once per `(node, home)` pair per epoch and charges repeats with
    /// [`MemorySystem::charge_uncached_n`].
    pub fn peek_uncached(&self, core: CoreId, home: NodeId) -> AccessOutcome {
        let from = self.core_node[core.index()];
        let queue = self.controllers[home.index()].current_delay();
        let route = self.topology.route(from, home);
        let hops = route.hops();
        let link_delay = self.links.peek(route);
        let inter = hops * self.config.hop_latency + link_delay;
        let cycles = self.config.l3_latency + self.config.dram_base_latency + queue + inter;
        AccessOutcome {
            cycles,
            level: ServiceLevel::Dram,
            from_node: from,
            home_node: home,
            queue,
            inter,
        }
    }

    /// Charges `n` uncached accesses from `core` to `home` in bulk: counter
    /// effects are exactly those of `n` [`MemorySystem::access_uncached`]
    /// calls (whose per-access outcome [`MemorySystem::peek_uncached`]
    /// reported). Only valid within one epoch — the caller must flush its
    /// batch before [`MemorySystem::end_epoch`].
    pub fn charge_uncached_n(&mut self, core: CoreId, home: NodeId, n: u64) {
        let from = self.core_node[core.index()];
        let delta = MemEpochStats {
            l2_accesses: 1,
            l2_misses: 1,
            l2_walk_misses: 0,
            dram_local: u64::from(from == home),
            dram_remote: u64::from(from != home),
        };
        self.epoch.add_n(&delta, n);
        self.controllers[home.index()].request_n(n);
        let route = self.topology.route(from, home);
        self.links.traverse_n(route, n);
    }

    /// Performs one data access like [`MemorySystem::access`], additionally
    /// reporting whether the access left the cache hierarchy's set state
    /// unchanged (a *stable* hit: L1, already most-recently-used). A stable
    /// access is idempotent — replaying the same line from the same core
    /// would produce the same outcome and the same state — which is what
    /// lets the engine's fast path charge same-line repeats in bulk via
    /// [`MemorySystem::charge_l1_hits_n`].
    #[inline]
    pub fn access_stable(
        &mut self,
        core: CoreId,
        paddr: u64,
        home: NodeId,
        kind: AccessKind,
    ) -> (AccessOutcome, bool) {
        let from = self.core_node[core.index()];
        let (level, stable) = self.hierarchy.access_stable(core, from, paddr);
        if level != ServiceLevel::L1 {
            self.epoch.l2_accesses += 1;
        }
        let (mut queue, mut inter) = (0, 0);
        let cycles = match level {
            ServiceLevel::L1 => self.config.l1_latency,
            ServiceLevel::L2 => self.config.l2_latency,
            ServiceLevel::L3 | ServiceLevel::Dram => {
                self.epoch.l2_misses += 1;
                if kind == AccessKind::PageWalk {
                    self.epoch.l2_walk_misses += 1;
                }
                if level == ServiceLevel::L3 {
                    self.config.l3_latency
                } else {
                    if from == home {
                        self.epoch.dram_local += 1;
                    } else {
                        self.epoch.dram_remote += 1;
                    }
                    queue = self.controllers[home.index()].request();
                    let route = self.topology.route(from, home);
                    let hops = route.hops();
                    let link_delay = self.links.traverse(route);
                    inter = hops * self.config.hop_latency + link_delay;
                    self.config.l3_latency + self.config.dram_base_latency + queue + inter
                }
            }
        };
        (
            AccessOutcome {
                cycles,
                level,
                from_node: from,
                home_node: home,
                queue,
                inter,
            },
            stable,
        )
    }

    /// Charges `n` stable L1 hits for `core` in bulk: the only state a
    /// stable hit changes is the L1 hit counter (the line is already MRU,
    /// and L1 hits touch no epoch counters), so `n` replays collapse to one
    /// counter addition.
    #[inline]
    pub fn charge_l1_hits_n(&mut self, core: CoreId, n: u64) {
        self.hierarchy.add_l1_hits(core, n);
    }

    /// The cache line size (bytes) of the first-level cache, for fast-path
    /// same-line detection.
    #[inline]
    pub fn l1_line_bytes(&self) -> u64 {
        self.config.l1.line_bytes as u64
    }

    /// Host-side prefetch of the cache sets an access by `core` to `paddr`
    /// would probe. Touches no simulated state — the engine calls it for
    /// addresses it is *about* to access (e.g. every step of a page walk
    /// before replaying them), so the independent set loads overlap
    /// instead of serializing through the probe chain.
    #[inline]
    pub fn prefetch_access(&self, core: CoreId, paddr: u64) {
        let from = self.core_node[core.index()];
        self.hierarchy.prefetch_access(core, from, paddr);
    }

    /// Closes the current epoch: rolls epoch counters into lifetime totals
    /// and lets controllers and links derive next-epoch delays from their
    /// utilization over `epoch_cycles`.
    pub fn end_epoch(&mut self, epoch_cycles: u64) -> MemEpochStats {
        for c in &mut self.controllers {
            c.end_epoch(epoch_cycles);
        }
        self.links.end_epoch(epoch_cycles);
        let stats = self.epoch;
        self.lifetime.merge(&stats);
        self.epoch = MemEpochStats::default();
        stats
    }

    /// Counters accumulated during the still-open epoch.
    #[inline]
    pub fn epoch_stats(&self) -> &MemEpochStats {
        &self.epoch
    }

    /// Counters accumulated over the system's lifetime (closed epochs only).
    #[inline]
    pub fn lifetime_stats(&self) -> &MemEpochStats {
        &self.lifetime
    }

    /// Per-controller requests serviced during the still-open epoch.
    pub fn controller_epoch_requests(&self) -> Vec<u64> {
        self.controllers
            .iter()
            .map(MemoryController::epoch_requests)
            .collect()
    }

    /// Per-controller lifetime request counts.
    pub fn controller_total_requests(&self) -> Vec<u64> {
        self.controllers
            .iter()
            .map(MemoryController::total_requests)
            .collect()
    }

    /// Current per-controller queueing delays (cycles).
    pub fn controller_delays(&self) -> Vec<u32> {
        self.controllers
            .iter()
            .map(MemoryController::current_delay)
            .collect()
    }

    /// Joint per-controller observability snapshot of the still-open
    /// epoch: requests serviced so far plus the queueing delay currently
    /// charged (derived from the *previous* epoch's utilization). The
    /// trace layer emits this with every epoch-end event.
    pub fn controller_snapshots(&self) -> Vec<ControllerSnap> {
        self.controllers
            .iter()
            .map(|c| ControllerSnap {
                requests: c.epoch_requests(),
                queue_delay: c.current_delay(),
            })
            .collect()
    }

    /// Builds a shard lane's memory system: cache state cloned wholesale
    /// (the lane will only probe the caches of the cores/nodes it owns),
    /// controller/link delays carried over (constant within an epoch),
    /// and every additive counter zeroed so the lane accumulates pure
    /// deltas for [`MemorySystem::absorb_lane`].
    pub fn fork_lane(&self) -> Self {
        MemorySystem {
            config: self.config.clone(),
            hierarchy: self.hierarchy.clone(),
            controllers: self.controllers.iter().map(|c| c.fork_delta()).collect(),
            links: self.links.fork_delta(),
            topology: self.topology.clone(),
            core_node: self.core_node.clone(),
            epoch: MemEpochStats::default(),
            lifetime: MemEpochStats::default(),
        }
    }

    /// Merges a lane built by [`MemorySystem::fork_lane`] back in after it
    /// simulated the accesses of the threads on `cores` (all on `nodes`):
    /// cache state for the owned cores/nodes is moved back, and the
    /// controller/link/epoch counters — commutative sums — are added.
    /// Absorbing every lane of an epoch (in any fixed order) leaves the
    /// parent byte-identical to having simulated all accesses serially.
    pub fn absorb_lane(&mut self, lane: &mut MemorySystem, cores: &[usize], nodes: &[usize]) {
        self.hierarchy.adopt_from(&mut lane.hierarchy, cores, nodes);
        for (c, l) in self.controllers.iter_mut().zip(&lane.controllers) {
            c.absorb_delta(l);
        }
        self.links.absorb_delta(&lane.links);
        self.epoch.add_n(&lane.epoch, 1);
        debug_assert_eq!(
            (lane.lifetime.l2_accesses, lane.lifetime.dram_local),
            (0, 0),
            "lanes never close epochs"
        );
    }

    /// Serializes the full memory-system state for the `ckpt-v1` snapshot:
    /// cache tags, controller counters/delays, link traffic, and the
    /// epoch/lifetime counter pairs. The config, topology, and core→node
    /// map are constructor-derived and rebuilt by the caller.
    pub fn save_into(&self, e: &mut codec::Enc) {
        self.hierarchy.save_into(e);
        e.seq(self.controllers.iter(), |e, c| c.save_into(e));
        self.links.save_into(e);
        for s in [&self.epoch, &self.lifetime] {
            e.u64(s.l2_accesses);
            e.u64(s.l2_misses);
            e.u64(s.l2_walk_misses);
            e.u64(s.dram_local);
            e.u64(s.dram_remote);
        }
    }

    /// Restores state captured by [`MemorySystem::save_into`] onto a system
    /// built for the same machine and config.
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        self.hierarchy.load_from(d);
        let n = d.usize();
        assert_eq!(n, self.controllers.len(), "checkpoint controller count");
        for c in &mut self.controllers {
            c.load_from(d);
        }
        self.links.load_from(d);
        for s in [&mut self.epoch, &mut self.lifetime] {
            s.l2_accesses = d.u64();
            s.l2_misses = d.u64();
            s.l2_walk_misses = d.u64();
            s.dram_local = d.u64();
            s.dram_remote = d.u64();
        }
    }

    /// The cache hierarchy (for inspection in tests and benches).
    #[inline]
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// The configuration this system was built with.
    #[inline]
    pub fn config(&self) -> &MemSysConfig {
        &self.config
    }

    /// The node of a given core (cached from the machine spec).
    #[inline]
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        self.core_node[core.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> MemorySystem {
        MemorySystem::new(
            &MachineSpec::test_machine(),
            MemSysConfig::scaled_default(1),
        )
    }

    #[test]
    fn local_dram_access_is_cheaper_than_remote() {
        let mut m = system();
        let local = m.access(CoreId(0), 0x10_0000, NodeId(0), AccessKind::Data);
        let remote = m.access(CoreId(0), 0x20_0000, NodeId(1), AccessKind::Data);
        assert!(local.dram() && remote.dram());
        assert!(local.local());
        assert!(!remote.local());
        assert!(remote.cycles > local.cycles);
    }

    #[test]
    fn walk_misses_are_attributed() {
        let mut m = system();
        m.access(CoreId(0), 0x30_0000, NodeId(0), AccessKind::PageWalk);
        assert_eq!(m.epoch_stats().l2_walk_misses, 1);
        assert_eq!(m.epoch_stats().l2_misses, 1);
        m.access(CoreId(0), 0x40_0000, NodeId(0), AccessKind::Data);
        assert_eq!(m.epoch_stats().l2_walk_misses, 1);
        assert_eq!(m.epoch_stats().l2_misses, 2);
    }

    #[test]
    fn lar_tracks_locality() {
        let mut m = system();
        m.access(CoreId(0), 0x1_0000, NodeId(0), AccessKind::Data);
        m.access(CoreId(0), 0x2_0000, NodeId(0), AccessKind::Data);
        m.access(CoreId(0), 0x3_0000, NodeId(1), AccessKind::Data);
        let s = m.epoch_stats();
        assert_eq!(s.dram_local, 2);
        assert_eq!(s.dram_remote, 1);
        assert!((s.lar() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overload_feedback_raises_remote_latency() {
        let mut m = system();
        // Hammer node 1's controller from node 0 for one epoch.
        let baseline = m
            .access(CoreId(0), 0x100_0000, NodeId(1), AccessKind::Data)
            .cycles;
        for i in 0..300_000u64 {
            m.access(
                CoreId(0),
                0x200_0000 + i * 4096,
                NodeId(1),
                AccessKind::Data,
            );
        }
        m.end_epoch(2_000_000);
        let loaded = m
            .access(CoreId(0), 0x900_0000, NodeId(1), AccessKind::Data)
            .cycles;
        assert!(
            loaded > baseline + 500,
            "loaded {loaded} vs baseline {baseline}"
        );
    }

    #[test]
    fn end_epoch_rolls_into_lifetime() {
        let mut m = system();
        m.access(CoreId(0), 0x5_0000, NodeId(0), AccessKind::Data);
        let s = m.end_epoch(1000);
        assert_eq!(s.dram_local, 1);
        assert_eq!(m.epoch_stats().dram_local, 0);
        assert_eq!(m.lifetime_stats().dram_local, 1);
    }

    #[test]
    fn outcome_components_are_attributed() {
        let mut m = system();
        // Cold: DRAM. Components must be consistent with the total and the
        // uncached/peek paths must agree with the access path's shape.
        let dram = m.access(CoreId(0), 0x50_0000, NodeId(1), AccessKind::Data);
        assert!(dram.dram());
        assert!(dram.inter > 0, "remote access crosses the interconnect");
        assert!(u64::from(dram.queue) + u64::from(dram.inter) <= u64::from(dram.cycles));
        // Warm: L1 hit. No DRAM-path components.
        let hit = m.access(CoreId(0), 0x50_0000, NodeId(1), AccessKind::Data);
        assert_eq!(hit.level, ServiceLevel::L1);
        assert_eq!((hit.queue, hit.inter), (0, 0));
        let peek = m.peek_uncached(CoreId(0), NodeId(1));
        let charged = m.access_uncached(CoreId(0), NodeId(1));
        assert_eq!(peek.inter, charged.inter);
        assert!(u64::from(charged.queue) + u64::from(charged.inter) <= u64::from(charged.cycles));
    }

    #[test]
    fn forked_lanes_absorb_to_serial_state() {
        // Serial: cores on both nodes interleave accesses on one system.
        // Sharded: each node's accesses run on a forked lane; absorbing the
        // lanes must leave the system byte-identical (ckpt encoding) to the
        // serial one. The test machine has 2 nodes, cores {0,1} and {2,3}.
        let ops: Vec<(usize, u64, usize)> = (0..400)
            .map(|i| {
                let core = (i * 7 + 3) % 4;
                let home = (i * 5 + core) % 2;
                (core, 0x10_0000 + (i as u64 * 1321) % 65_536 * 64, home)
            })
            .collect();
        let mut serial = system();
        // A warm, congested starting state so delays are nonzero.
        for i in 0..50_000u64 {
            serial.access(
                CoreId(0),
                0x900_0000 + i * 4096,
                NodeId(1),
                AccessKind::Data,
            );
        }
        serial.end_epoch(1_000_000);
        let mut sharded = serial.clone();

        let mut serial_out = Vec::new();
        for &(core, paddr, home) in &ops {
            serial_out.push(
                serial
                    .access(
                        CoreId::from(core),
                        paddr,
                        NodeId::from(home),
                        AccessKind::Data,
                    )
                    .cycles,
            );
        }

        let mut lanes = [sharded.fork_lane(), sharded.fork_lane()];
        let mut sharded_out = vec![0; ops.len()];
        for (lane_idx, lane) in lanes.iter_mut().enumerate() {
            for (i, &(core, paddr, home)) in ops.iter().enumerate() {
                if core / 2 == lane_idx {
                    sharded_out[i] = lane
                        .access(
                            CoreId::from(core),
                            paddr,
                            NodeId::from(home),
                            AccessKind::Data,
                        )
                        .cycles;
                }
            }
        }
        sharded.absorb_lane(&mut lanes[0], &[0, 1], &[0]);
        sharded.absorb_lane(&mut lanes[1], &[2, 3], &[1]);

        assert_eq!(serial_out, sharded_out, "per-access latencies");
        let enc = |m: &MemorySystem| {
            let mut e = codec::Enc::new();
            m.save_into(&mut e);
            e.into_bytes()
        };
        assert_eq!(enc(&serial), enc(&sharded), "post-merge system state");
    }

    #[test]
    fn controller_request_counts_track_homes() {
        let mut m = system();
        m.access(CoreId(0), 0x6_0000, NodeId(1), AccessKind::Data);
        m.access(CoreId(0), 0x7_0000, NodeId(1), AccessKind::Data);
        m.access(CoreId(0), 0x8_0000, NodeId(0), AccessKind::Data);
        assert_eq!(m.controller_epoch_requests(), vec![1, 2]);
    }
}
