//! Interconnect link traffic accounting and congestion delay.

use numa_topology::{Interconnect, LinkId, Route};
use serde::{Deserialize, Serialize};

/// Per-link traffic counters and congestion state for the whole interconnect.
///
/// Works like [`crate::MemoryController`] but per directed link: traffic this
/// epoch sets the congestion delay charged in the next epoch. A remote access
/// is charged the *maximum* congestion along its route (the bottleneck link),
/// not the sum — back-to-back store-and-forward queues overlap in practice.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkTraffic {
    service_cycles: u32,
    queue_coeff: f64,
    queue_cap: u32,
    epoch_requests: Vec<u64>,
    total_requests: Vec<u64>,
    current_delay: Vec<u32>,
}

impl LinkTraffic {
    /// Creates idle traffic state for every link of `topology`.
    pub fn new(
        topology: &Interconnect,
        service_cycles: u32,
        queue_coeff: f64,
        queue_cap: u32,
    ) -> Self {
        let n = topology.num_links();
        LinkTraffic {
            service_cycles,
            queue_coeff,
            queue_cap,
            epoch_requests: vec![0; n],
            total_requests: vec![0; n],
            current_delay: vec![0; n],
        }
    }

    /// Records one request traversing `route`; returns the congestion delay
    /// (cycles) of the bottleneck link on the route.
    #[inline]
    pub fn traverse(&mut self, route: &Route) -> u32 {
        let mut worst = 0;
        for &l in route.links() {
            let i = l.index();
            self.epoch_requests[i] += 1;
            self.total_requests[i] += 1;
            worst = worst.max(self.current_delay[i]);
        }
        worst
    }

    /// Records `n` requests traversing `route` at once; returns the
    /// bottleneck congestion delay charged to each. Exactly equivalent to
    /// `n` calls to [`LinkTraffic::traverse`]: per-link delays only change
    /// at [`LinkTraffic::end_epoch`], so every request of an intra-epoch
    /// batch sees the same bottleneck.
    #[inline]
    pub fn traverse_n(&mut self, route: &Route, n: u64) -> u32 {
        let mut worst = 0;
        for &l in route.links() {
            let i = l.index();
            self.epoch_requests[i] += n;
            self.total_requests[i] += n;
            worst = worst.max(self.current_delay[i]);
        }
        worst
    }

    /// The bottleneck congestion delay of `route` without recording any
    /// traffic (read-only companion of [`LinkTraffic::traverse`]).
    #[inline]
    pub fn peek(&self, route: &Route) -> u32 {
        route
            .links()
            .iter()
            .map(|l| self.current_delay[l.index()])
            .max()
            .unwrap_or(0)
    }

    /// Closes the epoch: derives each link's congestion delay for the next
    /// epoch from its utilization during this one.
    pub fn end_epoch(&mut self, epoch_cycles: u64) {
        for i in 0..self.epoch_requests.len() {
            let rho = if epoch_cycles == 0 {
                0.0
            } else {
                (self.epoch_requests[i] * u64::from(self.service_cycles)) as f64
                    / epoch_cycles as f64
            };
            let rho = rho.clamp(0.0, 0.98);
            let delay = (self.queue_coeff * rho / (1.0 - rho)).min(f64::from(self.queue_cap));
            // Smoothed like the controllers (see MemoryController::end_epoch).
            self.current_delay[i] = ((f64::from(self.current_delay[i]) + delay) / 2.0) as u32;
            self.epoch_requests[i] = 0;
        }
    }

    /// A shard lane's view of the interconnect: same constant-within-epoch
    /// per-link delays, traffic counters zeroed so the lane accumulates
    /// pure deltas (see [`crate::MemoryController::fork_delta`]).
    pub fn fork_delta(&self) -> Self {
        LinkTraffic {
            epoch_requests: vec![0; self.epoch_requests.len()],
            total_requests: vec![0; self.total_requests.len()],
            ..self.clone()
        }
    }

    /// Folds a lane's per-link traffic deltas back in; counters are
    /// commutative sums, delays untouched.
    pub fn absorb_delta(&mut self, lane: &LinkTraffic) {
        for (a, b) in self.epoch_requests.iter_mut().zip(&lane.epoch_requests) {
            *a += b;
        }
        for (a, b) in self.total_requests.iter_mut().zip(&lane.total_requests) {
            *a += b;
        }
    }

    /// Serializes the per-link counters and congestion delays (the queue
    /// parameters are constructor-fixed).
    pub fn save_into(&self, e: &mut codec::Enc) {
        e.seq(self.epoch_requests.iter(), |e, &v| e.u64(v));
        e.seq(self.total_requests.iter(), |e, &v| e.u64(v));
        e.seq(self.current_delay.iter(), |e, &v| e.u32(v));
    }

    /// Restores state captured by [`LinkTraffic::save_into`] onto traffic
    /// state built for the same interconnect.
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        let epoch = d.seq(|d| d.u64());
        assert_eq!(
            epoch.len(),
            self.epoch_requests.len(),
            "checkpoint link count"
        );
        self.epoch_requests = epoch;
        self.total_requests = d.seq(|d| d.u64());
        self.current_delay = d.seq(|d| d.u32());
    }

    /// Lifetime request count of one link.
    #[inline]
    pub fn total_requests(&self, link: LinkId) -> u64 {
        self.total_requests[link.index()]
    }

    /// Congestion delay currently charged by one link, in cycles.
    #[inline]
    pub fn current_delay(&self, link: LinkId) -> u32 {
        self.current_delay[link.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId::from(i)
    }

    #[test]
    fn traffic_counts_per_link() {
        let ic = Interconnect::new(3, &[(0, 1), (1, 2)]);
        let mut lt = LinkTraffic::new(&ic, 6, 60.0, 400);
        let route = ic.route(n(0), n(2)).clone();
        assert_eq!(route.hops(), 2);
        lt.traverse(&route);
        lt.traverse(&route);
        for &l in route.links() {
            assert_eq!(lt.total_requests(l), 2);
        }
    }

    #[test]
    fn congestion_builds_on_hot_link() {
        let ic = Interconnect::new(3, &[(0, 1), (1, 2)]);
        let mut lt = LinkTraffic::new(&ic, 6, 60.0, 400);
        let hot = ic.route(n(0), n(1)).clone();
        // Sustained load (smoothing needs a few epochs to converge).
        for _ in 0..6 {
            for _ in 0..100_000 {
                lt.traverse(&hot);
            }
            lt.end_epoch(1_000_000); // rho = 0.6 on the hot link
        }
        assert!(lt.traverse(&hot) > 50);
        // The unrelated link 1 -> 2 stays uncongested.
        let cold = ic.route(n(1), n(2)).clone();
        assert_eq!(lt.traverse(&cold), 0);
    }

    #[test]
    fn bottleneck_is_max_not_sum() {
        let ic = Interconnect::new(3, &[(0, 1), (1, 2)]);
        let mut lt = LinkTraffic::new(&ic, 6, 60.0, 400);
        // Load only the first hop.
        let first = ic.route(n(0), n(1)).clone();
        for _ in 0..6 {
            for _ in 0..100_000 {
                lt.traverse(&first);
            }
            lt.end_epoch(1_000_000);
        }
        let through = ic.route(n(0), n(2)).clone();
        let d_through = lt.traverse(&through);
        let d_first = lt.traverse(&first);
        assert_eq!(d_through, d_first, "two-hop delay equals bottleneck delay");
    }

    #[test]
    fn empty_route_has_no_delay() {
        let ic = Interconnect::full_mesh(2);
        let mut lt = LinkTraffic::new(&ic, 6, 60.0, 400);
        let local = ic.route(n(0), n(0)).clone();
        assert_eq!(lt.traverse(&local), 0);
    }
}
