//! Memory system configuration and the default (scaled) Opteron geometry.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Number of sets (rounded up to a power of two on construction).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// Total capacity in bytes implied by this geometry.
    pub fn capacity_bytes(&self) -> usize {
        self.sets.next_power_of_two() * self.ways * self.line_bytes
    }

    /// Returns the same geometry with the set count divided by `factor`
    /// (minimum one set). Used to scale caches together with working sets.
    pub fn scaled_down(self, factor: usize) -> Self {
        CacheGeometry {
            sets: (self.sets / factor.max(1)).max(1),
            ..self
        }
    }
}

/// Complete configuration of the memory system simulator.
///
/// The defaults describe an AMD Opteron–like hierarchy *scaled down* by a
/// configurable factor. Scaling caches together with workload working sets
/// keeps the miss ratios — and therefore every effect the paper studies —
/// in the realistic regime while letting a simulation finish in
/// milliseconds instead of hours.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MemSysConfig {
    /// Per-core L1 data cache.
    pub l1: CacheGeometry,
    /// Per-core L2 cache.
    pub l2: CacheGeometry,
    /// Per-node shared L3 cache.
    pub l3: CacheGeometry,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// L2 hit latency in cycles.
    pub l2_latency: u32,
    /// L3 hit latency in cycles.
    pub l3_latency: u32,
    /// Unloaded DRAM access latency at the local controller, in cycles.
    pub dram_base_latency: u32,
    /// Extra cycles per interconnect hop for remote DRAM accesses.
    pub hop_latency: u32,
    /// Cycles of controller occupancy per DRAM request (service time);
    /// sets the utilization at which queueing delay explodes.
    pub controller_service_cycles: u32,
    /// Coefficient of the `rho / (1 - rho)` controller queueing term.
    pub controller_queue_coeff: f64,
    /// Hard cap on controller queueing delay, in cycles. The paper quotes
    /// ≈1000 cycles on an overloaded controller vs ≈200 unloaded.
    pub controller_queue_cap: u32,
    /// Cycles of link occupancy per request crossing a link.
    pub link_service_cycles: u32,
    /// Coefficient of the link congestion term.
    pub link_queue_coeff: f64,
    /// Hard cap on per-link congestion delay, in cycles.
    pub link_queue_cap: u32,
}

impl MemSysConfig {
    /// Opteron-like geometry scaled down by `scale` (1 = full size).
    ///
    /// Full-size reference: 64 B lines, L1d 32 KiB/8-way, L2 512 KiB/16-way
    /// per core, L3 12 MiB/16-way per node. Latencies: 1 / 12 / 40 cycles;
    /// DRAM ≈190 cycles unloaded, ≈60 cycles per HyperTransport hop.
    pub fn scaled_default(scale: usize) -> Self {
        let scale = scale.max(1);
        MemSysConfig {
            l1: CacheGeometry {
                sets: 64,
                ways: 8,
                line_bytes: 64,
            }
            .scaled_down(scale),
            l2: CacheGeometry {
                sets: 512,
                ways: 16,
                line_bytes: 64,
            }
            .scaled_down(scale),
            l3: CacheGeometry {
                sets: 12288,
                ways: 16,
                line_bytes: 64,
            }
            .scaled_down(scale),
            l1_latency: 1,
            l2_latency: 12,
            l3_latency: 40,
            dram_base_latency: 190,
            hop_latency: 110,
            controller_service_cycles: 20,
            controller_queue_coeff: 120.0,
            controller_queue_cap: 900,
            link_service_cycles: 6,
            link_queue_coeff: 60.0,
            link_queue_cap: 400,
        }
    }
}

impl Default for MemSysConfig {
    fn default() -> Self {
        MemSysConfig::scaled_default(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capacities_match_opteron() {
        let c = MemSysConfig::default();
        assert_eq!(c.l1.capacity_bytes(), 32 << 10);
        assert_eq!(c.l2.capacity_bytes(), 512 << 10);
        // 12288 sets round up to 16384: the model L3 is 16 MiB.
        assert_eq!(c.l3.capacity_bytes(), 16 << 20);
    }

    #[test]
    fn scaling_divides_sets() {
        let c = MemSysConfig::scaled_default(8);
        assert_eq!(c.l1.sets, 8);
        assert_eq!(c.l2.sets, 64);
        assert_eq!(c.l3.sets, 1536);
    }

    #[test]
    fn scaling_never_reaches_zero_sets() {
        let c = MemSysConfig::scaled_default(1_000_000);
        assert_eq!(c.l1.sets, 1);
        assert_eq!(c.l2.sets, 1);
        assert_eq!(c.l3.sets, 1);
    }

    #[test]
    fn latency_ordering_is_sane() {
        let c = MemSysConfig::default();
        assert!(c.l1_latency < c.l2_latency);
        assert!(c.l2_latency < c.l3_latency);
        assert!(c.l3_latency < c.dram_base_latency);
        // Overloaded controller reaches the ~1000 cycle range the paper cites.
        assert!(c.dram_base_latency + c.controller_queue_cap >= 1000);
    }
}
