//! Memory system simulator for a NUMA machine.
//!
//! This crate models the parts of the memory hierarchy that the paper's
//! analysis depends on:
//!
//! * a set-associative **cache hierarchy** (per-core L1 and L2, per-node
//!   shared L3, matching the AMD Opteron layout), so that page-table-walk
//!   references can hit or miss in the L2 — the paper's "% of L2 misses
//!   caused by page table walks" metric falls out of this,
//! * per-node **memory controllers** with a queueing-delay contention model:
//!   an idle controller services a request in ≈200 cycles while an overloaded
//!   one takes ≈1000 cycles (the range the paper quotes from the Carrefour
//!   work), and
//! * **interconnect links** with per-link traffic accounting and a congestion
//!   penalty, so that remote accesses both cost hops and can saturate links.
//!
//! The simulator is *cycle-accounting*, not cycle-accurate: each access is
//! charged a latency derived from where it was serviced and from the measured
//! utilization of the resources it touched during the previous epoch. That
//! feedback (load this epoch → latency next epoch) is what lets imbalance
//! translate into a slowdown exactly as it does on real hardware.
//!
//! # Examples
//!
//! ```
//! use numa_topology::MachineSpec;
//! use memsys::{MemSysConfig, MemorySystem, AccessKind};
//!
//! let machine = MachineSpec::test_machine();
//! let mut mem = MemorySystem::new(&machine, MemSysConfig::scaled_default(1));
//! // A cold access misses everywhere and goes to DRAM on its home node.
//! let out = mem.access(0usize.into(), 0x1000, 0usize.into(), AccessKind::Data);
//! assert!(out.dram());
//! // An immediate re-access of the same line hits in the L1.
//! let out2 = mem.access(0usize.into(), 0x1000, 0usize.into(), AccessKind::Data);
//! assert!(out2.cycles < out.cycles);
//! ```

mod cache;
mod config;
mod controller;
mod hierarchy;
mod links;
mod system;

pub use cache::SetAssocCache;
pub use config::{CacheGeometry, MemSysConfig};
pub use controller::MemoryController;
pub use hierarchy::{CacheHierarchy, ServiceLevel};
pub use links::LinkTraffic;
pub use system::{AccessKind, AccessOutcome, ControllerSnap, MemorySystem};
