//! Per-node memory controller with a utilization-driven queueing delay.

use serde::{Deserialize, Serialize};

/// A memory controller attached to one NUMA node.
///
/// The controller counts the requests it services during the current epoch.
/// At the epoch boundary ([`MemoryController::end_epoch`]) the request count
/// and the epoch length determine a utilization `rho`, and the queueing
/// delay charged to every request in the *next* epoch follows the classic
/// M/M/1-shaped curve `coeff * rho / (1 - rho)`, capped so an overloaded
/// controller tops out around the ≈1000-cycle latency the paper reports.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MemoryController {
    service_cycles: u32,
    queue_coeff: f64,
    queue_cap: u32,
    epoch_requests: u64,
    total_requests: u64,
    /// Queueing delay applied during the current epoch (from last epoch's load).
    current_delay: u32,
    /// Utilization measured at the last epoch boundary.
    last_utilization: f64,
}

impl MemoryController {
    /// Creates an idle controller.
    pub fn new(service_cycles: u32, queue_coeff: f64, queue_cap: u32) -> Self {
        MemoryController {
            service_cycles,
            queue_coeff,
            queue_cap,
            epoch_requests: 0,
            total_requests: 0,
            current_delay: 0,
            last_utilization: 0.0,
        }
    }

    /// Records one serviced request and returns the queueing delay (cycles)
    /// to charge on top of the base DRAM latency.
    #[inline]
    pub fn request(&mut self) -> u32 {
        self.epoch_requests += 1;
        self.total_requests += 1;
        self.current_delay
    }

    /// Records `n` serviced requests at once and returns the queueing delay
    /// charged to each. Exactly equivalent to `n` calls to
    /// [`MemoryController::request`]: the delay is constant within an epoch
    /// (it is only recomputed by [`MemoryController::end_epoch`]), so a
    /// batch of steady-state requests can be counted in bulk.
    #[inline]
    pub fn request_n(&mut self, n: u64) -> u32 {
        self.epoch_requests += n;
        self.total_requests += n;
        self.current_delay
    }

    /// Closes the epoch: computes utilization from the epoch length in
    /// cycles and derives the queueing delay for the next epoch.
    pub fn end_epoch(&mut self, epoch_cycles: u64) {
        let rho = if epoch_cycles == 0 {
            0.0
        } else {
            (self.epoch_requests * u64::from(self.service_cycles)) as f64 / epoch_cycles as f64
        };
        // Clamp below 1.0 so the queue term stays finite; the cap below is
        // what actually bounds the latency.
        let rho = rho.clamp(0.0, 0.98);
        self.last_utilization = rho;
        let delay = (self.queue_coeff * rho / (1.0 - rho)).min(f64::from(self.queue_cap));
        // Exponential smoothing: the delay responds to *sustained* load.
        // Raw per-epoch feedback (load this epoch sets latency next epoch)
        // oscillates: a slow epoch lowers utilization, which speeds up the
        // next epoch, which raises it again.
        self.current_delay = ((f64::from(self.current_delay) + delay) / 2.0) as u32;
        self.epoch_requests = 0;
    }

    /// A shard lane's view of this controller: same constant-within-epoch
    /// delay, request counters zeroed so the lane accumulates pure deltas.
    /// The delay a lane charges is byte-identical to what the parent would
    /// have charged — it only changes at [`MemoryController::end_epoch`],
    /// which lanes never call.
    pub fn fork_delta(&self) -> Self {
        MemoryController {
            epoch_requests: 0,
            total_requests: 0,
            ..self.clone()
        }
    }

    /// Folds a lane's request-count deltas back in. Request counts are
    /// commutative sums, so absorbing lanes in any fixed order reproduces
    /// the serial counters exactly; delay state is untouched (lanes cannot
    /// change it).
    pub fn absorb_delta(&mut self, lane: &MemoryController) {
        self.epoch_requests += lane.epoch_requests;
        self.total_requests += lane.total_requests;
    }

    /// Serializes the mutable controller state (request counters, smoothed
    /// delay, last utilization); the service/queue parameters are
    /// constructor-fixed.
    pub fn save_into(&self, e: &mut codec::Enc) {
        e.u64(self.epoch_requests);
        e.u64(self.total_requests);
        e.u32(self.current_delay);
        e.f64(self.last_utilization);
    }

    /// Restores state captured by [`MemoryController::save_into`].
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        self.epoch_requests = d.u64();
        self.total_requests = d.u64();
        self.current_delay = d.u32();
        self.last_utilization = d.f64();
    }

    /// Requests serviced during the (still open) current epoch.
    #[inline]
    pub fn epoch_requests(&self) -> u64 {
        self.epoch_requests
    }

    /// Requests serviced over the controller's lifetime.
    #[inline]
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Queueing delay currently charged per request, in cycles.
    #[inline]
    pub fn current_delay(&self) -> u32 {
        self.current_delay
    }

    /// Utilization measured at the most recent epoch boundary, in `[0, 1)`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.last_utilization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> MemoryController {
        MemoryController::new(12, 120.0, 900)
    }

    #[test]
    fn idle_controller_has_no_delay() {
        let mut c = controller();
        assert_eq!(c.request(), 0);
        c.end_epoch(1_000_000);
        assert_eq!(c.current_delay(), 0); // 1 request in 1M cycles ≈ idle
    }

    #[test]
    fn loaded_controller_builds_delay() {
        let mut c = controller();
        // 50k requests * 12 cycles = 600k occupied out of a 1M-cycle epoch.
        for _ in 0..50_000 {
            c.request();
        }
        c.end_epoch(1_000_000);
        assert!(c.utilization() > 0.55 && c.utilization() < 0.65);
        // First epoch after load: smoothed halfway from 0 to ~180.
        let d = c.current_delay();
        assert!(d > 50 && d < 150, "delay {d}");
        // Sustained load converges to the full queueing delay.
        for _ in 0..10 {
            for _ in 0..50_000 {
                c.request();
            }
            c.end_epoch(1_000_000);
        }
        let d = c.current_delay();
        assert!(d > 150 && d < 300, "converged delay {d}");
    }

    #[test]
    fn overloaded_controller_hits_the_cap() {
        let mut c = controller();
        for _ in 0..200_000 {
            c.request();
        }
        // Sustain the overload: the smoothed delay converges to the cap.
        for _ in 0..12 {
            for _ in 0..200_000 {
                c.request();
            }
            c.end_epoch(1_000_000); // nominal utilization 2.4, clamped
        }
        assert!(c.current_delay() >= 899, "delay {}", c.current_delay());
    }

    #[test]
    fn delay_applies_to_next_epoch_only() {
        let mut c = controller();
        for _ in 0..200_000 {
            c.request();
        }
        // Delay during the overload epoch itself is still the old (zero) one.
        assert_eq!(c.current_delay(), 0);
        c.end_epoch(1_000_000);
        assert!(c.request() > 0);
    }

    #[test]
    fn epoch_counter_resets_but_total_accumulates() {
        let mut c = controller();
        c.request();
        c.request();
        assert_eq!(c.epoch_requests(), 2);
        c.end_epoch(1000);
        assert_eq!(c.epoch_requests(), 0);
        assert_eq!(c.total_requests(), 2);
    }

    #[test]
    fn zero_length_epoch_is_idle() {
        let mut c = controller();
        c.request();
        c.end_epoch(0);
        assert_eq!(c.current_delay(), 0);
    }
}
