//! Criterion micro-benchmarks of the simulator's hot components.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use memsys::{AccessKind, MemSysConfig, MemorySystem};
use numa_topology::{CoreId, MachineSpec, NodeId};
use profiling::{metrics, IbsConfig, IbsSample, IbsSampler};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vmem::{AddressSpace, FrameAllocator, PageSize, Tlb, TlbConfig, VirtAddr, VmemConfig};

fn bench_tlb(c: &mut Criterion) {
    let mut tlb = Tlb::new(&TlbConfig::scaled_default(8));
    let mut rng = SmallRng::seed_from_u64(7);
    // Warm with a 256-page working set (guaranteed misses + hits mix).
    for i in 0..256u64 {
        tlb.insert(vmem::Mapping {
            vbase: VirtAddr(i * 4096),
            frame: vmem::PhysAddr(i * 4096),
            node: NodeId(0),
            size: PageSize::Size4K,
        });
    }
    c.bench_function("tlb_lookup", |b| {
        b.iter(|| {
            let v = VirtAddr(rng.random_range(0..512u64) * 4096);
            std::hint::black_box(tlb.lookup(v));
        })
    });
}

fn bench_cache_path(c: &mut Criterion) {
    let machine = MachineSpec::machine_a();
    let mut mem = MemorySystem::new(&machine, MemSysConfig::scaled_default(8));
    let mut rng = SmallRng::seed_from_u64(9);
    c.bench_function("memsys_access", |b| {
        b.iter(|| {
            let paddr = rng.random_range(0..(32u64 << 20)) & !63;
            let home = NodeId((paddr >> 24) as u16 % 4);
            std::hint::black_box(mem.access(CoreId(0), paddr, home, AccessKind::Data));
        })
    });
}

fn bench_page_walk(c: &mut Criterion) {
    let machine = MachineSpec::machine_a();
    let mut space = AddressSpace::new(&machine, VmemConfig::default());
    space.map_region(64 << 30, 64 << 20).unwrap();
    for i in 0..32u64 {
        let _ = space.fault(VirtAddr((64 << 30) + i * (2 << 20)), NodeId(0));
    }
    let mut rng = SmallRng::seed_from_u64(3);
    c.bench_function("page_walk", |b| {
        b.iter(|| {
            let v = VirtAddr((64 << 30) + rng.random_range(0..(64u64 << 20)));
            std::hint::black_box(space.walk(v));
        })
    });
}

fn bench_buddy(c: &mut Criterion) {
    let machine = MachineSpec::machine_a();
    c.bench_function("buddy_alloc_free_4k", |b| {
        b.iter_batched(
            || FrameAllocator::new(&machine),
            |mut alloc| {
                let f = alloc.alloc(NodeId(0), PageSize::Size4K).unwrap();
                alloc.free(f, PageSize::Size4K);
            },
            BatchSize::SmallInput,
        )
    });
}

fn sample_set(n: usize) -> Vec<IbsSample> {
    let mut rng = SmallRng::seed_from_u64(11);
    (0..n)
        .map(|_| IbsSample {
            vaddr: VirtAddr((64 << 30) + rng.random_range(0..(64u64 << 20))),
            accessing_node: NodeId(rng.random_range(0..4u16)),
            thread: rng.random_range(0..24u16),
            home_node: NodeId(rng.random_range(0..4u16)),
            from_dram: rng.random_bool(0.8),
            is_store: false,
            page_size: if rng.random_bool(0.5) {
                PageSize::Size2M
            } else {
                PageSize::Size4K
            },
            walk_remote_steps: 0,
        })
        .collect()
}

fn bench_ibs(c: &mut Criterion) {
    c.bench_function("ibs_observe", |b| {
        let mut sampler = IbsSampler::new(
            4,
            IbsConfig {
                period: 128,
                sample_overhead_cycles: 800,
            },
        );
        let samples = sample_set(1);
        b.iter(|| {
            std::hint::black_box(sampler.observe(|| samples[0]));
        })
    });
}

fn bench_lar_estimate(c: &mut Criterion) {
    let samples = sample_set(512);
    c.bench_function("lar_estimate_512_samples", |b| {
        b.iter(|| std::hint::black_box(carrefour::lar::estimate(&samples, 4)))
    });
}

fn bench_metrics(c: &mut Criterion) {
    let rows: Vec<(u64, u64, u64)> = (0..10_000u64)
        .map(|i| (i * 4096, i % 97 + 1, i % 15 + 1))
        .collect();
    c.bench_function("metrics_pamup_nhp_psp_10k_pages", |b| {
        b.iter(|| {
            std::hint::black_box((
                metrics::pamup(&rows),
                metrics::nhp(&rows),
                metrics::psp(&rows),
            ))
        })
    });
}

fn bench_carrefour_decision(c: &mut Criterion) {
    use engine::{EpochCtx, NumaPolicy};
    use profiling::EpochCounters;
    let machine = MachineSpec::machine_a();
    let samples = sample_set(512);
    let counters = EpochCounters {
        epoch_cycles: 1_000_000,
        dram_local: 100,
        dram_remote: 900,
        mem_ops: 100_000,
        l2_misses: 10_000,
        ..EpochCounters::default()
    };
    c.bench_function("carrefour_decision_pass_512_samples", |b| {
        b.iter_batched(
            carrefour::Carrefour::new,
            |mut policy| {
                let mut ctx =
                    EpochCtx::new(&machine, &counters, &samples, vmem::ThpControls::thp(), 0);
                policy.on_epoch(&mut ctx);
                std::hint::black_box(ctx.take_actions())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_tlb,
    bench_cache_path,
    bench_page_walk,
    bench_buddy,
    bench_ibs,
    bench_lar_estimate,
    bench_metrics,
    bench_carrefour_decision
);
criterion_main!(benches);
