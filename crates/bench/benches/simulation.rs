//! Criterion benchmarks of whole-simulation throughput: how fast the
//! simulator replays each paper configuration (not the simulated time —
//! the host time per run).

use carrefour_bench::{run_cell, PolicyKind};
use criterion::{criterion_group, criterion_main, Criterion};
use numa_topology::MachineSpec;
use workloads::Benchmark;

fn bench_simulation_runs(c: &mut Criterion) {
    let machine = MachineSpec::machine_a();
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for (name, bench, kind) in [
        ("kmeans_linux", Benchmark::Kmeans, PolicyKind::Linux4k),
        ("kmeans_thp", Benchmark::Kmeans, PolicyKind::LinuxThp),
        ("cg_carrefour_lp", Benchmark::CgD, PolicyKind::CarrefourLp),
        ("ua_carrefour_2m", Benchmark::UaB, PolicyKind::Carrefour2m),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(run_cell(&machine, bench, kind)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation_runs);
criterion_main!(benches);
