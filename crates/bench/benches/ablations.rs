//! Ablation benchmarks over the design choices DESIGN.md calls out:
//! Algorithm 1's thresholds, the IBS sampling period, and the khugepaged
//! promotion rate. Each measures *simulated runtime* (the quantity the
//! paper's thresholds were tuned against), reported via custom iteration
//! so Criterion tracks the host cost of exploring each setting while the
//! printed summary carries the simulated outcome.

use carrefour::{CarrefourLp, LpThresholds};
use criterion::{criterion_group, criterion_main, Criterion};
use engine::{NullPolicy, SimConfig, Simulation};
use numa_topology::MachineSpec;
use vmem::ThpControls;
use workloads::Benchmark;

/// Runs UA.B under Carrefour-LP with given thresholds; returns simulated
/// improvement over Linux-4K in percent.
fn ua_improvement(machine: &MachineSpec, thresholds: LpThresholds) -> f64 {
    let spec = Benchmark::UaB.spec(machine);
    let small = SimConfig::for_machine(machine, ThpControls::small_only());
    let base = Simulation::run(machine, &spec, &small, &mut NullPolicy);
    let huge = SimConfig::for_machine(machine, ThpControls::thp());
    let mut policy = CarrefourLp::new().with_thresholds(thresholds);
    let r = Simulation::run(machine, &spec, &huge, &mut policy);
    r.improvement_over(&base)
}

fn bench_threshold_ablation(c: &mut Criterion) {
    let machine = MachineSpec::machine_a();
    let mut group = c.benchmark_group("ablation_thresholds");
    group.sample_size(10);
    for (name, carrefour_gain, split_gain) in [
        ("paper_15_5", 15.0, 5.0),
        ("eager_split_15_1", 15.0, 1.0),
        ("never_split_15_99", 15.0, 99.0),
        ("migration_biased_1_5", 1.0, 5.0),
    ] {
        let thresholds = LpThresholds {
            carrefour_gain_pp: carrefour_gain,
            split_gain_pp: split_gain,
            ..LpThresholds::default()
        };
        let outcome = ua_improvement(&machine, thresholds);
        println!("ablation_thresholds/{name}: UA.B improvement {outcome:+.1}%");
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(ua_improvement(&machine, thresholds)))
        });
    }
    group.finish();
}

fn bench_sampling_period_ablation(c: &mut Criterion) {
    let machine = MachineSpec::machine_a();
    let spec = Benchmark::UaB.spec(&machine);
    let mut group = c.benchmark_group("ablation_ibs_period");
    group.sample_size(10);
    for period in [64u64, 128, 512, 2048] {
        let mut config = SimConfig::for_machine(&machine, ThpControls::thp());
        config.ibs.period = period;
        let name = format!("period_{period}");
        let mut policy = CarrefourLp::new();
        let r = Simulation::run(&machine, &spec, &config, &mut policy);
        println!(
            "ablation_ibs_period/{name}: runtime {} cycles, {} migrations",
            r.runtime_cycles,
            r.lifetime.vmem.migrations_4k + r.lifetime.vmem.migrations_2m
        );
        group.bench_function(&name, |b| {
            b.iter(|| {
                let mut policy = CarrefourLp::new();
                std::hint::black_box(Simulation::run(&machine, &spec, &config, &mut policy))
            })
        });
    }
    group.finish();
}

fn bench_khugepaged_rate_ablation(c: &mut Criterion) {
    let machine = MachineSpec::machine_a();
    let spec = Benchmark::Ssca.spec(&machine);
    let mut group = c.benchmark_group("ablation_khugepaged");
    group.sample_size(10);
    for limit in [0usize, 4, 24, 96] {
        let mut config = SimConfig::for_machine(&machine, ThpControls::thp());
        config.khugepaged_scan_limit = limit;
        let name = format!("scan_limit_{limit}");
        let mut policy = CarrefourLp::new();
        let r = Simulation::run(&machine, &spec, &config, &mut policy);
        println!(
            "ablation_khugepaged/{name}: runtime {} cycles, {} collapses",
            r.runtime_cycles, r.lifetime.vmem.collapses
        );
        group.bench_function(&name, |b| {
            b.iter(|| {
                let mut policy = CarrefourLp::new();
                std::hint::black_box(Simulation::run(&machine, &spec, &config, &mut policy))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_threshold_ablation,
    bench_sampling_period_ablation,
    bench_khugepaged_rate_ablation
);
criterion_main!(benches);
