//! The bench crate's single stderr choke point.
//!
//! Every ad-hoc `eprintln!` warning in this crate used to pick its own
//! prefix and its own quiet-ness; now there are exactly two shapes:
//!
//! * [`warn`] — something was lost or degraded (a journal line failed to
//!   append, a result file could not be written, a cell panicked). Always
//!   printed, `CARREFOUR_QUIET` notwithstanding: a silent loss is how
//!   incomplete suites go unnoticed. Every line starts with `warning: `
//!   so CI logs grep with one pattern.
//! * [`info`] — progress and bookkeeping chatter (`wrote results/…`,
//!   resume summaries). Suppressed by `CARREFOUR_QUIET=1`, the same
//!   switch [`crate::runner::Progress`] honors, so tests and the sweep
//!   silence the whole crate with one variable.
//!
//! The environment is consulted per call (not cached): tests flip
//! `CARREFOUR_QUIET` mid-process and the helper must follow.

/// Whether `CARREFOUR_QUIET=1` is in effect (suppresses [`info`] and the
/// runner's progress lines; never warnings).
pub fn quiet() -> bool {
    std::env::var_os("CARREFOUR_QUIET").is_some_and(|v| v == "1")
}

/// Prints `warning: <msg>` to stderr. Not silenced by `CARREFOUR_QUIET`.
pub fn warn(msg: &str) {
    eprintln!("warning: {msg}");
}

/// Prints an informational line to stderr unless `CARREFOUR_QUIET=1`.
pub fn info(msg: &str) {
    if !quiet() {
        eprintln!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_follows_the_environment() {
        // Serialized against other env-touching tests by cargo running
        // same-module tests in one binary; the variable is restored.
        let before = std::env::var_os("CARREFOUR_QUIET");
        std::env::set_var("CARREFOUR_QUIET", "1");
        assert!(quiet());
        std::env::set_var("CARREFOUR_QUIET", "0");
        assert!(!quiet());
        match before {
            Some(v) => std::env::set_var("CARREFOUR_QUIET", v),
            None => std::env::remove_var("CARREFOUR_QUIET"),
        }
    }
}
