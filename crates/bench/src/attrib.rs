//! Cycle-attribution reporting: the `attrib-v1` file schema and the
//! automatic policy-delta narrative (`explain` binary, `all_experiments
//! --attrib`).
//!
//! A report compares two cells of the same benchmark on the same machine —
//! a *baseline* policy and a *candidate* — using their attribution ledgers
//! ([`engine::AttributionLedger`], DESIGN.md §11). Because the ledger's
//! buckets sum exactly to the runtime, the runtime delta between two
//! policies decomposes exactly into per-cause deltas; the narrative simply
//! reads the decomposition back ("THP saves N walk cycles but adds M
//! queueing cycles on node 2") instead of guessing from aggregate
//! counters. Reports are written as `results/ATTRIB_*.json`, schema
//! `attrib-v1` (documented in DESIGN.md §11).

use crate::Cell;
use profiling::CycleBreakdown;
use std::path::{Path, PathBuf};

/// The schema tag every attribution report carries.
pub const SCHEMA: &str = "attrib-v1";

/// One cause *group* of the narrative: a named, disjoint union of ledger
/// buckets. Groups exist because a human diagnosis speaks in architectural
/// causes ("page walks got cheaper") rather than individual buckets
/// (`walk_pwc_hit_local` vs `walk_pwc_miss_remote`).
#[derive(Clone, Copy, Debug)]
pub struct CauseGroup {
    /// Display name.
    pub name: &'static str,
    /// Sum of this group's buckets.
    pub base: u64,
    /// Same for the candidate.
    pub cand: u64,
}

impl CauseGroup {
    /// Signed cycle delta, candidate minus baseline (positive = the
    /// candidate spends more here).
    pub fn delta(&self) -> i128 {
        self.cand as i128 - self.base as i128
    }
}

/// Splits two breakdowns into the narrative's disjoint cause groups.
/// Exhaustive: group sums equal `CycleBreakdown::total()` on both sides,
/// so the groups' deltas sum exactly to the runtime delta.
pub fn cause_groups(base: &CycleBreakdown, cand: &CycleBreakdown) -> Vec<CauseGroup> {
    let g = |name, f: fn(&CycleBreakdown) -> u64| CauseGroup {
        name,
        base: f(base),
        cand: f(cand),
    };
    vec![
        g("compute", |b| b.compute),
        g("cache hits", |b| b.cache_l1 + b.cache_l2 + b.cache_l3),
        g("DRAM service", |b| b.dram_service),
        g("controller queueing", |b| b.ctrl_queue),
        g("interconnect hops", |b| b.interconnect),
        // Local and remote walk cycles are separate causes: table-placement
        // policies (mitosis, numapte) act on the remote share only, and
        // the figPT acceptance check reads this group's delta directly.
        g("TLB lookup + local page walk", |b| {
            b.tlb_lookup + b.walk_local_cycles()
        }),
        g("remote page walks", |b| b.walk_remote_cycles()),
        g("page faults", |b| b.fault + b.replica_collapse),
        g("policy + daemon overhead", |b| {
            b.khugepaged
                + b.ibs_sampling
                + b.policy_migration
                + b.policy_split
                + b.policy_replication
        }),
    ]
}

/// The memory controller (node index) with the most requests over the
/// whole run, with its request count — the narrative's "on node N".
pub fn hottest_controller(cell: &Cell) -> Option<(usize, u64)> {
    let mut totals: Vec<u64> = Vec::new();
    for e in &cell.result.epochs {
        for (i, &r) in e.counters.controller_requests.iter().enumerate() {
            if i >= totals.len() {
                totals.resize(i + 1, 0);
            }
            totals[i] += r;
        }
    }
    let (node, &requests) = totals.iter().enumerate().max_by_key(|&(_, &r)| r)?;
    (requests > 0).then_some((node, requests))
}

fn ledger(cell: &Cell) -> &engine::AttributionLedger {
    cell.result.attribution.as_ref().unwrap_or_else(|| {
        panic!(
            "{}/{} has no attribution ledger; run with CARREFOUR_ATTRIB=1 \
             (the explain binary sets SimConfig.attribution itself)",
            cell.benchmark, cell.policy
        )
    })
}

fn group_count(cycles: u64) -> String {
    // Thousands separators make six-to-nine digit cycle counts readable.
    let s = cycles.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

fn signed_count(d: i128) -> String {
    if d < 0 {
        format!("-{}", group_count(d.unsigned_abs() as u64))
    } else {
        format!("+{}", group_count(d as u64))
    }
}

/// The dominant cause of a runtime delta: the group contributing the most
/// cycles *in the delta's direction* (largest growth when the candidate is
/// slower, largest saving when it is faster). `None` when the runtimes are
/// equal.
pub fn dominant_cause(groups: &[CauseGroup], runtime_delta: i128) -> Option<&CauseGroup> {
    if runtime_delta > 0 {
        groups
            .iter()
            .filter(|g| g.delta() > 0)
            .max_by_key(|g| g.delta())
    } else if runtime_delta < 0 {
        groups
            .iter()
            .filter(|g| g.delta() < 0)
            .min_by_key(|g| g.delta())
    } else {
        None
    }
}

/// Renders the human-readable diagnosis of `cand` vs `base`.
///
/// The decomposition is exact (conservation invariant), so the listed
/// per-cause deltas sum to the runtime delta — every line is a statement
/// about where real cycles went, not a heuristic.
pub fn narrative(base: &Cell, cand: &Cell) -> String {
    let lb = ledger(base);
    let lc = ledger(cand);
    let rb = base.result.runtime_cycles;
    let rc = cand.result.runtime_cycles;
    let delta = rc as i128 - rb as i128;
    let groups = cause_groups(&lb.total, &lc.total);

    let mut out = String::new();
    let verdict = if delta > 0 {
        format!("{:.1}% slower", (rc as f64 / rb as f64 - 1.0) * 100.0)
    } else if delta < 0 {
        format!("{:.1}% faster", (rb as f64 / rc as f64 - 1.0) * 100.0)
    } else {
        "exactly as fast".to_string()
    };
    out.push_str(&format!(
        "{} on {}: {} is {} than {} ({} vs {} cycles, {} wall).\n",
        base.benchmark,
        base.machine,
        cand.policy,
        verdict,
        base.policy,
        group_count(rc),
        group_count(rb),
        signed_count(delta),
    ));

    // Per-cause lines, largest magnitude first; groups below 0.5 % of the
    // baseline runtime are summarized in one closing line.
    let mut sorted = groups.clone();
    sorted.sort_by_key(|g| std::cmp::Reverse(g.delta().unsigned_abs()));
    let threshold = (rb / 200).max(1) as i128;
    let mut minor: i128 = 0;
    for g in &sorted {
        let d = g.delta();
        if d == 0 {
            continue;
        }
        if d.abs() < threshold {
            minor += d;
            continue;
        }
        let verb = if d < 0 { "saves" } else { "adds" };
        let mut line = format!(
            "  {} {} {} {} cycles",
            cand.policy,
            verb,
            group_count(d.unsigned_abs() as u64),
            g.name
        );
        if g.name == "controller queueing" {
            let (hot_b, hot_c) = (hottest_controller(base), hottest_controller(cand));
            if let Some((node, _)) = if d > 0 { hot_c } else { hot_b } {
                line.push_str(&format!(" (hottest controller: node {node})"));
            }
        }
        line.push('\n');
        out.push_str(&line);
    }
    if minor != 0 {
        out.push_str(&format!(
            "  remaining causes below 0.5% each: {} cycles combined\n",
            signed_count(minor)
        ));
    }
    if let Some(dom) = dominant_cause(&groups, delta) {
        let direction = if delta > 0 { "growth" } else { "reduction" };
        out.push_str(&format!(
            "  dominant cause: {} {} ({} cycles)\n",
            dom.name,
            direction,
            signed_count(dom.delta())
        ));
    }
    out
}

fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// One breakdown as a JSON object, bucket names from
/// [`CycleBreakdown::pairs`] (the single source of bucket truth).
pub fn breakdown_json(b: &CycleBreakdown) -> String {
    let inner: Vec<String> = b
        .pairs()
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn side_json(cell: &Cell) -> String {
    let l = ledger(cell);
    let epoch_walls: Vec<String> = l.epochs.iter().map(|e| breakdown_json(&e.wall)).collect();
    format!(
        "{{\"policy\":\"{}\",\"runtime_cycles\":{},\"prelude\":{},\"total\":{},\
         \"epoch_walls\":[{}]}}",
        esc(&cell.policy),
        cell.result.runtime_cycles,
        breakdown_json(&l.prelude),
        breakdown_json(&l.total),
        epoch_walls.join(","),
    )
}

/// Serializes one baseline-vs-candidate report as `attrib-v1` JSON.
pub fn report_json(base: &Cell, cand: &Cell) -> String {
    assert_eq!(
        base.benchmark, cand.benchmark,
        "cells compare one benchmark"
    );
    assert_eq!(base.machine, cand.machine, "cells compare one machine");
    let (lb, lc) = (ledger(base), ledger(cand));
    let delta = cand.result.runtime_cycles as i128 - base.result.runtime_cycles as i128;
    let bucket_delta: Vec<String> = lb
        .total
        .pairs()
        .iter()
        .zip(lc.total.pairs())
        .map(|((k, vb), (_, vc))| format!("\"{k}\":{}", vc as i128 - *vb as i128))
        .collect();
    let groups = cause_groups(&lb.total, &lc.total);
    let dominant = dominant_cause(&groups, delta)
        .map(|g| format!("\"{}\"", esc(g.name)))
        .unwrap_or_else(|| "null".to_string());
    let hot = |c: &Cell| {
        hottest_controller(c)
            .map(|(n, r)| format!("{{\"node\":{n},\"requests\":{r}}}"))
            .unwrap_or_else(|| "null".to_string())
    };
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"benchmark\":\"{}\",\"machine\":\"{}\",\
         \"baseline\":{},\"candidate\":{},\
         \"delta\":{{\"runtime_cycles\":{},\"buckets\":{{{}}}}},\
         \"hottest_controller\":{{\"baseline\":{},\"candidate\":{}}},\
         \"dominant_cause\":{},\"narrative\":\"{}\"}}",
        esc(&base.benchmark),
        esc(&base.machine),
        side_json(base),
        side_json(cand),
        delta,
        bucket_delta.join(","),
        hot(base),
        hot(cand),
        dominant,
        esc(&narrative(base, cand)),
    )
}

/// File-name stem of a report (`ATTRIB_ua_b_linux_vs_thp`).
pub fn report_stem(base: &Cell, cand: &Cell) -> String {
    let clean = |s: &str| {
        s.to_ascii_lowercase()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect::<String>()
    };
    format!(
        "ATTRIB_{}_{}_vs_{}",
        clean(&base.benchmark),
        clean(&base.policy),
        clean(&cand.policy)
    )
}

/// Writes one report under `dir` and returns its path.
pub fn write_report(dir: &Path, base: &Cell, cand: &Cell) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", report_stem(base, cand)));
    std::fs::write(&path, report_json(base, cand))?;
    Ok(path)
}

/// Serializes attributed cells as the `attrib-v1` *baseline* file
/// (`results/BENCH_attrib_baseline.json`): one row per cell with its
/// runtime and bucket totals. CI's conservation-checked reference of what
/// the golden configurations' cycle composition looks like.
pub fn baseline_json(cells: &[Cell]) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "  {{\"machine\":\"{}\",\"benchmark\":\"{}\",\"policy\":\"{}\",\
                 \"runtime_cycles\":{},\"total\":{}}}",
                esc(&c.machine),
                esc(&c.benchmark),
                esc(&c.policy),
                c.result.runtime_cycles,
                breakdown_json(&ledger(c).total),
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"cells\":[\n{}\n]}}",
        rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{AttributionLedger, EpochAttribution};

    fn cell(policy: &str, runtime: u64, total: CycleBreakdown) -> Cell {
        let r = engine::SimResult {
            workload: "UA.B".into(),
            policy: policy.to_string(),
            machine: "machine-a".into(),
            runtime_cycles: runtime,
            runtime_ms: 0.0,
            epochs: Vec::new(),
            lifetime: Default::default(),
            pages: Default::default(),
            robustness: Default::default(),
            attribution: Some(AttributionLedger {
                prelude: CycleBreakdown::default(),
                epochs: vec![EpochAttribution {
                    wall: total,
                    cores: Vec::new(),
                }],
                total,
                core_totals: Vec::new(),
            }),
        };
        Cell {
            machine: "machine-a".into(),
            benchmark: "UA.B".into(),
            policy: policy.to_string(),
            result: r,
        }
    }

    fn breakdown(walk: u64, queue: u64, dram: u64) -> CycleBreakdown {
        let mut b = CycleBreakdown::default();
        b.walk_pwc_miss_local = walk;
        b.ctrl_queue = queue;
        b.dram_service = dram;
        b.compute = 1000;
        b
    }

    #[test]
    fn cause_groups_are_exhaustive() {
        let mut a = CycleBreakdown::default();
        // Prime-fill every bucket so a dropped one breaks the sums.
        for (i, (_, v)) in a.pairs().iter().enumerate() {
            let _ = v;
            let field = 3 + 2 * i as u64;
            match i {
                0 => a.compute = field,
                1 => a.tlb_lookup = field,
                2 => a.cache_l1 = field,
                3 => a.cache_l2 = field,
                4 => a.cache_l3 = field,
                5 => a.dram_service = field,
                6 => a.ctrl_queue = field,
                7 => a.interconnect = field,
                8 => a.walk_pwc_hit_local = field,
                9 => a.walk_pwc_hit_remote = field,
                10 => a.walk_pwc_miss_local = field,
                11 => a.walk_pwc_miss_remote = field,
                12 => a.fault = field,
                13 => a.replica_collapse = field,
                14 => a.khugepaged = field,
                15 => a.ibs_sampling = field,
                16 => a.policy_migration = field,
                17 => a.policy_split = field,
                18 => a.policy_replication = field,
                _ => unreachable!("new bucket not covered by cause groups"),
            }
        }
        let groups = cause_groups(&a, &CycleBreakdown::default());
        let base_sum: u64 = groups.iter().map(|g| g.base).sum();
        assert_eq!(
            base_sum,
            a.total(),
            "cause groups must partition the ledger"
        );
        let delta_sum: i128 = groups.iter().map(|g| g.delta()).sum();
        assert_eq!(delta_sum, -(a.total() as i128));
    }

    #[test]
    fn narrative_names_the_dominant_cause() {
        // A THP "regression dominated by queueing growth": walk time down,
        // queueing way up.
        let base = cell("Linux", 11_000, breakdown(4_000, 1_000, 5_000));
        let cand = cell("THP", 12_500, breakdown(500, 6_000, 5_000));
        let n = narrative(&base, &cand);
        assert!(n.contains("THP is 13.6% slower than Linux"), "{n}");
        assert!(
            n.contains("THP saves 3,500 TLB lookup + local page walk cycles"),
            "{n}"
        );
        assert!(
            n.contains("THP adds 5,000 controller queueing cycles"),
            "{n}"
        );
        assert!(
            n.contains("dominant cause: controller queueing growth"),
            "{n}"
        );

        // The win case: walk reduction dominates.
        let cand2 = cell("THP", 7_100, breakdown(200, 1_100, 4_800));
        let n2 = narrative(&base, &cand2);
        assert!(n2.contains("faster"), "{n2}");
        assert!(
            n2.contains("dominant cause: TLB lookup + local page walk reduction"),
            "{n2}"
        );
    }

    #[test]
    fn report_json_is_schema_tagged_and_balanced() {
        let base = cell("Linux", 11_000, breakdown(4_000, 1_000, 5_000));
        let cand = cell("THP", 12_500, breakdown(500, 6_000, 5_000));
        let j = report_json(&base, &cand);
        assert!(j.starts_with("{\"schema\":\"attrib-v1\""));
        assert!(
            j.contains("\"dominant_cause\":\"controller queueing\""),
            "{j}"
        );
        assert!(j.contains("\"ctrl_queue\":5000"), "{j}");
        let open = j.matches('{').count();
        let close = j.matches('}').count();
        assert_eq!(open, close, "unbalanced JSON object braces");
        assert_eq!(report_stem(&base, &cand), "ATTRIB_ua_b_linux_vs_thp");
    }
}
