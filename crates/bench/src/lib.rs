//! Experiment harness shared by the `fig*`/`table*` binaries.
//!
//! Provides the policy matrix of the paper's evaluation, a parallel runner
//! (independent simulations fan out across host cores), and the formatting
//! used to print each figure and table in the paper's layout. Results are
//! also written as JSON under `results/` so EXPERIMENTS.md can be
//! regenerated mechanically.

use carrefour::{Carrefour, CarrefourLp, LpParams, Mitosis, NumaPte};
use engine::{NullPolicy, NumaPolicy, SimConfig, SimResult, Simulation};
use numa_topology::MachineSpec;
use serde::{Deserialize, Serialize};
use vmem::ThpControls;
use workloads::Benchmark;

pub mod attrib;
pub mod experiments;
pub mod forktree;
pub mod golden;
pub mod journal;
pub mod logx;
pub mod report;
pub mod runner;

/// Whether experiment binaries should record the cycle-attribution ledger
/// (`CARREFOUR_ATTRIB=1`). Off by default: attributed results carry the
/// ledger in memory, but the serialized result rows never include it, so
/// existing JSON files and stdout stay byte-identical either way.
pub fn attrib_enabled() -> bool {
    std::env::var_os("CARREFOUR_ATTRIB").is_some_and(|v| v == "1")
}

/// Every system configuration the paper evaluates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Default Linux, 4 KiB pages (every figure's baseline).
    Linux4k,
    /// Linux with transparent huge pages ("THP").
    LinuxThp,
    /// Carrefour on 4 KiB pages (the original system).
    Carrefour4k,
    /// Carrefour running under THP ("Carrefour-2M").
    Carrefour2m,
    /// Carrefour-4K plus the conservative component (Figure 4).
    ConservativeOnly,
    /// Carrefour-2M plus the reactive component (Figure 4).
    ReactiveOnly,
    /// Full Carrefour-LP (Algorithm 1).
    CarrefourLp,
    /// Carrefour-LP with action retries disabled (the `chaos` ablation).
    CarrefourLpNoRetry,
    /// Linux with 1 GiB pages (Section 4.4's libhugetlbfs setup).
    Linux1g,
    /// Carrefour-LP starting from 1 GiB pages (Section 4.4).
    CarrefourLp1g,
    /// Mitosis-style full page-table replication on 4 KiB pages
    /// (Section 13: NUMA-homed page tables).
    Mitosis,
    /// numaPTE-style lazy page-table migration on 4 KiB pages.
    NumaPte,
    /// Carrefour-LP with the threshold-sweep winner (`LpParams::tuned()`,
    /// ROADMAP item 4 / `results/SWEEP_lp.json`).
    CarrefourLpTuned,
}

impl PolicyKind {
    /// The THP switches the simulation starts with under this policy.
    pub fn initial_thp(self) -> ThpControls {
        match self {
            PolicyKind::Linux4k
            | PolicyKind::Carrefour4k
            | PolicyKind::ConservativeOnly
            | PolicyKind::Mitosis
            | PolicyKind::NumaPte => ThpControls::small_only(),
            PolicyKind::LinuxThp
            | PolicyKind::Carrefour2m
            | PolicyKind::ReactiveOnly
            | PolicyKind::CarrefourLp
            | PolicyKind::CarrefourLpNoRetry
            | PolicyKind::CarrefourLpTuned => ThpControls::thp(),
            PolicyKind::Linux1g | PolicyKind::CarrefourLp1g => ThpControls::giant(),
        }
    }

    /// Instantiates the policy object.
    pub fn make(self) -> Box<dyn NumaPolicy> {
        match self {
            PolicyKind::Linux4k | PolicyKind::LinuxThp | PolicyKind::Linux1g => {
                Box::new(NullPolicy)
            }
            PolicyKind::Carrefour4k | PolicyKind::Carrefour2m => Box::new(Carrefour::new()),
            PolicyKind::ConservativeOnly => Box::new(CarrefourLp::conservative_only()),
            PolicyKind::ReactiveOnly => Box::new(CarrefourLp::reactive_only()),
            PolicyKind::CarrefourLpNoRetry => Box::new(CarrefourLp::without_retries()),
            PolicyKind::CarrefourLp | PolicyKind::CarrefourLp1g => Box::new(CarrefourLp::new()),
            PolicyKind::Mitosis => Box::new(Mitosis::new()),
            PolicyKind::NumaPte => Box::new(NumaPte::new()),
            PolicyKind::CarrefourLpTuned => {
                Box::new(CarrefourLp::with_params(LpParams::tuned()).named("carrefour-lp-tuned"))
            }
        }
    }

    /// Every kind, in declaration order (the order legends list them).
    pub fn all() -> [PolicyKind; 13] {
        [
            PolicyKind::Linux4k,
            PolicyKind::LinuxThp,
            PolicyKind::Carrefour4k,
            PolicyKind::Carrefour2m,
            PolicyKind::ConservativeOnly,
            PolicyKind::ReactiveOnly,
            PolicyKind::CarrefourLp,
            PolicyKind::CarrefourLpNoRetry,
            PolicyKind::Linux1g,
            PolicyKind::CarrefourLp1g,
            PolicyKind::Mitosis,
            PolicyKind::NumaPte,
            PolicyKind::CarrefourLpTuned,
        ]
    }

    /// Parses a display label back into its kind (case-insensitive), for
    /// CLI arguments like `explain UA.B Linux THP`.
    pub fn parse(label: &str) -> Option<PolicyKind> {
        PolicyKind::all()
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(label))
    }

    /// Display label, matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Linux4k => "Linux",
            PolicyKind::LinuxThp => "THP",
            PolicyKind::Carrefour4k => "Carrefour-4K",
            PolicyKind::Carrefour2m => "Carrefour-2M",
            PolicyKind::ConservativeOnly => "Conservative",
            PolicyKind::ReactiveOnly => "Reactive",
            PolicyKind::CarrefourLp => "Carrefour-LP",
            PolicyKind::CarrefourLpNoRetry => "Carrefour-LP-NoRetry",
            PolicyKind::Linux1g => "Linux-1G",
            PolicyKind::CarrefourLp1g => "Carrefour-LP-1G",
            PolicyKind::Mitosis => "Mitosis",
            PolicyKind::NumaPte => "numaPTE",
            PolicyKind::CarrefourLpTuned => "Carrefour-LP-Tuned",
        }
    }
}

/// The two evaluation machines.
pub fn machines() -> Vec<MachineSpec> {
    vec![MachineSpec::machine_a(), MachineSpec::machine_b()]
}

/// Runs one (machine, benchmark, policy) cell.
pub fn run_cell(machine: &MachineSpec, bench: Benchmark, kind: PolicyKind) -> SimResult {
    let mut config = SimConfig::for_machine(machine, kind.initial_thp());
    config.attribution = attrib_enabled();
    let spec = bench.spec(machine);
    let mut policy = kind.make();
    let mut result = Simulation::run(machine, &spec, &config, policy.as_mut());
    result.policy = kind.label().to_string();
    result
}

/// One row of an experiment output file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cell {
    /// Machine name ("machine-a" / "machine-b").
    pub machine: String,
    /// Benchmark label as the paper prints it.
    pub benchmark: String,
    /// Policy label as the paper prints it.
    pub policy: String,
    /// The full simulation result.
    pub result: SimResult,
}

/// Builds the cell specs of a full (benchmark × policy) matrix on one
/// machine, in the deterministic (bench-major) submission order.
pub fn matrix_specs(
    machine: &MachineSpec,
    benches: &[Benchmark],
    policies: &[PolicyKind],
) -> Vec<runner::CellSpec> {
    let mut specs = Vec::with_capacity(benches.len() * policies.len());
    for &b in benches {
        for &p in policies {
            specs.push(runner::CellSpec::new(machine.clone(), b, p));
        }
    }
    specs
}

/// Runs a full (benchmark × policy) matrix on one machine through the
/// shared runner (worker count from `--jobs` / `CARREFOUR_JOBS` / host
/// cores), preserving deterministic per-cell results.
pub fn run_matrix(
    machine: &MachineSpec,
    benches: &[Benchmark],
    policies: &[PolicyKind],
) -> Vec<Cell> {
    let specs = matrix_specs(machine, benches, policies);
    let progress = runner::Progress::new(machine.name(), specs.len());
    let cells = runner::run_cells(&specs, runner::default_jobs(), &progress);
    progress.finish();
    cells
}

/// Finds the cell for `(benchmark, policy)` in a matrix result.
pub fn find(cells: &[Cell], bench: Benchmark, policy: PolicyKind) -> &Cell {
    cells
        .iter()
        .find(|c| c.benchmark == bench.name() && c.policy == policy.label())
        .unwrap_or_else(|| panic!("missing cell {} / {}", bench.name(), policy.label()))
}

/// Percent improvement of `policy` over `baseline` for one benchmark
/// (the paper's y-axis: positive = faster than default Linux).
pub fn improvement(
    cells: &[Cell],
    bench: Benchmark,
    policy: PolicyKind,
    baseline: PolicyKind,
) -> f64 {
    let p = find(cells, bench, policy);
    let b = find(cells, bench, baseline);
    p.result.improvement_over(&b.result)
}

/// Writes cells as pretty JSON under `results/<name>.json` (best effort —
/// experiments still print their tables when the directory is read-only —
/// but never silent: a failed write warns on stderr with the io::Error).
pub fn save_json(name: &str, cells: &[Cell]) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        logx::warn(&format!("could not create {}: {e}", dir.display()));
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, json::cells_to_json(cells)) {
        logx::warn(&format!("could not write {}: {e}", path.display()));
    }
}

/// Formats a signed percentage the way the paper's figures label bars.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:+.1}%")
}

pub mod json {
    //! Hand-rolled JSON serialization of experiment rows.
    //!
    //! The build environment is offline, so instead of `serde_json` the
    //! result files are written by this small, explicit serializer. Field
    //! names match the Rust struct fields, as serde would have emitted.

    use super::Cell;
    use engine::{EpochRecord, LifetimeStats, PageMetrics, RobustnessStats, SimResult};
    use profiling::EpochCounters;
    use vmem::VmemStats;

    /// Escapes a string for a JSON string literal (without quotes).
    pub fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Formats a float as a JSON value (`null` for non-finite values).
    fn num(v: f64) -> String {
        if v.is_finite() {
            // Rust's shortest-roundtrip Display output is valid JSON for
            // finite doubles.
            let s = format!("{v}");
            if s.contains(['.', 'e', 'E']) {
                s
            } else {
                format!("{s}.0")
            }
        } else {
            "null".to_string()
        }
    }

    fn u64s(values: &[u64]) -> String {
        let inner: Vec<String> = values.iter().map(u64::to_string).collect();
        format!("[{}]", inner.join(","))
    }

    fn counters(c: &EpochCounters) -> String {
        let fault_cycles: Vec<u64> = c.fault_time.iter().map(|f| f.fault_cycles).collect();
        format!(
            "{{\"epoch_cycles\":{},\"l2_accesses\":{},\"l2_misses\":{},\
             \"l2_walk_misses\":{},\"dram_local\":{},\"dram_remote\":{},\
             \"controller_requests\":{},\"fault_time\":{},\"mem_ops\":{}}}",
            c.epoch_cycles,
            c.l2_accesses,
            c.l2_misses,
            c.l2_walk_misses,
            c.dram_local,
            c.dram_remote,
            u64s(&c.controller_requests),
            u64s(&fault_cycles),
            c.mem_ops,
        )
    }

    fn vmem_stats(v: &VmemStats) -> String {
        format!(
            "{{\"faults_4k\":{},\"faults_2m\":{},\"faults_1g\":{},\
             \"migrations_4k\":{},\"migrations_2m\":{},\"splits\":{},\
             \"collapses\":{},\"replications\":{},\"replica_collapses\":{},\
             \"bytes_copied\":{},\"table_replications\":{},\
             \"table_migrations\":{}}}",
            v.faults_4k,
            v.faults_2m,
            v.faults_1g,
            v.migrations_4k,
            v.migrations_2m,
            v.splits,
            v.collapses,
            v.replications,
            v.replica_collapses,
            v.bytes_copied,
            v.table_replications,
            v.table_migrations,
        )
    }

    fn epoch(e: &EpochRecord) -> String {
        format!(
            "{{\"counters\":{},\"migrations\":{},\"splits\":{},\"collapses\":{},\
             \"overhead_cycles\":{},\"thp_alloc_enabled\":{},\
             \"thp_promote_enabled\":{},\"failed_actions\":{}}}",
            counters(&e.counters),
            e.migrations,
            e.splits,
            e.collapses,
            e.overhead_cycles,
            e.thp_alloc_enabled,
            e.thp_promote_enabled,
            e.failed_actions,
        )
    }

    fn robustness(r: &RobustnessStats) -> String {
        format!(
            "{{\"failed_migrations\":{},\"failed_splits\":{},\
             \"failed_replications\":{},\"fallback_allocs\":{},\
             \"busy_rejections\":{},\"dropped_samples\":{},\
             \"misattributed_samples\":{},\"retries\":{},\"oom_reclaims\":{}}}",
            r.failed_migrations,
            r.failed_splits,
            r.failed_replications,
            r.fallback_allocs,
            r.busy_rejections,
            r.dropped_samples,
            r.misattributed_samples,
            r.retries,
            r.oom_reclaims,
        )
    }

    fn lifetime(l: &LifetimeStats) -> String {
        format!(
            "{{\"lar\":{},\"imbalance\":{},\"walk_miss_fraction\":{},\
             \"tlb_miss_ratio\":{},\"max_fault_cycles\":{},\
             \"max_fault_fraction\":{},\"total_fault_cycles\":{},\"vmem\":{},\
             \"overhead_cycles\":{},\"ibs_samples\":{},\"total_ops\":{}}}",
            num(l.lar),
            num(l.imbalance),
            num(l.walk_miss_fraction),
            num(l.tlb_miss_ratio),
            l.max_fault_cycles,
            num(l.max_fault_fraction),
            l.total_fault_cycles,
            vmem_stats(&l.vmem),
            l.overhead_cycles,
            l.ibs_samples,
            l.total_ops,
        )
    }

    fn pages(p: &PageMetrics) -> String {
        format!(
            "{{\"pamup\":{},\"nhp\":{},\"psp\":{},\"pamup_4k\":{},\
             \"nhp_4k\":{},\"psp_4k\":{}}}",
            num(p.pamup),
            p.nhp,
            num(p.psp),
            num(p.pamup_4k),
            p.nhp_4k,
            num(p.psp_4k),
        )
    }

    /// Serializes one full simulation result.
    pub fn sim_result(r: &SimResult) -> String {
        let epochs: Vec<String> = r.epochs.iter().map(epoch).collect();
        format!(
            "{{\"workload\":\"{}\",\"policy\":\"{}\",\"machine\":\"{}\",\
             \"runtime_cycles\":{},\"runtime_ms\":{},\"epochs\":[{}],\
             \"lifetime\":{},\"pages\":{},\"robustness\":{}}}",
            esc(&r.workload),
            esc(&r.policy),
            esc(&r.machine),
            r.runtime_cycles,
            num(r.runtime_ms),
            epochs.join(","),
            lifetime(&r.lifetime),
            pages(&r.pages),
            robustness(&r.robustness),
        )
    }

    /// Serializes experiment rows as a pretty-printed JSON array (one row
    /// per line).
    pub fn cells_to_json(cells: &[Cell]) -> String {
        let mut out = String::from("[\n");
        for (i, c) in cells.iter().enumerate() {
            out.push_str("  {\"machine\":\"");
            out.push_str(&esc(&c.machine));
            out.push_str("\",\"benchmark\":\"");
            out.push_str(&esc(&c.benchmark));
            out.push_str("\",\"policy\":\"");
            out.push_str(&esc(&c.policy));
            out.push_str("\",\"result\":");
            out.push_str(&sim_result(&c.result));
            out.push('}');
            if i + 1 < cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kinds_have_consistent_thp() {
        assert!(!PolicyKind::Linux4k.initial_thp().alloc_2m);
        assert!(PolicyKind::LinuxThp.initial_thp().alloc_2m);
        assert!(PolicyKind::Linux1g.initial_thp().alloc_1g);
        assert!(!PolicyKind::ConservativeOnly.initial_thp().alloc_2m);
        assert!(PolicyKind::ReactiveOnly.initial_thp().alloc_2m);
        assert!(PolicyKind::CarrefourLpTuned.initial_thp().alloc_2m);
    }

    #[test]
    fn labels_are_unique() {
        let kinds = [
            PolicyKind::Linux4k,
            PolicyKind::LinuxThp,
            PolicyKind::Carrefour4k,
            PolicyKind::Carrefour2m,
            PolicyKind::ConservativeOnly,
            PolicyKind::ReactiveOnly,
            PolicyKind::CarrefourLp,
            PolicyKind::CarrefourLpNoRetry,
            PolicyKind::Linux1g,
            PolicyKind::CarrefourLp1g,
            PolicyKind::Mitosis,
            PolicyKind::NumaPte,
            PolicyKind::CarrefourLpTuned,
        ];
        let labels: std::collections::BTreeSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn fmt_pct_signs() {
        assert_eq!(fmt_pct(12.34), "+12.3%");
        assert_eq!(fmt_pct(-5.0), "-5.0%");
    }
}
