//! Checkpoint-forked prefix sharing: simulate a *family* of cells that
//! differ only in policy parameters as one fork tree instead of N
//! independent runs (DESIGN.md §15).
//!
//! The first cell of a family is the **probe**: it runs in full under a
//! [`engine::RunObserver`] that records, at every epoch boundary, the
//! policy's inputs (counters, filtered samples, THP switches, fed-back
//! failures) and a fingerprint of its *outputs* (action queue, decision
//! log, retry count — [`engine::epoch_output_fingerprint`]), and snapshots
//! a ckpt-v1 checkpoint into an LRU cache bounded by
//! `CARREFOUR_FORK_CACHE_MB`.
//!
//! Every sibling then *replays* its own fresh policy over the recorded
//! inputs — no simulation, just `on_epoch` calls — comparing output
//! fingerprints epoch by epoch. The induction that makes this sound: as
//! long as every earlier boundary's outputs matched the probe's, the
//! sibling's simulation would have evolved bit-identically, so the
//! recorded inputs *are* the inputs the sibling would have seen. At the
//! first mismatch (epoch `e`), only epochs `e..` can differ; the sibling
//! resumes from the deepest cached checkpoint `j ≤ e` via
//! [`Simulation::resume_forked`], which restores the simulation state but
//! leaves the policy alone (the checkpoint holds the *probe's* policy
//! bytes). The sibling's policy state at `j` is rebuilt by replaying a
//! fresh instance over boundaries `0..j` — already verified equal, so the
//! replay is cheap and exact. Cache eviction only ever costs reuse, never
//! correctness: with no usable checkpoint the sibling runs from scratch.

use crate::runner::CellSpec;
use engine::{
    Checkpoint, DigestSink, EpochBoundary, EpochCtx, FailedAction, NumaPolicy, RunObserver,
    SimResult, Simulation, TraceDigest,
};
use numa_topology::MachineSpec;
use profiling::{EpochCounters, IbsSample};
use std::time::Instant;
use vmem::ThpControls;

/// Default checkpoint-cache budget when `CARREFOUR_FORK_CACHE_MB` is
/// unset (or unparseable — [`engine::env_override_u32`] warns and falls
/// back here). The budget is per family; families running concurrently
/// each get their own cache.
pub const DEFAULT_CACHE_MB: u32 = 256;

/// Everything the policy saw and produced at one epoch boundary of the
/// probe run — the replay substrate for sibling cells.
struct BoundaryRecord {
    epoch: u32,
    counters: EpochCounters,
    samples: Vec<IbsSample>,
    thp: ThpControls,
    /// `Some` exactly when the engine fed failures (fault-injected runs).
    failures: Option<Vec<FailedAction>>,
    fingerprint: u64,
}

/// LRU cache of ckpt-v1 blobs, bounded by a byte budget. Front is
/// least-recently-used; lookups touch. Strictly bounded: a blob larger
/// than the whole budget is evicted on insert (the family then degrades
/// to scratch runs — slower, never wrong).
struct CkptCache {
    budget: usize,
    used: usize,
    entries: Vec<(u32, Checkpoint)>,
}

impl CkptCache {
    fn new(budget: usize) -> Self {
        CkptCache {
            budget,
            used: 0,
            entries: Vec::new(),
        }
    }

    fn insert(&mut self, ckpt: Checkpoint) {
        self.used += ckpt.size_bytes();
        self.entries.push((ckpt.epoch(), ckpt));
        while self.used > self.budget {
            let (_, evicted) = self.entries.remove(0);
            self.used -= evicted.size_bytes();
        }
    }

    /// The deepest cached checkpoint at epoch ≤ `epoch`, touched MRU.
    fn deepest_at_most(&mut self, epoch: u32) -> Option<&Checkpoint> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (e, _))| *e <= epoch)
            .max_by_key(|(_, (e, _))| *e)?
            .0;
        let entry = self.entries.remove(best);
        self.entries.push(entry);
        Some(&self.entries.last().expect("just pushed").1)
    }
}

/// The probe-side observer: records every boundary and snapshots every
/// epoch ≥ 1 into the LRU cache (one pass instead of O(epochs) re-runs).
struct Recorder {
    records: Vec<BoundaryRecord>,
    cache: CkptCache,
}

impl RunObserver for Recorder {
    fn on_boundary(&mut self, b: &EpochBoundary<'_>) {
        self.records.push(BoundaryRecord {
            epoch: b.epoch,
            counters: b.counters.clone(),
            samples: b.samples.to_vec(),
            thp: b.thp,
            failures: b.failures.map(<[FailedAction]>::to_vec),
            fingerprint: b.fingerprint,
        });
    }

    fn want_checkpoint(&mut self, _epoch: u32) -> bool {
        self.cache.budget > 0
    }

    fn on_checkpoint(&mut self, ckpt: Checkpoint) {
        self.cache.insert(ckpt);
    }
}

/// Feeds one recorded boundary to `policy` and returns its output
/// fingerprint. The decision log is enabled to mirror the probe run
/// (which always has an observer attached).
fn replay_boundary(
    machine: &MachineSpec,
    rec: &BoundaryRecord,
    policy: &mut dyn NumaPolicy,
) -> u64 {
    let mut ctx = EpochCtx::new(machine, &rec.counters, &rec.samples, rec.thp, rec.epoch);
    if let Some(f) = &rec.failures {
        ctx.set_failures(f);
    }
    ctx.enable_decision_log();
    policy.on_epoch(&mut ctx);
    let actions = ctx.take_actions();
    let decisions = ctx.take_decisions();
    let retries = ctx.retries_recorded();
    engine::epoch_output_fingerprint(rec.epoch, &actions, &decisions, retries)
}

/// Per-family execution counters, persisted into `BENCH_runner.json`
/// (bench-runner-v4) and `SWEEP_lp.json` (sweep-v1). Replay boundary
/// evaluations are *not* simulated epochs — no rounds run during replay.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FamilyStats {
    /// Cells in the family (including the probe).
    pub cells: usize,
    /// Epochs actually executed through the engine.
    pub epochs_simulated: u64,
    /// Epochs restored from the shared prefix instead of executed.
    pub epochs_reused: u64,
    /// Siblings whose whole decision stream matched the probe's.
    pub full_matches: u64,
    /// Siblings resumed from a checkpoint mid-run.
    pub forks: u64,
    /// Siblings run from epoch 0 (divergence before the first cached
    /// checkpoint, cache eviction, or a policy-name mismatch).
    pub scratch: u64,
    /// Host seconds of the probe's full observed run.
    pub probe_secs: f64,
    /// Host seconds spent replaying recorded boundaries (divergence
    /// search plus forked-policy prefix rebuilds) — the price of asking
    /// "can this sibling share?".
    pub replay_secs: f64,
    /// Host seconds simulating forked siblings' tails.
    pub resume_secs: f64,
    /// Host seconds cloning full-match results off the probe.
    pub clone_secs: f64,
    /// Host seconds of scratch fallback runs.
    pub scratch_secs: f64,
}

impl FamilyStats {
    /// Merges another family's counters into this one (suite totals).
    pub fn absorb(&mut self, other: &FamilyStats) {
        self.cells += other.cells;
        self.epochs_simulated += other.epochs_simulated;
        self.epochs_reused += other.epochs_reused;
        self.full_matches += other.full_matches;
        self.forks += other.forks;
        self.scratch += other.scratch;
        self.probe_secs += other.probe_secs;
        self.replay_secs += other.replay_secs;
        self.resume_secs += other.resume_secs;
        self.clone_secs += other.clone_secs;
        self.scratch_secs += other.scratch_secs;
    }
}

/// One cell's output from a family run: the result, plus its trace
/// digest when the family ran traced.
pub struct FamilyCell {
    /// The simulation result, bit-identical to a from-scratch run.
    pub result: SimResult,
    /// Present iff [`run_family`] was called with `traced = true`.
    pub digest: Option<TraceDigest>,
}

/// Splices a forked sibling's digest: the probe's verified prefix
/// (epochs `0..fork_epoch`) plus the resumed tail. Sound because epoch 0
/// is the only epoch whose hash covers `RunStart` (workload, policy
/// *name*, machine, seed) — all equal across a family with equal policy
/// names — and resumed runs emit no `RunStart` of their own.
fn splice_digest(
    probe: &TraceDigest,
    tail: TraceDigest,
    fork_epoch: u32,
    runtime_cycles: u64,
) -> TraceDigest {
    let mut epochs: Vec<_> = probe.epochs[..fork_epoch as usize].to_vec();
    epochs.extend(tail.epochs);
    TraceDigest {
        workload: probe.workload.clone(),
        policy: probe.policy.clone(),
        machine: probe.machine.clone(),
        seed: probe.seed,
        runtime_cycles,
        epochs,
    }
}

/// Runs a family of cells through the fork tree. `specs` must be
/// non-empty and agree on [`CellSpec::family_key`] (the caller groups);
/// the first cell is the probe. With `traced = true` every cell also
/// returns its [`TraceDigest`] — bit-identical to a from-scratch traced
/// run's (the forktree equivalence test enforces this).
pub fn run_family(specs: &[CellSpec], traced: bool) -> (Vec<FamilyCell>, FamilyStats) {
    assert!(!specs.is_empty(), "a family needs at least one cell");
    if specs.len() == 1 {
        // A lone cell has nobody to share with: plain run, no observation
        // overhead (the observer would force sample storage and
        // per-boundary snapshots for nothing).
        let spec = &specs[0];
        let config = spec.sim_config();
        let wspec = spec.workload.spec(&spec.machine);
        let mut stats = FamilyStats {
            cells: 1,
            ..FamilyStats::default()
        };
        let cell = run_scratch(spec, &spec.machine, &wspec, &config, traced, &mut stats);
        stats.scratch = 0; // a lone probe is a plain run, not a fallback
        stats.probe_secs = std::mem::take(&mut stats.scratch_secs);
        return (vec![cell], stats);
    }
    let key = specs[0].family_key();
    assert!(
        key.is_some(),
        "family cells must opt in via CellSpec::family"
    );
    assert!(
        specs.iter().all(|s| s.family_key() == key),
        "every cell in a family must share its family_key"
    );

    let probe_spec = &specs[0];
    let machine = &probe_spec.machine;
    let config = probe_spec.sim_config();
    let wspec = probe_spec.workload.spec(machine);
    let budget_mb = engine::env_override_u32("CARREFOUR_FORK_CACHE_MB").unwrap_or(DEFAULT_CACHE_MB);
    let mut recorder = Recorder {
        records: Vec::new(),
        cache: CkptCache::new(budget_mb as usize * 1024 * 1024),
    };

    let mut stats = FamilyStats {
        cells: specs.len(),
        ..FamilyStats::default()
    };
    let mut out = Vec::with_capacity(specs.len());

    // --- Probe: one full observed run. ---
    let probe_t = Instant::now();
    let mut probe_policy = probe_spec.make_policy();
    let probe_name = probe_policy.name().to_string();
    let (mut probe_result, probe_digest) = if traced {
        let mut sink = DigestSink::new();
        let r = Simulation::run_observed(
            machine,
            &wspec,
            &config,
            probe_policy.as_mut(),
            Some(&mut sink),
            &mut recorder,
        );
        let mut d = sink.into_digest();
        d.runtime_cycles = r.runtime_cycles;
        (r, Some(d))
    } else {
        let r = Simulation::run_observed(
            machine,
            &wspec,
            &config,
            probe_policy.as_mut(),
            None,
            &mut recorder,
        );
        (r, None)
    };
    stats.epochs_simulated += probe_result.epochs.len() as u64;
    stats.probe_secs += probe_t.elapsed().as_secs_f64();
    probe_result.policy = probe_spec.policy_label();
    let probe_plain = {
        // Siblings that fully match clone this (with their own label).
        let mut r = probe_result.clone();
        r.policy.clone_from(&probe_name);
        r
    };
    out.push(FamilyCell {
        result: probe_result,
        digest: probe_digest.clone(),
    });

    // --- Siblings: replay, then fork / clone / scratch. ---
    for spec in &specs[1..] {
        let mut fresh = spec.make_policy();
        if fresh.name() != probe_name {
            // Digest splicing hashes the policy name into epoch 0:
            // different names never share.
            out.push(run_scratch(
                spec, machine, &wspec, &config, traced, &mut stats,
            ));
            continue;
        }
        let replay_t = Instant::now();
        let mut divergence = None;
        for rec in &recorder.records {
            if replay_boundary(machine, rec, fresh.as_mut()) != rec.fingerprint {
                divergence = Some(rec.epoch);
                break;
            }
        }
        stats.replay_secs += replay_t.elapsed().as_secs_f64();
        let Some(div_epoch) = divergence else {
            // Every boundary's outputs matched: the sibling's run *is*
            // the probe's run.
            let clone_t = Instant::now();
            stats.epochs_reused += probe_plain.epochs.len() as u64;
            stats.full_matches += 1;
            let mut result = probe_plain.clone();
            result.policy = spec.policy_label();
            out.push(FamilyCell {
                result,
                digest: probe_digest.clone(),
            });
            stats.clone_secs += clone_t.elapsed().as_secs_f64();
            continue;
        };
        let Some(ckpt) = recorder.cache.deepest_at_most(div_epoch) else {
            // Diverged at epoch 0, or the cache evicted everything usable.
            out.push(run_scratch(
                spec, machine, &wspec, &config, traced, &mut stats,
            ));
            continue;
        };
        let fork_epoch = ckpt.epoch();
        // Rebuild the sibling's policy state at the fork point: a fresh
        // instance replayed over the already-verified prefix. (`fresh`
        // itself processed the divergent boundary, so its state is past
        // the fork point and cannot be used.)
        let rebuild_t = Instant::now();
        let mut forked = spec.make_policy();
        for rec in &recorder.records[..fork_epoch as usize] {
            replay_boundary(machine, rec, forked.as_mut());
        }
        stats.replay_secs += rebuild_t.elapsed().as_secs_f64();
        let resume_t = Instant::now();
        let (mut result, digest) = if traced {
            let mut sink = DigestSink::new();
            let r = Simulation::resume_forked_traced(
                machine,
                &wspec,
                &config,
                forked.as_mut(),
                Some(&mut sink),
                ckpt,
            );
            let probe_d = probe_digest.as_ref().expect("traced probe has a digest");
            let d = splice_digest(probe_d, sink.into_digest(), fork_epoch, r.runtime_cycles);
            (r, Some(d))
        } else {
            let r = Simulation::resume_forked(machine, &wspec, &config, forked.as_mut(), ckpt);
            (r, None)
        };
        stats.epochs_reused += u64::from(fork_epoch);
        stats.epochs_simulated += result.epochs.len() as u64 - u64::from(fork_epoch);
        stats.resume_secs += resume_t.elapsed().as_secs_f64();
        stats.forks += 1;
        result.policy = spec.policy_label();
        out.push(FamilyCell { result, digest });
    }

    (out, stats)
}

/// The no-sharing fallback: one full run, counted as such.
fn run_scratch(
    spec: &CellSpec,
    machine: &MachineSpec,
    wspec: &workloads::WorkloadSpec,
    config: &engine::SimConfig,
    traced: bool,
    stats: &mut FamilyStats,
) -> FamilyCell {
    let t = Instant::now();
    let mut policy = spec.make_policy();
    let (mut result, digest) = if traced {
        let mut sink = DigestSink::new();
        let r = Simulation::run_traced(machine, wspec, config, policy.as_mut(), &mut sink);
        let mut d = sink.into_digest();
        d.runtime_cycles = r.runtime_cycles;
        (r, Some(d))
    } else {
        let r = Simulation::run(machine, wspec, config, policy.as_mut());
        (r, None)
    };
    stats.epochs_simulated += result.epochs.len() as u64;
    stats.scratch += 1;
    stats.scratch_secs += t.elapsed().as_secs_f64();
    result.policy = spec.policy_label();
    FamilyCell { result, digest }
}

/// Groups specs into families (by [`CellSpec::family_key`], preserving
/// first-seen order) and runs each through [`run_family`]; specs without
/// a family tag each form a singleton "family" of one scratch run.
/// Returns per-spec cells in the input order plus merged counters keyed
/// by family tag.
pub fn run_grouped(
    specs: &[CellSpec],
    traced: bool,
) -> (Vec<FamilyCell>, Vec<(String, FamilyStats)>) {
    let mut order: Vec<String> = Vec::new();
    let mut groups: std::collections::HashMap<String, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, s) in specs.iter().enumerate() {
        let key = s
            .family_key()
            .unwrap_or_else(|| format!("<solo #{i}> {}", s.key()));
        groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            Vec::new()
        });
        groups.get_mut(&key).expect("just inserted").push(i);
    }
    let mut cells: Vec<Option<FamilyCell>> = (0..specs.len()).map(|_| None).collect();
    let mut all_stats = Vec::with_capacity(order.len());
    for key in order {
        let idxs = &groups[&key];
        let family: Vec<CellSpec> = idxs.iter().map(|&i| specs[i].clone()).collect();
        let (ran, stats) = run_family(&family, traced);
        for (&i, cell) in idxs.iter().zip(ran) {
            cells[i] = Some(cell);
        }
        all_stats.push((key, stats));
    }
    (
        cells
            .into_iter()
            .map(|c| c.expect("every index ran"))
            .collect(),
        all_stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyKind;
    use numa_topology::MachineSpec;
    use workloads::Benchmark;

    fn family_spec(params: Option<carrefour::LpParams>) -> CellSpec {
        let mut s = CellSpec::new(
            MachineSpec::test_machine(),
            Benchmark::EpC,
            PolicyKind::CarrefourLp,
        );
        s.family = Some("t".into());
        s.lp_params = params;
        s
    }

    #[test]
    fn cache_evicts_lru_and_touches_on_lookup() {
        // Budget of ~2.5 blobs: inserting 1,2,3 evicts 1.
        let mk = |epoch| Checkpoint::synthetic_for_tests(epoch, 100);
        let mut c = CkptCache::new(250);
        c.insert(mk(1));
        c.insert(mk(2));
        assert_eq!(c.entries.len(), 2);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.deepest_at_most(1).unwrap().epoch(), 1);
        c.insert(mk(3));
        let epochs: Vec<u32> = c.entries.iter().map(|(e, _)| *e).collect();
        assert_eq!(epochs, vec![1, 3], "2 was least-recently-used");
        // Deepest-at-most honors the bound, not just presence.
        assert_eq!(c.deepest_at_most(2).unwrap().epoch(), 1);
        assert!(c.deepest_at_most(0).is_none());
    }

    #[test]
    fn oversized_blob_is_evicted_on_insert() {
        let mut c = CkptCache::new(50);
        c.insert(Checkpoint::synthetic_for_tests(1, 100));
        assert!(c.entries.is_empty(), "strictly bounded, even if empty");
        assert_eq!(c.used, 0);
    }

    #[test]
    fn identical_sibling_is_a_full_match() {
        let specs = vec![family_spec(None), family_spec(None)];
        let (cells, stats) = run_family(&specs, false);
        assert_eq!(stats.full_matches, 1);
        assert_eq!(stats.scratch, 0);
        assert_eq!(
            cells[0].result.runtime_cycles,
            cells[1].result.runtime_cycles
        );
        assert_eq!(stats.epochs_reused, cells[0].result.epochs.len() as u64);
    }

    #[test]
    fn grouped_run_returns_input_order() {
        let mut solo = CellSpec::new(
            MachineSpec::test_machine(),
            Benchmark::EpC,
            PolicyKind::Linux4k,
        );
        solo.label = Some("solo".into());
        let specs = vec![family_spec(None), solo, family_spec(None)];
        let (cells, stats) = run_grouped(&specs, false);
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[1].result.policy, "solo");
        assert_eq!(stats.len(), 2, "one family plus one singleton");
    }
}
