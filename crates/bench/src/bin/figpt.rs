//! Figure PT: page-table placement (Mitosis replication, numaPTE
//! migration) against Linux and THP, with the remote-walk cycle share
//! when `CARREFOUR_ATTRIB=1`. See DESIGN.md §13.

fn main() {
    carrefour_bench::experiments::run_standalone("figPT");
}
