//! Figure 5: THP and Carrefour-LP over Linux on the benchmarks whose NUMA
//! metrics THP does *not* affect.

fn main() {
    carrefour_bench::experiments::run_standalone("fig5");
}
