//! Figure 5: THP and Carrefour-LP over Linux on the benchmarks whose NUMA
//! metrics THP does *not* affect.

use carrefour_bench::{improvement, machines, run_matrix, save_json, PolicyKind};
use workloads::Benchmark;

fn main() {
    let policies = [
        PolicyKind::Linux4k,
        PolicyKind::LinuxThp,
        PolicyKind::CarrefourLp,
    ];
    let benches = Benchmark::numa_unaffected();
    for machine in machines() {
        println!(
            "== Figure 5 ({}) : improvement over Linux ==",
            machine.name()
        );
        println!("{:<16} {:>8} {:>14}", "bench", "THP", "Carrefour-LP");
        let cells = run_matrix(&machine, benches, &policies);
        for &b in benches {
            let thp = improvement(&cells, b, PolicyKind::LinuxThp, PolicyKind::Linux4k);
            let lp = improvement(&cells, b, PolicyKind::CarrefourLp, PolicyKind::Linux4k);
            println!("{:<16} {:>8.1} {:>14.1}", b.name(), thp, lp);
        }
        save_json(&format!("fig5_{}", machine.name()), &cells);
        println!();
    }
}
