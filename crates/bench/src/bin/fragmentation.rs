//! Physical-memory fragmentation vs. THP (the availability problem the
//! paper's introduction cites from Talluri et al. and Navarro et al.).
//!
//! Pre-fragments each node's memory by pinning every other 4 KiB frame of
//! a large span, then runs a THP workload: huge-page allocations fail, the
//! fault path falls back to 4 KiB pages, and the THP benefit evaporates —
//! quantifying why real systems pair THP with compaction.

use engine::{NullPolicy, SimConfig, Simulation};
use numa_topology::{Interconnect, MachineSpec, NodeId};
use vmem::{AddressSpace, PageSize, ThpControls};
use workloads::Benchmark;

/// Pins alternating 4 KiB frames over `fraction` of each node's memory.
///
/// Two phases: grab the whole span first, then free every other frame —
/// freeing as we go would just hand the same frame back on the next
/// allocation (the buddy allocator is lowest-address-first).
fn fragment(space: &mut AddressSpace, machine: &MachineSpec, fraction: f64) {
    for n in 0..machine.num_nodes() {
        let node = NodeId::from(n);
        let budget = (machine.nodes()[n].dram_bytes as f64 * fraction) as u64;
        let mut taken = Vec::with_capacity((budget / 4096) as usize);
        while (taken.len() as u64) * 4096 < budget {
            match space.alloc_frame(node, PageSize::Size4K) {
                Ok(f) => taken.push(f),
                Err(_) => break,
            }
        }
        // Free every other frame: the released 4 KiB holes can never
        // coalesce because their buddies stay pinned.
        for f in taken.iter().skip(1).step_by(2) {
            space.free_frame(*f, PageSize::Size4K);
        }
        // The even frames stay allocated for the whole run.
    }
}

fn main() {
    // A memory-constrained variant of machine B: fragmenting 512 GiB of
    // simulated DRAM frame-by-frame is pointless (and slow) when the
    // workload touches half a gigabyte; 1 GiB per node gives fragmentation
    // real teeth while keeping the same core/node layout.
    let machine = MachineSpec::homogeneous(
        "machine-b-1g",
        2.1,
        8,
        8,
        1 << 30,
        Interconnect::full_mesh(8),
    );
    let bench = Benchmark::Wc; // the biggest THP winner
    let spec = bench.spec(&machine);

    println!(
        "THP under physical fragmentation — {} on {}:\n",
        bench.name(),
        machine.name()
    );
    println!(
        "{:<22} {:>12} {:>9} {:>12} {:>12}",
        "configuration", "runtime(ms)", "vs Linux", "2MiB faults", "4KiB faults"
    );

    let linux_cfg = SimConfig::for_machine(&machine, ThpControls::small_only());
    let base = Simulation::run(&machine, &spec, &linux_cfg, &mut NullPolicy);
    println!(
        "{:<22} {:>12.2} {:>+8.1}% {:>12} {:>12}",
        "Linux-4K",
        base.runtime_ms,
        0.0,
        base.lifetime.vmem.faults_2m,
        base.lifetime.vmem.faults_4k
    );

    for (label, fraction) in [("THP, pristine", 0.0), ("THP, 98% fragmented", 0.98)] {
        let config = SimConfig::for_machine(&machine, ThpControls::thp());
        let r = Simulation::run_with_setup(&machine, &spec, &config, &mut NullPolicy, |space| {
            fragment(space, &machine, fraction)
        });
        println!(
            "{:<22} {:>12.2} {:>+8.1}% {:>12} {:>12}",
            label,
            r.runtime_ms,
            r.improvement_over(&base),
            r.lifetime.vmem.faults_2m,
            r.lifetime.vmem.faults_4k
        );
    }

    println!(
        "\nWith most of physical memory fragmented into isolated 4 KiB \
         holes, huge-frame allocation fails and faults fall back to base \
         pages: the THP gain collapses toward the Linux baseline. This is \
         the availability problem (Navarro et al., OSDI '02) that THP's \
         background compaction exists to fight — orthogonal to, and \
         compounding with, the NUMA problems this paper studies."
    );
}
