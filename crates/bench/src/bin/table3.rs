//! Table 3: LAR and imbalance across all four systems for CG.D (machine B),
//! UA.B (machine A), UA.C (machine B).

use carrefour_bench::{run_cell, save_json, Cell, PolicyKind};
use numa_topology::MachineSpec;
use workloads::Benchmark;

fn main() {
    let rows = [
        (Benchmark::CgD, MachineSpec::machine_b()),
        (Benchmark::UaB, MachineSpec::machine_a()),
        (Benchmark::UaC, MachineSpec::machine_b()),
    ];
    let policies = [
        PolicyKind::Linux4k,
        PolicyKind::LinuxThp,
        PolicyKind::Carrefour2m,
        PolicyKind::CarrefourLp,
    ];

    println!("== Table 3: LAR % (left) and imbalance % (right) ==");
    println!(
        "{:<12} {:>7} {:>7} {:>9} {:>9} | {:>7} {:>7} {:>9} {:>9}",
        "bench", "Linux", "THP", "Carr.2M", "Carr.LP", "Linux", "THP", "Carr.2M", "Carr.LP"
    );
    let mut cells = Vec::new();
    for (bench, machine) in rows {
        let results: Vec<_> = policies
            .iter()
            .map(|&k| run_cell(&machine, bench, k))
            .collect();
        let label = format!(
            "{} ({})",
            bench.name(),
            if machine.name().ends_with('a') {
                "A"
            } else {
                "B"
            }
        );
        println!(
            "{:<12} {:>7.0} {:>7.0} {:>9.0} {:>9.0} | {:>7.0} {:>7.0} {:>9.0} {:>9.0}",
            label,
            results[0].lifetime.lar * 100.0,
            results[1].lifetime.lar * 100.0,
            results[2].lifetime.lar * 100.0,
            results[3].lifetime.lar * 100.0,
            results[0].lifetime.imbalance,
            results[1].lifetime.imbalance,
            results[2].lifetime.imbalance,
            results[3].lifetime.imbalance,
        );
        for (k, r) in policies.iter().zip(results) {
            cells.push(Cell {
                machine: machine.name().to_string(),
                benchmark: bench.name().to_string(),
                policy: k.label().to_string(),
                result: r,
            });
        }
    }
    save_json("table3", &cells);
}
