//! Table 3: LAR and imbalance across all four systems for CG.D (machine B),
//! UA.B (machine A), UA.C (machine B).

fn main() {
    carrefour_bench::experiments::run_standalone("table3");
}
