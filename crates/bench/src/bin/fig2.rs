//! Figure 2: Carrefour-2M vs THP over Linux, NUMA-affected benchmarks.

fn main() {
    carrefour_bench::experiments::run_standalone("fig2");
}
