//! Figure 2: Carrefour-2M vs THP over Linux, NUMA-affected benchmarks.

use carrefour_bench::{improvement, machines, run_matrix, save_json, PolicyKind};
use workloads::Benchmark;

fn main() {
    let policies = [
        PolicyKind::Linux4k,
        PolicyKind::LinuxThp,
        PolicyKind::Carrefour2m,
    ];
    let benches = Benchmark::numa_affected();
    for machine in machines() {
        println!(
            "== Figure 2 ({}) : improvement over Linux ==",
            machine.name()
        );
        println!("{:<16} {:>8} {:>14}", "bench", "THP", "Carrefour-2M");
        let cells = run_matrix(&machine, benches, &policies);
        for &b in benches {
            let thp = improvement(&cells, b, PolicyKind::LinuxThp, PolicyKind::Linux4k);
            let c2m = improvement(&cells, b, PolicyKind::Carrefour2m, PolicyKind::Linux4k);
            println!("{:<16} {:>8.1} {:>14.1}", b.name(), thp, c2m);
        }
        save_json(&format!("fig2_{}", machine.name()), &cells);
        println!();
    }
}
