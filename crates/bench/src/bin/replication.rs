//! Ablation: read-only page replication (the original Carrefour's third
//! mechanism, which this paper's Carrefour summary omits).
//!
//! A read-mostly shared workload (lookup tables, graph structure) leaves
//! interleaving as the best the migrate/interleave policy can do — every
//! node still misses 1-1/N of its accesses remotely. Replication gives each
//! node a local copy and converts all of them to local hits.

use carrefour::Carrefour;
use engine::{NullPolicy, SimConfig, SimResult, Simulation};
use numa_topology::MachineSpec;
use vmem::ThpControls;
use workloads::{AccessPattern, RegionSpec, WorkloadSpec};

fn read_mostly_workload(machine: &MachineSpec) -> WorkloadSpec {
    WorkloadSpec {
        name: "read-mostly".into(),
        threads: machine.total_cores(),
        regions: vec![
            // A shared lookup structure, never written after setup.
            RegionSpec {
                base: 64 << 30,
                bytes: 48 << 20,
                share: 0.8,
                pattern: AccessPattern::SharedUniform,
                alloc_skew: 1.0, // loader-built, all on node 0
                loader_headers: 0.0,
                rw_shared: false,
                read_only: true,
            },
            // Small private scratch (the writes go here).
            RegionSpec {
                base: 66 << 30,
                bytes: (machine.total_cores() as u64) << 21,
                share: 0.2,
                pattern: AccessPattern::PrivateBlocked {
                    block_bytes: 256 * 1024,
                    dwell_ops: 1500,
                },
                alloc_skew: 0.0,
                loader_headers: 0.0,
                rw_shared: false,
                read_only: false,
            },
        ],
        ops_per_round: 1000,
        compute_rounds: 250,
        think_cycles_per_op: 8,
        // Writes land only in the private scratch; the lookup structure is
        // read-only after the loader builds it.
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    }
}

fn main() {
    let machine = MachineSpec::machine_b();
    let spec = read_mostly_workload(&machine);
    let mut config = SimConfig::for_machine(&machine, ThpControls::small_only());
    // Dense sampling: replication coverage is sample-bound.
    config.ibs.period = 48;
    config.ibs.sample_overhead_cycles = 400;

    let runs: Vec<(&str, SimResult)> = vec![
        (
            "Linux-4K",
            Simulation::run(&machine, &spec, &config, &mut NullPolicy),
        ),
        (
            "Carrefour",
            Simulation::run(&machine, &spec, &config, &mut Carrefour::new()),
        ),
        (
            "Carrefour+repl",
            Simulation::run(&machine, &spec, &config, &mut Carrefour::with_replication()),
        ),
    ];

    println!(
        "read-mostly shared data on {} (loader-built on node 0):\n",
        machine.name()
    );
    println!(
        "{:<16} {:>12} {:>9} {:>6} {:>11} {:>10} {:>10}",
        "system", "runtime(ms)", "vs Linux", "LAR%", "imbalance%", "replicas", "collapses"
    );
    let base_cycles = runs[0].1.runtime_cycles;
    for (label, r) in &runs {
        println!(
            "{:<16} {:>12.2} {:>+8.1}% {:>6.0} {:>11.1} {:>10} {:>10}",
            label,
            r.runtime_ms,
            (base_cycles as f64 / r.runtime_cycles as f64 - 1.0) * 100.0,
            r.lifetime.lar * 100.0,
            r.lifetime.imbalance,
            r.lifetime.vmem.replications,
            r.lifetime.vmem.replica_collapses,
        );
    }
    println!(
        "\nInterleaving balances the controllers but leaves most accesses \
         remote; replication converts them to local hits (watch the LAR \
         column). At this simulation's run lengths the copy cost and the \
         per-node cold misses offset the latency savings, so runtime is at \
         parity — on the paper's minutes-long runs the balance tips to \
         replication, which is why the original Carrefour carried the \
         mechanism even though the 2014 paper's write-heavy benchmarks \
         rarely engaged it."
    );
}
