//! `explain` — attribution-based diagnosis of a policy delta.
//!
//! Runs a pair of cells (same benchmark and machine, two policies) with
//! the cycle-attribution ledger on, writes the `attrib-v1` report to
//! `results/ATTRIB_<bench>_<base>_vs_<cand>.json`, and prints the
//! human-readable narrative: which architectural cause the runtime delta
//! decomposes into ("THP saves N walk cycles but adds M queueing cycles
//! on node 2"). Conservation makes the decomposition exact — the listed
//! causes sum to the runtime delta.
//!
//! ```text
//! explain                          # the two paper diagnosis cases (below)
//! explain CG.D Linux THP           # any pair, machine A
//! explain UA.B Linux THP --machine b
//! explain --golden                 # attributed golden cells
//! #                                #   -> results/BENCH_attrib_baseline.json
//! explain --what-if CG.D THP       # causal intervention (below)
//! explain --what-if CG.D THP --epoch 7
//! ```
//!
//! `--what-if` turns the post-hoc diagnosis into a causal intervention:
//! it snapshots the cell at an epoch boundary (`--epoch`, default the
//! midpoint) as a `ckpt-v1` checkpoint, then resumes the tail **twice**
//! from that same fork point — once untouched, once with the first policy
//! decision queued after the fork vetoed — and attributes the runtime
//! delta between the two tails. Determinism makes the comparison exact:
//! the two tails share every bit of history up to the fork, so the
//! printed delta is *caused by that one decision*, not correlated with
//! it. Both tails run on the sharded engine (the spare-lane pool is
//! offered every host core), which is what makes forking tails cheap
//! enough to ask several counterfactuals per sitting.
//!
//! With no arguments, `explain` reproduces the paper's headline diagnoses
//! on machine A: the CG.D THP regression (Table 1: imbalance explodes —
//! the ledger shows queueing delay growing on the hottest controller),
//! the UA.B THP regression (Table 1: locality collapses — the ledger
//! shows interconnect-hop time growing), and the SSCA.20 THP win
//! (Table 1: page-walk misses vanish under huge pages — the ledger shows
//! the win is walk-cycle reduction).

use carrefour_bench::runner::{par_map, resolve_jobs};
use carrefour_bench::{attrib, golden, Cell, PolicyKind};
use engine::{EpochCtx, NumaPolicy, SimConfig, Simulation};
use numa_topology::MachineSpec;
use std::path::Path;
use workloads::Benchmark;

/// Reports a usage error on stderr and exits 2 (CLI misuse is not a bug:
/// no panic, no backtrace).
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Runs one cell with attribution on (directly, not via the environment)
/// and panics if the ledger does not conserve — an `explain` report built
/// from a non-conserving ledger would narrate cycles that don't exist.
fn run_attributed(machine: &MachineSpec, bench: Benchmark, kind: PolicyKind) -> Cell {
    let mut config = SimConfig::for_machine(machine, kind.initial_thp());
    config.attribution = true;
    let spec = bench.spec(machine);
    let mut policy = kind.make();
    let mut result = Simulation::run(machine, &spec, &config, policy.as_mut());
    result.policy = kind.label().to_string();
    let ledger = result.attribution.as_ref().unwrap_or_else(|| {
        panic!(
            "{}/{}: attribution was enabled but the result carries no ledger",
            bench.name(),
            kind.label()
        )
    });
    assert!(
        ledger.conserves(result.runtime_cycles),
        "{}/{}: ledger does not conserve ({} != {})",
        bench.name(),
        kind.label(),
        ledger.total.total(),
        result.runtime_cycles
    );
    Cell {
        machine: machine.name().to_string(),
        benchmark: bench.name().to_string(),
        policy: kind.label().to_string(),
        result,
    }
}

/// Runs one (bench, base, cand) pair in parallel, writes the report, and
/// prints the narrative.
fn explain_pair(machine: &MachineSpec, bench: Benchmark, base: PolicyKind, cand: PolicyKind) {
    let kinds = [base, cand];
    let mut cells = par_map(resolve_jobs(None).min(2), 2, |i| {
        run_attributed(machine, bench, kinds[i])
    });
    let cand_cell = cells.pop().expect("par_map(2) returned both cells");
    let base_cell = cells.pop().expect("par_map(2) returned both cells");
    print!("{}", attrib::narrative(&base_cell, &cand_cell));
    match attrib::write_report(Path::new("results"), &base_cell, &cand_cell) {
        Ok(path) => println!("  report: {}\n", path.display()),
        Err(e) => println!("  (report not written: {e})\n"),
    }
}

/// Runs the six golden cells attributed and seeds
/// `results/BENCH_attrib_baseline.json` — the checked-in reference of the
/// golden configurations' cycle composition.
fn golden_baseline() {
    let machine = MachineSpec::machine_a();
    let jobs = resolve_jobs(None);
    let cells = par_map(jobs, golden::GOLDEN_CELLS.len(), |i| {
        let c = golden::GOLDEN_CELLS[i];
        run_attributed(&machine, c.bench, c.kind)
    });
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        die(&format!("could not create {}: {e}", dir.display()));
    }
    let path = dir.join("BENCH_attrib_baseline.json");
    if let Err(e) = std::fs::write(&path, attrib::baseline_json(&cells)) {
        die(&format!("could not write {}: {e}", path.display()));
    }
    println!(
        "wrote {} ({} attributed cells)",
        path.display(),
        cells.len()
    );
}

/// A policy wrapper that vetoes the first action its inner policy queues
/// after the fork point — the minimal causal intervention ("what if the
/// policy had not made that one decision?"). Epochs that queue nothing
/// pass through untouched; the veto arms on the first non-empty action
/// list and fires exactly once. Checkpoint state round-trips straight
/// through to the inner policy, so a resumed wrapper continues the inner
/// policy bit-identically up to the veto.
struct WhatIfPolicy {
    inner: Box<dyn NumaPolicy>,
    label: String,
    vetoed: Option<String>,
}

impl NumaPolicy for WhatIfPolicy {
    fn name(&self) -> &str {
        &self.label
    }

    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
        self.inner.on_epoch(ctx);
        if self.vetoed.is_none() {
            let mut actions = ctx.take_actions();
            if !actions.is_empty() {
                self.vetoed = Some(format!("{:?}", actions.remove(0)));
                for a in actions {
                    ctx.push(a);
                }
            }
        }
    }

    fn consumes_samples(&self) -> bool {
        self.inner.consumes_samples()
    }

    fn save_state(&self) -> Vec<u8> {
        self.inner.save_state()
    }

    fn restore_state(&mut self, bytes: &[u8]) {
        self.inner.restore_state(bytes);
    }
}

/// The `--what-if` mode: checkpoint `bench`/`kind` at `fork_epoch`
/// (default the midpoint), resume the tail twice from the same snapshot —
/// factual and with the first post-fork decision vetoed — and attribute
/// the delta.
fn what_if(machine: &MachineSpec, bench: Benchmark, kind: PolicyKind, fork_epoch: Option<u32>) {
    // The tails run on the sharded engine: every spare host core becomes
    // a shard lane (`SimConfig::shards` stays 0 = auto).
    engine::lanes::configure(resolve_jobs(None).saturating_sub(1));
    let mut config = SimConfig::for_machine(machine, kind.initial_thp());
    config.attribution = true;
    let spec = bench.spec(machine);

    // Factual run, end to end, to learn the epoch count and anchor the
    // comparison.
    let factual = run_attributed(machine, bench, kind);
    let n = factual.result.epochs.len() as u32;
    let fork = fork_epoch.unwrap_or(n / 2).min(n.saturating_sub(1));
    if fork == 0 || n < 2 {
        die(&format!(
            "{} has only {n} epoch(s); nothing to fork (--epoch must be in 1..{n})",
            bench.name()
        ));
    }

    // Fork: one ckpt-v1 snapshot, two resumed tails.
    let ckpt = Simulation::checkpoint_at(machine, &spec, &config, kind.make().as_mut(), fork)
        .unwrap_or_else(|| {
            die(&format!(
                "checkpoint at epoch {fork} failed (run too short)"
            ))
        });
    let mut wrapped = WhatIfPolicy {
        inner: kind.make(),
        label: format!("{}[what-if]", kind.label()),
        vetoed: None,
    };
    let mut counter = Simulation::resume(machine, &spec, &config, &mut wrapped, &ckpt);
    let Some(vetoed) = wrapped.vetoed else {
        die(&format!(
            "{}/{} queued no actions after epoch {fork}; nothing to veto \
             (try an earlier --epoch)",
            bench.name(),
            kind.label()
        ));
    };
    counter.policy = wrapped.label.clone();

    println!(
        "================ what-if: {} / {} ================",
        bench.name(),
        kind.label()
    );
    println!(
        "  fork epoch:  {fork} of {n} (ckpt-v1, {} bytes)",
        ckpt.to_bytes().len()
    );
    println!("  vetoed:      {vetoed}");
    let base_cycles = factual.result.runtime_cycles;
    let cf_cycles = counter.runtime_cycles;
    let pct = (cf_cycles as f64 - base_cycles as f64) / base_cycles as f64 * 100.0;
    println!(
        "  runtime:     {base_cycles} -> {cf_cycles} cycles ({pct:+.2}% from this one decision)"
    );
    let counter_cell = Cell {
        machine: machine.name().to_string(),
        benchmark: bench.name().to_string(),
        policy: counter.policy.clone(),
        result: counter,
    };
    print!("{}", attrib::narrative(&factual, &counter_cell));
    match attrib::write_report(Path::new("results"), &factual, &counter_cell) {
        Ok(path) => println!("  report: {}\n", path.display()),
        Err(e) => println!("  (report not written: {e})\n"),
    }
}

fn parse_bench(name: &str) -> Benchmark {
    Benchmark::all()
        .iter()
        .copied()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            let known: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
            die(&format!(
                "unknown benchmark {name:?}; known: {}",
                known.join(", ")
            ))
        })
}

fn parse_policy(label: &str) -> PolicyKind {
    PolicyKind::parse(label).unwrap_or_else(|| {
        let known: Vec<&str> = PolicyKind::all().iter().map(|k| k.label()).collect();
        die(&format!(
            "unknown policy {label:?}; known: {}",
            known.join(", ")
        ))
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--golden") {
        golden_baseline();
        return;
    }
    let mut machine = MachineSpec::machine_a();
    let mut what_if_mode = false;
    let mut fork_epoch: Option<u32> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--machine" => {
                let Some(v) = it.next() else {
                    die("--machine needs a value (a|b)");
                };
                machine = match v.as_str() {
                    "a" | "machine-a" => MachineSpec::machine_a(),
                    "b" | "machine-b" => MachineSpec::machine_b(),
                    other => die(&format!("unknown machine {other:?} (want a|b)")),
                };
            }
            "--what-if" => what_if_mode = true,
            "--epoch" => {
                let Some(v) = it.next() else {
                    die("--epoch needs a boundary number");
                };
                fork_epoch = Some(
                    v.parse()
                        .unwrap_or_else(|_| die(&format!("--epoch {v:?} is not a number"))),
                );
            }
            "--jobs" => {
                let _ = it.next();
            }
            a if a.starts_with("--jobs=") => {}
            _ => positional.push(a),
        }
    }
    if what_if_mode {
        match positional.as_slice() {
            [] => what_if(
                &machine,
                Benchmark::CgD,
                PolicyKind::CarrefourLp,
                fork_epoch,
            ),
            [bench, policy] => what_if(
                &machine,
                parse_bench(bench),
                parse_policy(policy),
                fork_epoch,
            ),
            other => die(&format!(
                "usage: explain --what-if [<bench> <policy>] [--epoch N] [--machine a|b] \
                 (got {} positional args)",
                other.len()
            )),
        }
        return;
    }
    match positional.as_slice() {
        [] => {
            // The paper's headline diagnoses (Table 1), machine A.
            for bench in [Benchmark::CgD, Benchmark::UaB, Benchmark::Ssca] {
                explain_pair(&machine, bench, PolicyKind::Linux4k, PolicyKind::LinuxThp);
            }
        }
        [bench, base, cand] => {
            explain_pair(
                &machine,
                parse_bench(bench),
                parse_policy(base),
                parse_policy(cand),
            );
        }
        other => die(&format!(
            "usage: explain [<bench> <base-policy> <cand-policy>] [--machine a|b] | --golden \
             (got {} positional args)",
            other.len()
        )),
    }
}
