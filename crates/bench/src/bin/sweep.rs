//! Carrefour-LP threshold sweep on the checkpoint-forked runner
//! (ROADMAP item 4, DESIGN.md §15).
//!
//! Every candidate configuration differs from the baseline only in
//! [`LpParams`], so a (machine × benchmark) *family* — baseline probe
//! plus all candidates — shares its simulation prefix through
//! [`forktree::run_family`]: candidates whose decision stream matches the
//! probe's cost zero simulated epochs, and divergent ones resume from the
//! deepest checkpoint before their first divergent decision. The sweep is
//! seeded and deterministic end to end: same grid, same refinement walk,
//! same winner, bit-identical cells on every run.
//!
//! Search: a fixed grid over the three thresholds the paper's sensitivity
//! discussion names (split gain, hot-page cutoff, imbalance trigger),
//! then attribution-guided refinement — each round diagnoses the current
//! winner's worst family with the 9-group cycle ledger
//! ([`attrib::cause_groups`]) and the cause bucket that *grew* picks the
//! next axis to perturb. Scoring is mean speedup over Linux-tuned
//! Carrefour-LP across all families vs. worst-case regression; both land
//! in `results/SWEEP_lp.json` (schema `sweep-v1`) together with the
//! Pareto frontier and the prefix-sharing counters.
//!
//! `--smoke` runs a tiny 3×3 grid on the test machine, additionally runs
//! the same cells *without* sharing, and asserts (a) every result and
//! trace digest is bit-identical between the two execution strategies and
//! (b) sharing cut simulated epochs by at least 2×. CI runs this on every
//! push. `--no-share` disables prefix sharing in any mode (the A/B lever
//! the smoke test uses internally).

use carrefour::LpParams;
use carrefour_bench::forktree::{self, FamilyStats};
use carrefour_bench::runner::{self, CellSpec};
use carrefour_bench::{attrib, logx, PolicyKind};
use engine::SimResult;
use numa_topology::MachineSpec;
use std::collections::HashMap;
use workloads::Benchmark;

/// One point in the threshold space, identified by a stable label.
#[derive(Clone)]
struct Candidate {
    id: usize,
    label: String,
    params: LpParams,
}

/// One (machine × benchmark) scenario the sweep scores candidates on.
struct Family {
    machine: MachineSpec,
    bench: Benchmark,
}

/// What the sweep keeps per (family, candidate) cell: enough to score and
/// diagnose without holding every per-epoch record alive.
struct Scored {
    runtime_cycles: u64,
    attribution: Option<engine::AttributionLedger>,
}

/// A candidate's aggregate score across all families.
struct Score {
    mean_speedup: f64,
    worst_regression_pct: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let share = !args.iter().any(|a| a == "--no-share");
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "results/SWEEP_lp.json".into());
    // Refinement diagnoses with the cycle ledger, and the equivalence
    // claim is strongest with it on (the ledger rides inside SimResult's
    // PartialEq), so the sweep always runs attributed.
    std::env::set_var("CARREFOUR_ATTRIB", "1");
    let jobs = runner::default_jobs();

    if smoke {
        run_smoke(&out_path, share, jobs);
    } else {
        run_full(&out_path, share, jobs);
    }
}

/// Parses `--flag <value>` / `--flag=<value>`.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

/// The family's cell list: baseline probe first, then every candidate.
/// With `share` off the family tag is withheld, so `run_grouped` runs
/// every cell as a from-scratch singleton — same results, no reuse.
fn family_specs(family: &Family, cands: &[Candidate], share: bool) -> Vec<CellSpec> {
    let mut specs = Vec::with_capacity(cands.len() + 1);
    let mut probe = CellSpec::new(
        family.machine.clone(),
        family.bench,
        PolicyKind::CarrefourLp,
    );
    if share {
        probe.family = Some("sweep".into());
    }
    specs.push(probe.clone());
    for c in cands {
        let mut s = probe.clone();
        s.lp_params = Some(c.params);
        s.label = Some(format!("Carrefour-LP[{}]", c.label));
        specs.push(s);
    }
    specs
}

/// Runs one wave — every family × (probe + candidates) — through the
/// fork tree, in parallel across families. Returns per-family cells
/// (probe first, candidate order preserved) and merged stats.
fn run_wave(
    families: &[Family],
    cands: &[Candidate],
    share: bool,
    traced: bool,
    jobs: usize,
) -> (Vec<Vec<forktree::FamilyCell>>, FamilyStats) {
    let ran = runner::par_map(jobs, families.len(), |i| {
        let specs = family_specs(&families[i], cands, share);
        let (cells, stats) = forktree::run_grouped(&specs, traced);
        (cells, merge(&stats))
    });
    let mut total = FamilyStats::default();
    let mut out = Vec::with_capacity(ran.len());
    for (cells, stats) in ran {
        total.absorb(&stats);
        out.push(cells);
    }
    (out, total)
}

/// Folds `run_grouped`'s per-group counters into one.
fn merge(stats: &[(String, FamilyStats)]) -> FamilyStats {
    let mut total = FamilyStats::default();
    for (_, s) in stats {
        total.absorb(s);
    }
    total
}

/// Mean speedup (arithmetic, over families) and worst regression of one
/// candidate against the per-family baseline runtimes.
fn score(base: &[u64], cand: &[u64]) -> Score {
    let mut sum = 0.0;
    let mut worst = 0.0f64;
    for (&b, &c) in base.iter().zip(cand) {
        sum += b as f64 / c as f64;
        worst = worst.max((c as f64 / b as f64 - 1.0) * 100.0);
    }
    Score {
        mean_speedup: sum / base.len() as f64,
        worst_regression_pct: worst,
    }
}

/// `true` when `a` Pareto-dominates `b` (no worse on both axes, strictly
/// better on one).
fn dominates(a: &Score, b: &Score) -> bool {
    a.mean_speedup >= b.mean_speedup
        && a.worst_regression_pct <= b.worst_regression_pct
        && (a.mean_speedup > b.mean_speedup || a.worst_regression_pct < b.worst_regression_pct)
}

/// The winner: the frontier point with the highest mean speedup among
/// those regressing no family by more than 1 % — the "serve heavy
/// traffic" criterion (never make any scenario meaningfully worse). If
/// every frontier point regresses more, the least-regressing one wins.
fn pick_winner<'a>(frontier: &[&'a (Candidate, Score)]) -> &'a (Candidate, Score) {
    frontier
        .iter()
        .filter(|(_, s)| s.worst_regression_pct <= 1.0)
        .max_by(|(_, a), (_, b)| a.mean_speedup.total_cmp(&b.mean_speedup))
        .or_else(|| {
            frontier
                .iter()
                .min_by(|(_, a), (_, b)| a.worst_regression_pct.total_cmp(&b.worst_regression_pct))
        })
        .expect("frontier is non-empty")
}

// ----------------------------------------------------------------- grid

/// A labeled threshold perturbation of the paper's defaults.
fn cand(id: usize, label: String, f: impl FnOnce(&mut LpParams)) -> Candidate {
    let mut params = LpParams::default();
    f(&mut params);
    Candidate { id, label, params }
}

/// The full sweep's seed grid: 3×3×3 over the split gain (Algorithm 1
/// line 12), the hot-page cutoff (line 19), and Carrefour's imbalance
/// trigger. Includes the paper's own point (5.0, 0.06, 35).
fn full_grid() -> Vec<Candidate> {
    let mut out = Vec::new();
    for &split in &[2.5, 5.0, 7.5] {
        for &hot in &[0.03, 0.06, 0.09] {
            for &imb in &[25.0, 35.0, 45.0] {
                let id = out.len();
                out.push(cand(
                    id,
                    format!("split={split} hot={hot} imb={imb}"),
                    |p| {
                        p.thresholds.split_gain_pp = split;
                        p.thresholds.hot_page_fraction = hot;
                        p.carrefour.imbalance_enable_above = imb;
                    },
                ));
            }
        }
    }
    out
}

/// The smoke grid: 3×3 hugging the defaults so most candidates share
/// most (often all) of the probe's prefix — the reuse the CI gate
/// asserts on.
fn smoke_grid() -> Vec<Candidate> {
    let mut out = Vec::new();
    for &split in &[4.0, 5.0, 6.0] {
        for &hot in &[0.05, 0.06, 0.07] {
            let id = out.len();
            out.push(cand(id, format!("split={split} hot={hot}"), |p| {
                p.thresholds.split_gain_pp = split;
                p.thresholds.hot_page_fraction = hot;
            }));
        }
    }
    out
}

// ----------------------------------------------------------- refinement

/// Maps the cause group that grew under the current winner to the next
/// threshold axis to perturb, with the values to try. The mapping follows
/// each knob's mechanism: more page-fault cycles point at the split gate
/// (splitting causes faults), walk cycles at the walk-miss re-enable
/// threshold, queueing at the imbalance trigger, memory-side cycles at
/// the hot-page cutoff, and policy overhead at the migration rate limit.
fn axis_for(group: &str) -> (&'static str, Vec<f64>) {
    match group {
        "page faults" => ("split_gain_pp", vec![1.5, 3.5, 10.0]),
        "TLB lookup + local page walk" | "remote page walks" => {
            ("walk_miss_enable", vec![0.025, 0.075, 0.1])
        }
        "controller queueing" => ("imbalance_enable_above", vec![15.0, 20.0, 30.0]),
        "DRAM service" | "interconnect hops" => ("hot_page_fraction", vec![0.02, 0.045, 0.12]),
        "policy + daemon overhead" => ("max_migrations_per_epoch", vec![1024.0, 2048.0, 8192.0]),
        // compute / cache hits: no threshold steers these; fall back to
        // the fault-time re-enable gate, the one axis the grid never
        // touched.
        _ => ("fault_time_enable", vec![0.025, 0.075, 0.1]),
    }
}

/// Applies one refinement axis value to a copy of `base`.
fn apply_axis(base: &LpParams, axis: &str, v: f64) -> LpParams {
    let mut p = *base;
    match axis {
        "split_gain_pp" => p.thresholds.split_gain_pp = v,
        "walk_miss_enable" => p.thresholds.walk_miss_enable = v,
        "imbalance_enable_above" => p.carrefour.imbalance_enable_above = v,
        "hot_page_fraction" => p.thresholds.hot_page_fraction = v,
        "max_migrations_per_epoch" => p.carrefour.max_migrations_per_epoch = v as usize,
        "fault_time_enable" => p.thresholds.fault_time_enable = v,
        _ => unreachable!("unknown axis {axis}"),
    }
    p
}

/// One refinement round's record for the JSON report.
struct Refinement {
    round: usize,
    diagnosed_family: String,
    grew: &'static str,
    axis: &'static str,
}

/// Diagnoses the winner's worst family: which cause group grew the most
/// vs. the baseline there. Falls back to the group with the largest
/// (least negative) delta when nothing grew.
fn diagnose<'a>(base: &'a Scored, cand: &'a Scored) -> &'static str {
    let (Some(b), Some(c)) = (&base.attribution, &cand.attribution) else {
        return "compute"; // attribution off: take the fallback axis
    };
    let groups = attrib::cause_groups(&b.total, &c.total);
    groups
        .iter()
        .max_by_key(|g| g.delta())
        .map(|g| g.name)
        .unwrap_or("compute")
}

// ----------------------------------------------------------------- full

fn run_full(out_path: &str, share: bool, jobs: usize) {
    let families: Vec<Family> = carrefour_bench::machines()
        .into_iter()
        .flat_map(|m| {
            Benchmark::numa_affected().iter().map(move |&b| Family {
                machine: m.clone(),
                bench: b,
            })
        })
        .collect();
    let mut candidates = full_grid();
    logx::info(&format!(
        "[sweep] full: {} families x (1 probe + {} grid candidates), {} jobs, share={}",
        families.len(),
        candidates.len(),
        jobs,
        share
    ));

    // runtimes[cand_id][family_idx]; the probe's own runtimes separately.
    let mut base: Vec<Scored> = Vec::new();
    let mut scored: HashMap<usize, Vec<Scored>> = HashMap::new();
    let mut stats = FamilyStats::default();
    let started = std::time::Instant::now();

    let mut wave = candidates.clone();
    let mut refinements: Vec<Refinement> = Vec::new();
    let mut round = 0usize;
    loop {
        let (cells, wave_stats) = run_wave(&families, &wave, share, false, jobs);
        stats.absorb(&wave_stats);
        for (fi, fam_cells) in cells.into_iter().enumerate() {
            let mut it = fam_cells.into_iter();
            let probe = it.next().expect("probe cell");
            if base.len() == fi {
                base.push(keep(&probe.result));
            }
            for (c, cell) in wave.iter().zip(it) {
                scored.entry(c.id).or_default().push(keep(&cell.result));
            }
        }
        logx::info(&format!(
            "[sweep] round {round}: {} candidates scored, {} epochs simulated / {} reused so far",
            scored.len(),
            stats.epochs_simulated,
            stats.epochs_reused
        ));

        round += 1;
        if round > 2 {
            break; // grid + two refinement rounds
        }

        // Refine: diagnose the current winner's worst family and extend
        // the candidate set along the axis its grown cause bucket names.
        let scores = score_all(&candidates, &base, &scored);
        let frontier = frontier_of(&scores);
        let (best, _) = pick_winner(&frontier);
        let (worst_fi, _) = worst_family(&base, &scored[&best.id]);
        let grew = diagnose(&base[worst_fi], &scored[&best.id][worst_fi]);
        let (axis, values) = axis_for(grew);
        let fam = &families[worst_fi];
        logx::info(&format!(
            "[sweep] round {round}: winner `{}`; {} on {}/{} grew -> perturbing {axis}",
            best.label,
            grew,
            fam.bench.name(),
            fam.machine.name()
        ));
        refinements.push(Refinement {
            round,
            diagnosed_family: format!("{}/{}", fam.bench.name(), fam.machine.name()),
            grew,
            axis,
        });
        let already: Vec<String> = candidates
            .iter()
            .map(|c| format!("{:?}", c.params))
            .collect();
        let base_params = best.params;
        let base_label = best.label.clone();
        wave = Vec::new();
        for v in values {
            let params = apply_axis(&base_params, axis, v);
            if already.contains(&format!("{params:?}")) {
                continue;
            }
            let c = Candidate {
                id: candidates.len() + wave.len(),
                label: format!("{base_label} {axis}={v}"),
                params,
            };
            wave.push(c);
        }
        if wave.is_empty() {
            break; // every perturbation already tried
        }
        candidates.extend(wave.iter().cloned());
    }

    let scores = score_all(&candidates, &base, &scored);
    let frontier = frontier_of(&scores);
    let (winner, winner_score) = pick_winner(&frontier);
    let total_cells = stats.cells;
    let wall = started.elapsed().as_secs_f64();
    logx::info(&format!(
        "[sweep] {} candidates over {} families ({} cells) in {:.1}s",
        candidates.len(),
        families.len(),
        total_cells,
        wall
    ));
    print_share_report(&stats);
    println!("== Threshold sweep: Pareto frontier (mean speedup vs worst regression) ==");
    for (c, s) in &frontier {
        println!(
            "{:<44} {:>7.3}x mean   {:>6.2}% worst regression",
            c.label, s.mean_speedup, s.worst_regression_pct
        );
    }
    println!(
        "winner: {} ({:.3}x mean, {:.2}% worst) -> LpParams::tuned()",
        winner.label, winner_score.mean_speedup, winner_score.worst_regression_pct
    );
    println!("{:#?}", winner.params);

    write_json(
        out_path,
        "full",
        share,
        families.len(),
        &stats,
        &scores,
        &frontier,
        winner,
        &refinements,
        None,
    );
}

/// Strips a result down to what scoring and diagnosis need.
fn keep(r: &SimResult) -> Scored {
    Scored {
        runtime_cycles: r.runtime_cycles,
        attribution: r.attribution.clone(),
    }
}

/// Scores every candidate that has a full score vector.
fn score_all<'a>(
    candidates: &'a [Candidate],
    base: &[Scored],
    scored: &HashMap<usize, Vec<Scored>>,
) -> Vec<(Candidate, Score)> {
    let base_rt: Vec<u64> = base.iter().map(|s| s.runtime_cycles).collect();
    candidates
        .iter()
        .filter_map(|c| {
            let rows = scored.get(&c.id)?;
            if rows.len() != base_rt.len() {
                return None;
            }
            let rt: Vec<u64> = rows.iter().map(|s| s.runtime_cycles).collect();
            Some((c.clone(), score(&base_rt, &rt)))
        })
        .collect()
}

/// The non-dominated subset, in candidate order.
fn frontier_of(scores: &[(Candidate, Score)]) -> Vec<&(Candidate, Score)> {
    scores
        .iter()
        .filter(|(_, s)| !scores.iter().any(|(_, o)| dominates(o, s)))
        .collect()
}

/// The family where the candidate regresses (or gains least) vs. base.
fn worst_family(base: &[Scored], cand: &[Scored]) -> (usize, f64) {
    base.iter()
        .zip(cand)
        .map(|(b, c)| c.runtime_cycles as f64 / b.runtime_cycles as f64)
        .enumerate()
        .max_by(|(_, a), (_, b)| a.total_cmp(b))
        .expect("at least one family")
}

fn print_share_report(stats: &FamilyStats) {
    let total = stats.epochs_simulated + stats.epochs_reused;
    let factor = total as f64 / stats.epochs_simulated.max(1) as f64;
    println!(
        "prefix sharing: {} epochs simulated, {} reused ({:.2}x reduction; \
         {} full matches, {} forks, {} scratch)",
        stats.epochs_simulated,
        stats.epochs_reused,
        factor,
        stats.full_matches,
        stats.forks,
        stats.scratch
    );
}

// ---------------------------------------------------------------- smoke

/// The CI gate: a tiny grid on the test machine, run twice — shared and
/// from scratch — asserting bit-identity and a ≥2× cut in simulated
/// epochs. Honors `--no-share` by skipping the shared leg's assertions
/// (the JSON then records the scratch counters).
fn run_smoke(out_path: &str, share: bool, jobs: usize) {
    std::env::set_var("CARREFOUR_QUIET", "1");
    let families = vec![
        Family {
            machine: MachineSpec::test_machine(),
            bench: Benchmark::EpC,
        },
        Family {
            machine: MachineSpec::test_machine(),
            bench: Benchmark::UaB,
        },
    ];
    let candidates = smoke_grid();
    logx::info(&format!(
        "[sweep] smoke: {} families x (1 probe + {} candidates), share={}",
        families.len(),
        candidates.len(),
        share
    ));
    let (shared_cells, stats) = run_wave(&families, &candidates, share, true, jobs);
    let (scratch_cells, scratch_stats) = run_wave(&families, &candidates, false, true, jobs);

    // Bit-identity: every shared cell equals its from-scratch twin,
    // result and trace digest both.
    for (fam_s, fam_n) in shared_cells.iter().zip(&scratch_cells) {
        for (s, n) in fam_s.iter().zip(fam_n) {
            assert_eq!(
                s.result, n.result,
                "sweep smoke: shared result diverged from scratch"
            );
            let (sd, nd) = (
                s.digest.as_ref().expect("traced"),
                n.digest.as_ref().expect("traced"),
            );
            if let Some(diff) = nd.diff(sd) {
                panic!("sweep smoke: shared trace digest diverged: {diff}");
            }
        }
    }
    println!(
        "smoke: all {} cells bit-identical shared vs scratch",
        stats.cells
    );
    print_share_report(&stats);

    let total = stats.epochs_simulated + stats.epochs_reused;
    let factor = total as f64 / stats.epochs_simulated.max(1) as f64;
    if share {
        assert!(
            stats.epochs_reused > 0,
            "sweep smoke: prefix sharing reused no epochs"
        );
        assert!(
            factor >= 2.0,
            "sweep smoke: expected >=2x fewer simulated epochs, got {factor:.2}x \
             ({} simulated vs {} total)",
            stats.epochs_simulated,
            total
        );
        assert_eq!(
            scratch_stats.epochs_simulated, total,
            "scratch leg must simulate every epoch"
        );
    }

    // Score the smoke grid too, so the JSON is structurally identical in
    // both modes (CI parses one schema).
    let mut base = Vec::new();
    let mut scored: HashMap<usize, Vec<Scored>> = HashMap::new();
    for fam_cells in &shared_cells {
        base.push(keep(&fam_cells[0].result));
        for (c, cell) in candidates.iter().zip(&fam_cells[1..]) {
            scored.entry(c.id).or_default().push(keep(&cell.result));
        }
    }
    let scores = score_all(&candidates, &base, &scored);
    let frontier = frontier_of(&scores);
    let (winner, _) = pick_winner(&frontier);
    write_json(
        out_path,
        "smoke",
        share,
        families.len(),
        &stats,
        &scores,
        &frontier,
        winner,
        &[],
        Some(&scratch_stats),
    );
}

// ----------------------------------------------------------------- json

fn params_json(p: &LpParams, indent: &str) -> String {
    format!(
        "{{\n{indent}  \"walk_miss_enable\": {}, \"fault_time_enable\": {}, \"carrefour_gain_pp\": {}, \"split_gain_pp\": {}, \"hot_page_fraction\": {},\n\
         {indent}  \"min_samples_per_page\": {}, \"lar_enable_below\": {}, \"imbalance_enable_above\": {}, \"intensity_min_dram_per_op\": {}, \"max_migrations_per_epoch\": {}, \"enable_replication\": {},\n\
         {indent}  \"max_retries\": {}, \"backoff_base_epochs\": {}, \"breaker_failure_rate\": {}, \"breaker_min_actions\": {}, \"breaker_cooloff_epochs\": {}\n{indent}}}",
        p.thresholds.walk_miss_enable,
        p.thresholds.fault_time_enable,
        p.thresholds.carrefour_gain_pp,
        p.thresholds.split_gain_pp,
        p.thresholds.hot_page_fraction,
        p.carrefour.min_samples_per_page,
        p.carrefour.lar_enable_below,
        p.carrefour.imbalance_enable_above,
        p.carrefour.intensity_min_dram_per_op,
        p.carrefour.max_migrations_per_epoch,
        p.carrefour.enable_replication,
        p.robustness.max_retries,
        p.robustness.backoff_base_epochs,
        p.robustness.breaker_failure_rate,
        p.robustness.breaker_min_actions,
        p.robustness.breaker_cooloff_epochs,
    )
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    mode: &str,
    share: bool,
    families: usize,
    stats: &FamilyStats,
    scores: &[(Candidate, Score)],
    frontier: &[&(Candidate, Score)],
    winner: &Candidate,
    refinements: &[Refinement],
    scratch: Option<&FamilyStats>,
) {
    let esc = carrefour_bench::json::esc;
    let total = stats.epochs_simulated + stats.epochs_reused;
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"sweep-v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"share\": {share},\n"));
    out.push_str(&format!("  \"families\": {families},\n"));
    out.push_str(&format!("  \"cells\": {},\n", stats.cells));
    out.push_str(&format!(
        "  \"epochs_simulated\": {},\n",
        stats.epochs_simulated
    ));
    out.push_str(&format!("  \"epochs_reused\": {},\n", stats.epochs_reused));
    out.push_str(&format!("  \"epochs_total\": {total},\n"));
    out.push_str(&format!(
        "  \"share_factor\": {:.3},\n",
        total as f64 / stats.epochs_simulated.max(1) as f64
    ));
    out.push_str(&format!("  \"full_matches\": {},\n", stats.full_matches));
    out.push_str(&format!("  \"forks\": {},\n", stats.forks));
    out.push_str(&format!("  \"scratch\": {},\n", stats.scratch));
    // Reuse-latency spans (bench-runner-v5 era): where the fork tree's
    // host seconds went — probing, replay verification, forked tails,
    // result cloning, and scratch fallbacks (DESIGN.md §16).
    out.push_str(&format!("  \"probe_secs\": {:.3},\n", stats.probe_secs));
    out.push_str(&format!("  \"replay_secs\": {:.3},\n", stats.replay_secs));
    out.push_str(&format!("  \"resume_secs\": {:.3},\n", stats.resume_secs));
    out.push_str(&format!("  \"clone_secs\": {:.3},\n", stats.clone_secs));
    out.push_str(&format!("  \"scratch_secs\": {:.3},\n", stats.scratch_secs));
    if let Some(s) = scratch {
        out.push_str(&format!(
            "  \"noshare_epochs_simulated\": {},\n",
            s.epochs_simulated
        ));
    }
    out.push_str("  \"refinements\": [\n");
    for (i, r) in refinements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"round\": {}, \"family\": \"{}\", \"grew\": \"{}\", \"axis\": \"{}\"}}{}\n",
            r.round,
            esc(&r.diagnosed_family),
            esc(r.grew),
            esc(r.axis),
            if i + 1 < refinements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let on_frontier = |id: usize| frontier.iter().any(|(c, _)| c.id == id);
    out.push_str("  \"candidates\": [\n");
    for (i, (c, s)) in scores.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": {}, \"label\": \"{}\", \"mean_speedup\": {:.4}, \"worst_regression_pct\": {:.3}, \"frontier\": {}, \"params\": {}}}{}\n",
            c.id,
            esc(&c.label),
            s.mean_speedup,
            s.worst_regression_pct,
            on_frontier(c.id),
            params_json(&c.params, "    "),
            if i + 1 < scores.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"winner\": {{\"id\": {}, \"label\": \"{}\", \"params\": {}}}\n",
        winner.id,
        esc(&winner.label),
        params_json(&winner.params, "  ")
    ));
    out.push_str("}\n");
    match std::fs::create_dir_all(
        std::path::Path::new(path)
            .parent()
            .unwrap_or(std::path::Path::new(".")),
    )
    .and_then(|()| std::fs::write(path, &out))
    {
        Ok(()) => logx::info(&format!("[sweep] wrote {path}")),
        Err(e) => logx::warn(&format!("could not write {path}: {e}")),
    }
}
