//! Calibration probe: detailed Table 1-style metrics for chosen benchmarks.
//!
//! Usage: `probe [bench-name ...]` (default: the paper's Table 1 set).

use carrefour_bench::{run_cell, PolicyKind};
use numa_topology::MachineSpec;
use workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<Benchmark> = if args.is_empty() {
        vec![
            Benchmark::CgD,
            Benchmark::UaC,
            Benchmark::Wc,
            Benchmark::Ssca,
            Benchmark::SpecJbb,
        ]
    } else {
        Benchmark::all()
            .iter()
            .copied()
            .filter(|b| args.iter().any(|a| a.eq_ignore_ascii_case(b.name())))
            .collect()
    };

    for machine in [MachineSpec::machine_a(), MachineSpec::machine_b()] {
        println!("--- {} ---", machine.name());
        println!(
            "{:<16} {:<14} {:>10} {:>6} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8}",
            "bench",
            "policy",
            "cycles",
            "lar",
            "imbal",
            "walk%",
            "fault%",
            "tlbmiss",
            "mig",
            "splits"
        );
        for &b in &selected {
            for kind in [PolicyKind::Linux4k, PolicyKind::LinuxThp] {
                let r = run_cell(&machine, b, kind);
                let reqs: Vec<u64> = r.epochs.iter().fold(Vec::new(), |mut acc, e| {
                    if acc.is_empty() {
                        acc = vec![0; e.counters.controller_requests.len()];
                    }
                    for (a, b) in acc.iter_mut().zip(&e.counters.controller_requests) {
                        *a += b;
                    }
                    acc
                });
                let dram: u64 = r
                    .epochs
                    .iter()
                    .map(|e| e.counters.dram_local + e.counters.dram_remote)
                    .sum();
                println!(
                    "    controllers: {reqs:?} dram/op {:.3}",
                    dram as f64 / r.lifetime.total_ops as f64
                );
                println!(
                    "{:<16} {:<14} {:>10} {:>6.2} {:>7.1} {:>7.1} {:>7.1} {:>7.3} {:>8} {:>8}",
                    b.name(),
                    kind.label(),
                    r.runtime_cycles,
                    r.lifetime.lar,
                    r.lifetime.imbalance,
                    r.lifetime.walk_miss_fraction * 100.0,
                    r.lifetime.max_fault_fraction * 100.0,
                    r.lifetime.tlb_miss_ratio,
                    r.lifetime.vmem.migrations_4k + r.lifetime.vmem.migrations_2m,
                    r.lifetime.vmem.splits,
                );
            }
        }
        println!();
    }
}
