//! Figure 4: component breakdown (Carrefour-2M / Conservative / Reactive /
//! Carrefour-LP) over Linux, NUMA-affected benchmarks.

fn main() {
    carrefour_bench::experiments::run_standalone("fig4");
}
