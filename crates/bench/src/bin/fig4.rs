//! Figure 4: component breakdown (Carrefour-2M / Conservative / Reactive /
//! Carrefour-LP) over Linux, NUMA-affected benchmarks.

use carrefour_bench::{improvement, machines, run_matrix, save_json, PolicyKind};
use workloads::Benchmark;

fn main() {
    let policies = [
        PolicyKind::Linux4k,
        PolicyKind::Carrefour2m,
        PolicyKind::ConservativeOnly,
        PolicyKind::ReactiveOnly,
        PolicyKind::CarrefourLp,
    ];
    let benches = Benchmark::numa_affected();
    for machine in machines() {
        println!(
            "== Figure 4 ({}) : improvement over Linux ==",
            machine.name()
        );
        println!(
            "{:<16} {:>13} {:>13} {:>9} {:>13}",
            "bench", "Carrefour-2M", "Conservative", "Reactive", "Carrefour-LP"
        );
        let cells = run_matrix(&machine, benches, &policies);
        for &b in benches {
            let c2m = improvement(&cells, b, PolicyKind::Carrefour2m, PolicyKind::Linux4k);
            let cons = improvement(&cells, b, PolicyKind::ConservativeOnly, PolicyKind::Linux4k);
            let reac = improvement(&cells, b, PolicyKind::ReactiveOnly, PolicyKind::Linux4k);
            let lp = improvement(&cells, b, PolicyKind::CarrefourLp, PolicyKind::Linux4k);
            println!(
                "{:<16} {:>13.1} {:>13.1} {:>9.1} {:>13.1}",
                b.name(),
                c2m,
                cons,
                reac,
                lp
            );
        }
        save_json(&format!("fig4_{}", machine.name()), &cells);
        println!();
    }
}
