//! Table 2: PAMUP / NHP / PSP / imbalance / LAR for SPECjbb, CG.D and UA.B
//! under Linux, THP and Carrefour-2M, on machine A.

use carrefour_bench::{run_cell, save_json, Cell, PolicyKind};
use numa_topology::MachineSpec;
use workloads::Benchmark;

fn main() {
    let machine = MachineSpec::machine_a();
    let benches = [Benchmark::SpecJbb, Benchmark::CgD, Benchmark::UaB];
    let policies = [
        PolicyKind::Linux4k,
        PolicyKind::LinuxThp,
        PolicyKind::Carrefour2m,
    ];

    println!("== Table 2 (machine A): page metrics ==");
    println!(
        "{:<10} {:<14} {:>7} {:>5} {:>7} {:>10} {:>7}",
        "bench", "policy", "PAMUP%", "NHP", "PSP%", "imbalance%", "LAR%"
    );
    let mut cells = Vec::new();
    for bench in benches {
        for kind in policies {
            let r = run_cell(&machine, bench, kind);
            println!(
                "{:<10} {:<14} {:>7.1} {:>5} {:>7.1} {:>10.1} {:>7.0}",
                bench.name(),
                kind.label(),
                r.pages.pamup,
                r.pages.nhp,
                r.pages.psp,
                r.lifetime.imbalance,
                r.lifetime.lar * 100.0,
            );
            cells.push(Cell {
                machine: machine.name().to_string(),
                benchmark: bench.name().to_string(),
                policy: kind.label().to_string(),
                result: r,
            });
        }
        println!();
    }
    save_json("table2", &cells);
}
