//! Table 2: PAMUP / NHP / PSP / imbalance / LAR for SPECjbb, CG.D and UA.B
//! under Linux, THP and Carrefour-2M, on machine A.

fn main() {
    carrefour_bench::experiments::run_standalone("table2");
}
