//! Figure 3: Carrefour-LP vs THP over Linux, NUMA-affected benchmarks.

fn main() {
    carrefour_bench::experiments::run_standalone("fig3");
}
