//! Chaos sweep: deterministic fault injection × policies.
//!
//! Sweeps the uniform *operational* fault rate (THP-allocation failure,
//! `-EBUSY` page pins, IBS sample loss) across the policy matrix and
//! reports each policy's slowdown relative to its own fault-free run.
//! Three properties are checked and printed as PASS/WARN lines:
//!
//! * **graceful degradation** — Carrefour-LP's slowdown grows with the
//!   fault rate but stays bounded, and it never falls behind default
//!   Linux-4K by more than the paper's overhead envelope (Section 4.2
//!   reports at most ~4 % policy overhead; the check allows 5 %);
//! * **monotonicity** — more faults never help;
//! * **the retry machinery is the reason** — the retry-free ablation
//!   (`carrefour-lp-noretry`) loses strictly more of its placement
//!   benefit at high fault rates than full Carrefour-LP.
//!
//! A separate mini-sweep then isolates sample *corruption* (node
//! misattribution, [`FaultRates::corruption`]): unlike operational
//! faults — which are visible, retryable, and degrade gracefully —
//! corrupted samples silently steer irreversible split+scatter
//! decisions, and even sub-percent rates cost real performance. The
//! section is reported as a finding, not a PASS/WARN gate.
//!
//! [`FaultRates::corruption`]: engine::FaultRates::corruption

use carrefour::CarrefourLp;
use carrefour_bench::{save_json, Cell};
use engine::{FaultConfig, NullPolicy, NumaPolicy, SimConfig, SimResult, Simulation};
use numa_topology::MachineSpec;
use vmem::ThpControls;
use workloads::Benchmark;

/// Injected fault probabilities (0.0 first: each policy's own baseline).
const RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

/// Sample-corruption (node misattribution) probabilities for the
/// sensitivity mini-sweep. Deliberately tiny: the finding is that even
/// these hurt.
const CORRUPTION_RATES: [f64; 3] = [0.005, 0.02, 0.05];

/// Paper overhead envelope: Carrefour-LP may cost this fraction over
/// default Linux before the run is flagged.
const ENVELOPE: f64 = 0.05;

/// Fault-plan RNG seed, fixed so the sweep is reproducible.
const FAULT_SEED: u64 = 20140619;

const POLICIES: [&str; 4] = [
    "linux-4k",
    "linux-thp",
    "carrefour-lp",
    "carrefour-lp-noretry",
];

fn make_policy(name: &str) -> (Box<dyn NumaPolicy>, ThpControls) {
    match name {
        "linux-4k" => (Box::new(NullPolicy), ThpControls::small_only()),
        "linux-thp" => (Box::new(NullPolicy), ThpControls::thp()),
        "carrefour-lp" => (Box::new(CarrefourLp::new()), ThpControls::thp()),
        "carrefour-lp-noretry" => (Box::new(CarrefourLp::without_retries()), ThpControls::thp()),
        other => panic!("unknown policy {other}"),
    }
}

fn run_one(
    machine: &MachineSpec,
    bench: Benchmark,
    policy: &str,
    faults: FaultConfig,
) -> SimResult {
    let (mut p, thp) = make_policy(policy);
    let mut config = SimConfig::for_machine(machine, thp);
    config.faults = faults;
    let spec = bench.spec(machine);
    let mut r = Simulation::run(machine, &spec, &config, p.as_mut());
    r.policy = policy.to_string();
    r
}

/// Runtime of (policy, rate) from the result grid.
fn runtime(results: &[(String, f64, SimResult)], policy: &str, rate: f64) -> u64 {
    results
        .iter()
        .find(|(p, r, _)| p == policy && *r == rate)
        .map(|(_, _, res)| res.runtime_cycles)
        .unwrap_or_else(|| panic!("missing run {policy}@{rate}"))
}

fn main() {
    let machine = MachineSpec::machine_a();
    let benches = [Benchmark::UaB, Benchmark::CgD];
    let mut all_cells: Vec<Cell> = Vec::new();
    let mut warnings = 0u32;

    for &bench in &benches {
        println!(
            "== Chaos sweep ({}, {}) : slowdown vs own fault-free run ==",
            machine.name(),
            bench.name()
        );

        // Fan the grid out across host cores; each cell is deterministic.
        let mut jobs: Vec<(String, f64)> = Vec::new();
        for &p in &POLICIES {
            for &r in &RATES {
                jobs.push((p.to_string(), r));
            }
        }
        let results: Vec<(String, f64, SimResult)> = std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|(p, r)| {
                    let (p, r) = (p.clone(), *r);
                    let machine = &machine;
                    s.spawn(move || {
                        let res = run_one(machine, bench, &p, FaultConfig::uniform(FAULT_SEED, r));
                        (p, r, res)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sim panicked"))
                .collect()
        });

        print!("{:<22}", "policy");
        for &r in &RATES {
            print!(" {:>9}", format!("rate {r}"));
        }
        println!();
        for &p in &POLICIES {
            let base = runtime(&results, p, 0.0) as f64;
            print!("{p:<22}");
            for &r in &RATES {
                let slow = runtime(&results, p, r) as f64 / base;
                print!(" {slow:>9.3}");
            }
            println!();
        }

        // Robustness accounting of the highest-rate Carrefour-LP run.
        let top = RATES[RATES.len() - 1];
        let worst = &results
            .iter()
            .find(|(p, r, _)| p == "carrefour-lp" && *r == top)
            .expect("worst-case run")
            .2;
        let rb = &worst.robustness;
        println!(
            "carrefour-lp @ rate {top}: {} failed migrations, {} failed splits, \
             {} fallback allocs, {} busy rejections, {} dropped samples, \
             {} misattributed, {} retries",
            rb.failed_migrations,
            rb.failed_splits,
            rb.fallback_allocs,
            rb.busy_rejections,
            rb.dropped_samples,
            rb.misattributed_samples,
            rb.retries,
        );

        // Cross-policy view: everything relative to fault-free Linux-4K
        // (which is fault-immune by construction — it allocates no huge
        // pages, issues no actions, and reads no samples).
        let linux4k_base = runtime(&results, "linux-4k", 0.0) as f64;
        print!("{:<22}", "vs linux-4k");
        for &r in &RATES {
            let lp = runtime(&results, "carrefour-lp", r) as f64;
            print!(" {:>9.3}", lp / linux4k_base);
        }
        println!();

        // Property 1: never harmful — at every rate, Carrefour-LP stays
        // within the overhead envelope of the *worse* of the two
        // do-nothing baselines at the same rate. Degrading to baseline
        // performance under heavy faults is graceful; falling beyond both
        // static configurations would mean the policy itself is the
        // problem (the paper's Section 4.2 overhead concern).
        for &r in &RATES {
            let lp = runtime(&results, "carrefour-lp", r) as f64;
            let floor =
                runtime(&results, "linux-4k", r).max(runtime(&results, "linux-thp", r)) as f64;
            let ratio = lp / floor;
            if ratio <= 1.0 + ENVELOPE {
                println!("PASS bounded @ rate {r}: lp/worst-baseline = {ratio:.3}");
            } else {
                warnings += 1;
                println!("WARN bounded @ rate {r}: lp/worst-baseline = {ratio:.3}");
            }
        }

        // Property 2: monotonic-ish — Carrefour-LP's slowdown never drops
        // as the rate rises (beyond noise): more faults can only cost.
        let base = runtime(&results, "carrefour-lp", 0.0) as f64;
        let slowdowns: Vec<f64> = RATES
            .iter()
            .map(|&r| runtime(&results, "carrefour-lp", r) as f64 / base)
            .collect();
        let tolerance = 0.02;
        let monotonic = slowdowns.windows(2).all(|w| w[1] >= w[0] - tolerance);
        if monotonic {
            println!("PASS monotonic: slowdowns {slowdowns:?}");
        } else {
            warnings += 1;
            println!("WARN monotonic: slowdowns {slowdowns:?}");
        }

        // Property 3: the retry-free ablation loses more of the placement
        // benefit at the highest fault rate than full Carrefour-LP does
        // (within a small tolerance: on benchmarks whose lost actions were
        // marginal, retrying them is allowed to be cycle-neutral).
        let lp_top = runtime(&results, "carrefour-lp", top) as f64;
        let noretry_top = runtime(&results, "carrefour-lp-noretry", top) as f64;
        if noretry_top >= lp_top * 0.97 {
            println!(
                "PASS retries pay off @ rate {top}: noretry/lp = {:.3}",
                noretry_top / lp_top
            );
        } else {
            warnings += 1;
            println!(
                "WARN retries pay off @ rate {top}: noretry/lp = {:.3}",
                noretry_top / lp_top
            );
        }

        // Sample-corruption sensitivity: misattribution only, everything
        // else fault-free. No PASS/WARN gate — the point *is* the
        // fragility: a corrupted sample on a genuinely private hot page
        // makes it look shared, and the resulting split+scatter is
        // irreversible, so even sub-percent corruption costs performance
        // that no amount of retrying wins back.
        let lp_base = runtime(&results, "carrefour-lp", 0.0) as f64;
        let corrupted: Vec<(f64, SimResult)> = std::thread::scope(|s| {
            let handles: Vec<_> = CORRUPTION_RATES
                .iter()
                .map(|&r| {
                    let machine = &machine;
                    s.spawn(move || {
                        let faults = FaultConfig::corruption(FAULT_SEED, r);
                        (r, run_one(machine, bench, "carrefour-lp", faults))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sim panicked"))
                .collect()
        });
        for (r, res) in &corrupted {
            println!(
                "FINDING corruption @ rate {r}: slowdown {:.3} \
                 ({} misattributed samples)",
                res.runtime_cycles as f64 / lp_base,
                res.robustness.misattributed_samples,
            );
        }
        for (r, res) in corrupted {
            all_cells.push(Cell {
                machine: machine.name().to_string(),
                benchmark: bench.name().to_string(),
                policy: format!("carrefour-lp@corruption-{r}"),
                result: res,
            });
        }

        for (p, r, res) in results {
            all_cells.push(Cell {
                machine: machine.name().to_string(),
                benchmark: bench.name().to_string(),
                policy: format!("{p}@{r}"),
                result: res,
            });
        }
        println!();
    }

    // The JSON rows carry the full RobustnessStats per run.
    save_json("chaos_machine-a", &all_cells);
    println!(
        "{} runs written to results/chaos_machine-a.json ({} warnings)",
        all_cells.len(),
        warnings
    );
}
