//! Chaos sweep: deterministic fault injection × policies.
//!
//! Sweeps the uniform *operational* fault rate (THP-allocation failure,
//! `-EBUSY` page pins, IBS sample loss) across the policy matrix and
//! reports each policy's slowdown relative to its own fault-free run.
//! Three properties are checked and printed as PASS/WARN lines:
//!
//! * **graceful degradation** — Carrefour-LP's slowdown grows with the
//!   fault rate but stays bounded, and it never falls behind default
//!   Linux-4K by more than the paper's overhead envelope (Section 4.2
//!   reports at most ~4 % policy overhead; the check allows 5 %);
//! * **monotonicity** — more faults never help;
//! * **the retry machinery is the reason** — the retry-free ablation
//!   (`carrefour-lp-noretry`) loses strictly more of its placement
//!   benefit at high fault rates than full Carrefour-LP.
//!
//! A separate mini-sweep then isolates sample *corruption* (node
//! misattribution, [`FaultRates::corruption`]): unlike operational
//! faults — which are visible, retryable, and degrade gracefully —
//! corrupted samples silently steer irreversible split+scatter
//! decisions, and even sub-percent rates cost real performance. The
//! section is reported as a finding, not a PASS/WARN gate.
//!
//! All cells go through the shared [`runner`]: the whole grid is
//! submitted up front, fans out across `--jobs` workers with live
//! progress, and comes back in deterministic submission order.
//!
//! `chaos --checkpoint` runs a different sweep: for every injected fault
//! class it snapshots the simulation at a sample of epoch boundaries
//! (faults fire in essentially every epoch under these plans) and asserts
//! that resuming each `ckpt-v1` snapshot reproduces the uninterrupted
//! result exactly, printing one PASS/FAIL verdict row per fault class and
//! exiting nonzero on any divergence.
//!
//! [`FaultRates::corruption`]: engine::FaultRates::corruption

use carrefour_bench::runner::{self, par_map, CellSpec, Progress, Workload};
use carrefour_bench::{save_json, Cell, PolicyKind};
use engine::{FaultConfig, SimConfig, SimResult, Simulation};
use numa_topology::MachineSpec;
use workloads::Benchmark;

/// Injected fault probabilities (0.0 first: each policy's own baseline).
const RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

/// Sample-corruption (node misattribution) probabilities for the
/// sensitivity mini-sweep. Deliberately tiny: the finding is that even
/// these hurt.
const CORRUPTION_RATES: [f64; 3] = [0.005, 0.02, 0.05];

/// Paper overhead envelope: Carrefour-LP may cost this fraction over
/// default Linux before the run is flagged.
const ENVELOPE: f64 = 0.05;

/// Fault-plan RNG seed, fixed so the sweep is reproducible.
const FAULT_SEED: u64 = 20140619;

/// The sweep's policy matrix: short display name × policy kind.
const POLICIES: [(&str, PolicyKind); 4] = [
    ("linux-4k", PolicyKind::Linux4k),
    ("linux-thp", PolicyKind::LinuxThp),
    ("carrefour-lp", PolicyKind::CarrefourLp),
    ("carrefour-lp-noretry", PolicyKind::CarrefourLpNoRetry),
];

/// One grid cell: the policy's short name at an operational fault rate.
fn grid_spec(
    machine: &MachineSpec,
    bench: Benchmark,
    name: &str,
    kind: PolicyKind,
    rate: f64,
) -> CellSpec {
    CellSpec {
        machine: machine.clone(),
        workload: Workload::Bench(bench),
        kind,
        seed: None,
        faults: Some(FaultConfig::uniform(FAULT_SEED, rate)),
        label: Some(format!("{name}@{rate}")),
        lp_params: None,
        family: None,
    }
}

/// Runtime of (policy, rate) from the result grid.
fn runtime(results: &[(String, f64, SimResult)], policy: &str, rate: f64) -> u64 {
    results
        .iter()
        .find(|(p, r, _)| p == policy && *r == rate)
        .map(|(_, _, res)| res.runtime_cycles)
        .unwrap_or_else(|| panic!("missing run {policy}@{rate}"))
}

/// One `--checkpoint` verification case: a fault class at one rate.
struct CkptCase {
    bench: Benchmark,
    label: String,
    faults: FaultConfig,
}

/// The verdict of one case: which epochs were checked and which diverged.
struct CkptVerdict {
    n_epochs: u32,
    checked: Vec<u32>,
    diverged: Vec<u32>,
}

/// Runs one fault-injected cell uninterrupted, then snapshots at a
/// deterministic sample of epoch boundaries (both edges, the early epochs
/// where THP-allocation fallbacks cluster, and the middle) and asserts
/// that resuming each checkpoint reproduces the uninterrupted
/// [`SimResult`] exactly. Under the uniform and corruption fault plans
/// faults fire in essentially every epoch, so the sampled boundaries are
/// injected-fault epochs; the precisely-aimed adversarial epochs (the
/// exact veto round, mid-backoff, a tripped breaker) are covered by the
/// `checkpoint_resume` proptests in `crates/bench/tests/`.
fn verify_case(machine: &MachineSpec, case: &CkptCase) -> CkptVerdict {
    let kind = PolicyKind::CarrefourLp;
    let mut config = SimConfig::for_machine(machine, kind.initial_thp());
    config.attribution = carrefour_bench::attrib_enabled();
    config.faults = case.faults;
    let spec = case.bench.spec(machine);
    let mut policy = kind.make();
    let full = Simulation::run(machine, &spec, &config, policy.as_mut());
    let n = full.epochs.len() as u32;

    let mut checked: Vec<u32> = vec![0, 1, 2, n / 2, n.saturating_sub(1), n];
    checked.sort_unstable();
    checked.dedup();
    checked.retain(|&e| e <= n);
    let mut diverged = Vec::new();
    for &epoch in &checked {
        let mut p1 = kind.make();
        let Some(ckpt) = Simulation::checkpoint_at(machine, &spec, &config, p1.as_mut(), epoch)
        else {
            diverged.push(epoch);
            continue;
        };
        let mut p2 = kind.make();
        let resumed = Simulation::resume(machine, &spec, &config, p2.as_mut(), &ckpt);
        if resumed != full {
            diverged.push(epoch);
        }
    }
    CkptVerdict {
        n_epochs: n,
        checked,
        diverged,
    }
}

/// `chaos --checkpoint`: resume-equivalence verification under every
/// injected fault class, one verdict row per (benchmark, class, rate).
/// Exits nonzero if any resume diverges.
fn checkpoint_mode() {
    let machine = MachineSpec::machine_a();
    let mut cases: Vec<CkptCase> = Vec::new();
    // Every fault class on UA.B: each operational rate plus each
    // corruption rate. CG.D spot-checks both classes at one rate so a
    // second workload shape is covered without doubling the sweep.
    for &r in RATES.iter().filter(|&&r| r > 0.0) {
        cases.push(CkptCase {
            bench: Benchmark::UaB,
            label: format!("operational@{r}"),
            faults: FaultConfig::uniform(FAULT_SEED, r),
        });
    }
    for &r in &CORRUPTION_RATES {
        cases.push(CkptCase {
            bench: Benchmark::UaB,
            label: format!("corruption@{r}"),
            faults: FaultConfig::corruption(FAULT_SEED, r),
        });
    }
    cases.push(CkptCase {
        bench: Benchmark::CgD,
        label: "operational@0.2".to_string(),
        faults: FaultConfig::uniform(FAULT_SEED, 0.2),
    });
    cases.push(CkptCase {
        bench: Benchmark::CgD,
        label: "corruption@0.02".to_string(),
        faults: FaultConfig::corruption(FAULT_SEED, 0.02),
    });

    println!(
        "== Checkpoint/resume equivalence under injected faults ({}) ==",
        machine.name()
    );
    let jobs = runner::default_jobs();
    let verdicts = par_map(jobs, cases.len(), |i| verify_case(&machine, &cases[i]));

    println!(
        "{:<8} {:<18} {:>7} {:>16}  verdict",
        "bench", "fault class", "epochs", "checked"
    );
    let mut failures = 0usize;
    for (case, v) in cases.iter().zip(&verdicts) {
        let verdict = if v.diverged.is_empty() {
            "PASS resume-equivalent".to_string()
        } else {
            failures += 1;
            format!("FAIL diverged at epochs {:?}", v.diverged)
        };
        println!(
            "{:<8} {:<18} {:>7} {:>16}  {}",
            case.bench.name(),
            case.label,
            v.n_epochs,
            format!("{} boundaries", v.checked.len()),
            verdict
        );
    }
    if failures > 0 {
        eprintln!("chaos --checkpoint: {failures} fault class(es) are NOT resume-equivalent");
        std::process::exit(1);
    }
    println!("all {} fault classes resume-equivalent", cases.len());
}

fn main() {
    if std::env::args().any(|a| a == "--checkpoint") {
        checkpoint_mode();
        return;
    }
    let machine = MachineSpec::machine_a();
    let benches = [Benchmark::UaB, Benchmark::CgD];
    let jobs = runner::default_jobs();
    let mut all_cells: Vec<Cell> = Vec::new();
    let mut warnings = 0u32;

    // Submit the full grid — operational sweep plus corruption mini-sweep
    // for every benchmark — as one batch so the pool stays saturated.
    let mut specs: Vec<CellSpec> = Vec::new();
    for &bench in &benches {
        for &(name, kind) in &POLICIES {
            for &r in &RATES {
                specs.push(grid_spec(&machine, bench, name, kind, r));
            }
        }
        for &r in &CORRUPTION_RATES {
            specs.push(CellSpec {
                machine: machine.clone(),
                workload: Workload::Bench(bench),
                kind: PolicyKind::CarrefourLp,
                seed: None,
                faults: Some(FaultConfig::corruption(FAULT_SEED, r)),
                label: Some(format!("carrefour-lp@corruption-{r}")),
                lp_params: None,
                family: None,
            });
        }
    }
    let progress = Progress::new("chaos", specs.len());
    let cells = runner::run_cells(&specs, jobs, &progress);
    progress.finish();

    let grid_len = POLICIES.len() * RATES.len();
    let per_bench = grid_len + CORRUPTION_RATES.len();
    for (bi, &bench) in benches.iter().enumerate() {
        let block = &cells[bi * per_bench..(bi + 1) * per_bench];
        println!(
            "== Chaos sweep ({}, {}) : slowdown vs own fault-free run ==",
            machine.name(),
            bench.name()
        );

        let mut results: Vec<(String, f64, SimResult)> = Vec::with_capacity(grid_len);
        for (pi, &(name, _)) in POLICIES.iter().enumerate() {
            for (ri, &r) in RATES.iter().enumerate() {
                let cell = &block[pi * RATES.len() + ri];
                results.push((name.to_string(), r, cell.result.clone()));
            }
        }

        print!("{:<22}", "policy");
        for &r in &RATES {
            print!(" {:>9}", format!("rate {r}"));
        }
        println!();
        for &(p, _) in &POLICIES {
            let base = runtime(&results, p, 0.0) as f64;
            print!("{p:<22}");
            for &r in &RATES {
                let slow = runtime(&results, p, r) as f64 / base;
                print!(" {slow:>9.3}");
            }
            println!();
        }

        // Robustness accounting of the highest-rate Carrefour-LP run.
        let top = RATES[RATES.len() - 1];
        let worst = &results
            .iter()
            .find(|(p, r, _)| p == "carrefour-lp" && *r == top)
            .unwrap_or_else(|| panic!("missing carrefour-lp@{top} in the results grid"))
            .2;
        let rb = &worst.robustness;
        println!(
            "carrefour-lp @ rate {top}: {} failed migrations, {} failed splits, \
             {} fallback allocs, {} busy rejections, {} dropped samples, \
             {} misattributed, {} retries",
            rb.failed_migrations,
            rb.failed_splits,
            rb.fallback_allocs,
            rb.busy_rejections,
            rb.dropped_samples,
            rb.misattributed_samples,
            rb.retries,
        );

        // Cross-policy view: everything relative to fault-free Linux-4K
        // (which is fault-immune by construction — it allocates no huge
        // pages, issues no actions, and reads no samples).
        let linux4k_base = runtime(&results, "linux-4k", 0.0) as f64;
        print!("{:<22}", "vs linux-4k");
        for &r in &RATES {
            let lp = runtime(&results, "carrefour-lp", r) as f64;
            print!(" {:>9.3}", lp / linux4k_base);
        }
        println!();

        // Property 1: never harmful — at every rate, Carrefour-LP stays
        // within the overhead envelope of the *worse* of the two
        // do-nothing baselines at the same rate. Degrading to baseline
        // performance under heavy faults is graceful; falling beyond both
        // static configurations would mean the policy itself is the
        // problem (the paper's Section 4.2 overhead concern).
        for &r in &RATES {
            let lp = runtime(&results, "carrefour-lp", r) as f64;
            let floor =
                runtime(&results, "linux-4k", r).max(runtime(&results, "linux-thp", r)) as f64;
            let ratio = lp / floor;
            if ratio <= 1.0 + ENVELOPE {
                println!("PASS bounded @ rate {r}: lp/worst-baseline = {ratio:.3}");
            } else {
                warnings += 1;
                println!("WARN bounded @ rate {r}: lp/worst-baseline = {ratio:.3}");
            }
        }

        // Property 2: monotonic-ish — Carrefour-LP's slowdown never drops
        // as the rate rises (beyond noise): more faults can only cost.
        let base = runtime(&results, "carrefour-lp", 0.0) as f64;
        let slowdowns: Vec<f64> = RATES
            .iter()
            .map(|&r| runtime(&results, "carrefour-lp", r) as f64 / base)
            .collect();
        let tolerance = 0.02;
        let monotonic = slowdowns.windows(2).all(|w| w[1] >= w[0] - tolerance);
        if monotonic {
            println!("PASS monotonic: slowdowns {slowdowns:?}");
        } else {
            warnings += 1;
            println!("WARN monotonic: slowdowns {slowdowns:?}");
        }

        // Property 3: the retry-free ablation loses more of the placement
        // benefit at the highest fault rate than full Carrefour-LP does
        // (within a small tolerance: on benchmarks whose lost actions were
        // marginal, retrying them is allowed to be cycle-neutral).
        let lp_top = runtime(&results, "carrefour-lp", top) as f64;
        let noretry_top = runtime(&results, "carrefour-lp-noretry", top) as f64;
        if noretry_top >= lp_top * 0.97 {
            println!(
                "PASS retries pay off @ rate {top}: noretry/lp = {:.3}",
                noretry_top / lp_top
            );
        } else {
            warnings += 1;
            println!(
                "WARN retries pay off @ rate {top}: noretry/lp = {:.3}",
                noretry_top / lp_top
            );
        }

        // Sample-corruption sensitivity: misattribution only, everything
        // else fault-free. No PASS/WARN gate — the point *is* the
        // fragility: a corrupted sample on a genuinely private hot page
        // makes it look shared, and the resulting split+scatter is
        // irreversible, so even sub-percent corruption costs performance
        // that no amount of retrying wins back.
        let lp_base = runtime(&results, "carrefour-lp", 0.0) as f64;
        for (ci, &r) in CORRUPTION_RATES.iter().enumerate() {
            let res = &block[grid_len + ci].result;
            println!(
                "FINDING corruption @ rate {r}: slowdown {:.3} \
                 ({} misattributed samples)",
                res.runtime_cycles as f64 / lp_base,
                res.robustness.misattributed_samples,
            );
        }

        all_cells.extend(block.iter().cloned());
        println!();
    }

    // The JSON rows carry the full RobustnessStats per run.
    save_json("chaos_machine-a", &all_cells);
    println!(
        "{} runs written to results/chaos_machine-a.json ({} warnings)",
        all_cells.len(),
        warnings
    );
}
