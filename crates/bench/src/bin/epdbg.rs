//! One-off calibration debug.
use carrefour_bench::{run_cell, PolicyKind};
use numa_topology::MachineSpec;
use workloads::Benchmark;

fn main() {
    let machine = MachineSpec::machine_a();
    let r = run_cell(
        &machine,
        Benchmark::Streamcluster,
        PolicyKind::CarrefourLp1g,
    );
    println!(
        "total {} mig {} split {} coll {} ovh {}",
        r.runtime_cycles,
        r.lifetime.vmem.migrations_4k + r.lifetime.vmem.migrations_2m,
        r.lifetime.vmem.splits,
        r.lifetime.vmem.collapses,
        r.lifetime.overhead_cycles
    );
    for (i, e) in r.epochs.iter().enumerate().take(12) {
        println!(
            "  ep{i} cyc {} lar {:.2} imb {:.1} mig {} split {} ovh {}",
            e.counters.epoch_cycles,
            e.counters.lar(),
            e.counters.imbalance(),
            e.migrations,
            e.splits,
            e.overhead_cycles
        );
    }
}
