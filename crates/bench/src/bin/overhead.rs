//! Section 4.2: overhead assessment.
//!
//! Carrefour-LP vs the reactive approach, vs Carrefour-2M, and vs Linux-4K
//! across the full benchmark set. The paper reports: vs reactive ≤ ~3.2 %
//! (within noise), vs Carrefour-2M ≤ ~3.7 % with average < 2 %, vs Linux
//! < 3 % except for a few migration-heavy cases inherited from
//! Carrefour-2M.

use carrefour_bench::{machines, run_matrix, save_json, Cell, PolicyKind};
use workloads::Benchmark;

/// Percent by which `a` is slower than `b` (positive = overhead).
fn slowdown(cells: &[Cell], bench: Benchmark, a: PolicyKind, b: PolicyKind) -> f64 {
    let find = |p: PolicyKind| {
        cells
            .iter()
            .find(|c| c.benchmark == bench.name() && c.policy == p.label())
            .expect("cell")
    };
    (find(a).result.runtime_cycles as f64 / find(b).result.runtime_cycles as f64 - 1.0) * 100.0
}

fn main() {
    let policies = [
        PolicyKind::Linux4k,
        PolicyKind::Carrefour2m,
        PolicyKind::ReactiveOnly,
        PolicyKind::CarrefourLp,
    ];
    let benches: Vec<Benchmark> = Benchmark::all()
        .iter()
        .copied()
        .filter(|b| *b != Benchmark::Streamcluster)
        .collect();

    for machine in machines() {
        println!(
            "== Overhead of Carrefour-LP ({}) : positive = slower ==",
            machine.name()
        );
        println!(
            "{:<16} {:>13} {:>16} {:>12}",
            "bench", "vs Reactive", "vs Carrefour-2M", "vs Linux"
        );
        let cells = run_matrix(&machine, &benches, &policies);
        let mut worst: [f64; 3] = [f64::MIN; 3];
        let mut sums: [f64; 3] = [0.0; 3];
        for &b in &benches {
            let v = [
                slowdown(&cells, b, PolicyKind::CarrefourLp, PolicyKind::ReactiveOnly),
                slowdown(&cells, b, PolicyKind::CarrefourLp, PolicyKind::Carrefour2m),
                slowdown(&cells, b, PolicyKind::CarrefourLp, PolicyKind::Linux4k),
            ];
            for i in 0..3 {
                worst[i] = worst[i].max(v[i]);
                sums[i] += v[i];
            }
            println!(
                "{:<16} {:>13.1} {:>16.1} {:>12.1}",
                b.name(),
                v[0],
                v[1],
                v[2]
            );
        }
        let n = benches.len() as f64;
        println!(
            "{:<16} {:>13.1} {:>16.1} {:>12.1}   (worst)",
            "--", worst[0], worst[1], worst[2]
        );
        println!(
            "{:<16} {:>13.1} {:>16.1} {:>12.1}   (mean)",
            "--",
            sums[0] / n,
            sums[1] / n,
            sums[2] / n
        );
        save_json(&format!("overhead_{}", machine.name()), &cells);
        println!();
    }
}
