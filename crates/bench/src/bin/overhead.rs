//! Section 4.2: overhead assessment.
//!
//! Carrefour-LP vs the reactive approach, vs Carrefour-2M, and vs Linux-4K
//! across the full benchmark set. The paper reports: vs reactive ≤ ~3.2 %
//! (within noise), vs Carrefour-2M ≤ ~3.7 % with average < 2 %, vs Linux
//! < 3 % except for a few migration-heavy cases inherited from
//! Carrefour-2M.

fn main() {
    carrefour_bench::experiments::run_standalone("overhead");
}
