//! Calibration probe over the full policy matrix for selected benchmarks.
use carrefour_bench::{run_cell, PolicyKind};
use numa_topology::MachineSpec;
use workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benches: Vec<Benchmark> = Benchmark::all()
        .iter()
        .copied()
        .filter(|b| args.iter().any(|a| a.eq_ignore_ascii_case(b.name())))
        .collect();
    let policies = [
        PolicyKind::Linux4k,
        PolicyKind::LinuxThp,
        PolicyKind::Carrefour2m,
        PolicyKind::ReactiveOnly,
        PolicyKind::ConservativeOnly,
        PolicyKind::CarrefourLp,
    ];
    for machine in [MachineSpec::machine_a(), MachineSpec::machine_b()] {
        println!("--- {} ---", machine.name());
        for &b in &benches {
            let base = run_cell(&machine, b, PolicyKind::Linux4k);
            for kind in policies {
                let r = run_cell(&machine, b, kind);
                println!(
                    "{:<12} {:<14} {:>10} imp {:>6.1} lar {:>5.2} imb {:>6.1} mig {:>6} split {:>5} coll {:>5} ovh% {:>4.1}",
                    b.name(),
                    kind.label(),
                    r.runtime_cycles,
                    r.improvement_over(&base),
                    r.lifetime.lar,
                    r.lifetime.imbalance,
                    r.lifetime.vmem.migrations_4k + r.lifetime.vmem.migrations_2m,
                    r.lifetime.vmem.splits,
                    r.lifetime.vmem.collapses,
                    r.lifetime.overhead_cycles as f64 / r.runtime_cycles as f64 / machine.total_cores() as f64 * 100.0,
                );
            }
        }
    }
}
