//! Table 1: detailed Linux-vs-THP analysis of five benchmarks.
//!
//! Columns match the paper: performance increase of THP over Linux, time
//! spent in the page-fault handler, % of L2 misses caused by page-table
//! walks, local access ratio, and memory-controller imbalance.

use carrefour_bench::{run_cell, save_json, Cell, PolicyKind};
use numa_topology::MachineSpec;
use workloads::Benchmark;

fn main() {
    // The paper's Table 1 rows: (benchmark, machine).
    let rows = [
        (Benchmark::CgD, MachineSpec::machine_b()),
        (Benchmark::UaC, MachineSpec::machine_b()),
        (Benchmark::Wc, MachineSpec::machine_b()),
        (Benchmark::Ssca, MachineSpec::machine_a()),
        (Benchmark::SpecJbb, MachineSpec::machine_a()),
    ];

    println!("== Table 1: detailed analysis (machine in parentheses) ==");
    println!(
        "{:<14} {:>9} | {:>15} {:>15} | {:>8} {:>8} | {:>7} {:>7} | {:>8} {:>8}",
        "bench",
        "THP/4K %",
        "fault(Linux)",
        "fault(THP)",
        "walk%4K",
        "walk%THP",
        "LAR 4K",
        "LAR THP",
        "imb 4K",
        "imb THP"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for (bench, machine) in rows {
        let linux = run_cell(&machine, bench, PolicyKind::Linux4k);
        let thp = run_cell(&machine, bench, PolicyKind::LinuxThp);
        let label = format!(
            "{} ({})",
            bench.name(),
            if machine.name().ends_with('a') {
                "A"
            } else {
                "B"
            }
        );
        println!(
            "{:<14} {:>9.1} | {:>8.2}ms {:>4.1}% {:>8.2}ms {:>4.1}% | {:>8.1} {:>8.1} | {:>7.0} {:>7.0} | {:>8.1} {:>8.1}",
            label,
            thp.improvement_over(&linux),
            machine.cycles_to_ms(linux.lifetime.max_fault_cycles),
            linux.lifetime.max_fault_fraction * 100.0,
            machine.cycles_to_ms(thp.lifetime.max_fault_cycles),
            thp.lifetime.max_fault_fraction * 100.0,
            linux.lifetime.walk_miss_fraction * 100.0,
            thp.lifetime.walk_miss_fraction * 100.0,
            linux.lifetime.lar * 100.0,
            thp.lifetime.lar * 100.0,
            linux.lifetime.imbalance,
            thp.lifetime.imbalance,
        );
        for (policy, r) in [("Linux", linux), ("THP", thp)] {
            cells.push(Cell {
                machine: machine.name().to_string(),
                benchmark: bench.name().to_string(),
                policy: policy.to_string(),
                result: r,
            });
        }
    }
    save_json("table1", &cells);
}
