//! Table 1: detailed Linux-vs-THP analysis of five benchmarks.
//!
//! Columns match the paper: performance increase of THP over Linux, time
//! spent in the page-fault handler, % of L2 misses caused by page-table
//! walks, local access ratio, and memory-controller imbalance.

fn main() {
    carrefour_bench::experiments::run_standalone("table1");
}
