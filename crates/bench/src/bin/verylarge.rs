//! Section 4.4: very large (1 GiB) pages.
//!
//! SSCA and streamcluster run with 1 GiB pages: the paper reports SSCA
//! degrading by 34 % and streamcluster by ~4x versus their 2 MiB runs,
//! from hot-page and false-sharing effects that 2 MiB pages did not
//! trigger. Carrefour-LP (starting from 1 GiB pages) recovers the loss.

use carrefour_bench::{run_cell, save_json, Cell, PolicyKind};
use numa_topology::MachineSpec;
use workloads::Benchmark;

fn main() {
    let machine = MachineSpec::machine_a();
    let benches = [Benchmark::Ssca, Benchmark::Streamcluster];
    let policies = [
        PolicyKind::LinuxThp,
        PolicyKind::Linux1g,
        PolicyKind::CarrefourLp1g,
    ];

    println!("== Section 4.4 (machine A): 1 GiB pages, improvement over Linux-4K ==");
    println!(
        "{:<14} {:>8} {:>10} {:>17} {:>8} {:>8}",
        "bench", "THP", "Linux-1G", "Carrefour-LP-1G", "imb 1G", "LAR 1G"
    );
    let mut cells = Vec::new();
    for bench in benches {
        let base = run_cell(&machine, bench, PolicyKind::Linux4k);
        let mut improvements = Vec::new();
        let mut giant_metrics = (0.0, 0.0);
        for kind in policies {
            let r = run_cell(&machine, bench, kind);
            improvements.push(r.improvement_over(&base));
            if kind == PolicyKind::Linux1g {
                giant_metrics = (r.lifetime.imbalance, r.lifetime.lar * 100.0);
            }
            cells.push(Cell {
                machine: machine.name().to_string(),
                benchmark: bench.name().to_string(),
                policy: kind.label().to_string(),
                result: r,
            });
        }
        cells.push(Cell {
            machine: machine.name().to_string(),
            benchmark: bench.name().to_string(),
            policy: PolicyKind::Linux4k.label().to_string(),
            result: base,
        });
        println!(
            "{:<14} {:>8.1} {:>10.1} {:>17.1} {:>8.1} {:>8.0}",
            bench.name(),
            improvements[0],
            improvements[1],
            improvements[2],
            giant_metrics.0,
            giant_metrics.1,
        );
    }
    save_json("verylarge", &cells);
}
