//! Section 4.4: very large (1 GiB) pages.
//!
//! SSCA and streamcluster run with 1 GiB pages: the paper reports SSCA
//! degrading by 34 % and streamcluster by ~4x versus their 2 MiB runs,
//! from hot-page and false-sharing effects that 2 MiB pages did not
//! trigger. Carrefour-LP (starting from 1 GiB pages) recovers the loss.

fn main() {
    carrefour_bench::experiments::run_standalone("verylarge");
}
