//! Figure 1: THP performance improvement over default Linux, machines A & B.

use carrefour_bench::{improvement, machines, run_matrix, save_json, PolicyKind};
use workloads::Benchmark;

fn main() {
    let policies = [PolicyKind::Linux4k, PolicyKind::LinuxThp];
    let benches: Vec<Benchmark> = Benchmark::all()
        .iter()
        .copied()
        .filter(|b| *b != Benchmark::Streamcluster)
        .collect();

    for machine in machines() {
        println!(
            "== Figure 1 ({}) : THP improvement over Linux ==",
            machine.name()
        );
        let cells = run_matrix(&machine, &benches, &policies);
        for &b in &benches {
            let imp = improvement(&cells, b, PolicyKind::LinuxThp, PolicyKind::Linux4k);
            println!("{:<16} {:>8.1}", b.name(), imp);
        }
        save_json(&format!("fig1_{}", machine.name()), &cells);
        println!();
    }
}
