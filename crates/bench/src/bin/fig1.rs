//! Figure 1: THP performance improvement over default Linux, machines A & B.

fn main() {
    carrefour_bench::experiments::run_standalone("fig1");
}
