//! Runs every figure/table experiment in one process on the shared runner.
//!
//! All experiments' cells are collected up front, **deduplicated** across
//! experiments (many figures share their Linux-4K baselines; the simulator
//! is deterministic, so one run serves them all), executed on the worker
//! pool (`--jobs N` / `CARREFOUR_JOBS` / host cores), and then rendered in
//! the traditional per-experiment order. Per-cell and total wall-clock go
//! to `results/BENCH_runner.json` — the repo's performance trajectory file
//! (schema in DESIGN.md §10).

use carrefour_bench::experiments;
use carrefour_bench::runner::{self, Progress, TimedCell};
use std::collections::HashMap;

fn main() {
    let jobs = runner::default_jobs();
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let exps = experiments::all();

    // Dedup identical cells across experiments: equal keys mean equal
    // simulation inputs, and determinism means equal results.
    let mut unique = Vec::new();
    let mut key_to_slot: HashMap<String, usize> = HashMap::new();
    let mut exp_slots: Vec<Vec<usize>> = Vec::with_capacity(exps.len());
    for e in &exps {
        let mut slots = Vec::with_capacity(e.specs.len());
        for spec in &e.specs {
            let slot = *key_to_slot.entry(spec.key()).or_insert_with(|| {
                unique.push(spec.clone());
                unique.len() - 1
            });
            slots.push(slot);
        }
        exp_slots.push(slots);
    }
    let submitted: usize = exps.iter().map(|e| e.specs.len()).sum();
    eprintln!(
        "[all] {} experiments, {} cells ({} unique), {} jobs on {} cores",
        exps.len(),
        submitted,
        unique.len(),
        jobs,
        host_cores
    );

    let progress = Progress::new("all", unique.len());
    let timed = runner::run_cells_timed(&unique, jobs, &progress);
    let total_wall_secs = progress.finish();

    for (e, slots) in exps.iter().zip(&exp_slots) {
        println!("################ {} ################", e.name);
        let cells: Vec<_> = slots.iter().map(|&i| timed[i].cell.clone()).collect();
        (e.render)(&cells);
    }

    write_bench_runner_json(&exps, &exp_slots, &timed, jobs, host_cores, total_wall_secs);
}

/// Writes `results/BENCH_runner.json` (best effort, like `save_json`).
/// The schema is documented in DESIGN.md §10.
fn write_bench_runner_json(
    exps: &[experiments::Experiment],
    exp_slots: &[Vec<usize>],
    timed: &[TimedCell],
    jobs: usize,
    host_cores: usize,
    total_wall_secs: f64,
) {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench-runner-v1\",\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"total_wall_secs\": {total_wall_secs:.3},\n"));
    out.push_str(&format!("  \"unique_cells\": {},\n", timed.len()));
    let submitted: usize = exp_slots.iter().map(Vec::len).sum();
    out.push_str(&format!("  \"submitted_cells\": {submitted},\n"));
    // Attribute each unique cell's cost to the first experiment that
    // submitted it, so per-experiment seconds sum to the cell total.
    let mut owner = vec![usize::MAX; timed.len()];
    for (ei, slots) in exp_slots.iter().enumerate() {
        for &s in slots {
            if owner[s] == usize::MAX {
                owner[s] = ei;
            }
        }
    }
    out.push_str("  \"experiments\": [\n");
    for (i, (e, slots)) in exps.iter().zip(exp_slots).enumerate() {
        // `.max(0.0)`: an experiment whose cells are all dedup'd away owns
        // nothing, and f64's empty-sum identity is -0.0.
        let owned_secs: f64 = owner
            .iter()
            .zip(timed)
            .filter(|(&o, _)| o == i)
            .map(|(_, t)| t.wall_secs)
            .sum::<f64>()
            .max(0.0);
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cells\": {}, \"wall_secs\": {:.3}}}{}\n",
            esc(e.name),
            slots.len(),
            owned_secs,
            if i + 1 < exps.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"cells\": [\n");
    for (i, t) in timed.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"machine\": \"{}\", \"benchmark\": \"{}\", \"policy\": \"{}\", \"wall_secs\": {:.3}}}{}\n",
            esc(&t.cell.machine),
            esc(&t.cell.benchmark),
            esc(&t.cell.policy),
            t.wall_secs,
            if i + 1 < timed.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if std::fs::create_dir_all("results").is_ok()
        && std::fs::write("results/BENCH_runner.json", &out).is_ok()
    {
        eprintln!("[all] wrote results/BENCH_runner.json");
    }
}
