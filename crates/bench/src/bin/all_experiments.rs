//! Runs every figure/table experiment in one process on the shared runner.
//!
//! All experiments' cells are collected up front, **deduplicated** across
//! experiments (many figures share their Linux-4K baselines; the simulator
//! is deterministic, so one run serves them all), executed on the worker
//! pool (`--jobs N` / `CARREFOUR_JOBS` / host cores), and then rendered in
//! the traditional per-experiment order. Per-cell and total wall-clock go
//! to `results/BENCH_runner.json` — the repo's performance trajectory file
//! (schema in DESIGN.md §10).

use carrefour_bench::runner::{self, CellOutcome, Progress, TimedCell};
use carrefour_bench::{attrib, experiments, journal, logx};
use std::collections::HashMap;

/// The journal suite name: one journal serves the whole binary, whatever
/// `--only` subset is running (cell keys are globally unique).
const SUITE: &str = "all";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let resume = args.iter().any(|a| a == "--resume");
    let only = only_from_args(&args);
    let compare = compare_from_args();
    let attrib_on = std::env::args().any(|a| a == "--attrib") || carrefour_bench::attrib_enabled();
    if attrib_on {
        // The runner reads this per cell; setting it here lets `--attrib`
        // and `CARREFOUR_ATTRIB=1` behave identically.
        std::env::set_var("CARREFOUR_ATTRIB", "1");
    }
    let jobs = runner::default_jobs();
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut exps = experiments::all();
    if let Some(names) = &only {
        let known: Vec<&str> = exps.iter().map(|e| e.name).collect();
        for n in names {
            assert!(
                known.contains(&n.as_str()),
                "--only: unknown experiment {n:?}; known: {known:?}"
            );
        }
        exps.retain(|e| names.iter().any(|n| n == e.name));
    }

    // Dedup identical cells across experiments: equal keys mean equal
    // simulation inputs, and determinism means equal results.
    let mut unique = Vec::new();
    let mut key_to_slot: HashMap<String, usize> = HashMap::new();
    let mut exp_slots: Vec<Vec<usize>> = Vec::with_capacity(exps.len());
    for e in &exps {
        let mut slots = Vec::with_capacity(e.specs.len());
        for spec in &e.specs {
            let slot = *key_to_slot.entry(spec.key()).or_insert_with(|| {
                unique.push(spec.clone());
                unique.len() - 1
            });
            slots.push(slot);
        }
        exp_slots.push(slots);
    }
    let submitted: usize = exps.iter().map(|e| e.specs.len()).sum();
    logx::info(&format!(
        "[all] {} experiments, {} cells ({} unique), {} jobs on {} cores",
        exps.len(),
        submitted,
        unique.len(),
        jobs,
        host_cores
    ));

    // The crash journal. A fresh run starts it over; `--resume` keeps it
    // and pre-fills every cell the previous (killed or failed) run already
    // completed — determinism makes the spliced results indistinguishable
    // from an uninterrupted run.
    if !resume {
        let _ = std::fs::remove_file(journal::journal_path(SUITE));
    }
    let jnl = match journal::Journal::open_append(SUITE) {
        Ok(j) => Some(j),
        Err(e) => {
            logx::warn(&format!(
                "running without a crash journal: cannot open {}: {e}",
                journal::journal_path(SUITE).display()
            ));
            None
        }
    };
    let keys: Vec<String> = unique.iter().map(|s| s.key()).collect();
    let (mut journaled, stale) = if resume {
        journal::load_counted(SUITE)
    } else {
        (HashMap::new(), 0)
    };
    let mut filled: Vec<Option<TimedCell>> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| {
            journaled.remove(k).map(|j| TimedCell {
                cell: j.cell,
                wall_secs: j.wall_secs,
                // The journal stores results, not scheduler metadata;
                // the estimate is a pure function of the spec, so
                // recomputing it here keeps restored rows honest. Spans
                // are honest zeros: the work happened in a dead process.
                estimated_ops: unique[i].estimated_ops(),
                spans: runner::CellSpans::journal_restored(),
            })
        })
        .collect();
    if resume {
        let restored = filled.iter().filter(|s| s.is_some()).count();
        logx::info(&format!(
            "[all] resume: {restored} of {} cells restored from {}",
            unique.len(),
            journal::journal_path(SUITE).display()
        ));
        if stale > 0 {
            // Later-line-wins fired: an interrupted append or a retried
            // cell left earlier lines for the same key behind.
            logx::info(&format!(
                "[all] resume: skipped {stale} stale duplicate journal line(s) (later line wins)"
            ));
        }
    }

    let todo: Vec<usize> = (0..unique.len()).filter(|&i| filled[i].is_none()).collect();
    let todo_specs: Vec<runner::CellSpec> = todo.iter().map(|&i| unique[i].clone()).collect();
    let progress = Progress::new("all", todo_specs.len());
    let outcomes = runner::run_cells_outcomes(&todo_specs, jobs, &progress, |i, t| {
        if let Some(j) = &jnl {
            j.record_ok(&todo_specs[i].key(), t);
        }
    });
    let total_wall_secs = progress.finish();

    let mut failed: Vec<(String, String)> = Vec::new();
    for (oi, outcome) in outcomes.into_iter().enumerate() {
        let slot = todo[oi];
        match outcome {
            CellOutcome::Ok(t) => filled[slot] = Some(t),
            CellOutcome::TimedOut { secs, result } => {
                logx::warn(&format!(
                    "[all] cell {} finished past the soft deadline ({secs:.1}s)",
                    unique[slot].describe_with_family()
                ));
                filled[slot] = Some(result);
            }
            CellOutcome::Panicked { msg } => {
                if let Some(j) = &jnl {
                    j.record_panicked(&keys[slot], &msg);
                }
                failed.push((unique[slot].describe(), msg));
            }
        }
    }

    for (e, slots) in exps.iter().zip(&exp_slots) {
        println!("################ {} ################", e.name);
        let cells: Option<Vec<_>> = slots
            .iter()
            .map(|&i| filled[i].as_ref().map(|t| t.cell.clone()))
            .collect();
        match cells {
            Some(cells) => (e.render)(&cells),
            None => {
                let n = slots.iter().filter(|&&i| filled[i].is_none()).count();
                println!("SKIPPED: {n} cell(s) failed; see stderr.");
            }
        }
    }

    if !failed.is_empty() {
        logx::warn(&format!("[all] {} cell(s) FAILED:", failed.len()));
        for (what, msg) in &failed {
            logx::warn(&format!("[all]   {what}: {msg}"));
        }
        logx::warn("[all] rerun with --resume to retry only the failed cells");
        std::process::exit(1);
    }

    let timed: Vec<TimedCell> = filled
        .into_iter()
        .map(|s| s.expect("no failures, so every slot is filled"))
        .collect();

    write_bench_runner_json(&exps, &exp_slots, &timed, jobs, host_cores, total_wall_secs);

    if attrib_on {
        // Bucket totals of every unique cell, one attrib-v1 file. The
        // ledger is checked for conservation per cell: a runner that
        // shipped a non-conserving breakdown would poison every
        // downstream diagnosis.
        let cells: Vec<_> = timed.iter().map(|t| t.cell.clone()).collect();
        for c in &cells {
            let ledger = c.result.attribution.as_ref().unwrap_or_else(|| {
                panic!(
                    "--attrib was on but {}/{} has no ledger \
                     (a journal written without --attrib cannot resume an --attrib run)",
                    c.benchmark, c.policy
                )
            });
            assert!(
                ledger.conserves(c.result.runtime_cycles),
                "{}/{}: attribution does not conserve",
                c.benchmark,
                c.policy
            );
        }
        match std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write("results/ATTRIB_all.json", attrib::baseline_json(&cells)))
        {
            Ok(()) => logx::info(&format!(
                "[all] wrote results/ATTRIB_all.json ({} cells)",
                cells.len()
            )),
            Err(e) => logx::warn(&format!("could not write results/ATTRIB_all.json: {e}")),
        }
    }

    if let Some(path) = compare {
        // This suite runs every unique cell from scratch (DESIGN.md §15),
        // so its own reuse count is an honest 0 — the gate still compares
        // it against the baseline's figure.
        compare_against_baseline(&path, &exps, &exp_slots, &timed, total_wall_secs, 0);
    }
}

/// Parses `--only <a,b,c>` / `--only=a,b,c`: the comma-separated list of
/// experiment names to run (used by the CI kill-and-resume smoke test to
/// keep the interrupted suite small).
fn only_from_args(args: &[String]) -> Option<Vec<String>> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let v = if a == "--only" {
            it.next().cloned()
        } else {
            a.strip_prefix("--only=").map(str::to_string)
        };
        if let Some(v) = v {
            return Some(
                v.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect(),
            );
        }
    }
    None
}

/// Parses `--compare <path>` / `--compare=<path>` out of the arguments.
fn compare_from_args() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--compare" {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix("--compare=") {
            return Some(v.to_string());
        }
    }
    None
}

/// Pulls `"key": <float>` out of a JSON object line (our own stable
/// format — see `write_bench_runner_json` — so a full parser is not
/// needed and the build stays dependency-free).
fn json_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls `"key": "<string>"` out of a JSON object line.
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Compares this run's per-experiment wall-clock against a committed
/// baseline (`results/BENCH_baseline.json`, any `bench-runner-v*`
/// schema) and prints a speedup/regression table to stderr.
///
/// Regressions beyond 25 % are reported as warnings (GitHub `::warning::`
/// annotations in CI) but never change the exit code: wall-clock on
/// shared runners is noisy, and a hard gate on it would flake. Only
/// experiments that own cells in *both* runs are compared — a `0.000`
/// baseline (fully deduped experiment) has no meaningful ratio.
fn compare_against_baseline(
    path: &str,
    exps: &[experiments::Experiment],
    exp_slots: &[Vec<usize>],
    timed: &[TimedCell],
    total_wall_secs: f64,
    epochs_reused_now: u64,
) {
    let Ok(base) = std::fs::read_to_string(path) else {
        logx::info(&format!(
            "[all] --compare: cannot read {path}; skipping comparison"
        ));
        return;
    };
    let mut base_exps: HashMap<String, f64> = HashMap::new();
    let mut base_total: Option<f64> = None;
    let mut base_reused: Option<f64> = None;
    let mut in_experiments = false;
    for line in base.lines() {
        if let Some(t) = json_f64(line, "total_wall_secs") {
            base_total = Some(t);
        }
        if let Some(r) = json_f64(line, "epochs_reused") {
            base_reused = Some(r);
        }
        if line.contains("\"experiments\": [") {
            in_experiments = true;
            continue;
        }
        if in_experiments {
            if line.trim_start().starts_with(']') {
                in_experiments = false;
                continue;
            }
            if let (Some(name), Some(secs)) = (json_str(line, "name"), json_f64(line, "wall_secs"))
            {
                base_exps.insert(name, secs);
            }
        }
    }
    let owner = owners(exp_slots, timed.len());
    logx::info(&format!("[all] comparison against {path}:"));
    let mut regressions = 0usize;
    for (i, e) in exps.iter().enumerate() {
        let now = owned_secs(&owner, timed, i);
        let Some(&before) = base_exps.get(e.name) else {
            continue;
        };
        if before <= 0.0 || now <= 0.0 {
            continue; // fully deduped on one side: no meaningful ratio
        }
        let ratio = before / now;
        let note = if now > before * 1.25 {
            regressions += 1;
            "  <-- REGRESSION"
        } else {
            ""
        };
        logx::info(&format!(
            "[all]   {:<12} {:>8.3}s -> {:>8.3}s  ({:.2}x){}",
            e.name, before, now, ratio, note
        ));
    }
    if let Some(bt) = base_total {
        if bt > 0.0 && total_wall_secs > 0.0 {
            logx::info(&format!(
                "[all]   {:<12} {:>8.3}s -> {:>8.3}s  ({:.2}x)",
                "TOTAL",
                bt,
                total_wall_secs,
                bt / total_wall_secs
            ));
            if total_wall_secs > bt * 1.25 {
                regressions += 1;
            }
        }
    }
    if regressions > 0 {
        // Soft failure: annotate, never gate (wall clock is noisy).
        println!(
            "::warning::all_experiments is >25% slower than {path} in {regressions} row(s); \
             see the comparison table in the job log"
        );
    }
    // Epoch-reuse regressions, soft-gated the same way: a baseline that
    // shared prefix epochs while this run shares >25% fewer means the
    // fork-tree stopped helping (a dedup key or family split broke),
    // which wall-clock noise can mask on a fast host.
    if let Some(before) = base_reused {
        let now = epochs_reused_now as f64;
        logx::info(&format!(
            "[all]   {:<12} {:>8.0} -> {:>8.0} epochs reused",
            "REUSE", before, now
        ));
        if before > 0.0 && now < before * 0.75 {
            println!(
                "::warning::all_experiments reused {now:.0} prefix epochs vs {before:.0} in \
                 {path} (>25% drop); fork-tree sharing may have regressed"
            );
        }
    }
}

/// First-submitter attribution: `owner[slot]` is the index of the first
/// experiment that submitted the unique cell in `slot`.
fn owners(exp_slots: &[Vec<usize>], n_cells: usize) -> Vec<usize> {
    let mut owner = vec![usize::MAX; n_cells];
    for (ei, slots) in exp_slots.iter().enumerate() {
        for &s in slots {
            if owner[s] == usize::MAX {
                owner[s] = ei;
            }
        }
    }
    owner
}

/// Wall-clock seconds of the unique cells owned by experiment `i`.
/// Exactly `0.0` (positive zero) when it owns none: f64's empty-sum
/// identity is `-0.0`, which would otherwise print as `-0.000`.
fn owned_secs(owner: &[usize], timed: &[TimedCell], i: usize) -> f64 {
    let s: f64 = owner
        .iter()
        .zip(timed)
        .filter(|(&o, _)| o == i)
        .map(|(_, t)| t.wall_secs)
        .sum();
    if s <= 0.0 {
        0.0
    } else {
        s
    }
}

/// Writes `results/BENCH_runner.json` (best effort, like `save_json`).
/// The schema is documented in DESIGN.md §10 (v1–v4) and §16 (v5: the
/// per-cell span fields and the suite-level `spans` rollup).
fn write_bench_runner_json(
    exps: &[experiments::Experiment],
    exp_slots: &[Vec<usize>],
    timed: &[TimedCell],
    jobs: usize,
    host_cores: usize,
    total_wall_secs: f64,
) {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench-runner-v5\",\n");
    out.push_str(&format!(
        "  \"shards\": \"{}\",\n",
        esc(&std::env::var("CARREFOUR_SHARDS").unwrap_or_else(|_| "auto".into()))
    ));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"total_wall_secs\": {total_wall_secs:.3},\n"));
    out.push_str(&format!("  \"unique_cells\": {},\n", timed.len()));
    let submitted: usize = exp_slots.iter().map(Vec::len).sum();
    out.push_str(&format!("  \"submitted_cells\": {submitted},\n"));
    // Prefix-sharing counters (new in v4). The figure suite deliberately
    // runs every unique cell from scratch — per-cell journaling and
    // crash-resume depend on each cell being an independent unit
    // (DESIGN.md §15) — so `epochs_reused` is an honest 0 here and
    // `families` is empty; the sweep's fork-tree reuse is accounted in
    // results/SWEEP_lp.json (schema sweep-v1), where sharing actually
    // runs. The fields exist in both files so trajectory tooling reads
    // one shape.
    let epochs_simulated: u64 = timed
        .iter()
        .map(|t| t.cell.result.epochs.len() as u64)
        .sum();
    out.push_str(&format!("  \"epochs_simulated\": {epochs_simulated},\n"));
    out.push_str("  \"epochs_reused\": 0,\n");
    out.push_str("  \"families\": [],\n");
    // Span rollup (new in v5). Sums cover only cells run by *this*
    // process: journal-restored rows carry zero spans (from_journal),
    // so a resumed suite's rollup stays honest about where its own
    // wall-clock went. Worker count and lane occupancy come from the
    // same per-cell samples the report's timeline view draws.
    let live: Vec<&TimedCell> = timed.iter().filter(|t| !t.spans.from_journal).collect();
    let queue_wait: f64 = live.iter().map(|t| t.spans.queue_wait_secs).sum();
    let simulate: f64 = live.iter().map(|t| t.spans.simulate_secs).sum();
    let merge: f64 = live.iter().map(|t| t.spans.merge_secs).sum();
    let workers_used = live
        .iter()
        .map(|t| t.spans.worker)
        .collect::<std::collections::HashSet<_>>()
        .len();
    let lanes_free_min = live
        .iter()
        .map(|t| t.spans.lanes_free_start.min(t.spans.lanes_free_done))
        .min()
        .unwrap_or(0);
    let lanes_free_max = live
        .iter()
        .map(|t| t.spans.lanes_free_start.max(t.spans.lanes_free_done))
        .max()
        .unwrap_or(0);
    out.push_str(&format!(
        "  \"spans\": {{\"live_cells\": {}, \"queue_wait_total_secs\": {:.3}, \
         \"simulate_total_secs\": {:.3}, \"merge_total_secs\": {:.3}, \
         \"workers_used\": {}, \"lanes_free_min\": {}, \"lanes_free_max\": {}}},\n",
        live.len(),
        queue_wait,
        simulate,
        merge,
        workers_used,
        lanes_free_min,
        lanes_free_max,
    ));
    // Attribute each unique cell's cost to the first experiment that
    // submitted it, so per-experiment seconds sum to the cell total.
    let owner = owners(exp_slots, timed.len());
    out.push_str("  \"experiments\": [\n");
    for (i, (e, slots)) in exps.iter().zip(exp_slots).enumerate() {
        // An experiment whose cells all landed in earlier experiments'
        // slots owns nothing: wall_secs is a positive 0.000 (the naive
        // f64 sum is -0.0, which printed as "-0.000" under schema v1)
        // and reused_cells records how many of its cells were deduped.
        let reused = slots.iter().filter(|&&s| owner[s] != i).count();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cells\": {}, \"reused_cells\": {}, \"wall_secs\": {:.3}}}{}\n",
            esc(e.name),
            slots.len(),
            reused,
            owned_secs(&owner, timed, i),
            if i + 1 < exps.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"cells\": [\n");
    for (i, t) in timed.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"machine\": \"{}\", \"benchmark\": \"{}\", \"policy\": \"{}\", \"wall_secs\": {:.3}, \"estimated_ops\": {}, \"actual_ops\": {}, \"queue_wait_secs\": {:.3}, \"merge_secs\": {:.3}, \"worker\": {}, \"lanes_free_start\": {}, \"from_journal\": {}}}{}\n",
            esc(&t.cell.machine),
            esc(&t.cell.benchmark),
            esc(&t.cell.policy),
            t.wall_secs,
            t.estimated_ops,
            t.cell.result.lifetime.total_ops,
            t.spans.queue_wait_secs,
            t.spans.merge_secs,
            t.spans.worker,
            t.spans.lanes_free_start,
            t.spans.from_journal,
            if i + 1 < timed.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_runner.json", &out))
    {
        Ok(()) => logx::info("[all] wrote results/BENCH_runner.json"),
        Err(e) => logx::warn(&format!("could not write results/BENCH_runner.json: {e}")),
    }
}
