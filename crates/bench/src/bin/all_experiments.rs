//! Runs every experiment binary's logic in sequence (convenience driver for
//! regenerating EXPERIMENTS.md's data in one go).

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for name in [
        "fig1",
        "table1",
        "fig2",
        "table2",
        "fig3",
        "fig4",
        "table3",
        "fig5",
        "overhead",
        "verylarge",
    ] {
        println!("################ {name} ################");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} failed");
    }
}
