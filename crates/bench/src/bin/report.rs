//! Builds `results/report.html` — the self-contained suite report.
//!
//! Re-runs the eleven golden cells with the flight recorder on (fresh,
//! deterministic, seconds), writes each series as
//! `results/metrics_<stem>.jsonl`, then folds in whatever earlier runs
//! left behind: `results/BENCH_runner.json` (span breakdown),
//! `results/BENCH_baseline.json` (regression deltas),
//! `results/ATTRIB_all.json` and the crash journal (provenance notes).
//! Everything except the recorded cells is best-effort: missing inputs
//! degrade to a note in the report, never an error.
//!
//! Exit code is 1 only when the span self-check fails — the runner's
//! per-worker busy+idle decomposition must re-compose the suite
//! wall-clock within 5 % (DESIGN.md §16).

use carrefour_bench::{logx, report};
use std::path::Path;

fn main() {
    let out_path = std::env::args()
        .find_map(|a| a.strip_prefix("--out=").map(str::to_string))
        .unwrap_or_else(|| "results/report.html".to_string());

    logx::info("[report] recording golden cells (metrics-v1)...");
    let series = report::record_golden_cells(Path::new("results"));

    let runner_text = std::fs::read_to_string("results/BENCH_runner.json").ok();
    let runner = runner_text.as_deref().and_then(report::parse_runner_json);
    let baseline_text = std::fs::read_to_string("results/BENCH_baseline.json").ok();
    let baseline = baseline_text.as_deref().and_then(report::parse_runner_json);
    let attrib_present = Path::new("results/ATTRIB_all.json").exists();
    let journal = std::fs::read_to_string("results/journal_all.jsonl")
        .ok()
        .map(|t| {
            (
                t.lines()
                    .filter(|l| l.contains("\"status\":\"ok\""))
                    .count(),
                t.lines()
                    .filter(|l| l.contains("\"status\":\"panicked\""))
                    .count(),
            )
        });

    let html = report::html_report(
        &series,
        runner.as_ref(),
        baseline.as_ref(),
        attrib_present,
        journal,
    );
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(&out_path, html.as_bytes()))
    {
        logx::warn(&format!("could not write {out_path}: {e}"));
        std::process::exit(1);
    }
    logx::info(&format!(
        "[report] wrote {out_path} ({} KiB, {} cells, runner {}, baseline {})",
        html.len() / 1024,
        series.len(),
        runner.as_ref().map_or("absent", |r| &r.schema),
        baseline.as_ref().map_or("absent", |r| &r.schema),
    ));

    if let Some(r) = &runner {
        let bd = report::SpanBreakdown::from_runner(r);
        if bd.within_bound() {
            logx::info(&format!(
                "[report] span self-check ok: worst lane error {:.2}% of {:.3}s wall",
                bd.worst_error_fraction() * 100.0,
                bd.total_wall_secs
            ));
        } else {
            logx::warn(&format!(
                "[report] span self-check FAILED: worst lane error {:.2}% (> 5%)",
                bd.worst_error_fraction() * 100.0
            ));
            std::process::exit(1);
        }
    }
}
