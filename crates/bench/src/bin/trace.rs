//! Per-epoch trace timeline renderer and golden-digest regenerator.
//!
//! Default mode runs the golden cell set traced and renders, for each
//! cell, a per-epoch timeline (one row per epoch: imbalance, LAR,
//! walk-miss fraction, faults/splits/migrations/collapses, THP switches,
//! policy decisions) — to stdout and to `results/trace_<cell>.txt`, with
//! the full event stream in `results/trace_<cell>.jsonl`.
//!
//! `--format csv` renders the same per-epoch timeline as CSV (one header
//! plus one row per epoch) to stdout and `results/trace_<cell>.csv` —
//! for spreadsheets and plotting scripts that should not screen-scrape
//! the text table.
//!
//! `--bless` instead recomputes every golden digest and rewrites
//! `tests/golden/*.json` (see DESIGN.md §9 for when blessing is the right
//! response to a golden-trace failure).

use carrefour_bench::golden::{self, GoldenCell, GOLDEN_CELLS};
use carrefour_bench::runner::Progress;
use engine::trace::{EpochSnap, PolicyDecision, TraceEvent};
use engine::{JsonlSink, SimConfig, Simulation, TeeSink, VecSink};
use numa_topology::MachineSpec;
use std::fmt::Write as _;
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

fn main() {
    let bless = std::env::args().any(|a| a == "--bless");
    if bless {
        let dir = golden::golden_dir();
        match golden::bless(&dir) {
            Ok(files) => {
                println!("blessed {} golden digests:", files.len());
                for f in files {
                    println!("  {}", f.display());
                }
            }
            Err(e) => {
                eprintln!("bless failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let format = format_from_args();
    let machine = MachineSpec::machine_a();
    let _ = std::fs::create_dir_all("results");
    let progress = Progress::new("trace", GOLDEN_CELLS.len());
    for &cell in &GOLDEN_CELLS {
        let (events, runtime_ms) = run_traced_cell(&machine, cell);
        let (rendered, ext) = match format {
            Format::Text => (render_timeline(&cell, runtime_ms, &events), "txt"),
            Format::Csv => (render_csv(&events), "csv"),
        };
        print!("{rendered}");
        let path = format!("results/trace_{}.{ext}", cell.stem());
        if std::fs::write(&path, &rendered).is_ok() {
            println!("  -> {path} and results/trace_{}.jsonl\n", cell.stem());
        }
        progress.cell_done(&cell.stem());
    }
    progress.finish();
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Csv,
}

/// Parses `--format text|csv` / `--format=csv` out of the arguments.
fn format_from_args() -> Format {
    let args: Vec<String> = std::env::args().collect();
    let mut value: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--format" {
            value = it.next().cloned();
        } else if let Some(v) = a.strip_prefix("--format=") {
            value = Some(v.to_string());
        }
    }
    match value.as_deref() {
        None | Some("text") => Format::Text,
        Some("csv") => Format::Csv,
        Some(other) => {
            eprintln!("unknown --format {other:?} (want text|csv)");
            std::process::exit(2);
        }
    }
}

/// Runs one cell with a collector and a JSONL file sink teed together.
fn run_traced_cell(machine: &MachineSpec, cell: GoldenCell) -> (Vec<TraceEvent>, f64) {
    let config = SimConfig::for_machine(machine, cell.kind.initial_thp());
    let spec = cell.bench.spec(machine);
    let mut policy = cell.kind.make();
    let mut collect = VecSink::new();
    let jsonl_path = format!("results/trace_{}.jsonl", cell.stem());
    let result = match File::create(Path::new(&jsonl_path)) {
        Ok(f) => {
            let mut jsonl = JsonlSink::new(BufWriter::new(f));
            let mut tee = TeeSink::new(vec![&mut collect, &mut jsonl]);
            Simulation::run_traced(machine, &spec, &config, policy.as_mut(), &mut tee)
        }
        // Read-only checkout: still render the timeline from memory.
        Err(_) => Simulation::run_traced(machine, &spec, &config, policy.as_mut(), &mut collect),
    };
    (collect.events, result.runtime_ms)
}

/// One epoch's accumulated row while walking the event stream.
#[derive(Default)]
struct Row {
    faults: u64,
    decisions: Vec<String>,
    snap: Option<EpochSnap>,
}

fn decision_label(d: &PolicyDecision) -> String {
    match d {
        PolicyDecision::EnableThp {
            walk_miss_fraction,
            promote,
            ..
        } => format!(
            "enable-thp(walk-miss {:.1}%{})",
            walk_miss_fraction * 100.0,
            if *promote { ", promote" } else { "" }
        ),
        PolicyDecision::SplitFlag {
            on,
            carrefour_gain_pp,
            split_gain_pp,
        } => format!(
            "split-flag={} (carrefour {carrefour_gain_pp:+.1}pp, split {split_gain_pp:+.1}pp)",
            if *on { "on" } else { "off" }
        ),
        PolicyDecision::SplitShared { base, sharers } => {
            format!("split-shared({base:#x}, {sharers} nodes)")
        }
        PolicyDecision::SplitHot {
            base,
            samples,
            total,
            ..
        } => format!("split-hot({base:#x}, {samples}/{total} samples)"),
        PolicyDecision::BreakerTrip { breaker } => format!("breaker-trip({breaker})"),
    }
}

/// Folds the event stream into per-epoch rows (shared by both formats).
fn build_rows(events: &[TraceEvent]) -> Vec<Row> {
    let mut rows: Vec<Row> = Vec::new();
    let mut cur = Row::default();
    for ev in events {
        match ev {
            TraceEvent::PageFault { .. } => cur.faults += 1,
            TraceEvent::Decision { decision, .. } => cur.decisions.push(decision_label(decision)),
            TraceEvent::EpochEnd { snap, .. } => {
                cur.snap = Some(snap.clone());
                rows.push(std::mem::take(&mut cur));
            }
            _ => {}
        }
    }
    rows
}

/// Renders the epoch timeline as CSV: one header, one row per epoch, the
/// same columns as the text table plus the raw THP booleans. Decisions
/// are semicolon-joined inside one quoted field.
fn render_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from(
        "epoch,imbalance_pct,lar,walk_miss_pct,faults,splits,migrations,\
         collapses,thp_alloc,thp_promote,failed_actions,decisions\n",
    );
    for (i, row) in build_rows(events).iter().enumerate() {
        let Some(snap) = &row.snap else { continue };
        let decisions = row.decisions.join("; ").replace('"', "\"\"");
        let _ = writeln!(
            out,
            "{},{:.3},{:.4},{:.3},{},{},{},{},{},{},{},\"{}\"",
            i,
            snap.imbalance,
            snap.lar,
            snap.walk_miss_fraction * 100.0,
            row.faults,
            snap.splits,
            snap.migrations,
            snap.collapses,
            snap.thp_alloc,
            snap.thp_promote,
            snap.failed_actions,
            decisions,
        );
    }
    out
}

/// Renders the Figure-2-style text timeline for one traced run.
fn render_timeline(cell: &GoldenCell, runtime_ms: f64, events: &[TraceEvent]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== trace timeline: {} under {} (machine-a), runtime {runtime_ms:.1} ms ==",
        cell.bench.name(),
        cell.kind.label()
    );
    let _ = writeln!(
        out,
        "{:>5} {:>9} {:>6} {:>7} {:>7} {:>6} {:>5} {:>5} {:>4} {:>4}  decisions",
        "epoch", "imbal%", "lar", "walk%", "faults", "split", "migr", "clps", "thp", "fail",
    );
    let rows = build_rows(events);
    for (i, row) in rows.iter().enumerate() {
        let Some(snap) = &row.snap else { continue };
        let _ = writeln!(
            out,
            "{:>5} {:>9.1} {:>6.3} {:>7.2} {:>7} {:>6} {:>5} {:>5} {:>4} {:>4}  {}",
            i,
            snap.imbalance,
            snap.lar,
            snap.walk_miss_fraction * 100.0,
            row.faults,
            snap.splits,
            snap.migrations,
            snap.collapses,
            match (snap.thp_alloc, snap.thp_promote) {
                (true, true) => "a+p",
                (true, false) => "a",
                (false, true) => "p",
                (false, false) => "-",
            },
            snap.failed_actions,
            row.decisions.join("; "),
        );
    }
    out
}
