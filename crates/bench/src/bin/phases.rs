//! Phase-change adaptation (Section 4.3).
//!
//! The paper argues Carrefour-LP "naturally supports transient states and
//! phase changes by continuously re-examining its decisions". This
//! experiment builds a two-phase workload — a NUMA-clean private phase
//! where THP is free, followed by a falsely-shared phase where THP is
//! poison — and traces how each system behaves across the transition.

use carrefour::CarrefourLp;
use engine::{NullPolicy, NumaPolicy, SimConfig, SimResult, Simulation};
use numa_topology::MachineSpec;
use vmem::ThpControls;
use workloads::{AccessPattern, PhaseSpec, RegionSpec, WorkloadSpec};

fn two_phase_workload(machine: &MachineSpec) -> WorkloadSpec {
    let threads = machine.total_cores();
    WorkloadSpec {
        name: "two-phase".into(),
        threads,
        regions: vec![
            // Phase 1's data: clean per-thread blocks.
            RegionSpec {
                base: 64 << 30,
                bytes: (threads as u64) << 21,
                share: 0.5,
                pattern: AccessPattern::PrivateBlocked {
                    block_bytes: 256 * 1024,
                    dwell_ops: 1500,
                },
                alloc_skew: 0.0,
                loader_headers: 0.0,
                rw_shared: false,
                read_only: false,
            },
            // Phase 2's data: falsely-shared interleaved chunks.
            RegionSpec {
                base: 66 << 30,
                bytes: 32 << 20,
                share: 0.5,
                pattern: AccessPattern::InterleavedChunks {
                    chunk_bytes: 8192,
                    dwell_ops: 60,
                },
                alloc_skew: 0.0,
                loader_headers: 0.0,
                rw_shared: false,
                read_only: false,
            },
        ],
        ops_per_round: 1000,
        compute_rounds: 0, // superseded by phases
        think_cycles_per_op: 10,
        write_fraction: 0.3,
        phases: vec![
            PhaseSpec {
                rounds: 30,
                shares: vec![0.95, 0.05],
            },
            PhaseSpec {
                rounds: 50,
                shares: vec![0.05, 0.95],
            },
        ],
        mlp: 1,
    }
}

fn run(machine: &MachineSpec, thp: ThpControls, policy: &mut dyn NumaPolicy) -> SimResult {
    let spec = two_phase_workload(machine);
    let config = SimConfig::for_machine(machine, thp);
    Simulation::run(machine, &spec, &config, policy)
}

fn main() {
    let machine = MachineSpec::machine_b();
    let base = run(&machine, ThpControls::small_only(), &mut NullPolicy);
    let thp = run(&machine, ThpControls::thp(), &mut NullPolicy);
    let lp = run(&machine, ThpControls::thp(), &mut CarrefourLp::new());

    println!("two-phase workload on {}:\n", machine.name());
    println!("{:<14} {:>12} {:>9}", "system", "runtime(ms)", "vs Linux");
    for (label, r) in [("Linux-4K", &base), ("THP", &thp), ("Carrefour-LP", &lp)] {
        println!(
            "{:<14} {:>12.2} {:>+8.1}%",
            label,
            r.runtime_ms,
            r.improvement_over(&base)
        );
    }

    println!("\nCarrefour-LP trace (phase change at ~epoch 15):");
    println!(
        "{:>5} {:>6} {:>8} {:>7} {:>7}",
        "epoch", "LAR%", "imbal%", "splits", "migr"
    );
    for (i, e) in lp.epochs.iter().enumerate() {
        if i % 4 == 0 || e.splits > 0 {
            println!(
                "{:>5} {:>6.0} {:>8.1} {:>7} {:>7}",
                i,
                e.counters.lar() * 100.0,
                e.counters.imbalance(),
                e.splits,
                e.migrations
            );
        }
    }
    // Locality collapses at the phase change and is rebuilt by sub-page
    // migrations over the following epochs.
    let n = lp.epochs.len();
    let trough = lp.epochs[n / 3..]
        .iter()
        .map(|e| e.counters.lar())
        .fold(1.0f64, f64::min);
    let end = lp.epochs.last().map(|e| e.counters.lar()).unwrap_or(0.0);
    println!(
        "\nAt the phase change the LAR collapses to {:.0}% as the falsely \
         shared region takes over; the policy then re-places the split \
         sub-pages and recovers to {:.0}% — the continuous re-examination \
         Section 4.3 describes.",
        trough * 100.0,
        end * 100.0
    );
}
