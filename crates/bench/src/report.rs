//! The self-contained HTML suite report (`report` binary).
//!
//! Assembles everything the flight recorder and the runner leave behind —
//! per-epoch metric time-series from [`engine::recorder`], span profiling
//! from `results/BENCH_runner.json` (bench-runner-v5), the attribution
//! file, the crash journal, and the committed baseline — into **one**
//! HTML file with no external assets: styles are inline, charts are
//! hand-rolled inline SVG (the build is dependency-free, DESIGN.md §16).
//!
//! The report's time-series come from a fresh recorded run of the eleven
//! golden cells ([`crate::golden::GOLDEN_CELLS`]): the simulator is
//! deterministic, so re-running them here costs seconds and guarantees
//! the charts describe exactly the commit being reported on, not a stale
//! results file. Each cell's full series is also written out as
//! `results/metrics_<stem>.jsonl` (schema `metrics-v1`) for ad-hoc
//! grep/jq analysis next to the golden trace digests.
//!
//! The span section carries a self-check: per worker, busy (simulate +
//! merge) plus idle must re-compose the suite wall-clock to within 5 % —
//! the acceptance bound for the runner's span accounting. A failing
//! check renders loudly in the report and warns on stderr.

use crate::golden::GOLDEN_CELLS;
use engine::{
    JsonlMetricsRecorder, MetricsRow, SimConfig, Simulation, TeeMetricsRecorder, VecMetricsRecorder,
};
use numa_topology::MachineSpec;
use std::path::Path;

/// One golden cell's recorded time-series.
pub struct CellSeries {
    /// Filename stem (`ua_b__carrefour_lp`), shared with the goldens.
    pub stem: String,
    /// Human title ("ua.B / carrefour-lp").
    pub title: String,
    /// One row per epoch boundary, in epoch order.
    pub rows: Vec<MetricsRow>,
    /// The run's total wall cycles (the paper's runtime axis).
    pub runtime_cycles: u64,
}

/// Runs every golden cell with the metrics recorder on (attribution
/// enabled so the per-epoch ledger deltas are populated) and writes each
/// series to `<dir>/metrics_<stem>.jsonl`. Returns the in-memory series
/// in [`GOLDEN_CELLS`] order. File-write failures warn and keep going:
/// the HTML report can still be built from memory.
pub fn record_golden_cells(dir: &Path) -> Vec<CellSeries> {
    if let Err(e) = std::fs::create_dir_all(dir) {
        crate::logx::warn(&format!("could not create {}: {e}", dir.display()));
    }
    let machine = MachineSpec::machine_a();
    let jobs = crate::runner::resolve_jobs(None);
    crate::runner::par_map(jobs, GOLDEN_CELLS.len(), |i| {
        let cell = GOLDEN_CELLS[i];
        let mut config = SimConfig::for_machine(&machine, cell.kind.initial_thp());
        // Attribution is purely observational (DESIGN.md §11), so turning
        // it on here cannot change the run the charts describe.
        config.attribution = true;
        let spec = cell.bench.spec(&machine);
        let mut policy = cell.kind.make();
        let mut vec_rec = VecMetricsRecorder::new();
        let mut jsonl = JsonlMetricsRecorder::new(Vec::new());
        let result = {
            let mut tee = TeeMetricsRecorder::new(&mut vec_rec, &mut jsonl);
            Simulation::run_recorded(&machine, &spec, &config, policy.as_mut(), None, &mut tee)
        };
        let stem = cell.stem();
        if let Some(e) = jsonl.error() {
            crate::logx::warn(&format!("metrics serialization failed for {stem}: {e}"));
        }
        let path = dir.join(format!("metrics_{stem}.jsonl"));
        if let Err(e) = std::fs::write(&path, jsonl.into_inner()) {
            crate::logx::warn(&format!("could not write {}: {e}", path.display()));
        }
        CellSeries {
            stem,
            title: format!("{} / {}", cell.bench.name(), cell.kind.label()),
            rows: vec_rec.rows,
            runtime_cycles: result.runtime_cycles,
        }
    })
}

/// One per-cell row of a `BENCH_runner.json` file. Span fields are zero
/// when absent (a pre-v5 baseline parses with empty spans).
#[derive(Clone, Debug, Default)]
pub struct RunnerCellRow {
    /// Machine name.
    pub machine: String,
    /// Benchmark label.
    pub benchmark: String,
    /// Policy label.
    pub policy: String,
    /// Simulate seconds (the span's simulate phase).
    pub wall_secs: f64,
    /// Seconds between suite start and worker pickup.
    pub queue_wait_secs: f64,
    /// Seconds in the post-simulate merge/journal/progress step.
    pub merge_secs: f64,
    /// Worker lane (first-pickup numbering).
    pub worker: usize,
    /// True when the row was restored from the crash journal.
    pub from_journal: bool,
}

/// The slice of a `BENCH_runner.json` file the report reads.
#[derive(Clone, Debug, Default)]
pub struct RunnerReport {
    /// Schema tag (`bench-runner-v5`).
    pub schema: String,
    /// Suite wall-clock seconds.
    pub total_wall_secs: f64,
    /// Prefix epochs reused (0 for the figure suite).
    pub epochs_reused: f64,
    /// Per-experiment `(name, owned wall seconds)`.
    pub experiments: Vec<(String, f64)>,
    /// Per-cell rows.
    pub cells: Vec<RunnerCellRow>,
}

/// Pulls `"key": <float>` out of one line of our own stable JSON format.
fn json_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls `"key": "<string>"` out of one line (no escape handling: the
/// runner file only escapes `\` and `"`, which never appear in the
/// machine/benchmark/policy labels the report displays).
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Parses a `BENCH_runner.json` (any `bench-runner-v*` schema; span
/// fields default to zero when missing). `None` when the text has no
/// schema tag at all — a truncated or foreign file.
pub fn parse_runner_json(text: &str) -> Option<RunnerReport> {
    let mut r = RunnerReport::default();
    let mut in_experiments = false;
    let mut in_cells = false;
    for line in text.lines() {
        if let Some(s) = json_str(line, "schema") {
            r.schema = s;
        }
        if let Some(t) = json_f64(line, "total_wall_secs") {
            r.total_wall_secs = t;
        }
        if let Some(e) = json_f64(line, "epochs_reused") {
            r.epochs_reused = e;
        }
        if line.contains("\"experiments\": [") {
            in_experiments = true;
            continue;
        }
        if line.contains("\"cells\": [") {
            in_cells = true;
            continue;
        }
        let closing = line.trim_start().starts_with(']');
        if in_experiments {
            if closing {
                in_experiments = false;
            } else if let (Some(name), Some(secs)) =
                (json_str(line, "name"), json_f64(line, "wall_secs"))
            {
                r.experiments.push((name, secs));
            }
            continue;
        }
        if in_cells {
            if closing {
                in_cells = false;
            } else if let (Some(machine), Some(benchmark), Some(policy)) = (
                json_str(line, "machine"),
                json_str(line, "benchmark"),
                json_str(line, "policy"),
            ) {
                r.cells.push(RunnerCellRow {
                    machine,
                    benchmark,
                    policy,
                    wall_secs: json_f64(line, "wall_secs").unwrap_or(0.0),
                    queue_wait_secs: json_f64(line, "queue_wait_secs").unwrap_or(0.0),
                    merge_secs: json_f64(line, "merge_secs").unwrap_or(0.0),
                    worker: json_f64(line, "worker").unwrap_or(0.0) as usize,
                    from_journal: line.contains("\"from_journal\": true"),
                });
            }
        }
    }
    if r.schema.is_empty() {
        None
    } else {
        Some(r)
    }
}

/// One worker lane's share of the suite wall-clock.
#[derive(Clone, Debug)]
pub struct WorkerLane {
    /// Worker id (first-pickup numbering).
    pub worker: usize,
    /// Seconds spent simulating + merging on this lane.
    pub busy_secs: f64,
    /// `total - busy`, clamped at zero.
    pub idle_secs: f64,
    /// Indices into [`RunnerReport::cells`] run on this lane.
    pub cells: Vec<usize>,
}

/// The runner span decomposition: every worker lane's busy + idle split
/// of the suite wall-clock, journal-restored rows excluded (their work
/// happened in a dead process).
#[derive(Clone, Debug, Default)]
pub struct SpanBreakdown {
    /// Suite wall-clock seconds.
    pub total_wall_secs: f64,
    /// One lane per worker that picked up at least one cell.
    pub lanes: Vec<WorkerLane>,
    /// Sum of queue-wait across live cells (scheduling pressure).
    pub queue_wait_total_secs: f64,
}

impl SpanBreakdown {
    /// Builds the decomposition from a parsed runner file.
    pub fn from_runner(r: &RunnerReport) -> SpanBreakdown {
        let mut lanes: Vec<WorkerLane> = Vec::new();
        let mut queue_wait_total_secs = 0.0;
        for (i, c) in r.cells.iter().enumerate() {
            if c.from_journal {
                continue;
            }
            queue_wait_total_secs += c.queue_wait_secs;
            let lane = match lanes.iter_mut().find(|l| l.worker == c.worker) {
                Some(l) => l,
                None => {
                    lanes.push(WorkerLane {
                        worker: c.worker,
                        busy_secs: 0.0,
                        idle_secs: 0.0,
                        cells: Vec::new(),
                    });
                    lanes.last_mut().expect("just pushed")
                }
            };
            lane.busy_secs += c.wall_secs + c.merge_secs;
            lane.cells.push(i);
        }
        lanes.sort_by_key(|l| l.worker);
        for l in &mut lanes {
            l.idle_secs = (r.total_wall_secs - l.busy_secs).max(0.0);
        }
        SpanBreakdown {
            total_wall_secs: r.total_wall_secs,
            lanes,
            queue_wait_total_secs,
        }
    }

    /// The worst lane's relative error when its busy + idle split is
    /// summed back against the suite wall-clock. Zero by construction
    /// unless a lane's busy time *exceeds* the suite wall — which is
    /// exactly the accounting bug the 5 % acceptance bound exists to
    /// catch (spans double-counted, or anchored to the wrong clock).
    pub fn worst_error_fraction(&self) -> f64 {
        if self.total_wall_secs <= 0.0 {
            return if self.lanes.iter().any(|l| l.busy_secs > 0.0) {
                1.0
            } else {
                0.0
            };
        }
        self.lanes
            .iter()
            .map(|l| ((l.busy_secs + l.idle_secs) - self.total_wall_secs).abs())
            .fold(0.0_f64, f64::max)
            / self.total_wall_secs
    }

    /// Whether the decomposition re-composes the wall-clock within 5 %.
    pub fn within_bound(&self) -> bool {
        self.worst_error_fraction() <= 0.05
    }
}

/// Escapes text for HTML body and attribute positions.
fn hesc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// An inline SVG sparkline of `values` in sample order. Non-finite
/// values are dropped; an empty or constant series draws a flat midline
/// rather than dividing by zero.
pub fn sparkline(values: &[f64], w: u32, h: u32, stroke: &str) -> String {
    let vals: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (w_f, h_f) = (w as f64, h as f64);
    let pad = 2.0;
    let points = if vals.len() < 2 {
        format!(
            "{pad:.1},{:.1} {:.1},{:.1}",
            h_f / 2.0,
            w_f - pad,
            h_f / 2.0
        )
    } else {
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = if max > min { max - min } else { 1.0 };
        let dx = (w_f - 2.0 * pad) / (vals.len() - 1) as f64;
        vals.iter()
            .enumerate()
            .map(|(i, v)| {
                let x = pad + dx * i as f64;
                let y = if max > min {
                    pad + (h_f - 2.0 * pad) * (1.0 - (v - min) / span)
                } else {
                    h_f / 2.0
                };
                format!("{x:.1},{y:.1}")
            })
            .collect::<Vec<_>>()
            .join(" ")
    };
    format!(
        "<svg class=\"spark\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\" \
         xmlns=\"http://www.w3.org/2000/svg\"><polyline points=\"{points}\" fill=\"none\" \
         stroke=\"{stroke}\" stroke-width=\"1.2\"/></svg>"
    )
}

/// Deterministic fill color for a benchmark label (timeline rects).
fn color_for(label: &str) -> &'static str {
    const PALETTE: [&str; 8] = [
        "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948", "#b07aa1", "#9c755f",
    ];
    let h: usize = label
        .bytes()
        .fold(0usize, |a, b| a.wrapping_mul(31) + b as usize);
    PALETTE[h % PALETTE.len()]
}

/// An inline SVG timeline: one horizontal lane per worker, one rect per
/// live cell from its pickup time (`queue_wait_secs`) for its simulate +
/// merge duration, colored by benchmark, with a hover `<title>`.
pub fn worker_timeline(bd: &SpanBreakdown, cells: &[RunnerCellRow], w: u32) -> String {
    let row_h = 16;
    let h = (bd.lanes.len() as u32) * row_h + 4;
    let total = if bd.total_wall_secs > 0.0 {
        bd.total_wall_secs
    } else {
        1.0
    };
    let mut rects = String::new();
    for (li, lane) in bd.lanes.iter().enumerate() {
        let y = li as u32 * row_h + 2;
        for &ci in &lane.cells {
            let c = &cells[ci];
            let x = c.queue_wait_secs / total * (w as f64 - 40.0) + 38.0;
            let width = ((c.wall_secs + c.merge_secs) / total * (w as f64 - 40.0)).max(1.0);
            rects.push_str(&format!(
                "<rect x=\"{x:.1}\" y=\"{y}\" width=\"{width:.1}\" height=\"{}\" fill=\"{}\">\
                 <title>{} / {} — wait {:.3}s, sim {:.3}s, merge {:.3}s</title></rect>",
                row_h - 4,
                color_for(&c.benchmark),
                hesc(&c.benchmark),
                hesc(&c.policy),
                c.queue_wait_secs,
                c.wall_secs,
                c.merge_secs,
            ));
        }
        rects.push_str(&format!(
            "<text x=\"2\" y=\"{}\" font-size=\"10\" fill=\"#555\">w{}</text>",
            y + row_h - 7,
            lane.worker
        ));
    }
    format!(
        "<svg width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\" \
         xmlns=\"http://www.w3.org/2000/svg\">{rects}</svg>"
    )
}

/// Formats the metric block of one series: label, min→max range, last
/// value, and the sparkline.
fn metric_block(label: &str, values: &[f64], stroke: &str) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max, last) = if finite.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        (
            finite.iter().copied().fold(f64::INFINITY, f64::min),
            finite.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            *finite.last().expect("non-empty"),
        )
    };
    format!(
        "<div class=\"metric\"><span class=\"mname\">{}</span>{}\
         <span class=\"mrange\">{min:.3} … {max:.3} (last {last:.3})</span></div>",
        hesc(label),
        sparkline(values, 220, 36, stroke),
    )
}

/// Assembles the full self-contained HTML document.
///
/// `journal` is `(ok_lines, panicked_lines)` from the suite's crash
/// journal when one exists; `attrib_present` notes whether
/// `results/ATTRIB_all.json` was found.
pub fn html_report(
    series: &[CellSeries],
    runner: Option<&RunnerReport>,
    baseline: Option<&RunnerReport>,
    attrib_present: bool,
    journal: Option<(usize, usize)>,
) -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push_str(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>Carrefour-LP flight recorder report</title><style>\
         body{font-family:system-ui,sans-serif;margin:2em auto;max-width:72em;color:#222}\
         h1,h2,h3{color:#123}table{border-collapse:collapse;margin:.5em 0}\
         td,th{border:1px solid #ccc;padding:.2em .6em;font-size:.9em;text-align:right}\
         th{background:#f2f5f8}td.l,th.l{text-align:left}\
         .metric{display:inline-block;margin:.3em 1em .3em 0;vertical-align:top}\
         .mname{display:block;font-size:.8em;color:#555}\
         .mrange{display:block;font-size:.7em;color:#888}\
         .spark{background:#fafcfe;border:1px solid #e5e9ee}\
         .pass{color:#186218;font-weight:bold}.fail{color:#a11;font-weight:bold}\
         .cell{border-top:1px solid #ddd;padding:.6em 0}\
         .note{color:#666;font-size:.85em}\
         </style></head><body>\n<h1>Carrefour-LP flight recorder report</h1>\n",
    );
    out.push_str(&format!(
        "<p class=\"note\">Recorded {} golden cells (schema metrics-v1); runner file: {}; \
         baseline: {}; attribution file: {}.</p>\n",
        series.len(),
        runner.map_or("absent".into(), |r| hesc(&r.schema)),
        baseline.map_or("absent".into(), |r| hesc(&r.schema)),
        if attrib_present { "present" } else { "absent" },
    ));
    if let Some((ok, bad)) = journal {
        out.push_str(&format!(
            "<p class=\"note\">Crash journal: {ok} ok line(s), {bad} failure line(s).</p>\n"
        ));
    }

    // §1 Paper metrics summary — the figures' end-state numbers per cell.
    out.push_str(
        "<h2>Paper metrics (end of run)</h2>\n<table><tr>\
         <th class=\"l\">cell</th><th>runtime (Gcycles)</th><th>final LAR</th>\
         <th>mean imbalance %</th><th>migrations</th><th>splits</th>\
         <th>PAMUP %</th><th>hot pages</th><th>PSP %</th></tr>\n",
    );
    for s in series {
        let mean_imb = if s.rows.is_empty() {
            0.0
        } else {
            s.rows.iter().map(|r| r.imbalance).sum::<f64>() / s.rows.len() as f64
        };
        let migr: u64 = s.rows.iter().map(|r| r.migrations).sum();
        let splits: u64 = s.rows.iter().map(|r| r.splits).sum();
        let last = s.rows.last();
        let pages = last.and_then(|r| r.pages);
        out.push_str(&format!(
            "<tr><td class=\"l\">{}</td><td>{:.3}</td><td>{:.3}</td><td>{:.1}</td>\
             <td>{migr}</td><td>{splits}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            hesc(&s.title),
            s.runtime_cycles as f64 / 1e9,
            last.map_or(0.0, |r| r.lar),
            mean_imb,
            pages.map_or("—".into(), |p| format!("{:.1}", p.pamup)),
            pages.map_or("—".into(), |p| p.nhp.to_string()),
            pages.map_or("—".into(), |p| format!("{:.1}", p.psp)),
        ));
    }
    out.push_str("</table>\n");

    // §2 Per-cell time-series.
    out.push_str("<h2>Per-epoch time-series (golden cells)</h2>\n");
    for s in series {
        out.push_str(&format!(
            "<div class=\"cell\"><h3>{}</h3>\n",
            hesc(&s.title)
        ));
        let f = |g: fn(&MetricsRow) -> f64| s.rows.iter().map(g).collect::<Vec<f64>>();
        out.push_str(&metric_block("imbalance %", &f(|r| r.imbalance), "#e15759"));
        out.push_str(&metric_block("LAR", &f(|r| r.lar), "#4e79a7"));
        out.push_str(&metric_block(
            "TLB hit rate",
            &f(|r| r.tlb_hit_rate),
            "#59a14f",
        ));
        out.push_str(&metric_block(
            "walk-cache hit rate",
            &f(|r| r.walk_cache_hit_rate),
            "#76b7b2",
        ));
        out.push_str(&metric_block(
            "epoch cycles",
            &f(|r| r.epoch_cycles as f64),
            "#b07aa1",
        ));
        out.push_str(&metric_block(
            "walk-miss fraction",
            &f(|r| r.walk_miss_fraction),
            "#f28e2b",
        ));
        if s.rows.iter().any(|r| r.pages.is_some()) {
            let g = |h: fn(&engine::PageSnapshot) -> f64| {
                s.rows
                    .iter()
                    .map(|r| r.pages.as_ref().map_or(f64::NAN, h))
                    .collect::<Vec<f64>>()
            };
            out.push_str(&metric_block("PAMUP %", &g(|p| p.pamup), "#edc948"));
            out.push_str(&metric_block("PSP %", &g(|p| p.psp), "#9c755f"));
        }
        if s.rows.iter().any(|r| r.policy.is_some()) {
            let depth: Vec<f64> = s
                .rows
                .iter()
                .map(|r| r.policy.map_or(f64::NAN, |p| p.retry_queue_depth as f64))
                .collect();
            out.push_str(&metric_block("retry queue depth", &depth, "#a11"));
            let trips = s
                .rows
                .last()
                .and_then(|r| r.policy)
                .map_or((0, 0), |p| (p.split_breaker_trips, p.move_breaker_trips));
            out.push_str(&format!(
                "<p class=\"note\">breaker trips at end of run: split {}, move {}</p>",
                trips.0, trips.1
            ));
        }
        if s.rows.iter().any(|r| r.attrib.is_some()) {
            let policy_cycles: Vec<f64> = s
                .rows
                .iter()
                .map(|r| {
                    r.attrib.as_ref().map_or(f64::NAN, |b| {
                        (b.policy_migration + b.policy_split + b.policy_replication) as f64
                    })
                })
                .collect();
            out.push_str(&metric_block("policy cycles/epoch", &policy_cycles, "#555"));
        }
        out.push_str("</div>\n");
    }

    // §3 Runner span breakdown.
    out.push_str("<h2>Runner span breakdown</h2>\n");
    match runner {
        None => out.push_str(
            "<p class=\"note\">No results/BENCH_runner.json found — run \
             <code>all_experiments</code> first for the span section.</p>\n",
        ),
        Some(r) => {
            let bd = SpanBreakdown::from_runner(r);
            let busy: f64 = bd.lanes.iter().map(|l| l.busy_secs).sum();
            out.push_str(&format!(
                "<p>Suite wall-clock <b>{:.3}s</b> across {} worker lane(s); busy \
                 {busy:.3}s, queue-wait total {:.3}s, epochs reused {:.0}.</p>\n",
                bd.total_wall_secs,
                bd.lanes.len(),
                bd.queue_wait_total_secs,
                r.epochs_reused,
            ));
            out.push_str(&worker_timeline(&bd, &r.cells, 900));
            out.push_str(
                "<table><tr><th>worker</th><th>busy s</th><th>idle s</th>\
                 <th>cells</th><th>busy+idle vs wall</th></tr>\n",
            );
            for l in &bd.lanes {
                let err = if bd.total_wall_secs > 0.0 {
                    ((l.busy_secs + l.idle_secs) - bd.total_wall_secs).abs() / bd.total_wall_secs
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "<tr><td>w{}</td><td>{:.3}</td><td>{:.3}</td><td>{}</td>\
                     <td>{:.1}%</td></tr>\n",
                    l.worker,
                    l.busy_secs,
                    l.idle_secs,
                    l.cells.len(),
                    err * 100.0
                ));
            }
            out.push_str("</table>\n");
            let (class, verdict) = if bd.within_bound() {
                ("pass", "PASS")
            } else {
                ("fail", "FAIL")
            };
            out.push_str(&format!(
                "<p>Span self-check (every lane re-composes the wall-clock within 5%): \
                 <span class=\"{class}\">{verdict}</span> — worst lane error {:.2}%.</p>\n",
                bd.worst_error_fraction() * 100.0
            ));
        }
    }

    // §4 Regression deltas vs the committed baseline.
    out.push_str("<h2>Regression deltas vs baseline</h2>\n");
    match (runner, baseline) {
        (Some(now), Some(base)) => {
            out.push_str(
                "<table><tr><th class=\"l\">experiment</th><th>baseline s</th>\
                 <th>now s</th><th>ratio</th><th class=\"l\"></th></tr>\n",
            );
            for (name, now_secs) in &now.experiments {
                let Some((_, base_secs)) = base.experiments.iter().find(|(n, _)| n == name) else {
                    continue;
                };
                if *base_secs <= 0.0 || *now_secs <= 0.0 {
                    continue;
                }
                let flag = if *now_secs > base_secs * 1.25 {
                    "<span class=\"fail\">REGRESSION</span>"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "<tr><td class=\"l\">{}</td><td>{base_secs:.3}</td>\
                     <td>{now_secs:.3}</td><td>{:.2}x</td><td class=\"l\">{flag}</td></tr>\n",
                    hesc(name),
                    base_secs / now_secs,
                ));
            }
            out.push_str("</table>\n");
            out.push_str(&format!(
                "<p class=\"note\">Totals: baseline {:.3}s → now {:.3}s; epochs reused \
                 {:.0} → {:.0}. Wall-clock comparisons on shared runners are noisy — \
                 these are the same soft gates <code>--compare</code> prints.</p>\n",
                base.total_wall_secs, now.total_wall_secs, base.epochs_reused, now.epochs_reused,
            ));
        }
        _ => out.push_str(
            "<p class=\"note\">Baseline comparison needs both results/BENCH_runner.json \
             and results/BENCH_baseline.json.</p>\n",
        ),
    }

    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_handles_degenerate_series() {
        for vals in [&[][..], &[1.0][..], &[2.0, 2.0, 2.0][..], &[f64::NAN][..]] {
            let svg = sparkline(vals, 100, 20, "#000");
            assert!(svg.starts_with("<svg"), "{svg}");
            assert!(!svg.contains("NaN"), "{svg}");
        }
        let svg = sparkline(&[0.0, 1.0, 0.5], 100, 20, "#000");
        assert!(svg.contains("polyline"));
    }

    fn synthetic_v5() -> String {
        concat!(
            "{\n",
            "  \"schema\": \"bench-runner-v5\",\n",
            "  \"total_wall_secs\": 10.000,\n",
            "  \"epochs_reused\": 7,\n",
            "  \"experiments\": [\n",
            "    {\"name\": \"fig2\", \"cells\": 4, \"reused_cells\": 0, \"wall_secs\": 6.000},\n",
            "    {\"name\": \"fig3\", \"cells\": 2, \"reused_cells\": 2, \"wall_secs\": 0.000}\n",
            "  ],\n",
            "  \"cells\": [\n",
            "    {\"machine\": \"machine-a\", \"benchmark\": \"ua.B\", \"policy\": \"linux-4k\", \"wall_secs\": 6.000, \"estimated_ops\": 5, \"actual_ops\": 5, \"queue_wait_secs\": 0.100, \"merge_secs\": 0.010, \"worker\": 0, \"lanes_free_start\": 2, \"from_journal\": false},\n",
            "    {\"machine\": \"machine-a\", \"benchmark\": \"cg.D\", \"policy\": \"carrefour-lp\", \"wall_secs\": 3.000, \"estimated_ops\": 5, \"actual_ops\": 5, \"queue_wait_secs\": 0.200, \"merge_secs\": 0.020, \"worker\": 1, \"lanes_free_start\": 2, \"from_journal\": false},\n",
            "    {\"machine\": \"machine-a\", \"benchmark\": \"cg.D\", \"policy\": \"linux-thp\", \"wall_secs\": 9.000, \"estimated_ops\": 5, \"actual_ops\": 5, \"queue_wait_secs\": 0.000, \"merge_secs\": 0.000, \"worker\": 0, \"lanes_free_start\": 0, \"from_journal\": true}\n",
            "  ]\n}\n"
        )
        .to_string()
    }

    #[test]
    fn runner_json_round_trips() {
        let r = parse_runner_json(&synthetic_v5()).expect("parses");
        assert_eq!(r.schema, "bench-runner-v5");
        assert_eq!(r.total_wall_secs, 10.0);
        assert_eq!(r.epochs_reused, 7.0);
        assert_eq!(r.experiments.len(), 2);
        assert_eq!(r.experiments[0], ("fig2".to_string(), 6.0));
        assert_eq!(r.cells.len(), 3);
        assert_eq!(r.cells[1].worker, 1);
        assert!(r.cells[2].from_journal);
        assert!(parse_runner_json("not json at all").is_none());
    }

    #[test]
    fn span_breakdown_excludes_journal_rows_and_passes_bound() {
        let r = parse_runner_json(&synthetic_v5()).expect("parses");
        let bd = SpanBreakdown::from_runner(&r);
        // The journal-restored 9s cell on worker 0 must not count.
        assert_eq!(bd.lanes.len(), 2);
        assert!((bd.lanes[0].busy_secs - 6.01).abs() < 1e-9);
        assert!((bd.lanes[1].busy_secs - 3.02).abs() < 1e-9);
        assert!(bd.within_bound(), "err {}", bd.worst_error_fraction());
        // A lane busier than the suite wall must fail the bound.
        let mut broken = r.clone();
        broken.total_wall_secs = 5.0;
        let bd = SpanBreakdown::from_runner(&broken);
        assert!(!bd.within_bound());
    }

    #[test]
    fn html_report_is_standalone_and_escaped() {
        let series = vec![CellSeries {
            stem: "x".into(),
            title: "ua.B / <tag> & \"quote\"".into(),
            rows: Vec::new(),
            runtime_cycles: 1_000_000,
        }];
        let r = parse_runner_json(&synthetic_v5()).expect("parses");
        let html = html_report(&series, Some(&r), Some(&r), true, Some((3, 1)));
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("&lt;tag&gt; &amp; &quot;quote&quot;"));
        assert!(!html.contains("<tag>"));
        assert!(html.contains("<svg"), "at least the timeline renders");
        assert!(html.contains("PASS"));
        assert!(!html.contains("href="), "no external assets");
        assert!(!html.contains("src="), "no external assets");
    }
}
