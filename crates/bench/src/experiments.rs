//! Cell definitions and rendering for every figure/table experiment.
//!
//! Each experiment used to live entirely inside its own binary, repeating
//! the same machine/workload setup and inline threading. Here every
//! experiment is reduced to its two irreducible parts:
//!
//! * **specs** — the list of [`CellSpec`]s it needs, built by a pure
//!   function of the paper's (machine × benchmark × policy) choices;
//! * **render** — a function from the resulting [`Cell`] rows to the
//!   paper-layout stdout table plus the `results/*.json` file.
//!
//! The binaries shrink to one [`run_standalone`] call, and
//! `all_experiments` can fetch every experiment via [`all`], dedup
//! identical cells across experiments (sound because the simulator is
//! deterministic: equal [`CellSpec::key`]s imply equal results), and run
//! the union through one shared pool.

use crate::runner::{self, CellSpec, Progress};
use crate::{find, improvement, machines, save_json, Cell, PolicyKind};
use numa_topology::MachineSpec;
use workloads::Benchmark;

/// One experiment: its name (binary name and `results/` stem), the cells
/// it needs, and how it renders them.
pub struct Experiment {
    /// Binary/experiment name (`fig1`, `table2`, ...).
    pub name: &'static str,
    /// Cells in submission order. Renderers may rely on this order.
    pub specs: Vec<CellSpec>,
    /// Renders the rows (same order as `specs`) to stdout + `results/`.
    pub render: fn(&[Cell]),
}

/// Every experiment `all_experiments` drives, in its traditional order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "fig1",
            specs: fig1_specs(),
            render: fig1_render,
        },
        Experiment {
            name: "table1",
            specs: table1_specs(),
            render: table1_render,
        },
        Experiment {
            name: "fig2",
            specs: fig2_specs(),
            render: fig2_render,
        },
        Experiment {
            name: "table2",
            specs: table2_specs(),
            render: table2_render,
        },
        Experiment {
            name: "fig3",
            specs: fig3_specs(),
            render: fig3_render,
        },
        Experiment {
            name: "fig4",
            specs: fig4_specs(),
            render: fig4_render,
        },
        Experiment {
            name: "table3",
            specs: table3_specs(),
            render: table3_render,
        },
        Experiment {
            name: "fig5",
            specs: fig5_specs(),
            render: fig5_render,
        },
        Experiment {
            name: "overhead",
            specs: overhead_specs(),
            render: overhead_render,
        },
        Experiment {
            name: "verylarge",
            specs: verylarge_specs(),
            render: verylarge_render,
        },
        Experiment {
            name: "figPT",
            specs: fig_pt_specs(),
            render: fig_pt_render,
        },
        Experiment {
            name: "tuned",
            specs: tuned_specs(),
            render: tuned_render,
        },
    ]
}

/// Runs one experiment by name on the shared runner — the entire body of
/// each standalone binary.
pub fn run_standalone(name: &str) {
    let exp = all()
        .into_iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("unknown experiment {name}"));
    let progress = Progress::new(exp.name, exp.specs.len());
    let cells = runner::run_cells(&exp.specs, runner::default_jobs(), &progress);
    progress.finish();
    (exp.render)(&cells);
}

/// The full benchmark set minus streamcluster (which only appears in the
/// very-large-pages section).
fn suite() -> Vec<Benchmark> {
    Benchmark::all()
        .iter()
        .copied()
        .filter(|b| *b != Benchmark::Streamcluster)
        .collect()
}

/// The rows of one machine, in spec order.
fn on_machine(cells: &[Cell], machine: &MachineSpec) -> Vec<Cell> {
    cells
        .iter()
        .filter(|c| c.machine == machine.name())
        .cloned()
        .collect()
}

/// "(A)" / "(B)" suffix used by the per-row tables.
fn machine_tag(machine: &MachineSpec) -> &'static str {
    if machine.name().ends_with('a') {
        "A"
    } else {
        "B"
    }
}

/// Specs of a (machine × bench × policy) sweep over both machines.
fn both_machines(benches: &[Benchmark], policies: &[PolicyKind]) -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for machine in machines() {
        specs.extend(crate::matrix_specs(&machine, benches, policies));
    }
    specs
}

// ---------------------------------------------------------------- fig1

fn fig1_specs() -> Vec<CellSpec> {
    both_machines(&suite(), &[PolicyKind::Linux4k, PolicyKind::LinuxThp])
}

fn fig1_render(cells: &[Cell]) {
    for machine in machines() {
        println!(
            "== Figure 1 ({}) : THP improvement over Linux ==",
            machine.name()
        );
        let cells = on_machine(cells, &machine);
        for &b in &suite() {
            let imp = improvement(&cells, b, PolicyKind::LinuxThp, PolicyKind::Linux4k);
            println!("{:<16} {:>8.1}", b.name(), imp);
        }
        save_json(&format!("fig1_{}", machine.name()), &cells);
        println!();
    }
}

// -------------------------------------------------------------- table1

/// The paper's Table 1 rows: (benchmark, machine).
fn table1_rows() -> [(Benchmark, MachineSpec); 5] {
    [
        (Benchmark::CgD, MachineSpec::machine_b()),
        (Benchmark::UaC, MachineSpec::machine_b()),
        (Benchmark::Wc, MachineSpec::machine_b()),
        (Benchmark::Ssca, MachineSpec::machine_a()),
        (Benchmark::SpecJbb, MachineSpec::machine_a()),
    ]
}

fn table1_specs() -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for (bench, machine) in table1_rows() {
        specs.push(CellSpec::new(machine.clone(), bench, PolicyKind::Linux4k));
        specs.push(CellSpec::new(machine, bench, PolicyKind::LinuxThp));
    }
    specs
}

fn table1_render(cells: &[Cell]) {
    println!("== Table 1: detailed analysis (machine in parentheses) ==");
    println!(
        "{:<14} {:>9} | {:>15} {:>15} | {:>8} {:>8} | {:>7} {:>7} | {:>8} {:>8}",
        "bench",
        "THP/4K %",
        "fault(Linux)",
        "fault(THP)",
        "walk%4K",
        "walk%THP",
        "LAR 4K",
        "LAR THP",
        "imb 4K",
        "imb THP"
    );
    for (i, (bench, machine)) in table1_rows().into_iter().enumerate() {
        let linux = &cells[2 * i].result;
        let thp = &cells[2 * i + 1].result;
        let label = format!("{} ({})", bench.name(), machine_tag(&machine));
        println!(
            "{:<14} {:>9.1} | {:>8.2}ms {:>4.1}% {:>8.2}ms {:>4.1}% | {:>8.1} {:>8.1} | {:>7.0} {:>7.0} | {:>8.1} {:>8.1}",
            label,
            thp.improvement_over(linux),
            machine.cycles_to_ms(linux.lifetime.max_fault_cycles),
            linux.lifetime.max_fault_fraction * 100.0,
            machine.cycles_to_ms(thp.lifetime.max_fault_cycles),
            thp.lifetime.max_fault_fraction * 100.0,
            linux.lifetime.walk_miss_fraction * 100.0,
            thp.lifetime.walk_miss_fraction * 100.0,
            linux.lifetime.lar * 100.0,
            thp.lifetime.lar * 100.0,
            linux.lifetime.imbalance,
            thp.lifetime.imbalance,
        );
    }
    save_json("table1", cells);
}

// ---------------------------------------------------------------- fig2

fn fig2_specs() -> Vec<CellSpec> {
    both_machines(
        Benchmark::numa_affected(),
        &[
            PolicyKind::Linux4k,
            PolicyKind::LinuxThp,
            PolicyKind::Carrefour2m,
        ],
    )
}

fn fig2_render(cells: &[Cell]) {
    for machine in machines() {
        println!(
            "== Figure 2 ({}) : improvement over Linux ==",
            machine.name()
        );
        println!("{:<16} {:>8} {:>14}", "bench", "THP", "Carrefour-2M");
        let cells = on_machine(cells, &machine);
        for &b in Benchmark::numa_affected() {
            let thp = improvement(&cells, b, PolicyKind::LinuxThp, PolicyKind::Linux4k);
            let c2m = improvement(&cells, b, PolicyKind::Carrefour2m, PolicyKind::Linux4k);
            println!("{:<16} {:>8.1} {:>14.1}", b.name(), thp, c2m);
        }
        save_json(&format!("fig2_{}", machine.name()), &cells);
        println!();
    }
}

// -------------------------------------------------------------- table2

fn table2_specs() -> Vec<CellSpec> {
    crate::matrix_specs(
        &MachineSpec::machine_a(),
        &[Benchmark::SpecJbb, Benchmark::CgD, Benchmark::UaB],
        &[
            PolicyKind::Linux4k,
            PolicyKind::LinuxThp,
            PolicyKind::Carrefour2m,
        ],
    )
}

fn table2_render(cells: &[Cell]) {
    println!("== Table 2 (machine A): page metrics ==");
    println!(
        "{:<10} {:<14} {:>7} {:>5} {:>7} {:>10} {:>7}",
        "bench", "policy", "PAMUP%", "NHP", "PSP%", "imbalance%", "LAR%"
    );
    for (i, c) in cells.iter().enumerate() {
        let r = &c.result;
        println!(
            "{:<10} {:<14} {:>7.1} {:>5} {:>7.1} {:>10.1} {:>7.0}",
            c.benchmark,
            c.policy,
            r.pages.pamup,
            r.pages.nhp,
            r.pages.psp,
            r.lifetime.imbalance,
            r.lifetime.lar * 100.0,
        );
        if i % 3 == 2 {
            println!();
        }
    }
    save_json("table2", cells);
}

// ---------------------------------------------------------------- fig3

fn fig3_specs() -> Vec<CellSpec> {
    both_machines(
        Benchmark::numa_affected(),
        &[
            PolicyKind::Linux4k,
            PolicyKind::LinuxThp,
            PolicyKind::CarrefourLp,
        ],
    )
}

fn fig3_render(cells: &[Cell]) {
    for machine in machines() {
        println!(
            "== Figure 3 ({}) : improvement over Linux ==",
            machine.name()
        );
        println!("{:<16} {:>8} {:>14}", "bench", "THP", "Carrefour-LP");
        let cells = on_machine(cells, &machine);
        for &b in Benchmark::numa_affected() {
            let thp = improvement(&cells, b, PolicyKind::LinuxThp, PolicyKind::Linux4k);
            let lp = improvement(&cells, b, PolicyKind::CarrefourLp, PolicyKind::Linux4k);
            println!("{:<16} {:>8.1} {:>14.1}", b.name(), thp, lp);
        }
        save_json(&format!("fig3_{}", machine.name()), &cells);
        println!();
    }
}

// ---------------------------------------------------------------- fig4

fn fig4_specs() -> Vec<CellSpec> {
    both_machines(
        Benchmark::numa_affected(),
        &[
            PolicyKind::Linux4k,
            PolicyKind::Carrefour2m,
            PolicyKind::ConservativeOnly,
            PolicyKind::ReactiveOnly,
            PolicyKind::CarrefourLp,
        ],
    )
}

fn fig4_render(cells: &[Cell]) {
    for machine in machines() {
        println!(
            "== Figure 4 ({}) : improvement over Linux ==",
            machine.name()
        );
        println!(
            "{:<16} {:>13} {:>13} {:>9} {:>13}",
            "bench", "Carrefour-2M", "Conservative", "Reactive", "Carrefour-LP"
        );
        let cells = on_machine(cells, &machine);
        for &b in Benchmark::numa_affected() {
            let c2m = improvement(&cells, b, PolicyKind::Carrefour2m, PolicyKind::Linux4k);
            let cons = improvement(&cells, b, PolicyKind::ConservativeOnly, PolicyKind::Linux4k);
            let reac = improvement(&cells, b, PolicyKind::ReactiveOnly, PolicyKind::Linux4k);
            let lp = improvement(&cells, b, PolicyKind::CarrefourLp, PolicyKind::Linux4k);
            println!(
                "{:<16} {:>13.1} {:>13.1} {:>9.1} {:>13.1}",
                b.name(),
                c2m,
                cons,
                reac,
                lp
            );
        }
        save_json(&format!("fig4_{}", machine.name()), &cells);
        println!();
    }
}

// -------------------------------------------------------------- table3

fn table3_rows() -> [(Benchmark, MachineSpec); 3] {
    [
        (Benchmark::CgD, MachineSpec::machine_b()),
        (Benchmark::UaB, MachineSpec::machine_a()),
        (Benchmark::UaC, MachineSpec::machine_b()),
    ]
}

const TABLE3_POLICIES: [PolicyKind; 4] = [
    PolicyKind::Linux4k,
    PolicyKind::LinuxThp,
    PolicyKind::Carrefour2m,
    PolicyKind::CarrefourLp,
];

fn table3_specs() -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for (bench, machine) in table3_rows() {
        for kind in TABLE3_POLICIES {
            specs.push(CellSpec::new(machine.clone(), bench, kind));
        }
    }
    specs
}

fn table3_render(cells: &[Cell]) {
    println!("== Table 3: LAR % (left) and imbalance % (right) ==");
    println!(
        "{:<12} {:>7} {:>7} {:>9} {:>9} | {:>7} {:>7} {:>9} {:>9}",
        "bench", "Linux", "THP", "Carr.2M", "Carr.LP", "Linux", "THP", "Carr.2M", "Carr.LP"
    );
    for (i, (bench, machine)) in table3_rows().into_iter().enumerate() {
        let row = &cells[4 * i..4 * i + 4];
        let label = format!("{} ({})", bench.name(), machine_tag(&machine));
        println!(
            "{:<12} {:>7.0} {:>7.0} {:>9.0} {:>9.0} | {:>7.0} {:>7.0} {:>9.0} {:>9.0}",
            label,
            row[0].result.lifetime.lar * 100.0,
            row[1].result.lifetime.lar * 100.0,
            row[2].result.lifetime.lar * 100.0,
            row[3].result.lifetime.lar * 100.0,
            row[0].result.lifetime.imbalance,
            row[1].result.lifetime.imbalance,
            row[2].result.lifetime.imbalance,
            row[3].result.lifetime.imbalance,
        );
    }
    save_json("table3", cells);
}

// ---------------------------------------------------------------- fig5

fn fig5_specs() -> Vec<CellSpec> {
    both_machines(
        Benchmark::numa_unaffected(),
        &[
            PolicyKind::Linux4k,
            PolicyKind::LinuxThp,
            PolicyKind::CarrefourLp,
        ],
    )
}

fn fig5_render(cells: &[Cell]) {
    for machine in machines() {
        println!(
            "== Figure 5 ({}) : improvement over Linux ==",
            machine.name()
        );
        println!("{:<16} {:>8} {:>14}", "bench", "THP", "Carrefour-LP");
        let cells = on_machine(cells, &machine);
        for &b in Benchmark::numa_unaffected() {
            let thp = improvement(&cells, b, PolicyKind::LinuxThp, PolicyKind::Linux4k);
            let lp = improvement(&cells, b, PolicyKind::CarrefourLp, PolicyKind::Linux4k);
            println!("{:<16} {:>8.1} {:>14.1}", b.name(), thp, lp);
        }
        save_json(&format!("fig5_{}", machine.name()), &cells);
        println!();
    }
}

// ------------------------------------------------------------ overhead

fn overhead_specs() -> Vec<CellSpec> {
    both_machines(
        &suite(),
        &[
            PolicyKind::Linux4k,
            PolicyKind::Carrefour2m,
            PolicyKind::ReactiveOnly,
            PolicyKind::CarrefourLp,
        ],
    )
}

/// Percent by which `a` is slower than `b` (positive = overhead).
fn slowdown(cells: &[Cell], bench: Benchmark, a: PolicyKind, b: PolicyKind) -> f64 {
    let fa = find(cells, bench, a);
    let fb = find(cells, bench, b);
    (fa.result.runtime_cycles as f64 / fb.result.runtime_cycles as f64 - 1.0) * 100.0
}

fn overhead_render(cells: &[Cell]) {
    let benches = suite();
    for machine in machines() {
        println!(
            "== Overhead of Carrefour-LP ({}) : positive = slower ==",
            machine.name()
        );
        println!(
            "{:<16} {:>13} {:>16} {:>12}",
            "bench", "vs Reactive", "vs Carrefour-2M", "vs Linux"
        );
        let cells = on_machine(cells, &machine);
        let mut worst: [f64; 3] = [f64::MIN; 3];
        let mut sums: [f64; 3] = [0.0; 3];
        for &b in &benches {
            let v = [
                slowdown(&cells, b, PolicyKind::CarrefourLp, PolicyKind::ReactiveOnly),
                slowdown(&cells, b, PolicyKind::CarrefourLp, PolicyKind::Carrefour2m),
                slowdown(&cells, b, PolicyKind::CarrefourLp, PolicyKind::Linux4k),
            ];
            for i in 0..3 {
                worst[i] = worst[i].max(v[i]);
                sums[i] += v[i];
            }
            println!(
                "{:<16} {:>13.1} {:>16.1} {:>12.1}",
                b.name(),
                v[0],
                v[1],
                v[2]
            );
        }
        let n = benches.len() as f64;
        println!(
            "{:<16} {:>13.1} {:>16.1} {:>12.1}   (worst)",
            "--", worst[0], worst[1], worst[2]
        );
        println!(
            "{:<16} {:>13.1} {:>16.1} {:>12.1}   (mean)",
            "--",
            sums[0] / n,
            sums[1] / n,
            sums[2] / n
        );
        save_json(&format!("overhead_{}", machine.name()), &cells);
        println!();
    }
}

// ----------------------------------------------------------- verylarge

const VERYLARGE_POLICIES: [PolicyKind; 4] = [
    PolicyKind::Linux4k,
    PolicyKind::LinuxThp,
    PolicyKind::Linux1g,
    PolicyKind::CarrefourLp1g,
];

fn verylarge_specs() -> Vec<CellSpec> {
    crate::matrix_specs(
        &MachineSpec::machine_a(),
        &[Benchmark::Ssca, Benchmark::Streamcluster],
        &VERYLARGE_POLICIES,
    )
}

fn verylarge_render(cells: &[Cell]) {
    println!("== Section 4.4 (machine A): 1 GiB pages, improvement over Linux-4K ==");
    println!(
        "{:<14} {:>8} {:>10} {:>17} {:>8} {:>8}",
        "bench", "THP", "Linux-1G", "Carrefour-LP-1G", "imb 1G", "LAR 1G"
    );
    let per = VERYLARGE_POLICIES.len();
    for (i, bench) in [Benchmark::Ssca, Benchmark::Streamcluster]
        .into_iter()
        .enumerate()
    {
        let row = &cells[per * i..per * (i + 1)];
        let base = &row[0].result;
        let giant = &row[2].result;
        println!(
            "{:<14} {:>8.1} {:>10.1} {:>17.1} {:>8.1} {:>8.0}",
            bench.name(),
            row[1].result.improvement_over(base),
            giant.improvement_over(base),
            row[3].result.improvement_over(base),
            giant.lifetime.imbalance,
            giant.lifetime.lar * 100.0,
        );
    }
    save_json("verylarge", cells);
}

// --------------------------------------------------------------- figPT

const FIG_PT_POLICIES: [PolicyKind; 4] = [
    PolicyKind::Linux4k,
    PolicyKind::LinuxThp,
    PolicyKind::Mitosis,
    PolicyKind::NumaPte,
];

fn fig_pt_specs() -> Vec<CellSpec> {
    both_machines(Benchmark::numa_affected(), &FIG_PT_POLICIES)
}

/// Page-table placement (DESIGN.md §13): runtime improvement over Linux
/// plus where walk cycles go. The walk columns need the attribution
/// ledger (`CARREFOUR_ATTRIB=1`); without it they print as `-`, the
/// runtime columns are unaffected.
fn fig_pt_render(cells: &[Cell]) {
    for machine in machines() {
        println!(
            "== Figure PT ({}) : page-table placement, improvement over Linux ==",
            machine.name()
        );
        println!(
            "{:<16} {:>8} {:>9} {:>9} | {:>11} {:>11} {:>11}",
            "bench", "THP", "Mitosis", "numaPTE", "rw% Linux", "rw% Mitosis", "rw% numaPTE"
        );
        let cells = on_machine(cells, &machine);
        for &b in Benchmark::numa_affected() {
            let thp = improvement(&cells, b, PolicyKind::LinuxThp, PolicyKind::Linux4k);
            let mit = improvement(&cells, b, PolicyKind::Mitosis, PolicyKind::Linux4k);
            let pte = improvement(&cells, b, PolicyKind::NumaPte, PolicyKind::Linux4k);
            let rw = |k: PolicyKind| -> String {
                let r = &find(&cells, b, k).result;
                match &r.attribution {
                    Some(a) => {
                        let walk = a.total.walk_cycles();
                        if walk == 0 {
                            "0.0".to_string()
                        } else {
                            format!(
                                "{:.1}",
                                a.total.walk_remote_cycles() as f64 * 100.0 / walk as f64
                            )
                        }
                    }
                    None => "-".to_string(),
                }
            };
            println!(
                "{:<16} {:>8.1} {:>9.1} {:>9.1} | {:>11} {:>11} {:>11}",
                b.name(),
                thp,
                mit,
                pte,
                rw(PolicyKind::Linux4k),
                rw(PolicyKind::Mitosis),
                rw(PolicyKind::NumaPte),
            );
        }
        save_json(&format!("figPT_{}", machine.name()), &cells);
        println!();
    }
}

// --------------------------------------------------------------- tuned

fn tuned_specs() -> Vec<CellSpec> {
    both_machines(
        Benchmark::numa_affected(),
        &[
            PolicyKind::Linux4k,
            PolicyKind::CarrefourLp,
            PolicyKind::CarrefourLpTuned,
        ],
    )
}

/// The sweep winner (`LpParams::tuned()`, results/SWEEP_lp.json) against
/// the paper-threshold Carrefour-LP, both as improvement over Linux-4K.
/// The last column is the per-benchmark delta the Pareto frontier traded
/// on: positive means the tuned thresholds beat the paper's on that
/// scenario.
fn tuned_render(cells: &[Cell]) {
    for machine in machines() {
        println!(
            "== Tuned thresholds ({}) : improvement over Linux ==",
            machine.name()
        );
        println!(
            "{:<16} {:>14} {:>14} {:>9}",
            "bench", "Carrefour-LP", "LP-Tuned", "delta"
        );
        let cells = on_machine(cells, &machine);
        for &b in Benchmark::numa_affected() {
            let lp = improvement(&cells, b, PolicyKind::CarrefourLp, PolicyKind::Linux4k);
            let tuned = improvement(&cells, b, PolicyKind::CarrefourLpTuned, PolicyKind::Linux4k);
            println!(
                "{:<16} {:>14.1} {:>14.1} {:>9.1}",
                b.name(),
                lp,
                tuned,
                tuned - lp
            );
        }
        save_json(&format!("tuned_{}", machine.name()), &cells);
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_names_are_unique() {
        let names: std::collections::BTreeSet<_> = all().iter().map(|e| e.name).collect();
        assert_eq!(names.len(), all().len());
    }

    #[test]
    fn every_experiment_has_cells() {
        for e in all() {
            assert!(!e.specs.is_empty(), "{} has no cells", e.name);
        }
    }

    #[test]
    fn dedup_keys_collapse_repeated_cells() {
        // The same (machine-a, UA.B, Linux4k) cell appears in several
        // experiments; its key must be identical everywhere so
        // all_experiments runs it once.
        let mut count = 0;
        let probe = CellSpec::new(
            MachineSpec::machine_a(),
            Benchmark::UaB,
            PolicyKind::Linux4k,
        )
        .key();
        for e in all() {
            count += e.specs.iter().filter(|s| s.key() == probe).count();
        }
        assert!(count >= 3, "expected UA.B/Linux4k in several experiments");
    }
}
