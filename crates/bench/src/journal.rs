//! The append-only cell journal behind `all_experiments --resume`.
//!
//! Every completed cell is appended to `results/journal_<suite>.jsonl` as
//! one self-contained JSON line the moment its worker finishes, so a
//! crashed or killed suite loses at most the cells that were still in
//! flight. A later `--resume` run loads the journal, keeps every decodable
//! `"ok"` line, and re-runs only the missing or failed cells — the
//! simulator is deterministic, so splicing journaled results with freshly
//! computed ones reproduces the uninterrupted run byte for byte.
//!
//! Line formats (one JSON object per line):
//!
//! ```text
//! {"key":"…","status":"ok","machine":"…","benchmark":"…","policy":"…",
//!  "wall_secs":1.234,"blob":"<hex ckpt-v1 result codec>"}
//! {"key":"…","status":"panicked","msg":"…"}
//! ```
//!
//! `key` is [`CellSpec::key`] — the runner's dedup identity, covering
//! machine, workload, policy, seed override, and fault plan. `blob` is the
//! checksummed [`engine::checkpoint::encode_result`] encoding of the
//! [`SimResult`], hex-armored so the line stays greppable text. Torn or
//! corrupt lines (a crash mid-append, a truncated disk) fail the checksum
//! or the parse and are simply ignored: those cells re-run. When the same
//! key appears twice, the later line wins.
//!
//! [`CellSpec::key`]: crate::runner::CellSpec::key
//! [`SimResult`]: engine::SimResult

use crate::json::esc;
use crate::runner::TimedCell;
use crate::Cell;
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

/// A journaled result for one completed cell.
pub struct JournaledCell {
    /// The result row, decoded from the journal blob.
    pub cell: Cell,
    /// Host seconds the original run spent on this cell.
    pub wall_secs: f64,
}

/// An append-only journal writer. Thread-safe: workers append from the
/// pool, each line flushed immediately.
pub struct Journal {
    file: Mutex<std::fs::File>,
    path: PathBuf,
}

/// The journal path for a suite name (`results/journal_<suite>.jsonl`).
pub fn journal_path(suite: &str) -> PathBuf {
    PathBuf::from("results").join(format!("journal_{suite}.jsonl"))
}

impl Journal {
    /// Opens the suite's journal for appending, creating `results/` and the
    /// file as needed. `Err` is the underlying io::Error (callers warn and
    /// run without a journal rather than aborting the suite).
    pub fn open_append(suite: &str) -> std::io::Result<Journal> {
        std::fs::create_dir_all("results")?;
        let path = journal_path(suite);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Journal {
            file: Mutex::new(file),
            path,
        })
    }

    /// The journal file's path (for messages and CI artifacts).
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Appends one completed cell. Write errors warn on stderr — the suite
    /// keeps running, it just loses resumability for this cell.
    pub fn record_ok(&self, key: &str, timed: &TimedCell) {
        let blob = codec::to_hex(&engine::checkpoint::encode_result(&timed.cell.result));
        let line = format!(
            "{{\"key\":\"{}\",\"status\":\"ok\",\"machine\":\"{}\",\"benchmark\":\"{}\",\"policy\":\"{}\",\"wall_secs\":{},\"blob\":\"{}\"}}",
            esc(key),
            esc(&timed.cell.machine),
            esc(&timed.cell.benchmark),
            esc(&timed.cell.policy),
            timed.wall_secs,
            blob,
        );
        self.append(&line);
    }

    /// Appends one failed cell, so `--resume` knows to re-run it and the
    /// post-mortem has the panic message next to the cell key.
    pub fn record_panicked(&self, key: &str, msg: &str) {
        let line = format!(
            "{{\"key\":\"{}\",\"status\":\"panicked\",\"msg\":\"{}\"}}",
            esc(key),
            esc(msg),
        );
        self.append(&line);
    }

    fn append(&self, line: &str) {
        let mut f = self.file.lock().unwrap();
        if let Err(e) = writeln!(f, "{line}").and_then(|()| f.flush()) {
            crate::logx::warn(&format!("could not append to {}: {e}", self.path.display()));
        }
    }
}

/// Loads every decodable `"ok"` cell from a suite's journal, keyed by
/// [`CellSpec::key`]. Missing file means an empty map (a fresh run). Torn,
/// corrupt, or failed lines are skipped; a later line for the same key
/// replaces an earlier one.
///
/// [`CellSpec::key`]: crate::runner::CellSpec::key
pub fn load(suite: &str) -> HashMap<String, JournaledCell> {
    load_counted(suite).0
}

/// [`load`], plus the number of *stale* lines that were superseded by a
/// later line for the same key (the later-line-wins rule firing). A
/// crash between append and kill can journal a cell twice, and a retry
/// after a panic line legitimately re-journals the key — the count lets
/// `--resume` report how much of the journal it discarded rather than
/// silently folding duplicates.
pub fn load_counted(suite: &str) -> (HashMap<String, JournaledCell>, usize) {
    match std::fs::read_to_string(journal_path(suite)) {
        Ok(text) => load_from_str(&text),
        Err(_) => (HashMap::new(), 0),
    }
}

/// The parser behind [`load_counted`], split out so tests can feed it
/// torn and duplicated lines directly.
fn load_from_str(text: &str) -> (HashMap<String, JournaledCell>, usize) {
    let mut out = HashMap::new();
    let mut stale = 0usize;
    for line in text.lines() {
        let Some(key) = json_string_field(line, "key") else {
            continue;
        };
        match json_string_field(line, "status").as_deref() {
            Some("ok") => {
                let Some(blob) = json_string_field(line, "blob") else {
                    continue;
                };
                let Some(bytes) = codec::from_hex(&blob) else {
                    continue;
                };
                let Some(result) = engine::checkpoint::decode_result(&bytes) else {
                    continue; // torn line: checksum failed, cell re-runs
                };
                let (Some(machine), Some(benchmark), Some(policy)) = (
                    json_string_field(line, "machine"),
                    json_string_field(line, "benchmark"),
                    json_string_field(line, "policy"),
                ) else {
                    continue;
                };
                let wall_secs = json_number_field(line, "wall_secs").unwrap_or(0.0);
                let prev = out.insert(
                    key,
                    JournaledCell {
                        cell: Cell {
                            machine,
                            benchmark,
                            policy,
                            result,
                        },
                        wall_secs,
                    },
                );
                stale += usize::from(prev.is_some());
            }
            // A later failure line invalidates an earlier success for the
            // same key (it should not happen, but the newest verdict wins).
            Some(_) => {
                stale += usize::from(out.remove(&key).is_some());
            }
            None => {}
        }
    }
    (out, stale)
}

/// Extracts the string value of `"name":"…"` from one JSON line, undoing
/// the escapes [`esc`] produces. Cell keys contain quote characters (they
/// embed `Debug`-formatted specs), so this must walk escapes rather than
/// scan for the next raw quote.
fn json_string_field(line: &str, name: &str) -> Option<String> {
    let marker = format!("\"{name}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (&mut chars).take(4).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// Extracts the numeric value of `"name":<number>` from one JSON line.
fn json_number_field(line: &str, name: &str) -> Option<f64> {
    let marker = format!("\"{name}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_fields_round_trip_through_escapes() {
        let key = "machine-a|UaB|Some(FaultConfig { seed: 1 })|\"quoted\"\\back";
        let line = format!(
            "{{\"key\":\"{}\",\"status\":\"ok\",\"msg\":\"tab\\there\"}}",
            esc(key)
        );
        assert_eq!(json_string_field(&line, "key").as_deref(), Some(key));
        assert_eq!(json_string_field(&line, "status").as_deref(), Some("ok"));
        assert_eq!(
            json_string_field(&line, "msg").as_deref(),
            Some("tab\there")
        );
        assert_eq!(json_string_field(&line, "absent"), None);
    }

    #[test]
    fn number_fields_parse() {
        let line = "{\"wall_secs\":1.25,\"n\":-3e2}";
        assert_eq!(json_number_field(line, "wall_secs"), Some(1.25));
        assert_eq!(json_number_field(line, "n"), Some(-300.0));
        assert_eq!(json_number_field(line, "absent"), None);
    }

    /// One valid journal line for `key`, exactly as [`Journal::record_ok`]
    /// writes it (same format string, no file involved).
    fn ok_line(key: &str, result: &engine::SimResult, wall_secs: f64) -> String {
        let blob = codec::to_hex(&engine::checkpoint::encode_result(result));
        format!(
            "{{\"key\":\"{}\",\"status\":\"ok\",\"machine\":\"m\",\"benchmark\":\"b\",\"policy\":\"p\",\"wall_secs\":{},\"blob\":\"{}\"}}",
            esc(key),
            wall_secs,
            blob,
        )
    }

    fn small_result() -> engine::SimResult {
        crate::run_cell(
            &numa_topology::MachineSpec::test_machine(),
            workloads::Benchmark::EpC,
            crate::PolicyKind::Linux4k,
        )
    }

    #[test]
    fn torn_lines_are_skipped_and_cells_rerun() {
        let r = small_result();
        let good = ok_line("cell-a", &r, 1.0);
        // Torn mid-blob (crash during append): checksum fails, line drops.
        let torn = &good[..good.len() / 2];
        // Torn so early the key survives but the blob field is gone.
        let no_blob = "{\"key\":\"cell-b\",\"status\":\"ok\",\"machine\":\"m";
        let text = format!("{torn}\n{no_blob}\n{good}\n");
        let (map, stale) = load_from_str(&text);
        assert_eq!(map.len(), 1, "only the complete line loads");
        assert!(map.contains_key("cell-a"));
        assert_eq!(stale, 0, "torn lines are dropped, not superseded");
    }

    #[test]
    fn later_duplicate_wins_and_is_counted() {
        let r = small_result();
        let text = format!(
            "{}\n{}\n{}\n",
            ok_line("cell-a", &r, 1.0),
            ok_line("cell-b", &r, 5.0),
            ok_line("cell-a", &r, 2.0),
        );
        let (map, stale) = load_from_str(&text);
        assert_eq!(map.len(), 2);
        assert_eq!(map["cell-a"].wall_secs, 2.0, "the later line wins");
        assert_eq!(stale, 1, "one earlier line was superseded");
    }

    #[test]
    fn late_failure_line_invalidates_and_is_counted() {
        let r = small_result();
        let text = format!(
            "{}\n{{\"key\":\"cell-a\",\"status\":\"panicked\",\"msg\":\"boom\"}}\n",
            ok_line("cell-a", &r, 1.0),
        );
        let (map, stale) = load_from_str(&text);
        assert!(map.is_empty(), "the newest verdict is a failure");
        assert_eq!(stale, 1);
        // A failure for a key never journaled ok counts nothing.
        let (_, stale2) =
            load_from_str("{\"key\":\"ghost\",\"status\":\"panicked\",\"msg\":\"x\"}\n");
        assert_eq!(stale2, 0);
    }
}
