//! The work-distributing experiment runner.
//!
//! Every figure/table binary used to fan its (workload × policy × machine)
//! cells out with ad-hoc `thread::scope` blocks — one unbounded thread per
//! cell, no progress reporting, no way to cap parallelism. This module
//! replaces those with one shared pool:
//!
//! * [`CellSpec`] names one simulation cell completely — workload, policy,
//!   machine, optional seed override, optional fault plan — so every
//!   experiment submits work in the same currency;
//! * [`par_map`] executes `n` independent jobs on a scoped worker pool
//!   (`std::thread::scope`, no external dependencies — the build is
//!   offline) and returns results in **submission order**, whatever order
//!   the workers finished in;
//! * [`Progress`] prints live `done/total` lines to stderr as cells
//!   complete, shared by the figure bins, `chaos`, and `trace`;
//! * [`resolve_jobs`] implements the worker-count override chain:
//!   `--jobs N` on the command line, then the `CARREFOUR_JOBS` environment
//!   variable, then [`std::thread::available_parallelism`].
//!
//! # Determinism
//!
//! The simulator is fully deterministic in `(spec, config)`: each cell owns
//! its RNG (seeded from the config), its address space, and its policy
//! object, and shares nothing mutable with its siblings. Worker threads
//! only choose *which* cell runs where and when — they never touch what a
//! cell computes — and results land in a slot indexed by submission
//! position. A run at `--jobs 1` and a run at `--jobs 64` therefore return
//! bit-identical `Vec<Cell>`s (enforced by the equivalence proptest in
//! `tests/runner_equivalence.rs` and by the golden digests).

use crate::{run_cell, Cell, PolicyKind};
use carrefour::{CarrefourLp, LpParams};
use engine::{FaultConfig, NumaPolicy, SimConfig, SimResult, Simulation};
use numa_topology::MachineSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use workloads::{Benchmark, WorkloadSpec};

/// The workload half of a cell: a named suite benchmark (its spec is
/// derived per machine) or a fully explicit spec (tests, chaos probes).
#[derive(Clone, Debug)]
pub enum Workload {
    /// One of the paper's suite benchmarks.
    Bench(Benchmark),
    /// An explicit workload spec, used as-is on any machine.
    Custom(WorkloadSpec),
}

impl Workload {
    /// Display name (what the `benchmark` column of a [`Cell`] shows).
    pub fn name(&self) -> String {
        match self {
            Workload::Bench(b) => b.name().to_string(),
            Workload::Custom(s) => s.name.clone(),
        }
    }

    /// The concrete spec to simulate on `machine`.
    pub fn spec(&self, machine: &MachineSpec) -> WorkloadSpec {
        match self {
            Workload::Bench(b) => b.spec(machine),
            Workload::Custom(s) => s.clone(),
        }
    }
}

/// One fully described simulation cell. Two equal `CellSpec`s always
/// produce equal [`SimResult`]s (the simulator is deterministic), which is
/// what makes cross-experiment dedup in `all_experiments` sound.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// The machine model.
    pub machine: MachineSpec,
    /// The workload.
    pub workload: Workload,
    /// The policy under test.
    pub kind: PolicyKind,
    /// Override of `SimConfig::seed` (`None` = the standard seed).
    pub seed: Option<u64>,
    /// Fault plan (`None` = fault-free).
    pub faults: Option<FaultConfig>,
    /// Override of the result's policy label (`None` = `kind.label()`).
    /// `chaos` uses this to tag cells with their fault rate.
    pub label: Option<String>,
    /// Override of the policy's tunables: when set, the cell runs
    /// `CarrefourLp::with_params` instead of `kind.make()` (`kind` still
    /// supplies the initial THP state and the default label). This is the
    /// sweep's axis — everything *else* about such cells is shared.
    pub lp_params: Option<LpParams>,
    /// Opt-in tag for prefix-sharing: cells carrying the same family tag
    /// (and, necessarily, the same [`CellSpec::family_key`]) are simulated
    /// as one fork tree — a probe runs in full, siblings resume from the
    /// deepest checkpoint before their first divergent policy decision.
    /// `None` (everywhere outside the sweep) keeps the plain per-cell path.
    pub family: Option<String>,
}

impl CellSpec {
    /// A plain (machine, benchmark, policy) cell — the common case.
    pub fn new(machine: MachineSpec, bench: Benchmark, kind: PolicyKind) -> Self {
        CellSpec {
            machine,
            workload: Workload::Bench(bench),
            kind,
            seed: None,
            faults: None,
            label: None,
            lp_params: None,
            family: None,
        }
    }

    /// The policy label this cell's results carry.
    pub fn policy_label(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| self.kind.label().to_string())
    }

    /// Short human-readable tag for progress lines.
    pub fn describe(&self) -> String {
        format!(
            "{}/{} on {}",
            self.workload.name(),
            self.policy_label(),
            self.machine.name()
        )
    }

    /// [`CellSpec::describe`] plus the family tag when present — the
    /// runner's panic and watchdog lines use this so fork-tree failures
    /// can be grepped by family.
    pub fn describe_with_family(&self) -> String {
        match &self.family {
            Some(f) => format!("{} [family {f}]", self.describe()),
            None => self.describe(),
        }
    }

    /// Dedup key: two cells with equal keys are guaranteed (by
    /// determinism) to produce equal results. `Debug` formatting covers
    /// every field that feeds the simulation.
    pub fn key(&self) -> String {
        let mut k = format!(
            "{}|{:?}|{:?}|{:?}|{:?}",
            self.machine.name(),
            self.workload,
            self.kind,
            self.seed,
            self.faults
        );
        // Appended only when present so every pre-existing cell keeps its
        // exact historical key (journals from older suite runs stay
        // resumable). `family` is deliberately absent: it groups execution,
        // it never changes what a cell computes.
        if let Some(p) = &self.lp_params {
            k.push_str(&format!("|{p:?}"));
        }
        k
    }

    /// The sharing-compatibility key: everything that must agree for two
    /// cells to be simulated as one fork-tree family — machine, workload,
    /// seed, fault plan, and initial THP state (different THP switches mean
    /// different `SimConfig`s, hence different checkpoint fingerprints).
    /// Policy identity and parameters are deliberately excluded: they are
    /// the axis the family sweeps. `None` unless the cell opted in via
    /// [`CellSpec::family`].
    pub fn family_key(&self) -> Option<String> {
        self.family.as_ref().map(|f| {
            format!(
                "{f}|{}|{:?}|{:?}|{:?}|{:?}",
                self.machine.name(),
                self.workload,
                self.seed,
                self.faults,
                self.kind.initial_thp()
            )
        })
    }

    /// The policy instance this cell runs: the parameterized Carrefour-LP
    /// when [`CellSpec::lp_params`] is set, `kind.make()` otherwise.
    pub fn make_policy(&self) -> Box<dyn NumaPolicy> {
        match self.lp_params {
            Some(p) => Box::new(CarrefourLp::with_params(p)),
            None => self.kind.make(),
        }
    }

    /// The `SimConfig` this cell runs under: the per-machine config for
    /// `kind`'s initial THP state, with the suite's attribution switch and
    /// this cell's seed/fault overrides applied.
    pub fn sim_config(&self) -> SimConfig {
        let mut config = SimConfig::for_machine(&self.machine, self.kind.initial_thp());
        config.attribution = crate::attrib_enabled();
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(faults) = self.faults {
            config.faults = faults;
        }
        config
    }

    /// Estimated simulated memory operations this cell will execute:
    /// allocation-phase ops (one per 4 KiB page of the footprint) plus
    /// compute ops (`ops_per_round × threads × rounds`). Drives the
    /// longest-first schedule and the estimate-vs-actual columns of
    /// `BENCH_runner.json`; purely observational — scheduling never
    /// changes what a cell computes.
    pub fn estimated_ops(&self) -> u64 {
        let spec = self.workload.spec(&self.machine);
        spec.footprint_pages()
            + spec.ops_per_round * spec.threads as u64 * u64::from(spec.total_compute_rounds())
    }
}

/// Runs one cell spec. Identical to [`run_cell`] for plain cells; seed
/// and fault overrides are applied to the per-machine config first.
pub fn run_spec(spec: &CellSpec) -> SimResult {
    if spec.seed.is_none() && spec.faults.is_none() && spec.lp_params.is_none() {
        if let Workload::Bench(b) = spec.workload {
            let mut r = run_cell(&spec.machine, b, spec.kind);
            r.policy = spec.policy_label();
            return r;
        }
    }
    let config = spec.sim_config();
    let wspec = spec.workload.spec(&spec.machine);
    let mut policy = spec.make_policy();
    let mut r = Simulation::run(&spec.machine, &wspec, &config, policy.as_mut());
    r.policy = spec.policy_label();
    r
}

/// Parses `--jobs N` / `--jobs=N` out of the process arguments.
pub fn jobs_from_args() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            return it.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().ok();
        }
    }
    None
}

/// Resolves the worker count: explicit CLI value, then `CARREFOUR_JOBS`,
/// then the host's available parallelism. Always at least 1. An
/// unparseable `CARREFOUR_JOBS` warns on stderr and falls back to auto
/// (via [`engine::env_override_u32`]) rather than silently serializing.
pub fn resolve_jobs(cli: Option<usize>) -> usize {
    cli.or_else(|| engine::env_override_u32("CARREFOUR_JOBS").map(|v| v as usize))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .max(1)
}

/// The default worker count for a binary: `--jobs` from its arguments,
/// then the environment, then all host cores.
pub fn default_jobs() -> usize {
    resolve_jobs(jobs_from_args())
}

/// How one isolated job ended.
///
/// The pool wraps every job in `catch_unwind`, so a panicking cell is a
/// *report*, not a suite abort: the remaining cells still run, and the
/// caller decides what a failure costs (the figure binaries re-raise, the
/// suite runner lists failures and exits nonzero).
#[derive(Debug)]
pub enum CellOutcome<T> {
    /// The job completed within the soft deadline.
    Ok(T),
    /// The job panicked; `msg` is the panic payload (the default panic
    /// hook has already printed location and backtrace to stderr).
    Panicked {
        /// The panic payload, when it was a string (they all are, here).
        msg: String,
    },
    /// The job completed but blew past the soft deadline — the result is
    /// still valid (the watchdog never kills work), the overrun is flagged.
    TimedOut {
        /// Host seconds the job actually took.
        secs: f64,
        /// The completed result.
        result: T,
    },
}

impl<T> CellOutcome<T> {
    /// The completed result, if any (`TimedOut` results are valid).
    pub fn into_result(self) -> Option<T> {
        match self {
            CellOutcome::Ok(v) | CellOutcome::TimedOut { result: v, .. } => Some(v),
            CellOutcome::Panicked { .. } => None,
        }
    }

    /// Borrowing variant of [`CellOutcome::into_result`].
    pub fn result(&self) -> Option<&T> {
        match self {
            CellOutcome::Ok(v) | CellOutcome::TimedOut { result: v, .. } => Some(v),
            CellOutcome::Panicked { .. } => None,
        }
    }

    /// Whether the job panicked.
    pub fn is_panicked(&self) -> bool {
        matches!(self, CellOutcome::Panicked { .. })
    }
}

/// Renders a caught panic payload (panics in this codebase are always
/// `&str` or `String` — `panic!` with a format string).
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The soft per-cell deadline in host seconds (`CARREFOUR_CELL_DEADLINE_SECS`,
/// default 300). `0` disables the watchdog entirely.
pub fn cell_deadline_secs() -> f64 {
    std::env::var("CARREFOUR_CELL_DEADLINE_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300.0)
}

/// Panic-isolating variant of [`par_map`]: executes `f(0..n)` on up to
/// `jobs` scoped workers and returns one [`CellOutcome`] per index, **in
/// index order**. A panicking job is caught and reported in its slot while
/// the rest of the queue drains normally. A soft watchdog thread warns on
/// stderr when a running job exceeds `deadline_secs` (never killing it);
/// jobs that finish past the deadline come back as
/// [`CellOutcome::TimedOut`]. `describe(i)` labels job `i` in warnings.
pub fn par_map_outcomes<T, F, D>(
    jobs: usize,
    n: usize,
    deadline_secs: f64,
    describe: D,
    f: F,
) -> Vec<CellOutcome<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    D: Fn(usize) -> String + Sync,
{
    par_map_outcomes_scheduled(jobs, n, deadline_secs, None, describe, f)
}

/// [`par_map_outcomes`] with an explicit execution order: workers pull
/// indices from `schedule` (a permutation of `0..n`) front to back
/// instead of `0, 1, 2, …`. Results still land **in index order** —
/// scheduling only decides where and when each index runs, never what it
/// computes, so any schedule returns bit-identical results (the
/// longest-first proptest in `tests/runner_equivalence.rs` enforces
/// this).
///
/// This is also where the engine's shard-lane pool is wired up
/// (`engine::lanes`, DESIGN.md §14): host cores the pool is not using as
/// workers (`jobs > n`) are offered as shard lanes up front, and each
/// worker donates its own slot when the queue runs dry — so cells that
/// *start* near the end of a suite widen across the cores that just went
/// idle.
pub fn par_map_outcomes_scheduled<T, F, D>(
    jobs: usize,
    n: usize,
    deadline_secs: f64,
    schedule: Option<Vec<usize>>,
    describe: D,
    f: F,
) -> Vec<CellOutcome<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    D: Fn(usize) -> String + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicBool;
    use std::sync::Mutex;

    if let Some(order) = &schedule {
        debug_assert_eq!(order.len(), n, "schedule must cover every index");
    }

    // Start timestamps of in-flight jobs, for the watchdog.
    let started: Vec<Mutex<Option<Instant>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let all_done = AtomicBool::new(false);
    let run_one = |i: usize| -> CellOutcome<T> {
        let t = Instant::now();
        *started[i].lock().unwrap() = Some(t);
        let caught = catch_unwind(AssertUnwindSafe(|| f(i)));
        *started[i].lock().unwrap() = None;
        match caught {
            Ok(v) => {
                let secs = t.elapsed().as_secs_f64();
                if deadline_secs > 0.0 && secs > deadline_secs {
                    CellOutcome::TimedOut { secs, result: v }
                } else {
                    CellOutcome::Ok(v)
                }
            }
            Err(p) => {
                let msg = panic_message(p.as_ref());
                crate::logx::warn(&format!("[runner] cell {} panicked: {msg}", describe(i)));
                CellOutcome::Panicked { msg }
            }
        }
    };

    let workers = jobs.max(1).min(n);
    // Worker slots the caller granted but this queue cannot use become
    // shard lanes: a 1-cell suite at `--jobs 8` runs that cell 8-wide.
    engine::lanes::configure(jobs.max(1) - workers);
    if workers <= 1 {
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let i = schedule.as_ref().map_or(k, |o| o[k]);
            out.push((i, run_one(i)));
        }
        out.sort_by_key(|(i, _)| *i);
        return out.into_iter().map(|(_, o)| o).collect();
    }
    let next = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, CellOutcome<T>)>> = std::thread::scope(|s| {
        if deadline_secs > 0.0 {
            // The soft watchdog: warn (once per cell) when a running cell
            // blows past the deadline. It flags, it never kills — the cell
            // keeps running and reports `TimedOut` when it completes.
            let started = &started;
            let all_done = &all_done;
            let describe = &describe;
            s.spawn(move || {
                let mut warned = vec![false; n];
                while !all_done.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    for (i, w) in warned.iter_mut().enumerate() {
                        if *w {
                            continue;
                        }
                        let overdue = started[i]
                            .lock()
                            .unwrap()
                            .is_some_and(|t0| t0.elapsed().as_secs_f64() > deadline_secs);
                        if overdue {
                            *w = true;
                            crate::logx::warn(&format!(
                                "[runner] watchdog: cell {} still running after {deadline_secs:.0}s",
                                describe(i)
                            ));
                        }
                    }
                }
            });
        }
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let run_one = &run_one;
                let schedule = &schedule;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= n {
                            // Queue drained: this worker's slot becomes a
                            // shard lane for cells still starting up.
                            engine::lanes::donate(1);
                            return out;
                        }
                        let i = schedule.as_ref().map_or(k, |o| o[k]);
                        out.push((i, run_one(i)));
                    }
                })
            })
            .collect();
        let chunks = handles
            .into_iter()
            .map(|h| h.join().expect("runner worker panicked"))
            .collect();
        all_done.store(true, Ordering::Relaxed);
        chunks
    });
    // Reassemble in submission order: scheduling decided only *where* each
    // index ran, never what it computed.
    let mut slots: Vec<Option<CellOutcome<T>>> = (0..n).map(|_| None).collect();
    for chunk in &mut chunks {
        for (i, v) in chunk.drain(..) {
            debug_assert!(slots[i].is_none(), "index {i} computed twice");
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("runner lost a job"))
        .collect()
}

/// Executes `f(0..n)` on up to `jobs` scoped worker threads and returns
/// the results **in index order**. Workers pull indices from a shared
/// atomic counter (dynamic load balancing: a slow cell never blocks the
/// queue). A panicking job no longer aborts its siblings: the remaining
/// jobs run to completion first, then the first panic is re-raised with
/// its slot index. With `jobs <= 1` the closure runs inline on the
/// caller's thread — the strictly sequential path CI keeps covered.
pub fn par_map<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let outcomes = par_map_outcomes(jobs, n, 0.0, |i| format!("#{i}"), f);
    let mut out = Vec::with_capacity(n);
    let mut first_panic: Option<(usize, String)> = None;
    for (i, o) in outcomes.into_iter().enumerate() {
        match o {
            CellOutcome::Ok(v) | CellOutcome::TimedOut { result: v, .. } => out.push(v),
            CellOutcome::Panicked { msg } => {
                if first_panic.is_none() {
                    first_panic = Some((i, msg));
                }
            }
        }
    }
    if let Some((i, msg)) = first_panic {
        panic!("runner job {i} panicked (remaining jobs were allowed to finish): {msg}");
    }
    out
}

/// Live progress reporting shared by every experiment binary. Thread-safe;
/// one stderr line per completed cell plus a summary from [`finish`].
///
/// [`finish`]: Progress::finish
pub struct Progress {
    label: String,
    total: usize,
    done: AtomicUsize,
    /// Simulated ops completed so far (for the throughput column; cells
    /// report their op count via [`Progress::cell_done_ops`]).
    ops: std::sync::atomic::AtomicU64,
    /// Estimated ops of the whole suite ([`Progress::expect_ops`]); `0`
    /// means no estimates were registered and the ETA falls back to
    /// whole-cell extrapolation.
    est_total: std::sync::atomic::AtomicU64,
    /// Estimated ops of completed cells (credited on completion, at the
    /// cell's *estimate*, so the remaining-work arithmetic stays in one
    /// currency).
    est_done: std::sync::atomic::AtomicU64,
    /// In-flight cells: `(start, estimated_ops)`, slot-indexed by the
    /// ticket [`Progress::cell_started`] returned. Slots are `None` once
    /// the cell completes.
    inflight: std::sync::Mutex<Vec<Option<(Instant, u64)>>>,
    start: Instant,
    quiet: bool,
}

/// Work-remaining ETA in host seconds. `est_total`/`est_done` are suite
/// estimates in ops; `inflight` holds `(elapsed_secs, est_ops)` of the
/// cells currently running. Each in-flight cell is credited with the
/// progress it would have made at the observed aggregate rate split
/// evenly across the in-flight cells, capped below its own estimate (a
/// cell is never credited as finished before it reports done) — so a
/// suite whose tail is one long cell fanning out over shard lanes stops
/// reading as "N whole cells to go".
fn eta_from_ops(est_total: u64, est_done: u64, secs: f64, inflight: &[(f64, u64)]) -> Option<f64> {
    if est_total == 0 || est_done == 0 || secs <= 0.0 {
        return None;
    }
    let rate = est_done as f64 / secs;
    let k = inflight.len().max(1) as f64;
    let credit: f64 = inflight
        .iter()
        .map(|&(elapsed, est)| (rate / k * elapsed).min(est as f64 * 0.95))
        .sum();
    let remaining = (est_total.saturating_sub(est_done)) as f64 - credit;
    Some((remaining.max(0.0) / rate).max(0.0))
}

impl Progress {
    /// A reporter for `total` cells under the given experiment label.
    /// Honors `CARREFOUR_QUIET=1` (used by tests to keep output clean).
    pub fn new(label: &str, total: usize) -> Self {
        Progress {
            label: label.to_string(),
            total,
            done: AtomicUsize::new(0),
            ops: std::sync::atomic::AtomicU64::new(0),
            est_total: std::sync::atomic::AtomicU64::new(0),
            est_done: std::sync::atomic::AtomicU64::new(0),
            inflight: std::sync::Mutex::new(Vec::new()),
            start: Instant::now(),
            quiet: std::env::var_os("CARREFOUR_QUIET").is_some_and(|v| v == "1"),
        }
    }

    /// Registers estimated ops of upcoming work (accumulating across
    /// calls — one reporter often spans several experiment batches),
    /// switching the ETA from whole-cell extrapolation to work-remaining
    /// accounting.
    pub fn expect_ops(&self, est_ops: u64) {
        self.est_total.fetch_add(est_ops, Ordering::Relaxed);
    }

    /// Marks one cell as started (`est_ops` is its cost estimate) and
    /// returns a ticket for [`Progress::cell_done_ticket`]. In-flight
    /// cells earn partial ETA credit as they run.
    pub fn cell_started(&self, est_ops: u64) -> usize {
        let mut v = self.inflight.lock().unwrap();
        v.push(Some((Instant::now(), est_ops)));
        v.len() - 1
    }

    /// Records one finished cell and prints a progress line.
    pub fn cell_done(&self, what: &str) {
        self.cell_done_ops(what, 0);
    }

    /// [`Progress::cell_done_ops`] for a cell registered with
    /// [`Progress::cell_started`]: retires its in-flight slot and credits
    /// its estimate as completed work.
    pub fn cell_done_ticket(&self, what: &str, ops: u64, ticket: usize) {
        let est = {
            let mut v = self.inflight.lock().unwrap();
            v[ticket].take().map_or(0, |(_, e)| e)
        };
        self.est_done.fetch_add(est, Ordering::Relaxed);
        self.cell_done_ops(what, ops);
    }

    /// Records one finished cell that simulated `ops` memory operations.
    /// The progress line carries cumulative throughput (simulated ops per
    /// host second, when op counts are reported) and an ETA — from
    /// work-remaining accounting when estimates were registered
    /// ([`eta_from_ops`]: in-flight shard work earns partial credit), from
    /// mean whole-cell cost otherwise. Output is explicitly flushed so
    /// piped logs (CI, `tee`) stay live.
    pub fn cell_done_ops(&self, what: &str, ops: u64) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let total_ops = self.ops.fetch_add(ops, Ordering::Relaxed) + ops;
        if !self.quiet {
            use std::io::Write;
            let secs = self.start.elapsed().as_secs_f64();
            let mut line = format!("[{}] {}/{} {:.1}s", self.label, done, self.total, secs);
            if total_ops > 0 && secs > 0.0 {
                line.push_str(&format!("  {:.2} Mops/s", total_ops as f64 / secs / 1e6));
            }
            if done < self.total && secs > 0.0 {
                let inflight: Vec<(f64, u64)> = self
                    .inflight
                    .lock()
                    .unwrap()
                    .iter()
                    .flatten()
                    .map(|&(t0, est)| (t0.elapsed().as_secs_f64(), est))
                    .collect();
                let eta = eta_from_ops(
                    self.est_total.load(Ordering::Relaxed),
                    self.est_done.load(Ordering::Relaxed),
                    secs,
                    &inflight,
                )
                .unwrap_or_else(|| secs / done as f64 * (self.total - done) as f64);
                line.push_str(&format!("  eta {eta:.0}s"));
            }
            line.push_str("  ");
            line.push_str(what);
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{line}");
            let _ = err.flush();
        }
    }

    /// Prints the closing summary and returns total elapsed seconds.
    pub fn finish(&self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if !self.quiet {
            eprintln!(
                "[{}] {} cells in {:.1}s",
                self.label,
                self.done.load(Ordering::Relaxed),
                secs
            );
        }
        secs
    }

    /// Seconds since the reporter was created.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Span-level profile of one cell's trip through the runner (the flight
/// recorder's runner layer, DESIGN.md §16). All host-side wall clock,
/// purely observational. For cells restored from the crash journal (which
/// stores results, not scheduler metadata) every span is an honest zero
/// and [`CellSpans::from_journal`] is set.
#[derive(Clone, Copy, Debug, Default)]
pub struct CellSpans {
    /// Seconds the cell waited in the queue: suite submission → the
    /// moment a worker picked it up.
    pub queue_wait_secs: f64,
    /// Seconds inside the simulation proper (`run_spec`).
    pub simulate_secs: f64,
    /// Seconds merging the result back into the suite (progress tick and
    /// row assembly; the crash-journal append runs after the row exists
    /// and is not included).
    pub merge_secs: f64,
    /// Which worker thread ran the cell (0-based, in order of first
    /// pickup — stable within a run, not across runs).
    pub worker: usize,
    /// Free lanes in the shard-lane pool when the cell started.
    pub lanes_free_start: usize,
    /// Free lanes when the cell finished.
    pub lanes_free_done: usize,
    /// True when the row was restored from the crash journal (spans are
    /// zeros: the work happened in an earlier process).
    pub from_journal: bool,
}

impl CellSpans {
    /// The spans of a journal-restored row: honest zeros plus the flag.
    pub fn journal_restored() -> Self {
        CellSpans {
            from_journal: true,
            ..CellSpans::default()
        }
    }
}

/// One executed cell plus its host wall-clock cost (the wall clock is
/// observability only — it never feeds back into simulated results).
pub struct TimedCell {
    /// The result row.
    pub cell: Cell,
    /// Host seconds this cell took.
    pub wall_secs: f64,
    /// The scheduler's a-priori cost estimate ([`CellSpec::estimated_ops`]),
    /// recorded so `BENCH_runner.json` can report estimate-vs-actual per
    /// cell.
    pub estimated_ops: u64,
    /// Where those seconds went (queue wait, simulate, merge) and where
    /// the cell ran.
    pub spans: CellSpans,
}

/// Longest-first execution order over `specs`, by
/// [`CellSpec::estimated_ops`]. Ties keep submission order (stable sort),
/// so equal-cost suites behave exactly as before the scheduler existed.
/// Returns `(schedule, per-cell estimates)`.
pub fn longest_first_schedule(specs: &[CellSpec]) -> (Vec<usize>, Vec<u64>) {
    let est: Vec<u64> = specs.iter().map(CellSpec::estimated_ops).collect();
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(est[i]));
    (order, est)
}

/// Runs every spec on the pool and returns result rows in submission
/// order, with per-cell wall-clock. `progress` ticks as cells finish.
/// Cells are *scheduled* longest-estimate-first so a big cell never
/// starts last and stalls the suite on one worker — results are
/// bit-identical for any schedule.
pub fn run_cells_timed(specs: &[CellSpec], jobs: usize, progress: &Progress) -> Vec<TimedCell> {
    run_cells_outcomes(specs, jobs, progress, |_, _| {})
        .into_iter()
        .enumerate()
        .map(|(i, o)| match o {
            CellOutcome::Ok(v) | CellOutcome::TimedOut { result: v, .. } => v,
            CellOutcome::Panicked { msg } => {
                panic!("runner cell {i} panicked (remaining cells were allowed to finish): {msg}")
            }
        })
        .collect()
}

/// Panic-isolating variant of [`run_cells_timed`]: returns one
/// [`CellOutcome`] per spec, in submission order, instead of aborting the
/// suite on the first panicking cell. The soft per-cell watchdog deadline
/// comes from [`cell_deadline_secs`]. `on_done(i, cell)` fires on the
/// worker thread the moment cell `i` completes — the suite runner hooks
/// the crash journal there, so a later `SIGKILL` loses at most the cells
/// still in flight.
pub fn run_cells_outcomes<H>(
    specs: &[CellSpec],
    jobs: usize,
    progress: &Progress,
    on_done: H,
) -> Vec<CellOutcome<TimedCell>>
where
    H: Fn(usize, &TimedCell) + Sync,
{
    let (schedule, est) = longest_first_schedule(specs);
    progress.expect_ops(est.iter().sum());
    // Span profiling state. `suite_start` anchors queue-wait; workers are
    // numbered in order of first pickup via their thread id (the pool's
    // threads are anonymous, the map names them). Purely observational.
    let suite_start = Instant::now();
    let worker_of: std::sync::Mutex<std::collections::HashMap<std::thread::ThreadId, usize>> =
        std::sync::Mutex::new(std::collections::HashMap::new());
    par_map_outcomes_scheduled(
        jobs,
        specs.len(),
        cell_deadline_secs(),
        Some(schedule),
        // Panic and watchdog lines carry the family tag (when present)
        // so fork-tree failures grep by family.
        |i| specs[i].describe_with_family(),
        |i| {
            let spec = &specs[i];
            let queue_wait_secs = suite_start.elapsed().as_secs_f64();
            let worker = {
                let id = std::thread::current().id();
                let mut m = worker_of.lock().unwrap();
                let n = m.len();
                *m.entry(id).or_insert(n)
            };
            let lanes_free_start = engine::lanes::available();
            let ticket = progress.cell_started(est[i]);
            let t = Instant::now();
            let result = run_spec(spec);
            let wall_secs = t.elapsed().as_secs_f64();
            let merge_t = Instant::now();
            progress.cell_done_ticket(&spec.describe(), result.lifetime.total_ops, ticket);
            let timed = TimedCell {
                cell: Cell {
                    machine: spec.machine.name().to_string(),
                    benchmark: spec.workload.name(),
                    policy: spec.policy_label(),
                    result,
                },
                wall_secs,
                estimated_ops: est[i],
                spans: CellSpans {
                    queue_wait_secs,
                    simulate_secs: wall_secs,
                    merge_secs: merge_t.elapsed().as_secs_f64(),
                    worker,
                    lanes_free_start,
                    lanes_free_done: engine::lanes::available(),
                    from_journal: false,
                },
            };
            on_done(i, &timed);
            timed
        },
    )
}

/// [`run_cells_timed`] without the timing wrapper.
pub fn run_cells(specs: &[CellSpec], jobs: usize, progress: &Progress) -> Vec<Cell> {
    run_cells_timed(specs, jobs, progress)
        .into_iter()
        .map(|t| t.cell)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_returns_submission_order() {
        for jobs in [1, 2, 3, 8] {
            let out = par_map(jobs, 17, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "{jobs}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert!(par_map(4, 0, |i| i).is_empty());
        assert_eq!(par_map(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn panicking_job_does_not_abort_siblings() {
        for jobs in [1, 4] {
            let outcomes = par_map_outcomes(
                jobs,
                9,
                0.0,
                |i| format!("#{i}"),
                |i| {
                    if i == 3 {
                        panic!("injected failure in cell {i}");
                    }
                    i * 10
                },
            );
            assert_eq!(outcomes.len(), 9, "jobs={jobs}");
            for (i, o) in outcomes.iter().enumerate() {
                if i == 3 {
                    match o {
                        CellOutcome::Panicked { msg } => {
                            assert!(msg.contains("injected failure in cell 3"), "{msg}");
                        }
                        other => panic!("expected a captured panic, got {other:?}"),
                    }
                } else {
                    assert_eq!(o.result(), Some(&(i * 10)), "jobs={jobs} i={i}");
                }
            }
        }
    }

    #[test]
    fn par_map_reraises_after_all_jobs_finish() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let completed = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(2, 6, |i| {
                if i == 0 {
                    panic!("first job dies");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        assert!(caught.is_err(), "the panic must still propagate");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            5,
            "remaining jobs ran to completion before the re-raise"
        );
    }

    #[test]
    fn scheduled_par_map_returns_submission_order_for_any_schedule() {
        let schedules: Vec<Vec<usize>> = vec![
            (0..9).collect(),
            (0..9).rev().collect(),
            vec![4, 0, 8, 2, 6, 1, 7, 3, 5],
        ];
        for schedule in schedules {
            for jobs in [1, 3, 8] {
                let out = par_map_outcomes_scheduled(
                    jobs,
                    9,
                    0.0,
                    Some(schedule.clone()),
                    |i| format!("#{i}"),
                    |i| i * 11,
                );
                let got: Vec<_> = out.iter().map(|o| *o.result().unwrap()).collect();
                assert_eq!(
                    got,
                    (0..9).map(|i| i * 11).collect::<Vec<_>>(),
                    "jobs={jobs} schedule={schedule:?}"
                );
            }
        }
    }

    #[test]
    fn eta_without_inflight_matches_plain_rate_math() {
        // 100k of 400k estimated ops done in 10s → 30s remaining.
        let eta = eta_from_ops(400_000, 100_000, 10.0, &[]).unwrap();
        assert!((eta - 30.0).abs() < 1e-9, "{eta}");
        // No estimates, or nothing finished yet → no ops-based ETA.
        assert!(eta_from_ops(0, 0, 10.0, &[]).is_none());
        assert!(eta_from_ops(400_000, 0, 10.0, &[]).is_none());
    }

    #[test]
    fn inflight_cells_earn_partial_eta_credit() {
        // Rate = 10k ops/s. One in-flight cell of 200k est, running 5s:
        // credited 50k, so remaining = 300k - 50k → 25s instead of 30s.
        let plain = eta_from_ops(400_000, 100_000, 10.0, &[]).unwrap();
        let credited = eta_from_ops(400_000, 100_000, 10.0, &[(5.0, 200_000)]).unwrap();
        assert!((plain - 30.0).abs() < 1e-9);
        assert!((credited - 25.0).abs() < 1e-9, "{credited}");
        // Two in-flight cells split the rate (25k each, 50k total — same
        // aggregate as one cell at the full rate), but a small cell's
        // credit caps at 95% of its own estimate: 25k + 9.5k → 26.55s.
        let split =
            eta_from_ops(400_000, 100_000, 10.0, &[(5.0, 200_000), (5.0, 200_000)]).unwrap();
        assert!((split - 25.0).abs() < 1e-9, "{split}");
        let capped =
            eta_from_ops(400_000, 100_000, 10.0, &[(5.0, 200_000), (5.0, 10_000)]).unwrap();
        assert!((capped - 26.55).abs() < 1e-9, "{capped}");
    }

    #[test]
    fn inflight_credit_is_capped_below_the_cell_estimate() {
        // A cell "running" absurdly long never counts as more than 95%
        // done until it reports completion, and the ETA never goes
        // negative.
        let eta = eta_from_ops(200_000, 100_000, 10.0, &[(1e9, 100_000)]).unwrap();
        let floor = (100_000.0 - 95_000.0) / 10_000.0;
        assert!((eta - floor).abs() < 1e-9, "{eta}");
        let eta = eta_from_ops(110_000, 100_000, 10.0, &[(1e9, 100_000)]).unwrap();
        assert!((eta - 0.0).abs() < 1e-9, "clamped at zero, got {eta}");
    }

    #[test]
    fn zero_estimate_inflight_cells_earn_no_credit() {
        // A cell whose estimator came back 0 (custom workloads can) sits in
        // the in-flight list without poisoning the ETA: its 95% cap is 0,
        // so its credit is 0 — but it still takes a share of the rate.
        let plain = eta_from_ops(400_000, 100_000, 10.0, &[]).unwrap();
        let with_zero = eta_from_ops(400_000, 100_000, 10.0, &[(5.0, 0)]).unwrap();
        assert!((plain - 30.0).abs() < 1e-9);
        assert!(
            (with_zero - 30.0).abs() < 1e-9,
            "zero-estimate cell credited nothing, got {with_zero}"
        );
        // Paired with a real cell it still only dilutes the shared rate:
        // the 200k cell gets rate/2 * 5s = 25k credit, the zero cell 0.
        let mixed = eta_from_ops(400_000, 100_000, 10.0, &[(5.0, 0), (5.0, 200_000)]).unwrap();
        assert!((mixed - 27.5).abs() < 1e-9, "{mixed}");
    }

    #[test]
    fn all_cells_inflight_with_nothing_done_gives_no_eta() {
        // Suite start: every cell is in flight, none has finished, so
        // est_done == 0 and there is no observed rate to extrapolate from.
        assert!(eta_from_ops(400_000, 0, 10.0, &[(5.0, 200_000), (5.0, 200_000)]).is_none());
        // Degenerate wall clock never divides by zero either.
        assert!(eta_from_ops(400_000, 100_000, 0.0, &[(5.0, 200_000)]).is_none());
    }

    #[test]
    fn every_remaining_cell_inflight_converges_to_the_cap_floor() {
        // All remaining work is in flight and every cell is near done: the
        // credit caps keep 5% of each estimate outstanding, so the ETA
        // stays positive until completions actually land.
        let eta = eta_from_ops(300_000, 100_000, 10.0, &[(1e9, 100_000), (1e9, 100_000)]).unwrap();
        let floor = (200_000.0 - 2.0 * 95_000.0) / 10_000.0;
        assert!((eta - floor).abs() < 1e-9, "{eta} vs floor {floor}");
        assert!(eta > 0.0);
    }

    #[test]
    fn longest_first_schedule_sorts_by_estimate_with_stable_ties() {
        use crate::PolicyKind;
        use numa_topology::MachineSpec;
        use workloads::Benchmark;
        let machine = MachineSpec::test_machine();
        let mk = |bench: Benchmark| CellSpec {
            machine: machine.clone(),
            workload: Workload::Bench(bench),
            kind: PolicyKind::Linux4k,
            seed: None,
            faults: None,
            label: None,
            lp_params: None,
            family: None,
        };
        // IS.D is the suite's largest footprint; EP.C is tiny.
        let specs = vec![mk(Benchmark::EpC), mk(Benchmark::IsD), mk(Benchmark::EpC)];
        let (order, est) = longest_first_schedule(&specs);
        assert_eq!(est.len(), 3);
        assert_eq!(est[0], est[2], "same cell shape, same estimate");
        assert!(est[1] > est[0], "IS.D should out-estimate EP.C");
        assert_eq!(
            order,
            vec![1, 0, 2],
            "longest first, ties in submission order"
        );
    }

    #[test]
    fn slow_jobs_are_flagged_not_killed() {
        let outcomes = par_map_outcomes(
            2,
            2,
            0.01,
            |i| format!("#{i}"),
            |i| {
                if i == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                i
            },
        );
        assert_eq!(outcomes[0].result(), Some(&0));
        match &outcomes[1] {
            CellOutcome::TimedOut { secs, result } => {
                assert!(*secs >= 0.01);
                assert_eq!(*result, 1, "the overdue job still completed");
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn resolve_jobs_prefers_cli() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn cell_keys_separate_distinct_cells() {
        let a = CellSpec::new(
            MachineSpec::machine_a(),
            Benchmark::UaB,
            PolicyKind::Linux4k,
        );
        let mut b = a.clone();
        b.kind = PolicyKind::LinuxThp;
        let mut c = a.clone();
        c.seed = Some(7);
        let mut d = a.clone();
        d.faults = Some(FaultConfig::uniform(1, 0.1));
        let keys: std::collections::BTreeSet<String> =
            [&a, &b, &c, &d].iter().map(|s| s.key()).collect();
        assert_eq!(keys.len(), 4);
        // The label is presentation only: it must NOT split the dedup key.
        let mut e = a.clone();
        e.label = Some("renamed".into());
        assert_eq!(a.key(), e.key());
    }
}
