//! The golden-run regression harness.
//!
//! A *golden digest* is a compact, checked-in summary of one traced
//! simulation run: per-epoch event counts plus a rolling hash of every
//! event ([`engine::TraceDigest`]). Because the simulator is fully
//! deterministic in `(spec, config.seed)`, recomputing a digest and
//! diffing it against the checked-in copy detects *any* behavioural drift
//! — an extra migration, a split moved by one epoch, a changed counter —
//! and names the first divergent epoch.
//!
//! The cell set is small on purpose: the two benchmarks the paper's
//! Figure 2 narrative revolves around (UA.B, CG.D) under the baseline
//! policies and full Carrefour-LP, on machine A, pinned to the default
//! seed, plus the two page-table placement policies (Mitosis, numaPTE)
//! and the sweep-tuned Carrefour-LP preset. Eleven cells cover the fault
//! path, khugepaged, the TLB, both Algorithm 1 components, the Carrefour
//! placement pass, table replication with write fan-out, sampled table
//! migration, and the non-default threshold path.
//!
//! Workflow:
//! * `cargo test -q` (tier-1) recomputes and diffs every cell.
//! * `cargo run --release --bin trace -- --bless` rewrites the goldens
//!   after an *intentional* behaviour change (see DESIGN.md §9 for the
//!   when-to-bless policy).

use crate::PolicyKind;
use engine::{DigestSink, SimConfig, Simulation, TraceDigest};
use numa_topology::MachineSpec;
use std::path::{Path, PathBuf};
use workloads::Benchmark;

/// One golden cell: a pinned (machine, benchmark, policy) run.
#[derive(Clone, Copy, Debug)]
pub struct GoldenCell {
    /// The benchmark.
    pub bench: Benchmark,
    /// The policy.
    pub kind: PolicyKind,
}

/// The pinned cell set. Order is the order digests are computed and
/// reported in.
pub const GOLDEN_CELLS: [GoldenCell; 11] = [
    GoldenCell {
        bench: Benchmark::UaB,
        kind: PolicyKind::Linux4k,
    },
    GoldenCell {
        bench: Benchmark::UaB,
        kind: PolicyKind::LinuxThp,
    },
    GoldenCell {
        bench: Benchmark::UaB,
        kind: PolicyKind::CarrefourLp,
    },
    GoldenCell {
        bench: Benchmark::CgD,
        kind: PolicyKind::Linux4k,
    },
    GoldenCell {
        bench: Benchmark::CgD,
        kind: PolicyKind::LinuxThp,
    },
    GoldenCell {
        bench: Benchmark::CgD,
        kind: PolicyKind::CarrefourLp,
    },
    GoldenCell {
        bench: Benchmark::UaB,
        kind: PolicyKind::Mitosis,
    },
    GoldenCell {
        bench: Benchmark::UaB,
        kind: PolicyKind::NumaPte,
    },
    GoldenCell {
        bench: Benchmark::CgD,
        kind: PolicyKind::Mitosis,
    },
    GoldenCell {
        bench: Benchmark::CgD,
        kind: PolicyKind::NumaPte,
    },
    // The threshold-sweep winner (results/SWEEP_lp.json): pins the tuned
    // preset so a drive-by edit to `LpParams::tuned()` — or a behaviour
    // change under non-default thresholds — fails loudly.
    GoldenCell {
        bench: Benchmark::UaB,
        kind: PolicyKind::CarrefourLpTuned,
    },
];

impl GoldenCell {
    /// File stem of this cell's golden digest (`ua_b__carrefour_lp`).
    pub fn stem(&self) -> String {
        let clean = |s: &str| {
            s.to_ascii_lowercase()
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect::<String>()
        };
        format!("{}__{}", clean(self.bench.name()), clean(self.kind.label()))
    }

    /// Path of this cell's golden file under `dir`.
    pub fn path(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}.json", self.stem()))
    }
}

/// The checked-in golden directory (`tests/golden/` at the repository
/// root), resolved relative to this crate so it works from any cwd —
/// test runner, bench binary, or CI.
pub fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .components()
        .collect()
}

/// Runs one golden cell traced and returns its digest. Identical inputs
/// to [`crate::run_cell`] — same machine config, same pinned seed — plus
/// a [`DigestSink`]; the digest's policy field is normalized to the
/// display label so goldens are self-describing.
pub fn digest_cell(machine: &MachineSpec, cell: GoldenCell) -> TraceDigest {
    let config = SimConfig::for_machine(machine, cell.kind.initial_thp());
    let spec = cell.bench.spec(machine);
    let mut policy = cell.kind.make();
    let mut sink = DigestSink::new();
    let result = Simulation::run_traced(machine, &spec, &config, policy.as_mut(), &mut sink);
    let mut digest = sink.into_digest();
    digest.policy = cell.kind.label().to_string();
    digest.runtime_cycles = result.runtime_cycles;
    assert_eq!(
        digest.epochs.len(),
        result.epochs.len(),
        "every epoch record must have a digest line"
    );
    digest
}

/// Computes every golden cell's digest on machine A through the shared
/// runner pool (each cell is independently deterministic, so the result
/// is identical at any worker count; `CARREFOUR_JOBS=1` gives the strictly
/// sequential path CI keeps covered).
pub fn compute_all() -> Vec<(GoldenCell, TraceDigest)> {
    let machine = MachineSpec::machine_a();
    let jobs = crate::runner::resolve_jobs(None);
    crate::runner::par_map(jobs, GOLDEN_CELLS.len(), |i| {
        let cell = GOLDEN_CELLS[i];
        (cell, digest_cell(&machine, cell))
    })
}

/// Recomputes every digest and writes it into `dir` (the bless path).
/// Returns the files written.
pub fn bless(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for (cell, digest) in compute_all() {
        let path = cell.path(dir);
        std::fs::write(&path, digest.to_json())?;
        written.push(path);
    }
    Ok(written)
}

/// Recomputes every digest and diffs it against the checked-in copy in
/// `dir`. Returns one report per divergent or unreadable cell; an empty
/// vector means every cell matches.
pub fn verify(dir: &Path) -> Vec<String> {
    let mut reports = Vec::new();
    for (cell, found) in compute_all() {
        let path = cell.path(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                reports.push(format!(
                    "missing golden digest {} ({e}); run `cargo run --release \
                     --bin trace -- --bless` to create it",
                    path.display()
                ));
                continue;
            }
        };
        let golden = match TraceDigest::from_json(&text) {
            Ok(d) => d,
            Err(e) => {
                reports.push(format!(
                    "unparseable golden digest {}: {e}; re-bless it",
                    path.display()
                ));
                continue;
            }
        };
        if let Some(diff) = golden.diff(&found) {
            reports.push(diff);
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stems_are_unique_and_filename_safe() {
        let stems: std::collections::BTreeSet<String> =
            GOLDEN_CELLS.iter().map(GoldenCell::stem).collect();
        assert_eq!(stems.len(), GOLDEN_CELLS.len());
        for s in &stems {
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{s}"
            );
        }
    }

    #[test]
    fn golden_dir_points_into_the_repo() {
        let dir = golden_dir();
        assert!(dir.ends_with("tests/golden"), "{}", dir.display());
    }
}
