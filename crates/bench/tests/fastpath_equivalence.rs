//! Fast-path-vs-per-op equivalence of the engine's batched access stream.
//!
//! The engine's `run_block` fast path (DESIGN.md §10, "Fast path
//! soundness") memoizes epoch-stable uncached outcomes, bulk-charges
//! stable L1-MRU hits, and skips the IBS sampler ahead — all claimed
//! bit-identical to the per-op path. `CARREFOUR_NO_FASTPATH=1` forces the
//! per-op path; these tests run both and assert full `SimResult` equality
//! (`PartialEq` covers every per-epoch record and lifetime counter).
//!
//! The targeted scenarios pin the invalidation edge cases where a stale
//! memo would be visible: replica collapse on store (remaps mid-epoch),
//! shootdowns during a multi-threaded epoch (migration remaps), and
//! demote-then-repromote (split followed by khugepaged collapse). Each
//! test also asserts the scenario actually fired, so a policy change that
//! silences the trigger fails loudly instead of hollowing out the test.

use carrefour::Carrefour;
use carrefour_bench::runner::{self, CellSpec, Progress, Workload};
use carrefour_bench::PolicyKind;
use engine::{FaultConfig, NumaPolicy, SimConfig, SimResult, Simulation};
use numa_topology::MachineSpec;
use proptest::prelude::*;
use std::sync::Mutex;
use vmem::ThpControls;
use workloads::{AccessPattern, RegionSpec, WorkloadSpec};

const BASE: u64 = 64 << 30;

/// Serializes tests that flip `CARREFOUR_NO_FASTPATH`: the engine reads
/// the variable per run, and cargo runs tests in this binary on threads.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `specs` sequentially twice — fast path on, then forced off — and
/// asserts the result rows are bit-identical. Returns the fast-path rows
/// so callers can assert their scenario actually triggered.
fn assert_fastpath_equivalent(specs: &[CellSpec]) -> Vec<SimResult> {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("CARREFOUR_QUIET", "1");
    std::env::remove_var("CARREFOUR_NO_FASTPATH");
    let pf = Progress::new("fp-on", specs.len());
    let fast = runner::run_cells(specs, 1, &pf);
    std::env::set_var("CARREFOUR_NO_FASTPATH", "1");
    let ps = Progress::new("fp-off", specs.len());
    let slow = runner::run_cells(specs, 1, &ps);
    std::env::remove_var("CARREFOUR_NO_FASTPATH");
    assert_eq!(fast.len(), slow.len());
    for (cf, cs) in fast.iter().zip(&slow) {
        assert_eq!(
            cf.result, cs.result,
            "fast path diverged from per-op path for {}/{}",
            cf.benchmark, cf.policy
        );
    }
    fast.into_iter().map(|c| c.result).collect()
}

/// A small multi-threaded workload over one region.
fn spec(name: &str, mib: u64, pattern: AccessPattern, write_fraction: f64) -> WorkloadSpec {
    let machine = MachineSpec::test_machine();
    WorkloadSpec {
        name: name.to_string(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: BASE,
            bytes: mib << 20,
            share: 1.0,
            pattern,
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: true,
            read_only: false,
        }],
        ops_per_round: 400,
        compute_rounds: 10,
        think_cycles_per_op: 10,
        write_fraction,
        phases: Vec::new(),
        mlp: 1,
    }
}

fn cell(workload: WorkloadSpec, kind: PolicyKind, faults: Option<FaultConfig>) -> CellSpec {
    CellSpec {
        machine: MachineSpec::test_machine(),
        workload: Workload::Custom(workload),
        kind,
        seed: Some(7),
        faults,
        label: None,
        lp_params: None,
        family: None,
    }
}

/// Runs one `Simulation` twice — fast path on, then forced off — with a
/// fresh policy instance each time, and asserts bit-identical results.
/// Direct `Simulation::run` variant of [`assert_fastpath_equivalent`] for
/// scenarios that need a hand-configured policy (e.g. replication, which
/// no `PolicyKind` enables).
fn assert_sim_equivalent(
    machine: &MachineSpec,
    spec: &WorkloadSpec,
    config: &SimConfig,
    mut make_policy: impl FnMut() -> Box<dyn NumaPolicy>,
) -> SimResult {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::remove_var("CARREFOUR_NO_FASTPATH");
    let fast = Simulation::run(machine, spec, config, make_policy().as_mut());
    std::env::set_var("CARREFOUR_NO_FASTPATH", "1");
    let slow = Simulation::run(machine, spec, config, make_policy().as_mut());
    std::env::remove_var("CARREFOUR_NO_FASTPATH");
    assert_eq!(fast, slow, "fast path diverged from per-op path");
    fast
}

/// Replica collapse on store: Carrefour-with-replication replicates
/// read-mostly shared pages, and a later store collapses the replica set —
/// a mid-epoch remap that must invalidate the uncached-outcome memo and
/// the walk cache. (Replication is off in every `PolicyKind`, so this
/// scenario drives `Simulation::run` directly.)
#[test]
fn replica_collapse_on_store_is_bit_identical() {
    let machine = MachineSpec::test_machine();
    // A large loader-built shared region (skewed onto node 0 so LAR is low
    // and the policy engages) with rare stores: pages look read-only long
    // enough to replicate, and the residual 1 % real stores then hit the
    // replicas and collapse them.
    let mut w = spec("replica-collapse", 32, AccessPattern::SharedUniform, 0.01);
    w.regions[0].alloc_skew = 1.0;
    w.ops_per_round = 1000;
    w.compute_rounds = 150;
    let mut config = SimConfig::for_machine(&machine, ThpControls::small_only());
    // Dense sampling: replication coverage is sample-bound.
    config.ibs.period = 32;
    let r = assert_sim_equivalent(&machine, &w, &config, || {
        Box::new(Carrefour::with_replication())
    });
    let vm = &r.lifetime.vmem;
    assert!(vm.replications > 0, "scenario did not replicate: {vm:?}");
    assert!(
        vm.replica_collapses > 0,
        "scenario did not collapse a replica on store: {vm:?}"
    );
}

/// Shootdowns during a multi-threaded epoch: migrations remap pages while
/// every core is mid-stream, so each shootdown must clear the memo table
/// for all threads, not just the migrating one. The region is skewed onto
/// node 0 and larger than the combined L3, so DRAM-serviced samples engage
/// Carrefour and its interleaving migrates pages mid-run.
#[test]
fn shootdown_during_multithread_epoch_is_bit_identical() {
    let mut w = spec("shootdown", 32, AccessPattern::SharedUniform, 0.4);
    w.regions[0].alloc_skew = 1.0;
    w.ops_per_round = 1000;
    w.compute_rounds = 150;
    assert!(w.threads > 1, "scenario needs multiple threads");
    let results = assert_fastpath_equivalent(&[cell(w, PolicyKind::Carrefour4k, None)]);
    let vm = &results[0].lifetime.vmem;
    assert!(
        vm.migrations_4k + vm.migrations_2m > 0,
        "scenario did not migrate (no shootdowns exercised): {vm:?}"
    );
}

/// Demote-then-repromote: Carrefour-LP splits a hot huge page, khugepaged
/// later re-collapses the run — two generation bumps bracketing epochs in
/// which the 4 KiB children are accessed through the fast path.
#[test]
fn demote_then_repromote_is_bit_identical() {
    let w = spec("demote-repromote", 8, AccessPattern::SharedUniform, 0.5);
    let results = assert_fastpath_equivalent(&[cell(w, PolicyKind::CarrefourLp, None)]);
    let vm = &results[0].lifetime.vmem;
    assert!(vm.splits > 0, "scenario did not split a huge page: {vm:?}");
    assert!(
        vm.collapses > 0,
        "scenario did not re-promote after the split: {vm:?}"
    );
}

proptest! {
    /// Random workload shapes, seeds, policies, and **nonzero fault
    /// plans** produce bit-identical `SimResult`s with the fast path on
    /// and off. Fault injection is the nastiest case: injected failures
    /// (busy pins, allocation vetoes, dropped samples) perturb policy
    /// actions mid-epoch, exactly where a stale memo would surface.
    #[test]
    fn fastpath_is_bit_identical_under_faults(
        mib in 2u64..6,
        seed in 0u64..=u64::MAX,
        fault_seed in 1u64..u64::MAX,
        rate in 0.01f64..0.5,
        write_fraction in 0.0f64..0.6,
        pattern in [AccessPattern::PrivateSlices, AccessPattern::SharedUniform, AccessPattern::Stream { stride: 64 }].as_slice(),
        kind in [
            PolicyKind::Linux4k,
            PolicyKind::LinuxThp,
            PolicyKind::Carrefour4k,
            PolicyKind::CarrefourLp,
            PolicyKind::CarrefourLpNoRetry,
        ].as_slice(),
    ) {
        let w = spec("fp-prop", mib, pattern, write_fraction);
        let mut c = cell(w, kind, Some(FaultConfig::uniform(fault_seed, rate)));
        c.seed = Some(seed);
        assert_fastpath_equivalent(&[c]);
    }
}
