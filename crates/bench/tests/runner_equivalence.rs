//! Parallel-vs-sequential equivalence of the experiment runner.
//!
//! The runner's determinism claim (DESIGN.md §10): worker threads decide
//! only *where* a cell runs, never what it computes, and results land in
//! submission-order slots — so any worker count yields a bit-identical
//! `Vec<Cell>`. The property test drives that claim with randomly shaped
//! small workloads, random seeds, and **nonzero fault plans** (the fault
//! injector draws from a per-cell RNG, the nastiest place a cross-thread
//! leak could hide). A separate smoke test covers two real paper cells.

use carrefour_bench::runner::{self, CellSpec, Progress, Workload};
use carrefour_bench::PolicyKind;
use engine::FaultConfig;
use numa_topology::MachineSpec;
use proptest::prelude::*;
use workloads::{AccessPattern, Benchmark, RegionSpec, WorkloadSpec};

const BASE: u64 = 64 << 30;

/// A small, cheap workload spec (same shape as the engine's fault props).
fn small_spec(
    machine: &MachineSpec,
    name: String,
    mib: u64,
    pattern: AccessPattern,
) -> WorkloadSpec {
    WorkloadSpec {
        name,
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: BASE,
            bytes: mib << 20,
            share: 1.0,
            pattern,
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: false,
            read_only: false,
        }],
        ops_per_round: 200,
        compute_rounds: 6,
        think_cycles_per_op: 10,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    }
}

/// Runs the same specs at two worker counts under a quiet progress
/// reporter and asserts the full result rows are bit-identical.
fn assert_jobs_equivalent(specs: &[CellSpec], jobs_a: usize, jobs_b: usize) {
    std::env::set_var("CARREFOUR_QUIET", "1");
    let pa = Progress::new("eq-a", specs.len());
    let a = runner::run_cells(specs, jobs_a, &pa);
    let pb = Progress::new("eq-b", specs.len());
    let b = runner::run_cells(specs, jobs_b, &pb);
    assert_eq!(a.len(), b.len());
    for (ca, cb) in a.iter().zip(&b) {
        assert_eq!(ca.machine, cb.machine);
        assert_eq!(ca.benchmark, cb.benchmark);
        assert_eq!(ca.policy, cb.policy);
        assert_eq!(
            ca.result, cb.result,
            "results diverged for {}/{} at jobs {jobs_a} vs {jobs_b}",
            ca.benchmark, ca.policy
        );
    }
}

proptest! {
    /// N random cells — random workload shapes, seeds, policies, and
    /// nonzero fault plans — produce `SimResult`s bit-identical
    /// (`PartialEq`) between a sequential run and a parallel run.
    #[test]
    fn parallel_run_is_bit_identical_to_sequential(
        n in 1usize..4,
        mib in 2u64..6,
        seed in 0u64..=u64::MAX,
        fault_seed in 1u64..u64::MAX,
        rate in 0.01f64..0.5,
        pattern in [AccessPattern::PrivateSlices, AccessPattern::SharedUniform].as_slice(),
        jobs in 2usize..5,
    ) {
        let machine = MachineSpec::test_machine();
        let kinds = [
            PolicyKind::Linux4k,
            PolicyKind::LinuxThp,
            PolicyKind::CarrefourLp,
            PolicyKind::CarrefourLpNoRetry,
        ];
        let specs: Vec<CellSpec> = (0..n)
            .map(|i| CellSpec {
                machine: machine.clone(),
                workload: Workload::Custom(small_spec(
                    &machine,
                    format!("eq-{i}"),
                    mib + i as u64,
                    pattern,
                )),
                kind: kinds[i % kinds.len()],
                seed: Some(seed.wrapping_add(i as u64)),
                faults: Some(FaultConfig::uniform(fault_seed, rate)),
                label: None,
                lp_params: None,
                family: None,
            })
            .collect();
        assert_jobs_equivalent(&specs, 1, jobs);
    }
}

/// Two real paper cells (UA.B under Linux-4K and Carrefour-LP): the
/// sequential and the 2-worker run return identical rows. This is the
/// same code path `all_experiments --jobs N` takes.
#[test]
fn real_cells_equivalent_across_jobs() {
    let machine = MachineSpec::machine_a();
    let specs = vec![
        CellSpec::new(machine.clone(), Benchmark::UaB, PolicyKind::Linux4k),
        CellSpec::new(machine, Benchmark::UaB, PolicyKind::CarrefourLp),
    ];
    assert_jobs_equivalent(&specs, 1, 2);
}

/// `figPT` (the page-table placement experiment) is deterministic at any
/// worker count: a Mitosis and a numaPTE cell from its spec list return
/// bit-identical rows sequentially and with 3 workers. Full-matrix runs
/// are covered by the experiment itself in CI; two cells keep tier-1 fast
/// while still exercising both new policies through the pool.
#[test]
fn fig_pt_cells_equivalent_across_jobs() {
    let exp = carrefour_bench::experiments::all()
        .into_iter()
        .find(|e| e.name == "figPT")
        .expect("figPT registered");
    let specs: Vec<CellSpec> = exp
        .specs
        .into_iter()
        .filter(|s| {
            matches!(s.kind, PolicyKind::Mitosis | PolicyKind::NumaPte)
                && s.machine.name() == "machine-a"
        })
        .take(2)
        .collect();
    assert_eq!(specs.len(), 2, "figPT must sweep the table policies");
    assert_jobs_equivalent(&specs, 1, 3);
}

/// A panicking cell no longer aborts the suite: a spec whose region setup
/// fails (overlapping regions) comes back as `CellOutcome::Panicked` with
/// the panic message, while every sibling cell still completes with its
/// normal deterministic result.
#[test]
fn panicking_cell_does_not_abort_the_suite() {
    std::env::set_var("CARREFOUR_QUIET", "1");
    let machine = MachineSpec::test_machine();
    let good = |name: &str| CellSpec {
        machine: machine.clone(),
        workload: Workload::Custom(small_spec(
            &machine,
            name.to_string(),
            3,
            AccessPattern::PrivateSlices,
        )),
        kind: PolicyKind::CarrefourLp,
        seed: Some(5),
        faults: None,
        label: None,
        lp_params: None,
        family: None,
    };
    let mut bad_spec = small_spec(&machine, "bad".to_string(), 3, AccessPattern::PrivateSlices);
    // A second region at the same base: the overlap panics inside the
    // cell (shares are rebalanced so that check fires, not the share sum).
    bad_spec.regions[0].share = 0.5;
    bad_spec.regions.push(bad_spec.regions[0].clone());
    let mut bad = good("bad-cell");
    bad.workload = Workload::Custom(bad_spec);
    let specs = vec![good("good-0"), bad, good("good-2")];

    for jobs in [1, 2] {
        let progress = Progress::new("panic-isolated", specs.len());
        let outcomes = runner::run_cells_outcomes(&specs, jobs, &progress, |_, _| {});
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].result().is_some(), "good cell 0 must complete");
        assert!(outcomes[2].result().is_some(), "good cell 2 must complete");
        match &outcomes[1] {
            runner::CellOutcome::Panicked { msg } => {
                assert!(msg.contains("overlapping regions"), "unexpected msg: {msg}");
            }
            _ => panic!("expected the bad cell to panic"),
        }
    }
}

/// `run_spec` and the classic `run_cell` agree on plain cells, so the
/// dedup in `all_experiments` serves figure bins the exact rows their
/// standalone binaries would have computed.
#[test]
fn run_spec_matches_run_cell() {
    let machine = MachineSpec::machine_a();
    let spec = CellSpec::new(machine.clone(), Benchmark::UaB, PolicyKind::LinuxThp);
    let a = runner::run_spec(&spec);
    let b = carrefour_bench::run_cell(&machine, Benchmark::UaB, PolicyKind::LinuxThp);
    assert_eq!(a, b);
}
