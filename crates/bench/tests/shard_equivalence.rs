//! Sharded-vs-serial bit-equivalence of the intra-run shard lanes.
//!
//! The sharding contract (DESIGN.md §14): `SimConfig::shards` — and the
//! `CARREFOUR_SHARDS` override — only changes how many OS threads compute
//! an epoch, never what they compute. These tests pin the contract at its
//! strongest reading:
//!
//! * every **golden cell** produces a byte-identical [`engine::TraceDigest`]
//!   and an equal [`SimResult`] at shard counts 1, 2, 3, and 8;
//! * random shapes, seeds, policies, and **nonzero fault plans** (with the
//!   attribution ledger ON, so per-bucket cycle conservation is compared
//!   too) are bit-identical at every shard count;
//! * `ckpt-v1` snapshots are **byte-identical** across shard counts, and
//!   resume across a shard-merged epoch boundary in *both* directions —
//!   serial snapshot → sharded resume and sharded snapshot → serial
//!   resume.
//!
//! Robustness counters and trace digests ride along in `SimResult` /
//! `TraceDigest` equality; `assert_eq!` on `SimResult` covers the
//! attribution ledger because `AttributionLedger` derives `PartialEq`.

use carrefour_bench::{golden, PolicyKind};
use engine::{DigestSink, FaultConfig, NumaPolicy, SimConfig, SimResult, Simulation, TraceDigest};
use numa_topology::MachineSpec;
use proptest::prelude::*;
use std::sync::Mutex;
use workloads::{AccessPattern, RegionSpec, WorkloadSpec};

const BASE: u64 = 64 << 30;

/// The shard counts the acceptance bar names: serial, even split, uneven
/// split (3 lanes over 4 node groups), and over-subscribed (8 > any
/// machine's group count, so it clamps).
const SHARD_COUNTS: [u32; 4] = [1, 2, 3, 8];

/// Serializes the test that sets `CARREFOUR_SHARDS` (the engine reads it
/// per run; cargo runs tests in this binary on threads).
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A small multi-threaded workload, the same shape the fast-path and
/// checkpoint suites use.
fn small_spec(name: &str, mib: u64, pattern: AccessPattern) -> WorkloadSpec {
    let machine = MachineSpec::test_machine();
    WorkloadSpec {
        name: name.to_string(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: BASE,
            bytes: mib << 20,
            share: 1.0,
            pattern,
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: true,
            read_only: false,
        }],
        ops_per_round: 300,
        compute_rounds: 8,
        think_cycles_per_op: 10,
        write_fraction: 0.4,
        phases: Vec::new(),
        mlp: 1,
    }
}

/// Runs one cell traced and returns `(result, digest)`.
fn run_traced(
    machine: &MachineSpec,
    spec: &WorkloadSpec,
    config: &SimConfig,
    policy: &mut dyn NumaPolicy,
) -> (SimResult, TraceDigest) {
    let mut sink = DigestSink::new();
    let result = Simulation::run_traced(machine, spec, config, policy, &mut sink);
    (result, sink.into_digest())
}

/// Runs the cell serially, then at every shard count in [`SHARD_COUNTS`],
/// asserting full `SimResult` and `TraceDigest` equality each time.
/// Returns the serial result for scenario assertions.
fn assert_shard_equivalent(
    machine: &MachineSpec,
    spec: &WorkloadSpec,
    config: &SimConfig,
    mut make_policy: impl FnMut() -> Box<dyn NumaPolicy>,
) -> SimResult {
    let mut serial = config.clone();
    serial.shards = 1;
    let (want, want_digest) = run_traced(machine, spec, &serial, make_policy().as_mut());
    for shards in SHARD_COUNTS {
        let mut c = config.clone();
        c.shards = shards;
        let (got, got_digest) = run_traced(machine, spec, &c, make_policy().as_mut());
        assert_eq!(
            got, want,
            "SimResult diverged at shards={shards} ({}/{})",
            want.workload, want.policy
        );
        assert!(
            want_digest.diff(&got_digest).is_none(),
            "trace digest diverged at shards={shards}: {}",
            want_digest.diff(&got_digest).unwrap_or_default()
        );
    }
    want
}

/// Every golden cell — the exact digests that gate CI — is bit-identical
/// at every shard count, trace digest included. This is the tentpole's
/// acceptance bar: "all ten golden digests byte-identical at any shard
/// count".
#[test]
fn golden_cells_are_bit_identical_at_every_shard_count() {
    std::env::set_var("CARREFOUR_QUIET", "1");
    let machine = MachineSpec::machine_a();
    let jobs = carrefour_bench::runner::resolve_jobs(None);
    carrefour_bench::runner::par_map(jobs, golden::GOLDEN_CELLS.len(), |i| {
        let cell = golden::GOLDEN_CELLS[i];
        let config = SimConfig::for_machine(&machine, cell.kind.initial_thp());
        let spec = cell.bench.spec(&machine);
        let want = golden::digest_cell(&machine, cell);
        for shards in SHARD_COUNTS {
            let mut c = config.clone();
            c.shards = shards;
            let (_, mut got) = run_traced(&machine, &spec, &c, cell.kind.make().as_mut());
            got.policy = cell.kind.label().to_string();
            got.runtime_cycles = want.runtime_cycles;
            assert!(
                want.diff(&got).is_none(),
                "golden {} diverged at shards={shards}: {}",
                cell.stem(),
                want.diff(&got).unwrap_or_default()
            );
        }
    });
}

/// The `CARREFOUR_SHARDS` environment variable overrides the config field
/// and produces the same bit-identical results.
#[test]
fn env_override_is_bit_identical_and_wins_over_config() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let machine = MachineSpec::test_machine();
    let spec = small_spec("shards-env", 4, AccessPattern::SharedUniform);
    let config = SimConfig::for_machine(&machine, PolicyKind::CarrefourLp.initial_thp());
    let want = Simulation::run(
        &machine,
        &spec,
        &config,
        PolicyKind::CarrefourLp.make().as_mut(),
    );
    // Env says 2 lanes even though the config says serial.
    let mut c = config.clone();
    c.shards = 1;
    std::env::set_var("CARREFOUR_SHARDS", "2");
    let got = Simulation::run(&machine, &spec, &c, PolicyKind::CarrefourLp.make().as_mut());
    std::env::remove_var("CARREFOUR_SHARDS");
    assert_eq!(got, want, "CARREFOUR_SHARDS=2 diverged from serial");
}

/// Snapshots are part of the contract: a `ckpt-v1` checkpoint taken at
/// the same epoch is **byte-identical** at every shard count (the merged
/// state *is* the serial state, not merely equivalent), and it resumes
/// across a shard-merged boundary in both directions — serial snapshot
/// into a sharded tail and sharded snapshot into a serial tail.
#[test]
fn checkpoints_are_byte_identical_and_resume_across_shard_counts() {
    let machine = MachineSpec::test_machine();
    let spec = small_spec("shards-ckpt", 4, AccessPattern::SharedUniform);
    let mut config = SimConfig::for_machine(&machine, PolicyKind::CarrefourLp.initial_thp());
    config.attribution = true;
    let mk = || PolicyKind::CarrefourLp.make();

    let mut serial = config.clone();
    serial.shards = 1;
    let full = Simulation::run(&machine, &spec, &serial, mk().as_mut());
    let n = full.epochs.len() as u32;
    assert!(
        n >= 3,
        "workload too short to bracket a boundary: {n} epochs"
    );

    for epoch in [1, n / 2, n - 1] {
        let ckpt_serial = Simulation::checkpoint_at(&machine, &spec, &serial, mk().as_mut(), epoch)
            .expect("serial snapshot");
        for shards in SHARD_COUNTS {
            let mut c = config.clone();
            c.shards = shards;
            // Byte identity of the snapshot itself.
            let ckpt_sharded = Simulation::checkpoint_at(&machine, &spec, &c, mk().as_mut(), epoch)
                .expect("sharded snapshot");
            assert_eq!(
                ckpt_serial.to_bytes(),
                ckpt_sharded.to_bytes(),
                "snapshot bytes diverged at epoch {epoch}, shards={shards}"
            );
            // Serial snapshot → sharded tail.
            let resumed = Simulation::resume(&machine, &spec, &c, mk().as_mut(), &ckpt_serial);
            assert_eq!(
                resumed, full,
                "sharded resume of serial snapshot diverged at epoch {epoch}, shards={shards}"
            );
            // Sharded snapshot → serial tail.
            let resumed =
                Simulation::resume(&machine, &spec, &serial, mk().as_mut(), &ckpt_sharded);
            assert_eq!(
                resumed, full,
                "serial resume of sharded snapshot diverged at epoch {epoch}, shards={shards}"
            );
        }
    }
}

proptest! {
    /// Random workload shapes, seeds, policies, and **nonzero fault
    /// plans**, with the attribution ledger ON: bit-identical `SimResult`
    /// (ledger, robustness counters, per-epoch records) and trace digest
    /// at every shard count. Fault injection is the adversarial case for
    /// the shardability gate: vetoes and pins perturb boundary actions,
    /// and the gate must still only shard epochs whose rounds are
    /// fault-free.
    #[test]
    fn sharded_is_bit_identical_under_faults(
        mib in 2u64..5,
        seed in 0u64..=u64::MAX,
        fault_seed in 1u64..u64::MAX,
        rate in 0.05f64..0.5,
        pattern in [AccessPattern::PrivateSlices, AccessPattern::SharedUniform].as_slice(),
        kind in [
            PolicyKind::Linux4k,
            PolicyKind::LinuxThp,
            PolicyKind::CarrefourLp,
            PolicyKind::Mitosis,
            PolicyKind::NumaPte,
        ].as_slice(),
    ) {
        let machine = MachineSpec::test_machine();
        let spec = small_spec("shards-prop", mib, pattern);
        let mut config = SimConfig::for_machine(&machine, kind.initial_thp());
        config.seed = seed;
        config.attribution = true;
        config.faults = FaultConfig::uniform(fault_seed, rate);
        let r = assert_shard_equivalent(&machine, &spec, &config, || kind.make());
        prop_assert!(r.attribution.is_some(), "ledger must be on for this proptest");
    }
}
