//! Recorder-on vs recorder-off bit-equivalence of the flight recorder.
//!
//! The metrics recorder's contract (DESIGN.md §16) mirrors the trace
//! layer's: attaching a [`engine::MetricsRecorder`] is pure observation —
//! it must never change a single bit of the simulation's outputs. These
//! tests pin that at its strongest reading:
//!
//! * every **golden cell** runs recorder-on and recorder-off with equal
//!   [`engine::SimResult`]s (attribution ledger and robustness counters
//!   ride along in `PartialEq`) and a byte-identical trace digest;
//! * random shapes, seeds, policies, and **nonzero fault plans**, with
//!   the attribution ledger ON, are bit-identical at shard counts 1 and
//!   4 (CI re-runs this whole binary under `CARREFOUR_SHARDS=4` as
//!   well);
//! * the recorded series itself is structurally sound: one row per
//!   simulated epoch, in order, with the run header announced.

use carrefour_bench::{golden, PolicyKind};
use engine::{
    DigestSink, FaultConfig, NumaPolicy, SimConfig, SimResult, Simulation, TraceDigest,
    VecMetricsRecorder,
};
use numa_topology::MachineSpec;
use proptest::prelude::*;
use workloads::{AccessPattern, RegionSpec, WorkloadSpec};

const BASE: u64 = 64 << 30;

/// A small multi-threaded workload, the same shape the shard- and
/// checkpoint-equivalence suites use.
fn small_spec(name: &str, mib: u64, pattern: AccessPattern) -> WorkloadSpec {
    let machine = MachineSpec::test_machine();
    WorkloadSpec {
        name: name.to_string(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: BASE,
            bytes: mib << 20,
            share: 1.0,
            pattern,
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: true,
            read_only: false,
        }],
        ops_per_round: 300,
        compute_rounds: 8,
        think_cycles_per_op: 10,
        write_fraction: 0.4,
        phases: Vec::new(),
        mlp: 1,
    }
}

/// Runs one cell traced, recorder off: `(result, digest)`.
fn run_plain(
    machine: &MachineSpec,
    spec: &WorkloadSpec,
    config: &SimConfig,
    policy: &mut dyn NumaPolicy,
) -> (SimResult, TraceDigest) {
    let mut sink = DigestSink::new();
    let result = Simulation::run_traced(machine, spec, config, policy, &mut sink);
    (result, sink.into_digest())
}

/// Runs one cell traced with a [`VecMetricsRecorder`] attached:
/// `(result, digest, recorder)`.
fn run_recorded(
    machine: &MachineSpec,
    spec: &WorkloadSpec,
    config: &SimConfig,
    policy: &mut dyn NumaPolicy,
) -> (SimResult, TraceDigest, VecMetricsRecorder) {
    let mut sink = DigestSink::new();
    let mut rec = VecMetricsRecorder::new();
    let result = Simulation::run_recorded(machine, spec, config, policy, Some(&mut sink), &mut rec);
    (result, sink.into_digest(), rec)
}

/// Asserts recorder-on == recorder-off for one cell, returning the
/// recorded series for structural checks.
fn assert_recorder_invisible(
    machine: &MachineSpec,
    spec: &WorkloadSpec,
    config: &SimConfig,
    mut make_policy: impl FnMut() -> Box<dyn NumaPolicy>,
) -> (SimResult, VecMetricsRecorder) {
    let (want, want_digest) = run_plain(machine, spec, config, make_policy().as_mut());
    let (got, got_digest, rec) = run_recorded(machine, spec, config, make_policy().as_mut());
    assert_eq!(
        got, want,
        "SimResult diverged with the recorder on ({}/{})",
        want.workload, want.policy
    );
    assert!(
        want_digest.diff(&got_digest).is_none(),
        "trace digest diverged with the recorder on: {}",
        want_digest.diff(&got_digest).unwrap_or_default()
    );
    (want, rec)
}

/// Checks the recorded series' structure against the run it observed.
fn assert_series_sound(result: &SimResult, rec: &VecMetricsRecorder) {
    assert_eq!(
        rec.rows.len(),
        result.epochs.len(),
        "one row per simulated epoch"
    );
    for (i, row) in rec.rows.iter().enumerate() {
        assert_eq!(row.epoch as usize, i, "rows arrive in epoch order");
    }
    let (workload, _, _) = rec.header.as_ref().expect("run header announced");
    assert_eq!(workload, &result.workload);
}

/// Every golden cell — the exact digests that gate CI — is bit-identical
/// with the recorder attached, trace digest included. This is the
/// tentpole's acceptance bar.
#[test]
fn golden_cells_are_bit_identical_with_recorder_on() {
    std::env::set_var("CARREFOUR_QUIET", "1");
    let machine = MachineSpec::machine_a();
    let jobs = carrefour_bench::runner::resolve_jobs(None);
    carrefour_bench::runner::par_map(jobs, golden::GOLDEN_CELLS.len(), |i| {
        let cell = golden::GOLDEN_CELLS[i];
        let config = SimConfig::for_machine(&machine, cell.kind.initial_thp());
        let spec = cell.bench.spec(&machine);
        let (result, rec) =
            assert_recorder_invisible(&machine, &spec, &config, || cell.kind.make());
        assert_series_sound(&result, &rec);
        // The checked-in golden digest itself must also match the
        // recorder-on run: recompute it and diff.
        let want = golden::digest_cell(&machine, cell);
        let (_, mut got, _) = run_recorded(&machine, &spec, &config, cell.kind.make().as_mut());
        got.policy = cell.kind.label().to_string();
        got.runtime_cycles = want.runtime_cycles;
        assert!(
            want.diff(&got).is_none(),
            "golden {} diverged with recorder on: {}",
            cell.stem(),
            want.diff(&got).unwrap_or_default()
        );
    });
}

proptest! {
    /// Random workload shapes, seeds, policies, and **nonzero fault
    /// plans**, with the attribution ledger ON, at shard counts 1 and 4:
    /// recorder-on is bit-identical to recorder-off — `SimResult`
    /// (ledger, robustness counters, per-epoch records) and trace digest.
    /// Faults are the adversarial case: retries, vetoes, and breaker
    /// trips populate the recorder's policy-introspection and
    /// failed-action fields, which must stay read-only.
    #[test]
    fn recorded_is_bit_identical_under_faults(
        mib in 2u64..5,
        seed in 0u64..=u64::MAX,
        fault_seed in 1u64..u64::MAX,
        rate in 0.05f64..0.5,
        pattern in [AccessPattern::PrivateSlices, AccessPattern::SharedUniform].as_slice(),
        kind in [
            PolicyKind::Linux4k,
            PolicyKind::LinuxThp,
            PolicyKind::CarrefourLp,
            PolicyKind::Mitosis,
            PolicyKind::NumaPte,
        ].as_slice(),
    ) {
        let machine = MachineSpec::test_machine();
        let spec = small_spec("metrics-prop", mib, pattern);
        for shards in [1u32, 4] {
            let mut config = SimConfig::for_machine(&machine, kind.initial_thp());
            config.seed = seed;
            config.attribution = true;
            config.faults = FaultConfig::uniform(fault_seed, rate);
            config.shards = shards;
            let (result, rec) =
                assert_recorder_invisible(&machine, &spec, &config, || kind.make());
            assert_series_sound(&result, &rec);
            prop_assert!(result.attribution.is_some(), "ledger must be on");
            prop_assert!(
                rec.rows.iter().all(|r| r.attrib.is_some()),
                "every row carries its epoch's attribution delta when the ledger is on"
            );
        }
    }
}
