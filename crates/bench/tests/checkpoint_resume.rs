//! Resume-equivalence of `ckpt-v1` checkpoints at adversarial epochs.
//!
//! The checkpoint contract (DESIGN.md §12): a run resumed from a snapshot
//! is bit-identical — full `SimResult` equality, every per-epoch record,
//! every robustness counter, the attribution ledger — to the run that was
//! never interrupted. The engine's own tests prove this for small fault-free
//! and faulted configs; the tests here aim the snapshot at the state that
//! is easiest to lose:
//!
//! * the paper's **golden configurations** with attribution ON and a
//!   nonzero `FaultPlan` (the acceptance bar for the format);
//! * epochs where a fault-plan **allocation veto / `-EBUSY` pin fires**,
//!   where Carrefour-LP is **mid-retry-backoff** (pending queue nonempty,
//!   entries in flight), and where a **circuit breaker has tripped** —
//!   checked exhaustively at *every* epoch boundary of the run, so the
//!   adversarial epochs cannot be missed;
//! * random shapes/seeds/rates/epochs under **both the fast path and the
//!   forced per-op path**, including resuming a fast-path snapshot under
//!   `CARREFOUR_NO_FASTPATH=1` — the snapshot boundary state must be
//!   identical whichever path produced or consumes it.

use carrefour::CarrefourLp;
use carrefour_bench::{golden, PolicyKind};
use engine::{FaultConfig, NumaPolicy, SimConfig, SimResult, Simulation};
use numa_topology::MachineSpec;
use proptest::prelude::*;
use std::sync::Mutex;
use workloads::{AccessPattern, RegionSpec, WorkloadSpec};

const BASE: u64 = 64 << 30;

/// Serializes tests that flip `CARREFOUR_NO_FASTPATH` (the engine reads
/// it per run; cargo runs tests in this binary on threads).
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Takes the env lock, shrugging off poisoning: a failure in one test
/// must not cascade into `PoisonError` panics in its siblings.
fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A small multi-threaded workload, the same shape as the fast-path and
/// runner equivalence suites use.
fn small_spec(name: &str, mib: u64, pattern: AccessPattern) -> WorkloadSpec {
    let machine = MachineSpec::test_machine();
    WorkloadSpec {
        name: name.to_string(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: BASE,
            bytes: mib << 20,
            share: 1.0,
            pattern,
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: true,
            read_only: false,
        }],
        ops_per_round: 300,
        compute_rounds: 8,
        think_cycles_per_op: 10,
        write_fraction: 0.4,
        phases: Vec::new(),
        mlp: 1,
    }
}

/// Checkpoints at `epoch` with a fresh policy, round-trips the envelope
/// bytes, resumes with another fresh policy, and asserts the resumed
/// result equals `full`.
fn assert_resume_identical(
    machine: &MachineSpec,
    spec: &WorkloadSpec,
    config: &SimConfig,
    mut make_policy: impl FnMut() -> Box<dyn NumaPolicy>,
    epoch: u32,
    full: &SimResult,
) {
    let ckpt = Simulation::checkpoint_at(machine, spec, config, make_policy().as_mut(), epoch)
        .unwrap_or_else(|| panic!("run has {} epochs, none at {epoch}", full.epochs.len()));
    let ckpt = engine::Checkpoint::from_bytes(&ckpt.to_bytes()).expect("envelope round-trip");
    let resumed = Simulation::resume(machine, spec, config, make_policy().as_mut(), &ckpt);
    assert_eq!(
        &resumed, full,
        "resume from epoch {epoch} diverged ({}/{})",
        full.workload, full.policy
    );
}

/// Every golden configuration, attribution ON, under a nonzero fault
/// plan: checkpoints at an early, middle, and late epoch all resume
/// bit-identical. This is the acceptance bar for `ckpt-v1`: the exact
/// cells whose digests gate CI must survive a mid-stream save/restore.
#[test]
fn golden_configs_resume_bit_identical_with_attribution_and_faults() {
    let _guard = env_lock();
    std::env::remove_var("CARREFOUR_NO_FASTPATH");
    std::env::set_var("CARREFOUR_QUIET", "1");
    let machine = MachineSpec::machine_a();
    let jobs = carrefour_bench::runner::resolve_jobs(None);
    carrefour_bench::runner::par_map(jobs, golden::GOLDEN_CELLS.len(), |i| {
        let cell = golden::GOLDEN_CELLS[i];
        let mut config = SimConfig::for_machine(&machine, cell.kind.initial_thp());
        config.attribution = true;
        config.faults = FaultConfig::uniform(0xC0FFEE, 0.15);
        let spec = cell.bench.spec(&machine);
        let full = Simulation::run(&machine, &spec, &config, cell.kind.make().as_mut());
        assert!(
            full.attribution.is_some(),
            "golden cell must carry the ledger"
        );
        let n = full.epochs.len() as u32;
        for epoch in [1, n / 2, n.saturating_sub(1)] {
            assert_resume_identical(&machine, &spec, &config, || cell.kind.make(), epoch, &full);
        }
    });
}

/// Heavy operational faults on Carrefour-LP: allocation vetoes, `-EBUSY`
/// pins, and live retry backoff all present — and a checkpoint at *every*
/// epoch boundary (pin-fire epochs and mid-backoff epochs included, by
/// exhaustion) resumes bit-identical. The scenario assertions keep the
/// test honest: if a config change stops the faults from firing, the test
/// fails instead of hollowing out.
#[test]
fn every_epoch_resumes_under_pins_vetoes_and_retry_backoff() {
    let _guard = env_lock();
    std::env::remove_var("CARREFOUR_NO_FASTPATH");
    let machine = MachineSpec::test_machine();
    let spec = small_spec("adversarial-lp", 4, AccessPattern::SharedUniform);
    let mut config = SimConfig::for_machine(&machine, PolicyKind::CarrefourLp.initial_thp());
    config.attribution = true;
    config.faults = FaultConfig::uniform(97, 0.5);
    let full = Simulation::run(
        &machine,
        &spec,
        &config,
        PolicyKind::CarrefourLp.make().as_mut(),
    );
    let rb = &full.robustness;
    assert!(rb.fallback_allocs > 0, "no allocation veto fired: {rb:?}");
    assert!(rb.busy_rejections > 0, "no -EBUSY pin fired: {rb:?}");
    assert!(rb.retries > 0, "retry machinery never engaged: {rb:?}");
    let n = full.epochs.len() as u32;
    for epoch in 0..=n {
        assert_resume_identical(
            &machine,
            &spec,
            &config,
            || PolicyKind::CarrefourLp.make(),
            epoch,
            &full,
        );
    }
}

/// A fault rate high enough to trip Carrefour-LP's circuit breakers: the
/// breaker state (open-until epoch, trip count) is part of the snapshot,
/// so every epoch — before, during, and after the open window — must
/// resume bit-identical.
#[test]
fn every_epoch_resumes_with_a_tripped_circuit_breaker() {
    let _guard = env_lock();
    std::env::remove_var("CARREFOUR_NO_FASTPATH");
    let machine = MachineSpec::test_machine();
    // Action-dense shape (the fast-path suite's shootdown scenario): the
    // region is skewed onto node 0, so interleaving migrations flow every
    // epoch — enough failing actions per batch to cross the breaker's
    // minimum batch size at a 90 % failure rate.
    let mut spec = small_spec("tripped-breaker", 16, AccessPattern::SharedUniform);
    spec.regions[0].alloc_skew = 1.0;
    spec.ops_per_round = 1000;
    spec.compute_rounds = 60;
    let mut config = SimConfig::for_machine(&machine, PolicyKind::CarrefourLp.initial_thp());
    config.ibs.period = 32;
    config.faults = FaultConfig::uniform(11, 0.9);
    let mut lp = CarrefourLp::new();
    let full = Simulation::run(&machine, &spec, &config, &mut lp);
    let (split_trips, move_trips) = lp.breaker_trips();
    assert!(
        split_trips + move_trips > 0,
        "no breaker tripped at rate 0.9 (splits {split_trips}, moves {move_trips})"
    );
    let n = full.epochs.len() as u32;
    for epoch in 0..=n {
        assert_resume_identical(
            &machine,
            &spec,
            &config,
            || Box::new(CarrefourLp::new()),
            epoch,
            &full,
        );
    }
}

/// The two table-placement policies at their busiest: Mitosis while the
/// replica sweep is still finding new tables, numaPTE while table pages
/// are actively migrating. Snapshots at *every* epoch boundary — i.e.
/// including mid-replication and mid-migration states — must resume
/// bit-identical, and the per-op path must accept the same snapshots.
/// The engagement assertions keep the test honest: if the workload stops
/// provoking table actions, the test fails rather than hollowing out.
#[test]
fn every_epoch_resumes_mid_table_replication_and_migration() {
    let _guard = env_lock();
    std::env::remove_var("CARREFOUR_NO_FASTPATH");
    let machine = MachineSpec::test_machine();
    // Skewed onto node 0 so every other node's walks cross the
    // interconnect: numaPTE sees remote walk steps, Mitosis's replicas
    // actually matter.
    let mut spec = small_spec("table-ckpt", 8, AccessPattern::SharedUniform);
    spec.regions[0].alloc_skew = 1.0;
    for kind in [PolicyKind::Mitosis, PolicyKind::NumaPte] {
        let mut config = SimConfig::for_machine(&machine, kind.initial_thp());
        config.attribution = true;
        config.ibs.period = 32;
        config.faults = FaultConfig::uniform(0xBEEF, 0.2);
        let full = Simulation::run(&machine, &spec, &config, kind.make().as_mut());
        let vm = &full.lifetime.vmem;
        match kind {
            PolicyKind::Mitosis => assert!(
                vm.table_replications > 0,
                "mitosis never replicated: {vm:?}"
            ),
            _ => assert!(vm.table_migrations > 0, "numapte never migrated: {vm:?}"),
        }
        let n = full.epochs.len() as u32;
        for epoch in 0..=n {
            assert_resume_identical(&machine, &spec, &config, || kind.make(), epoch, &full);
        }
        // A mid-stream snapshot must also resume identically on the
        // forced per-op path (which must itself agree with the fast path).
        let ckpt = Simulation::checkpoint_at(&machine, &spec, &config, kind.make().as_mut(), n / 2)
            .expect("mid-run snapshot");
        std::env::set_var("CARREFOUR_NO_FASTPATH", "1");
        let resumed_slow =
            Simulation::resume(&machine, &spec, &config, kind.make().as_mut(), &ckpt);
        std::env::remove_var("CARREFOUR_NO_FASTPATH");
        assert_eq!(&resumed_slow, &full, "per-op resume diverged ({:?})", kind);
    }
}

proptest! {
    /// Random workload shapes, seeds, policies, nonzero fault plans, and a
    /// random snapshot epoch: the resumed run equals the uninterrupted one
    /// on the fast path, AND the *same fast-path snapshot* resumed under
    /// the forced per-op path equals the per-op uninterrupted run — the
    /// boundary state is path-independent in both directions.
    #[test]
    fn resume_is_bit_identical_under_faults_and_both_paths(
        mib in 2u64..5,
        seed in 0u64..=u64::MAX,
        fault_seed in 1u64..u64::MAX,
        rate in 0.05f64..0.6,
        epoch_frac in 0.0f64..1.0,
        pattern in [AccessPattern::PrivateSlices, AccessPattern::SharedUniform].as_slice(),
        kind in [
            PolicyKind::LinuxThp,
            PolicyKind::CarrefourLp,
            PolicyKind::CarrefourLpNoRetry,
            PolicyKind::Mitosis,
            PolicyKind::NumaPte,
        ].as_slice(),
    ) {
        let _guard = env_lock();
        std::env::remove_var("CARREFOUR_NO_FASTPATH");
        let machine = MachineSpec::test_machine();
        let spec = small_spec("ckpt-prop", mib, pattern);
        let mut config = SimConfig::for_machine(&machine, kind.initial_thp());
        config.seed = seed;
        config.faults = FaultConfig::uniform(fault_seed, rate);

        let full = Simulation::run(&machine, &spec, &config, kind.make().as_mut());
        let n = full.epochs.len() as u32;
        // frac < 1.0 scaled over n+1 boundaries covers 0..=n inclusive.
        let epoch = (((f64::from(n) + 1.0) * epoch_frac) as u32).min(n);
        let ckpt = Simulation::checkpoint_at(&machine, &spec, &config, kind.make().as_mut(), epoch)
            .unwrap_or_else(|| panic!("run has {n} epochs, none at {epoch}"));
        let resumed = Simulation::resume(&machine, &spec, &config, kind.make().as_mut(), &ckpt);
        prop_assert_eq!(&resumed, &full, "fast-path resume diverged at epoch {}", epoch);

        // The per-op path must agree with the fast path (the existing
        // equivalence claim) and accept the fast-path snapshot verbatim.
        std::env::set_var("CARREFOUR_NO_FASTPATH", "1");
        let full_slow = Simulation::run(&machine, &spec, &config, kind.make().as_mut());
        let resumed_slow = Simulation::resume(&machine, &spec, &config, kind.make().as_mut(), &ckpt);
        std::env::remove_var("CARREFOUR_NO_FASTPATH");
        prop_assert_eq!(&full_slow, &full, "fast/per-op paths diverged");
        prop_assert_eq!(
            &resumed_slow,
            &full,
            "per-op resume of a fast-path snapshot diverged at epoch {}",
            epoch
        );
    }
}
