//! Prefix-sharing equivalence: the fork tree is an execution strategy,
//! never a result change.
//!
//! DESIGN.md §15's correctness bar: a family simulated through
//! `forktree::run_family` — probe, replay, checkpoint forks, full-match
//! clones — must return, for every cell, the bit-identical `SimResult`
//! (per-epoch records, robustness counters, 19-bucket attribution
//! ledger) *and* trace digest that a from-scratch run of that cell
//! produces. The property test drives random workload shapes, seeds,
//! **nonzero fault plans** (the induction's hard case: fed-back failures
//! and fault RNG state must survive the fork), random threshold
//! perturbations as the family axis, and shard counts {1, 4} (checkpoints
//! taken under sharded probes must fork under any lane count).

use carrefour::{LpParams, LpThresholds};
use carrefour_bench::forktree;
use carrefour_bench::runner::{CellSpec, Workload};
use carrefour_bench::PolicyKind;
use engine::{DigestSink, FaultConfig, SimResult, Simulation, TraceDigest};
use numa_topology::MachineSpec;
use proptest::prelude::*;
use workloads::{AccessPattern, RegionSpec, WorkloadSpec};

const BASE: u64 = 64 << 30;

/// A small, cheap workload spec (same shape as the runner's fault props).
fn small_spec(machine: &MachineSpec, mib: u64, pattern: AccessPattern) -> WorkloadSpec {
    WorkloadSpec {
        name: "forktree-prop".to_string(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: BASE,
            bytes: mib << 20,
            share: 1.0,
            pattern,
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: false,
            read_only: false,
        }],
        ops_per_round: 200,
        compute_rounds: 6,
        think_cycles_per_op: 10,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    }
}

/// One from-scratch traced run of a cell — the ground truth the fork
/// tree must reproduce bit-for-bit.
fn scratch(spec: &CellSpec) -> (SimResult, TraceDigest) {
    let config = spec.sim_config();
    let wspec = spec.workload.spec(&spec.machine);
    let mut policy = spec.make_policy();
    let mut sink = DigestSink::new();
    let mut r = Simulation::run_traced(&spec.machine, &wspec, &config, policy.as_mut(), &mut sink);
    let mut d = sink.into_digest();
    d.runtime_cycles = r.runtime_cycles;
    r.policy = spec.policy_label();
    (r, d)
}

proptest! {
    /// Probe + three siblings (one bit-identical to the probe, two with
    /// perturbed thresholds) under fault injection and the attribution
    /// ledger: every shared result and digest equals its scratch run's.
    #[test]
    fn forked_family_is_bit_identical_to_scratch_runs(
        mib in 2u64..5,
        seed in 0u64..=u64::MAX,
        fault_seed in 1u64..u64::MAX,
        rate in 0.01f64..0.4,
        pattern in [AccessPattern::PrivateSlices, AccessPattern::SharedUniform].as_slice(),
        split_gain_pp in 0.5f64..10.0,
        hot_page_fraction in 0.01f64..0.12,
        imbalance_enable_above in 10.0f64..45.0,
        shards in [1u32, 4].as_slice(),
    ) {
        std::env::set_var("CARREFOUR_QUIET", "1");
        // The ledger rides inside `SimResult`'s `PartialEq`, so turning it
        // on widens the bit-identity claim to all 19 buckets. Shards are
        // process-global but never affect results (DESIGN.md §14), so the
        // env write cannot perturb sibling tests.
        std::env::set_var("CARREFOUR_ATTRIB", "1");
        std::env::set_var("CARREFOUR_SHARDS", shards.to_string());
        let machine = MachineSpec::test_machine();
        let wspec = small_spec(&machine, mib, pattern);
        let mk = |params: Option<LpParams>| {
            let mut s = CellSpec::new(machine.clone(), workloads::Benchmark::EpC, PolicyKind::CarrefourLp);
            s.workload = Workload::Custom(wspec.clone());
            s.seed = Some(seed);
            s.faults = Some(FaultConfig::uniform(fault_seed, rate));
            s.family = Some("prop".to_string());
            s.lp_params = params;
            s
        };
        let perturbed = |f: &dyn Fn(&mut LpThresholds)| {
            let mut p = LpParams::default();
            f(&mut p.thresholds);
            p
        };
        let specs = vec![
            mk(None),
            // Same tunables through the `with_params` path: the sibling's
            // whole decision stream matches and the probe result is cloned.
            mk(Some(LpParams::default())),
            mk(Some(perturbed(&|t| {
                t.split_gain_pp = split_gain_pp;
                t.hot_page_fraction = hot_page_fraction;
            }))),
            mk(Some({
                let mut p = LpParams::default();
                p.carrefour.imbalance_enable_above = imbalance_enable_above;
                p
            })),
        ];
        let (shared, stats) = forktree::run_family(&specs, true);
        prop_assert_eq!(stats.cells, specs.len());
        prop_assert_eq!(
            stats.epochs_simulated + stats.epochs_reused,
            shared.iter().map(|c| c.result.epochs.len() as u64).sum::<u64>(),
            "every epoch is either simulated or reused"
        );
        for (cell, spec) in shared.iter().zip(&specs) {
            let (want_r, want_d) = scratch(spec);
            prop_assert!(want_r.attribution.is_some(), "ledger must be on");
            prop_assert_eq!(&cell.result, &want_r, "SimResult diverged");
            let got_d = cell.digest.as_ref().expect("traced family returns digests");
            if let Some(diff) = want_d.diff(got_d) {
                prop_assert!(false, "trace digest diverged: {}", diff);
            }
        }
    }
}

/// The identical-tunables sibling short-circuits: zero epochs simulated
/// for it, all reused — and the counters say so.
#[test]
fn full_match_reuses_every_epoch() {
    std::env::set_var("CARREFOUR_QUIET", "1");
    let machine = MachineSpec::test_machine();
    let mk = || {
        let mut s = CellSpec::new(
            machine.clone(),
            workloads::Benchmark::EpC,
            PolicyKind::CarrefourLp,
        );
        s.family = Some("full".to_string());
        s
    };
    let specs = vec![mk(), mk(), mk()];
    let (cells, stats) = forktree::run_family(&specs, false);
    let epochs = cells[0].result.epochs.len() as u64;
    assert_eq!(stats.full_matches, 2);
    assert_eq!(stats.epochs_simulated, epochs, "only the probe simulated");
    assert_eq!(stats.epochs_reused, 2 * epochs);
    assert_eq!(cells[1].result, {
        let mut r = cells[0].result.clone();
        r.policy = cells[1].result.policy.clone();
        r
    });
}
