//! Integration tests of the simulation engine: action application, phase
//! handling, prelude accounting, and observability guarantees.

use engine::{EpochCtx, NullPolicy, NumaPolicy, SimConfig, Simulation};
use numa_topology::MachineSpec;
use vmem::ThpControls;
use workloads::{AccessPattern, PhaseSpec, RegionSpec, WorkloadSpec};

const BASE: u64 = 64 << 30;

fn region(base: u64, bytes: u64, share: f64, pattern: AccessPattern) -> RegionSpec {
    RegionSpec {
        base,
        bytes,
        share,
        pattern,
        alloc_skew: 0.0,
        loader_headers: 0.0,
        rw_shared: false,
        read_only: false,
    }
}

fn basic_spec(threads: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: "engine-int".into(),
        threads,
        regions: vec![region(BASE, 8 << 20, 1.0, AccessPattern::PrivateSlices)],
        ops_per_round: 300,
        compute_rounds: 8,
        think_cycles_per_op: 10,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    }
}

/// A policy that splits every sampled huge page via the batched scatter and
/// records what it saw.
struct SplitEverything {
    seen_epochs: u32,
    split: std::collections::BTreeSet<u64>,
}

impl NumaPolicy for SplitEverything {
    fn name(&self) -> &str {
        "split-everything"
    }
    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
        self.seen_epochs += 1;
        for s in ctx.samples {
            if s.page_size != vmem::PageSize::Size4K {
                let base = s.page_base();
                if self.split.insert(base) {
                    ctx.split_scatter(base);
                }
            }
        }
    }
}

#[test]
fn split_scatter_spreads_a_huge_page_across_nodes() {
    let machine = MachineSpec::machine_a();
    let config = SimConfig::for_machine(&machine, ThpControls::thp());
    let spec = basic_spec(machine.total_cores());
    let mut policy = SplitEverything {
        seen_epochs: 0,
        split: Default::default(),
    };
    let r = Simulation::run(&machine, &spec, &config, &mut policy);
    assert!(policy.seen_epochs > 0);
    assert!(r.lifetime.vmem.splits > 0, "scatter performed splits");
    // Scattered sub-pages moved: 512 children per split, minus the ~1/nodes
    // already in place.
    assert!(
        r.lifetime.vmem.migrations_4k > r.lifetime.vmem.splits * 256,
        "{} migrations for {} splits",
        r.lifetime.vmem.migrations_4k,
        r.lifetime.vmem.splits
    );
}

#[test]
fn thp_toggles_are_applied_and_recorded() {
    struct DisableThp;
    impl NumaPolicy for DisableThp {
        fn name(&self) -> &str {
            "disable-thp"
        }
        fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
            if ctx.epoch_index == 1 {
                ctx.set_thp_alloc(false);
                ctx.set_thp_promote(false);
            }
        }
    }
    let machine = MachineSpec::machine_a();
    let config = SimConfig::for_machine(&machine, ThpControls::thp());
    let spec = basic_spec(machine.total_cores());
    let r = Simulation::run(&machine, &spec, &config, &mut DisableThp);
    assert!(r.epochs[0].thp_alloc_enabled);
    assert!(!r.epochs.last().unwrap().thp_alloc_enabled);
    assert!(!r.epochs.last().unwrap().thp_promote_enabled);
}

#[test]
fn phased_workload_shifts_traffic_between_regions() {
    let machine = MachineSpec::machine_a();
    let threads = machine.total_cores();
    let spec = WorkloadSpec {
        name: "phased".into(),
        threads,
        regions: vec![
            region(BASE, 8 << 20, 0.5, AccessPattern::PrivateSlices),
            region(BASE + (2 << 30), 8 << 20, 0.5, AccessPattern::SharedUniform),
        ],
        ops_per_round: 300,
        compute_rounds: 0,
        think_cycles_per_op: 10,
        write_fraction: 0.3,
        phases: vec![
            PhaseSpec {
                rounds: 10,
                shares: vec![1.0, 0.0],
            },
            PhaseSpec {
                rounds: 10,
                shares: vec![0.0, 1.0],
            },
        ],
        mlp: 1,
    };
    let config = SimConfig::for_machine(&machine, ThpControls::small_only());
    let r = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
    // Private phase is local; shared phase is not. The per-epoch LAR must
    // drop sharply in the second half.
    let epochs = &r.epochs;
    let n = epochs.len();
    let early = epochs[n / 4].counters.lar();
    let late = epochs[3 * n / 4].counters.lar();
    assert!(
        early > late + 0.3,
        "phase change must show in LAR: early {early:.2} late {late:.2}"
    );
}

#[test]
fn prelude_claims_headers_before_workers_run() {
    let machine = MachineSpec::machine_a();
    let threads = machine.total_cores();
    let spec = WorkloadSpec {
        name: "headers".into(),
        threads,
        regions: vec![RegionSpec {
            base: BASE,
            bytes: 16 << 20,
            share: 1.0,
            pattern: AccessPattern::SharedUniform,
            alloc_skew: 0.0,
            loader_headers: 1.0,
            rw_shared: false,
            read_only: false,
        }],
        ops_per_round: 300,
        compute_rounds: 6,
        think_cycles_per_op: 10,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    };
    let config = SimConfig::for_machine(&machine, ThpControls::thp());
    let r = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
    // All eight 2 MiB ranges were claimed by the loader on node 0: the
    // controllers are maximally imbalanced.
    assert!(
        r.lifetime.imbalance > 100.0,
        "imbalance {}",
        r.lifetime.imbalance
    );
    // And the same spec with 4 KiB pages is balanced: the header pages are
    // 1/512th of memory.
    let config = SimConfig::for_machine(&machine, ThpControls::small_only());
    let r = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
    assert!(
        r.lifetime.imbalance < 10.0,
        "imbalance {}",
        r.lifetime.imbalance
    );
}

#[test]
fn coherent_stores_reach_the_home_controller() {
    let machine = MachineSpec::machine_a();
    let threads = machine.total_cores();
    let mk = |rw_shared: bool| WorkloadSpec {
        name: "coherent".into(),
        threads,
        regions: vec![RegionSpec {
            base: BASE,
            bytes: 1 << 20, // fits in cache: only coherence forces DRAM
            share: 1.0,
            pattern: AccessPattern::SharedUniform,
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared,
            read_only: false,
        }],
        ops_per_round: 300,
        compute_rounds: 6,
        think_cycles_per_op: 10,
        write_fraction: 0.5,
        phases: Vec::new(),
        mlp: 1,
    };
    let config = SimConfig::for_machine(&machine, ThpControls::small_only());
    let cached = Simulation::run(&machine, &mk(false), &config, &mut NullPolicy);
    let coherent = Simulation::run(&machine, &mk(true), &config, &mut NullPolicy);
    let dram = |r: &engine::SimResult| {
        r.epochs
            .iter()
            .map(|e| e.counters.dram_local + e.counters.dram_remote)
            .sum::<u64>()
    };
    // Cold fills and page-walk misses give the cached run a DRAM floor;
    // coherence adds roughly one request per store on top of it.
    assert!(
        dram(&coherent) > dram(&cached) + dram(&cached) / 3,
        "coherent {} vs cached {}",
        dram(&coherent),
        dram(&cached)
    );
    assert!(coherent.runtime_cycles > cached.runtime_cycles);
}

#[test]
fn epoch_ops_account_exactly() {
    let machine = MachineSpec::machine_a();
    let config = SimConfig::for_machine(&machine, ThpControls::thp());
    let spec = basic_spec(machine.total_cores());
    let r = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
    let per_epoch: u64 = r.epochs.iter().map(|e| e.counters.mem_ops).sum();
    assert_eq!(per_epoch, r.lifetime.total_ops);
    let expected =
        u64::from(spec.total_compute_rounds() + 2) * spec.ops_per_round * spec.threads as u64;
    // Alloc rounds for 8 MiB over 24 threads at 300 ops/round: 1 round.
    // total_rounds = alloc_rounds + compute_rounds; verify through the
    // generator to avoid duplicating its math.
    let gen = workloads::WorkloadGen::new(&spec, config.seed);
    let exact = u64::from(gen.total_rounds()) * spec.ops_per_round * spec.threads as u64;
    assert_eq!(r.lifetime.total_ops, exact);
    assert!(expected >= exact);
}

#[test]
fn seeds_change_results_but_not_structure() {
    let machine = MachineSpec::machine_a();
    let spec = basic_spec(machine.total_cores());
    let mut c1 = SimConfig::for_machine(&machine, ThpControls::thp());
    c1.seed = 1;
    let mut c2 = c1.clone();
    c2.seed = 2;
    let a = Simulation::run(&machine, &spec, &c1, &mut NullPolicy);
    let b = Simulation::run(&machine, &spec, &c2, &mut NullPolicy);
    assert_ne!(a.runtime_cycles, b.runtime_cycles, "seeds matter");
    assert_eq!(a.lifetime.total_ops, b.lifetime.total_ops);
    assert_eq!(a.epochs.len(), b.epochs.len());
}

/// [`NullPolicy`] with the sample-storage elision disabled: identical
/// behaviour, but reports that it consumes samples so the engine files
/// every IBS sample as it would for a real policy.
struct NullButStoring;

impl NumaPolicy for NullButStoring {
    fn name(&self) -> &str {
        "linux"
    }
    fn on_epoch(&mut self, _ctx: &mut EpochCtx<'_>) {}
}

#[test]
fn skipping_sample_storage_under_null_policy_changes_nothing() {
    // The engine elides IBS sample *storage* when the policy never reads
    // samples (`consumes_samples() == false`, as for plain Linux / THP
    // runs). The elision must be invisible: sampling overhead is still
    // charged and every statistic the run reports is bit-identical.
    let machine = MachineSpec::machine_a();
    let spec = basic_spec(machine.total_cores());
    for thp in [ThpControls::small_only(), ThpControls::thp()] {
        let config = SimConfig::for_machine(&machine, thp);
        let skipping = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
        let storing = Simulation::run(&machine, &spec, &config, &mut NullButStoring);
        assert_eq!(skipping, storing, "elision must be observationally pure");
        assert!(
            skipping.lifetime.ibs_samples > 0,
            "sample taking (and its overhead) still happens"
        );
    }
}
