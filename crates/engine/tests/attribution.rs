//! Conservation tests of the cycle-attribution ledger.
//!
//! The ledger (`SimResult.attribution`, DESIGN.md §11) claims that every
//! simulated wall cycle is charged to exactly one architectural bucket:
//! `total.total() == runtime_cycles`, exactly, as integers — no float
//! accumulation, no "other" bucket, no slack. These tests enforce that
//! claim across workload patterns, THP settings, both execution paths
//! (batched fast path and per-op), and — via proptest — under nonzero
//! fault plans, where injected failures perturb policy actions and their
//! attributed costs mid-run.

use engine::{EpochCtx, FaultConfig, NullPolicy, NumaPolicy, SimConfig, SimResult, Simulation};
use numa_topology::{MachineSpec, NodeId};
use proptest::prelude::*;
use std::sync::Mutex;
use vmem::{PageSize, ThpControls};
use workloads::{AccessPattern, RegionSpec, WorkloadSpec};

const BASE: u64 = 64 << 30;

/// Serializes the test that flips `CARREFOUR_NO_FASTPATH` (the engine
/// reads it per run; cargo runs this binary's tests on threads).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn small_spec(machine: &MachineSpec, mib: u64, pattern: AccessPattern) -> WorkloadSpec {
    WorkloadSpec {
        name: "attrib".into(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: BASE,
            bytes: mib << 20,
            share: 1.0,
            pattern,
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: false,
            read_only: false,
        }],
        ops_per_round: 300,
        compute_rounds: 8,
        think_cycles_per_op: 10,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    }
}

/// An action-heavy policy so the policy-overhead buckets are exercised.
struct Churn;

impl NumaPolicy for Churn {
    fn name(&self) -> &str {
        "churn"
    }
    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
        let mut split_one = false;
        for s in ctx.samples {
            let base = s.page_base();
            if s.page_size != PageSize::Size4K && !split_one {
                ctx.split_scatter(base);
                split_one = true;
            } else {
                let target = NodeId((s.accessing_node.0 + 1) % ctx.machine.num_nodes() as u16);
                ctx.migrate(base, target);
            }
        }
    }
}

fn run_attributed(
    thp: ThpControls,
    pattern: AccessPattern,
    faults: FaultConfig,
    policy: &mut dyn NumaPolicy,
) -> SimResult {
    let machine = MachineSpec::test_machine();
    let spec = small_spec(&machine, 4, pattern);
    let mut config = SimConfig::for_machine(&machine, thp);
    config.faults = faults;
    config.attribution = true;
    Simulation::run(&machine, &spec, &config, policy)
}

/// Asserts every conservation property the ledger promises, at every
/// granularity it reports.
fn assert_conserved(r: &SimResult, threads: usize) {
    let ledger = r.attribution.as_ref().expect("attribution was on");
    // Whole run: buckets sum to the runtime, exactly.
    assert!(
        ledger.conserves(r.runtime_cycles),
        "ledger does not conserve: buckets sum to {}, runtime is {} (diff {})",
        ledger.total.total(),
        r.runtime_cycles,
        ledger.total.total() as i128 - r.runtime_cycles as i128
    );
    // Per epoch: the wall breakdown must reproduce the epoch's wall
    // cycles. `counters.epoch_cycles` is captured before the overhead
    // share lands, so the identity includes the flooring the engine
    // itself applies.
    assert_eq!(ledger.epochs.len(), r.epochs.len());
    for (a, rec) in ledger.epochs.iter().zip(&r.epochs) {
        assert_eq!(
            a.wall.total(),
            rec.counters.epoch_cycles + rec.overhead_cycles / threads as u64,
            "epoch wall breakdown diverges from the epoch's cycle counter"
        );
        assert_eq!(a.cores.len(), threads);
    }
    // Per core: lifetime totals are the epoch cores summed.
    assert_eq!(ledger.core_totals.len(), threads);
    for t in 0..threads {
        let mut sum = 0u64;
        for e in &ledger.epochs {
            sum += e.cores[t].total();
        }
        assert_eq!(sum, ledger.core_totals[t].total());
    }
}

#[test]
fn attribution_is_off_by_default() {
    let machine = MachineSpec::test_machine();
    let spec = small_spec(&machine, 4, AccessPattern::PrivateSlices);
    let config = SimConfig::for_machine(&machine, ThpControls::thp());
    assert!(!config.attribution);
    let r = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
    assert!(r.attribution.is_none());
}

#[test]
fn attribution_is_purely_observational() {
    let machine = MachineSpec::test_machine();
    let spec = small_spec(&machine, 4, AccessPattern::SharedUniform);
    let mut config = SimConfig::for_machine(&machine, ThpControls::thp());
    let plain = Simulation::run(&machine, &spec, &config, &mut Churn);
    config.attribution = true;
    let mut attributed = Simulation::run(&machine, &spec, &config, &mut Churn);
    assert!(plain.attribution.is_none());
    assert!(attributed.attribution.is_some());
    // Strip the ledger: every other field must be bit-identical.
    attributed.attribution = None;
    assert_eq!(plain, attributed);
}

#[test]
fn conservation_holds_across_patterns_and_thp() {
    let machine = MachineSpec::test_machine();
    let threads = machine.total_cores();
    for thp in [ThpControls::small_only(), ThpControls::thp()] {
        for pattern in [
            AccessPattern::PrivateSlices,
            AccessPattern::SharedUniform,
            AccessPattern::Stream { stride: 64 },
        ] {
            let r = run_attributed(thp, pattern, FaultConfig::none(), &mut NullPolicy);
            assert_conserved(&r, threads);
        }
    }
}

#[test]
fn conservation_holds_on_both_execution_paths() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::remove_var("CARREFOUR_NO_FASTPATH");
    let fast = run_attributed(
        ThpControls::thp(),
        AccessPattern::SharedUniform,
        FaultConfig::none(),
        &mut Churn,
    );
    std::env::set_var("CARREFOUR_NO_FASTPATH", "1");
    let slow = run_attributed(
        ThpControls::thp(),
        AccessPattern::SharedUniform,
        FaultConfig::none(),
        &mut Churn,
    );
    std::env::remove_var("CARREFOUR_NO_FASTPATH");
    let threads = MachineSpec::test_machine().total_cores();
    assert_conserved(&fast, threads);
    assert_conserved(&slow, threads);
    // The fast path is bit-identical to the per-op path — ledger included.
    assert_eq!(fast, slow);
}

#[test]
fn buckets_reflect_architectural_activity() {
    let threads = MachineSpec::test_machine().total_cores();
    let r = run_attributed(
        ThpControls::small_only(),
        AccessPattern::SharedUniform,
        FaultConfig::none(),
        &mut Churn,
    );
    assert_conserved(&r, threads);
    let t = &r.attribution.as_ref().unwrap().total;
    // A 4 KiB-paged run faults every page in and misses the TLB.
    assert!(t.compute > 0, "think cycles must land in compute");
    assert!(t.fault > 0, "demand faults must be booked: {t:?}");
    assert!(
        t.tlb_lookup > 0 && t.walk_cycles() > 0,
        "TLB misses must book lookup and walk cycles: {t:?}"
    );
    // The wall ledger holds only each round's critical-path thread, which
    // under a DRAM-bound pattern may see no L1 hits at all — so ask for
    // cache-hit time at *some* level, plus DRAM components.
    assert!(
        t.cache_l1 + t.cache_l2 + t.cache_l3 > 0 && t.dram_service > 0,
        "data accesses must book hit and DRAM time: {t:?}"
    );
    assert!(
        t.ctrl_queue > 0 && t.interconnect > 0,
        "remote DRAM traffic must book queueing and hop time: {t:?}"
    );
    // Per-core busy ledgers see every thread, not just the critical path:
    // L1 hits must appear there.
    let cores = &r.attribution.as_ref().unwrap().core_totals;
    assert!(
        cores.iter().any(|c| c.cache_l1 > 0),
        "no core booked any L1 hit time"
    );
    // IBS NMIs cost 800 cycles each; with samples taken the share per
    // thread cannot round to zero.
    assert!(r.lifetime.ibs_samples > 0);
    assert!(t.ibs_sampling > 0, "IBS overhead must be booked: {t:?}");
    // Churn migrates on every sample: policy work must be visible.
    let vm = &r.lifetime.vmem;
    assert!(vm.migrations_4k + vm.migrations_2m > 0);
    assert!(
        t.policy_migration + t.policy_split + t.policy_replication > 0,
        "policy action costs must be booked: {t:?}"
    );
}

proptest! {
    /// Random seeds, rates, patterns, and THP settings under **nonzero
    /// fault plans**: injected busy pins, allocation vetoes, and sample
    /// loss reroute cycles between buckets (a vetoed huge fault books
    /// different walk and fault time; a failed migration books no policy
    /// cost) — conservation must survive all of it, exactly.
    #[test]
    fn conservation_survives_fault_injection(
        seed in 0u64..=u64::MAX,
        fault_seed in 1u64..u64::MAX,
        rate in 0.01f64..0.6,
        pattern in [AccessPattern::PrivateSlices, AccessPattern::SharedUniform].as_slice(),
        thp in [ThpControls::small_only(), ThpControls::thp()].as_slice(),
    ) {
        let machine = MachineSpec::test_machine();
        let spec = small_spec(&machine, 3, pattern);
        let mut config = SimConfig::for_machine(&machine, thp);
        config.seed = seed;
        config.faults = FaultConfig::uniform(fault_seed, rate);
        config.attribution = true;
        let r = Simulation::run(&machine, &spec, &config, &mut Churn);
        let ledger = r.attribution.as_ref().expect("attribution was on");
        prop_assert!(
            ledger.conserves(r.runtime_cycles),
            "buckets sum to {}, runtime is {}",
            ledger.total.total(),
            r.runtime_cycles
        );
        for (a, rec) in ledger.epochs.iter().zip(&r.epochs) {
            prop_assert_eq!(
                a.wall.total(),
                rec.counters.epoch_cycles + rec.overhead_cycles / spec.threads as u64
            );
        }
    }
}
