//! Property tests of the fault-injection layer: random fault plans
//! against random small workloads must complete without panicking, keep
//! the virtual-memory invariants intact after every epoch
//! (`SimConfig::validate_each_epoch`), and account injected faults
//! consistently in [`engine::RobustnessStats`].

use engine::{
    DigestSink, EpochCtx, FaultConfig, MemoryPressure, NullPolicy, NumaPolicy, SimConfig,
    SimResult, Simulation, TraceDigest,
};
use numa_topology::{MachineSpec, NodeId};
use proptest::prelude::*;
use vmem::{PageSize, ThpControls};
use workloads::{AccessPattern, RegionSpec, WorkloadSpec};

const BASE: u64 = 64 << 30;

fn small_spec(machine: &MachineSpec, bytes: u64, pattern: AccessPattern) -> WorkloadSpec {
    WorkloadSpec {
        name: "fault-props".into(),
        threads: machine.total_cores(),
        regions: vec![RegionSpec {
            base: BASE,
            bytes,
            share: 1.0,
            pattern,
            alloc_skew: 0.0,
            loader_headers: 0.0,
            rw_shared: false,
            read_only: false,
        }],
        ops_per_round: 200,
        compute_rounds: 6,
        think_cycles_per_op: 10,
        write_fraction: 0.3,
        phases: Vec::new(),
        mlp: 1,
    }
}

/// A deliberately aggressive policy: migrates and splits whatever the
/// samples show, so every fallible action path runs under injection.
struct Churn;

impl NumaPolicy for Churn {
    fn name(&self) -> &str {
        "churn"
    }
    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
        let mut split_one = false;
        for s in ctx.samples {
            let base = s.page_base();
            if s.page_size != PageSize::Size4K && !split_one {
                ctx.split_scatter(base);
                split_one = true;
            } else {
                let target = NodeId((s.accessing_node.0 + 1) % ctx.machine.num_nodes() as u16);
                ctx.migrate(base, target);
            }
        }
    }
}

fn run_validated(
    machine: &MachineSpec,
    spec: &WorkloadSpec,
    faults: FaultConfig,
    policy: &mut dyn NumaPolicy,
) -> SimResult {
    let mut config = SimConfig::for_machine(machine, ThpControls::thp());
    config.faults = faults;
    config.validate_each_epoch = true;
    Simulation::run(machine, spec, &config, policy)
}

fn run_digested(
    machine: &MachineSpec,
    spec: &WorkloadSpec,
    faults: FaultConfig,
    policy: &mut dyn NumaPolicy,
) -> (SimResult, TraceDigest) {
    let mut config = SimConfig::for_machine(machine, ThpControls::thp());
    config.faults = faults;
    config.validate_each_epoch = true;
    let mut sink = DigestSink::new();
    let result = Simulation::run_traced(machine, spec, &config, policy, &mut sink);
    (result, sink.into_digest())
}

proptest! {
    /// Random rates, seeds, and workload shapes: the run completes, the
    /// vmem invariant walker stays green each epoch, and the injected
    /// faults show up in the robustness block.
    #[test]
    fn random_fault_plans_never_corrupt_the_simulation(
        seed in 0u64..=u64::MAX,
        rate in 0.0f64..0.8,
        pin in 1u32..4,
        mib in 2u64..10,
        pattern in [AccessPattern::PrivateSlices, AccessPattern::SharedUniform].as_slice(),
    ) {
        let machine = MachineSpec::test_machine();
        let spec = small_spec(&machine, mib << 20, pattern);
        let mut faults = FaultConfig::uniform(seed, rate);
        faults.rates.sample_misattribution = rate / 4.0;
        faults.rates.pin_epochs = pin;
        let r = run_validated(&machine, &spec, faults, &mut Churn);
        prop_assert!(r.runtime_cycles > 0);
        prop_assert!(r.lifetime.total_ops > 0);
        if rate == 0.0 {
            prop_assert_eq!(r.robustness.fallback_allocs, 0);
            prop_assert_eq!(r.robustness.busy_rejections, 0);
        }
    }

    /// Memory pressure of random size and timing — including pressure
    /// larger than the victim node's free memory, which must reclaim or
    /// cap rather than wedge the allocator.
    #[test]
    fn random_memory_pressure_is_survivable(
        seed in 0u64..1000,
        epoch in 0u32..6,
        mib in 1u64..900,
        release in [None, Some(4u32), Some(8u32)].as_slice(),
    ) {
        let machine = MachineSpec::test_machine();
        let spec = small_spec(&machine, 4 << 20, AccessPattern::PrivateSlices);
        let mut faults = FaultConfig::uniform(seed, 0.05);
        faults.pressure = Some(MemoryPressure {
            epoch,
            node: NodeId(0),
            bytes: mib << 20,
            release_epoch: release.map(|r| epoch + r),
        });
        let r = run_validated(&machine, &spec, faults, &mut NullPolicy);
        prop_assert!(r.runtime_cycles > 0);
    }

    /// Determinism under injection: the same seed twice gives the same
    /// runtime and the same robustness accounting.
    #[test]
    fn equal_seeds_give_equal_faulty_runs(
        seed in 0u64..=u64::MAX,
        rate in 0.0f64..0.6,
    ) {
        let machine = MachineSpec::test_machine();
        let spec = small_spec(&machine, 4 << 20, AccessPattern::SharedUniform);
        let faults = FaultConfig::uniform(seed, rate);
        let a = run_validated(&machine, &spec, faults, &mut Churn);
        let b = run_validated(&machine, &spec, faults, &mut Churn);
        prop_assert_eq!(a.runtime_cycles, b.runtime_cycles);
        prop_assert_eq!(a.robustness, b.robustness);
    }

    /// Full bit-level determinism, with the observability layer on: the
    /// same seed and config — including a nonzero fault plan — give a
    /// bit-identical [`SimResult`] *and* a bit-identical trace digest
    /// across two runs, and tracing itself never perturbs the result
    /// (the traced result equals the untraced one).
    #[test]
    fn equal_seeds_give_identical_results_and_trace_digests(
        seed in 0u64..=u64::MAX,
        rate in 0.01f64..0.5,
        pattern in [AccessPattern::PrivateSlices, AccessPattern::SharedUniform].as_slice(),
    ) {
        let machine = MachineSpec::test_machine();
        let spec = small_spec(&machine, 4 << 20, pattern);
        let faults = FaultConfig::uniform(seed, rate);
        let (ra, da) = run_digested(&machine, &spec, faults.clone(), &mut Churn);
        let (rb, db) = run_digested(&machine, &spec, faults.clone(), &mut Churn);
        prop_assert_eq!(&ra, &rb);
        prop_assert!(da.diff(&db).is_none(), "trace digests diverged: {:?}", da.diff(&db));
        prop_assert_eq!(da, db);
        // The sink is a pure observer: an untraced run lands on the
        // same result bit for bit.
        let untraced = run_validated(&machine, &spec, faults, &mut Churn);
        prop_assert_eq!(ra, untraced);
    }
}
