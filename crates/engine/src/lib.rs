//! The NUMA simulation engine.
//!
//! Ties the substrates together into an epoch-based, cycle-accounting
//! simulation of one multi-threaded workload on one NUMA machine:
//!
//! * threads run in barrier-synchronized **rounds** (NAS and Metis codes are
//!   bulk-synchronous); a round's wall time is the slowest thread's time, so
//!   an overloaded memory controller directly gates progress;
//! * every memory operation goes TLB → (page walk → fault?) → caches → DRAM,
//!   each step charged from the models in `memsys` and `vmem`;
//! * every `rounds_per_epoch` rounds the engine closes an **epoch**: it runs
//!   the khugepaged promotion scan, snapshots the performance counters,
//!   drains the IBS sampler, and invokes the installed [`NumaPolicy`] — the
//!   hook Carrefour and Carrefour-LP plug into (the paper's 1-second
//!   monitoring interval);
//! * policy actions (migrate / split / THP toggles) are applied with their
//!   cycle costs and TLB shootdowns, and the kernel-side work is charged to
//!   wall time, which is how the paper's Section 4.2 overhead numbers arise.
//!
//! # Examples
//!
//! ```
//! use engine::{NullPolicy, SimConfig, Simulation};
//! use numa_topology::MachineSpec;
//! use workloads::Benchmark;
//!
//! let machine = MachineSpec::machine_a();
//! let mut config = SimConfig::fast_test();
//! let spec = Benchmark::Kmeans.spec(&machine);
//! let result = Simulation::run(&machine, &spec, &config, &mut NullPolicy);
//! assert!(result.runtime_cycles > 0);
//! assert!(result.lifetime.lar >= 0.0 && result.lifetime.lar <= 1.0);
//! # let _ = &mut config;
//! ```

pub mod checkpoint;
mod config;
mod faults;
pub mod lanes;
mod policy;
pub mod recorder;
mod result;
mod sim;
pub mod trace;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use config::SimConfig;
pub use faults::{FaultConfig, FaultCounters, FaultPlan, FaultRates, MemoryPressure};
pub use policy::{
    ActionError, EpochCtx, FailedAction, NullPolicy, NumaPolicy, PolicyAction, PolicyIntrospection,
};
pub use recorder::{
    JsonlMetricsRecorder, MetricsRecorder, MetricsRow, MetricsSample, PageSnapshot, RunInfo,
    TeeMetricsRecorder, VecMetricsRecorder,
};
pub use result::{
    AttributionLedger, EpochAttribution, EpochRecord, LifetimeStats, PageMetrics, RobustnessStats,
    SimResult,
};
pub use sim::{env_override_u32, EpochBoundary, RunObserver, Simulation};
pub use trace::{
    epoch_output_fingerprint, CountingSink, DigestSink, EpochDigest, EpochSnap, EventKind,
    JsonlSink, PolicyDecision, RingSink, TeeSink, TraceDigest, TraceEvent, TraceSink, VecSink,
};
