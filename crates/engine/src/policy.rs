//! The policy hook: what Carrefour and Carrefour-LP plug into.

use numa_topology::{MachineSpec, NodeId};
use profiling::{EpochCounters, IbsSample};
use vmem::ThpControls;

/// An action a policy requests at an epoch boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyAction {
    /// Migrate the page covering this virtual address to the node.
    Migrate(u64, NodeId),
    /// Split the huge/giant page covering this virtual address.
    Split(u64),
    /// Split the huge page covering this virtual address and scatter its
    /// 4 KiB sub-pages across all nodes (one batched demote-and-spread
    /// operation, as the kernel performs it under a single lock pass).
    SplitScatter(u64),
    /// Replicate the read-mostly 4 KiB page covering this virtual address
    /// onto every node (the Carrefour replication extension).
    Replicate(u64),
    /// Enable or disable 2 MiB allocation at fault time.
    SetThpAlloc(bool),
    /// Enable or disable khugepaged promotion.
    SetThpPromote(bool),
}

/// Everything a policy can observe and do at one epoch boundary.
///
/// Mirrors what the paper's kernel module sees: performance counters,
/// IBS samples, and the THP sysfs knobs. Policies cannot inspect page
/// tables directly — all page knowledge must come from samples, exactly
/// the constraint the paper's Section 4.3 discusses.
pub struct EpochCtx<'a> {
    /// The machine the workload runs on.
    pub machine: &'a MachineSpec,
    /// Counters accumulated during the epoch that just closed.
    pub counters: &'a EpochCounters,
    /// IBS samples collected during the epoch.
    pub samples: &'a [IbsSample],
    /// Current THP switches.
    pub thp: ThpControls,
    /// Index of the epoch that just closed (0-based).
    pub epoch_index: u32,
    pub(crate) actions: Vec<PolicyAction>,
}

impl<'a> EpochCtx<'a> {
    /// Builds a context (the engine does this each epoch; exposed publicly
    /// so policy crates can unit-test their `on_epoch` logic).
    pub fn new(
        machine: &'a MachineSpec,
        counters: &'a EpochCounters,
        samples: &'a [IbsSample],
        thp: ThpControls,
        epoch_index: u32,
    ) -> Self {
        EpochCtx {
            machine,
            counters,
            samples,
            thp,
            epoch_index,
            actions: Vec::new(),
        }
    }

    /// Requests migration of the page covering `vaddr` to `node`.
    pub fn migrate(&mut self, vaddr: u64, node: NodeId) {
        self.actions.push(PolicyAction::Migrate(vaddr, node));
    }

    /// Requests a split of the huge page covering `vaddr`.
    pub fn split(&mut self, vaddr: u64) {
        self.actions.push(PolicyAction::Split(vaddr));
    }

    /// Requests a batched split-and-scatter of the huge page covering
    /// `vaddr`: demote, then interleave all sub-pages across nodes.
    pub fn split_scatter(&mut self, vaddr: u64) {
        self.actions.push(PolicyAction::SplitScatter(vaddr));
    }

    /// Requests replication of the read-mostly page covering `vaddr`.
    pub fn replicate(&mut self, vaddr: u64) {
        self.actions.push(PolicyAction::Replicate(vaddr));
    }

    /// Toggles 2 MiB allocation at fault time (Algorithm 1 lines 5, 17).
    pub fn set_thp_alloc(&mut self, enabled: bool) {
        self.actions.push(PolicyAction::SetThpAlloc(enabled));
    }

    /// Toggles khugepaged promotion (Algorithm 1 line 6).
    pub fn set_thp_promote(&mut self, enabled: bool) {
        self.actions.push(PolicyAction::SetThpPromote(enabled));
    }

    /// Actions queued so far (visible for policy-composition and tests).
    pub fn queued(&self) -> &[PolicyAction] {
        &self.actions
    }

    /// Drains the queued actions (the engine calls this after `on_epoch`;
    /// exposed publicly for policy unit tests).
    pub fn take_actions(&mut self) -> Vec<PolicyAction> {
        std::mem::take(&mut self.actions)
    }
}

/// A NUMA memory-placement policy invoked at every epoch boundary.
pub trait NumaPolicy {
    /// Display name (used in experiment output).
    fn name(&self) -> &str;

    /// Reads the epoch's observations and queues actions on `ctx`.
    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>);
}

/// The do-nothing policy: plain Linux (whatever the initial THP switches
/// say — "Linux" with small pages, "THP" with huge pages).
pub struct NullPolicy;

impl NumaPolicy for NullPolicy {
    fn name(&self) -> &str {
        "linux"
    }

    fn on_epoch(&mut self, _ctx: &mut EpochCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_queues_actions_in_order() {
        let machine = MachineSpec::test_machine();
        let counters = EpochCounters::default();
        let mut ctx = EpochCtx::new(&machine, &counters, &[], ThpControls::thp(), 0);
        ctx.split(0x1000);
        ctx.migrate(0x2000, NodeId(1));
        ctx.set_thp_alloc(false);
        assert_eq!(
            ctx.queued(),
            &[
                PolicyAction::Split(0x1000),
                PolicyAction::Migrate(0x2000, NodeId(1)),
                PolicyAction::SetThpAlloc(false),
            ]
        );
        let taken = ctx.take_actions();
        assert_eq!(taken.len(), 3);
        assert!(ctx.queued().is_empty());
    }

    #[test]
    fn null_policy_does_nothing() {
        let machine = MachineSpec::test_machine();
        let counters = EpochCounters::default();
        let mut ctx = EpochCtx::new(&machine, &counters, &[], ThpControls::thp(), 0);
        NullPolicy.on_epoch(&mut ctx);
        assert!(ctx.queued().is_empty());
        assert_eq!(NullPolicy.name(), "linux");
    }
}
