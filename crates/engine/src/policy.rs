//! The policy hook: what Carrefour and Carrefour-LP plug into.

use crate::trace::PolicyDecision;
use numa_topology::{MachineSpec, NodeId};
use profiling::{EpochCounters, IbsSample};
use vmem::ThpControls;

/// An action a policy requests at an epoch boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyAction {
    /// Migrate the page covering this virtual address to the node.
    Migrate(u64, NodeId),
    /// Split the huge/giant page covering this virtual address.
    Split(u64),
    /// Split the huge page covering this virtual address and scatter its
    /// 4 KiB sub-pages across all nodes (one batched demote-and-spread
    /// operation, as the kernel performs it under a single lock pass).
    SplitScatter(u64),
    /// Replicate the read-mostly 4 KiB page covering this virtual address
    /// onto every node (the Carrefour replication extension).
    Replicate(u64),
    /// Enable or disable 2 MiB allocation at fault time.
    SetThpAlloc(bool),
    /// Enable or disable khugepaged promotion.
    SetThpPromote(bool),
    /// Replicate every reachable page-table page onto every node (the
    /// Mitosis model: walks then read the local copy). Idempotent —
    /// re-issuing it only replicates tables created since the last sweep.
    ReplicateTables,
    /// Migrate the deepest page-table page on the walk path of this
    /// virtual address so it is homed on the node (the numaPTE model).
    MigrateTables(u64, NodeId),
}

/// Why a policy action failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActionError {
    /// The target page was pinned busy (`-EBUSY`); retrying after a
    /// backoff may succeed.
    Busy,
    /// A frame allocation failed (`-ENOMEM`); retrying once pressure
    /// lifts may succeed.
    NoMemory,
    /// The action no longer applies (page unmapped, already split,
    /// wrong size class); retrying is pointless.
    Gone,
}

impl ActionError {
    /// Whether a retry of the failed action can ever succeed.
    pub fn is_retryable(self) -> bool {
        !matches!(self, ActionError::Gone)
    }
}

/// One action that failed, reported back to the policy at the next epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailedAction {
    /// The action as the policy issued it.
    pub action: PolicyAction,
    /// Why it failed.
    pub error: ActionError,
}

/// Everything a policy can observe and do at one epoch boundary.
///
/// Mirrors what the paper's kernel module sees: performance counters,
/// IBS samples, and the THP sysfs knobs. Policies cannot inspect page
/// tables directly — all page knowledge must come from samples, exactly
/// the constraint the paper's Section 4.3 discusses.
pub struct EpochCtx<'a> {
    /// The machine the workload runs on.
    pub machine: &'a MachineSpec,
    /// Counters accumulated during the epoch that just closed.
    pub counters: &'a EpochCounters,
    /// IBS samples collected during the epoch.
    pub samples: &'a [IbsSample],
    /// Current THP switches.
    pub thp: ThpControls,
    /// Index of the epoch that just closed (0-based).
    pub epoch_index: u32,
    pub(crate) actions: Vec<PolicyAction>,
    /// Actions from the *previous* epoch that failed (empty unless fault
    /// injection is active — see the zero-fault identity note on
    /// [`crate::FaultConfig`]).
    failed: &'a [FailedAction],
    /// Retries the policy re-issued this epoch (self-reported via
    /// [`EpochCtx::record_retries`]).
    retries: u64,
    /// Whether [`EpochCtx::note`] records decisions (the engine turns this
    /// on only when a trace sink is attached, so noting stays free on
    /// untraced runs).
    record_decisions: bool,
    decisions: Vec<PolicyDecision>,
}

impl<'a> EpochCtx<'a> {
    /// Builds a context (the engine does this each epoch; exposed publicly
    /// so policy crates can unit-test their `on_epoch` logic).
    pub fn new(
        machine: &'a MachineSpec,
        counters: &'a EpochCounters,
        samples: &'a [IbsSample],
        thp: ThpControls,
        epoch_index: u32,
    ) -> Self {
        EpochCtx {
            machine,
            counters,
            samples,
            thp,
            epoch_index,
            actions: Vec::new(),
            failed: &[],
            retries: 0,
            record_decisions: false,
            decisions: Vec::new(),
        }
    }

    /// Turns on decision recording for this epoch (the engine does this
    /// when tracing; exposed for policy tests that assert on decisions).
    pub fn enable_decision_log(&mut self) {
        self.record_decisions = true;
    }

    /// Records a [`PolicyDecision`] with its evidence, for the trace. The
    /// closure only runs when a trace sink is attached, so call sites pay
    /// nothing on untraced runs. Purely observational — noting a decision
    /// never changes what the engine does.
    pub fn note(&mut self, make: impl FnOnce() -> PolicyDecision) {
        if self.record_decisions {
            self.decisions.push(make());
        }
    }

    /// Drains the decisions noted this epoch (the engine forwards them to
    /// the trace sink; exposed for policy unit tests).
    pub fn take_decisions(&mut self) -> Vec<PolicyDecision> {
        std::mem::take(&mut self.decisions)
    }

    /// Attaches the previous epoch's failed actions (the engine calls this
    /// only when fault injection is active; exposed for policy tests).
    pub fn set_failures(&mut self, failed: &'a [FailedAction]) {
        self.failed = failed;
    }

    /// Actions from the previous epoch that failed, with their errors.
    /// Empty on a fault-free run.
    pub fn failed(&self) -> &'a [FailedAction] {
        self.failed
    }

    /// Queues an already-constructed action (retry machinery re-issuing a
    /// failed one verbatim).
    pub fn push(&mut self, action: PolicyAction) {
        self.actions.push(action);
    }

    /// Reports that `n` of the actions queued this epoch are retries of
    /// earlier failures, for the run's robustness accounting.
    pub fn record_retries(&mut self, n: u64) {
        self.retries += n;
    }

    /// Retries reported this epoch (the engine drains this into
    /// [`crate::RobustnessStats::retries`]).
    pub fn retries_recorded(&self) -> u64 {
        self.retries
    }

    /// Requests migration of the page covering `vaddr` to `node`.
    pub fn migrate(&mut self, vaddr: u64, node: NodeId) {
        self.actions.push(PolicyAction::Migrate(vaddr, node));
    }

    /// Requests a split of the huge page covering `vaddr`.
    pub fn split(&mut self, vaddr: u64) {
        self.actions.push(PolicyAction::Split(vaddr));
    }

    /// Requests a batched split-and-scatter of the huge page covering
    /// `vaddr`: demote, then interleave all sub-pages across nodes.
    pub fn split_scatter(&mut self, vaddr: u64) {
        self.actions.push(PolicyAction::SplitScatter(vaddr));
    }

    /// Requests replication of the read-mostly page covering `vaddr`.
    pub fn replicate(&mut self, vaddr: u64) {
        self.actions.push(PolicyAction::Replicate(vaddr));
    }

    /// Toggles 2 MiB allocation at fault time (Algorithm 1 lines 5, 17).
    pub fn set_thp_alloc(&mut self, enabled: bool) {
        self.actions.push(PolicyAction::SetThpAlloc(enabled));
    }

    /// Toggles khugepaged promotion (Algorithm 1 line 6).
    pub fn set_thp_promote(&mut self, enabled: bool) {
        self.actions.push(PolicyAction::SetThpPromote(enabled));
    }

    /// Requests a Mitosis-style sweep replicating every reachable
    /// page-table page onto every node.
    pub fn replicate_tables(&mut self) {
        self.actions.push(PolicyAction::ReplicateTables);
    }

    /// Requests a numaPTE-style migration of the page-table page serving
    /// `vaddr` so it is homed on `node`.
    pub fn migrate_tables(&mut self, vaddr: u64, node: NodeId) {
        self.actions.push(PolicyAction::MigrateTables(vaddr, node));
    }

    /// Actions queued so far (visible for policy-composition and tests).
    pub fn queued(&self) -> &[PolicyAction] {
        &self.actions
    }

    /// Drains the queued actions (the engine calls this after `on_epoch`;
    /// exposed publicly for policy unit tests).
    pub fn take_actions(&mut self) -> Vec<PolicyAction> {
        std::mem::take(&mut self.actions)
    }
}

/// A read-only snapshot of a policy's failure-handling machinery at one
/// epoch boundary, reported through [`NumaPolicy::introspect`] for the
/// metrics recorder (DESIGN.md §16). Policies without retry queues or
/// circuit breakers report `None`; the recorder serializes that as JSON
/// `null` so the metrics stream distinguishes "no machinery" from "all
/// quiet".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PolicyIntrospection {
    /// Failed actions currently waiting in the retry queue.
    pub retry_queue_depth: usize,
    /// Actions abandoned after exhausting their retry budget (lifetime).
    pub retries_abandoned: u64,
    /// Whether the split circuit breaker is open at this boundary.
    pub split_breaker_open: bool,
    /// Whether the migration circuit breaker is open at this boundary.
    pub move_breaker_open: bool,
    /// Lifetime trip count of the split breaker.
    pub split_breaker_trips: u64,
    /// Lifetime trip count of the migration breaker.
    pub move_breaker_trips: u64,
}

/// A NUMA memory-placement policy invoked at every epoch boundary.
pub trait NumaPolicy {
    /// Display name (used in experiment output).
    fn name(&self) -> &str;

    /// Reads the epoch's observations and queues actions on `ctx`.
    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>);

    /// Whether this policy reads IBS samples / page stats. When `false`
    /// (and fault injection is off), the engine skips storing samples —
    /// the sampling *overhead* is still charged, only the profiling
    /// bookkeeping nobody will read is elided, so results stay
    /// bit-identical.
    fn consumes_samples(&self) -> bool {
        true
    }

    /// Serializes the policy's mutable state for a `ckpt-v1` snapshot.
    /// Stateless policies (the default) return an empty buffer; stateful
    /// ones must capture everything [`NumaPolicy::restore_state`] needs to
    /// make a freshly-constructed instance continue bit-identically.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by [`NumaPolicy::save_state`] onto a
    /// freshly-constructed instance of the same policy. The default
    /// ignores the bytes (stateless policies).
    fn restore_state(&mut self, _bytes: &[u8]) {}

    /// Read-only view of the policy's failure-handling state at the
    /// boundary closing `epoch`, sampled by the metrics recorder. Must be
    /// a pure observation: implementations may not mutate anything, so an
    /// introspected run stays bit-identical to an uninspected one. The
    /// default (`None`) is for policies without retry/breaker machinery.
    fn introspect(&self, _epoch: u32) -> Option<PolicyIntrospection> {
        None
    }
}

/// The do-nothing policy: plain Linux (whatever the initial THP switches
/// say — "Linux" with small pages, "THP" with huge pages).
pub struct NullPolicy;

impl NumaPolicy for NullPolicy {
    fn name(&self) -> &str {
        "linux"
    }

    fn on_epoch(&mut self, _ctx: &mut EpochCtx<'_>) {}

    fn consumes_samples(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_queues_actions_in_order() {
        let machine = MachineSpec::test_machine();
        let counters = EpochCounters::default();
        let mut ctx = EpochCtx::new(&machine, &counters, &[], ThpControls::thp(), 0);
        ctx.split(0x1000);
        ctx.migrate(0x2000, NodeId(1));
        ctx.set_thp_alloc(false);
        assert_eq!(
            ctx.queued(),
            &[
                PolicyAction::Split(0x1000),
                PolicyAction::Migrate(0x2000, NodeId(1)),
                PolicyAction::SetThpAlloc(false),
            ]
        );
        let taken = ctx.take_actions();
        assert_eq!(taken.len(), 3);
        assert!(ctx.queued().is_empty());
    }

    #[test]
    fn failure_feedback_round_trips() {
        let machine = MachineSpec::test_machine();
        let counters = EpochCounters::default();
        let mut ctx = EpochCtx::new(&machine, &counters, &[], ThpControls::thp(), 1);
        assert!(
            ctx.failed().is_empty(),
            "fault-free runs report no failures"
        );
        let failed = [FailedAction {
            action: PolicyAction::Migrate(0x2000, NodeId(1)),
            error: ActionError::Busy,
        }];
        ctx.set_failures(&failed);
        assert_eq!(ctx.failed().len(), 1);
        assert!(ctx.failed()[0].error.is_retryable());
        assert!(!ActionError::Gone.is_retryable());
        // A retry re-issues the action verbatim and is accounted.
        ctx.push(ctx.failed()[0].action);
        ctx.record_retries(1);
        assert_eq!(ctx.queued(), &[PolicyAction::Migrate(0x2000, NodeId(1))]);
        assert_eq!(ctx.retries_recorded(), 1);
    }

    #[test]
    fn null_policy_does_nothing() {
        let machine = MachineSpec::test_machine();
        let counters = EpochCounters::default();
        let mut ctx = EpochCtx::new(&machine, &counters, &[], ThpControls::thp(), 0);
        NullPolicy.on_epoch(&mut ctx);
        assert!(ctx.queued().is_empty());
        assert_eq!(NullPolicy.name(), "linux");
    }
}
