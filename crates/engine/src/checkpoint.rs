//! Crash-resilient snapshots: the `ckpt-v1` binary checkpoint format.
//!
//! A [`Checkpoint`] captures everything a mid-stream resume needs — vmem
//! address space, caches, controllers, TLBs, sampler, fault plan, RNG
//! streams, policy state, and the engine's loop-carried accumulators — at
//! an epoch boundary, such that [`crate::Simulation::resume`] continues
//! the run **bit-identically** to one that was never interrupted.
//!
//! # Envelope format
//!
//! ```text
//! magic    8 bytes   "carrCKPT"
//! version  u32 LE    1
//! schema   u64 LE    FNV-1a of the payload-layout descriptor string
//! config   u64 LE    FNV-1a fingerprint of (machine, spec, config)
//! epoch    u32 LE    epoch index the snapshot was taken at
//! len      u64 LE    payload length in bytes
//! payload  len bytes
//! checksum u64 LE    FNV-1a over the payload
//! ```
//!
//! The header is validated *before* any payload byte is decoded (the
//! payload decoder panics on malformed input; the envelope checks make
//! that unreachable for torn or mismatched files): wrong magic/version,
//! a schema hash from a different build, a checksum mismatch, or trailing
//! bytes all surface as a typed [`CheckpointError`]. A checkpoint whose
//! *config fingerprint* differs (different machine, workload spec, or
//! simulation config — including seed and fault plan) parses fine but is
//! rejected at [`crate::Simulation::resume`] time: resuming under changed
//! inputs cannot reproduce the uninterrupted run and is a caller bug.

use crate::policy::{ActionError, FailedAction, PolicyAction};
use crate::result::{
    AttributionLedger, EpochAttribution, EpochRecord, LifetimeStats, PageMetrics, RobustnessStats,
    SimResult,
};
use codec::{fnv1a, Dec, Enc};
use numa_topology::{MachineSpec, NodeId};
use profiling::{CoreFaultTime, CycleBreakdown, EpochCounters};
use workloads::WorkloadSpec;

/// Leading bytes of every checkpoint file.
pub const MAGIC: &[u8; 8] = b"carrCKPT";
/// Format version (bumped on any envelope change).
pub const VERSION: u32 = 1;

/// Descriptor of the payload layout. Any change to what the snapshot
/// serializes (or its order) MUST extend this string so old checkpoints
/// are rejected by schema hash instead of mis-decoded.
const SCHEMA: &str = "ckpt-v1: gen space(+table_homing) walk_caches[per-thread] tlbs mem \
                      sampler(+walk_remote_steps) page_stats? faults fault_epoch fault_life \
                      robust wall total_ops overhead_total epochs last_failures \
                      attrib(prelude core_totals epochs; 19 buckets)? policy_bytes; \
                      actions+={replicate_tables,migrate_tables}";

/// FNV-1a hash of the payload schema descriptor.
pub fn schema_hash() -> u64 {
    fnv1a(SCHEMA.as_bytes())
}

/// Fingerprint of everything a run's behaviour is a function of: the
/// machine, the workload spec, and the full simulation config (seed,
/// fault plan, attribution switch, ...). Computed over the `Debug`
/// renderings, which cover every field.
///
/// `shards` is normalized out: the lane count never affects results, so a
/// checkpoint taken at one shard count must resume at any other.
pub fn config_fingerprint(
    machine: &MachineSpec,
    spec: &WorkloadSpec,
    config: &crate::SimConfig,
) -> u64 {
    let mut config = config.clone();
    config.shards = 0;
    let repr = format!("{} {:?} {:?}", machine.name(), spec, config);
    fnv1a(repr.as_bytes())
}

/// Why a checkpoint byte stream was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Fewer bytes than the fixed envelope, or a payload shorter than its
    /// declared length.
    Truncated,
    /// The magic bytes are not `carrCKPT`.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// The payload schema hash differs from this build's — the snapshot
    /// layout changed and the bytes cannot be decoded safely.
    SchemaMismatch,
    /// The FNV-1a payload checksum does not match (corruption).
    ChecksumMismatch,
    /// Extra bytes follow the checksum.
    TrailingBytes,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::SchemaMismatch => {
                write!(f, "checkpoint schema differs from this build")
            }
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint payload checksum mismatch"),
            CheckpointError::TrailingBytes => write!(f, "trailing bytes after checkpoint"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A validated `ckpt-v1` snapshot, ready to resume from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    epoch: u32,
    config_fp: u64,
    payload: Vec<u8>,
}

impl Checkpoint {
    pub(crate) fn new(epoch: u32, config_fp: u64, payload: Vec<u8>) -> Self {
        Checkpoint {
            epoch,
            config_fp,
            payload,
        }
    }

    /// The epoch index the snapshot was taken at.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    pub(crate) fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The config fingerprint the snapshot was taken under (the value
    /// [`config_fingerprint`] computed at capture time).
    pub fn fingerprint(&self) -> u64 {
        self.config_fp
    }

    /// In-memory payload size in bytes — what a cache holding live
    /// checkpoints (the fork tree's LRU, `CARREFOUR_FORK_CACHE_MB`) should
    /// charge against its budget.
    pub fn size_bytes(&self) -> usize {
        self.payload.len()
    }

    /// A placeholder blob (`epoch`, `bytes` of zeros, zero fingerprint)
    /// for exercising cache accounting without running a simulation.
    /// Never restorable — `matches` rejects it against any real config.
    #[doc(hidden)]
    pub fn synthetic_for_tests(epoch: u32, bytes: usize) -> Checkpoint {
        Checkpoint::new(epoch, 0, vec![0; bytes])
    }

    /// Whether this checkpoint was taken under exactly these inputs.
    /// [`crate::Simulation::resume`] refuses checkpoints that don't match:
    /// a resume under a different machine, spec, or config cannot
    /// reproduce the uninterrupted run.
    pub fn matches(
        &self,
        machine: &MachineSpec,
        spec: &WorkloadSpec,
        config: &crate::SimConfig,
    ) -> bool {
        self.config_fp == config_fingerprint(machine, spec, config)
    }

    /// Serializes the checkpoint into the `ckpt-v1` envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 48);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&schema_hash().to_le_bytes());
        out.extend_from_slice(&self.config_fp.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&fnv1a(&self.payload).to_le_bytes());
        out
    }

    /// Parses and validates a `ckpt-v1` envelope. Every header field and
    /// the payload checksum are verified before this returns `Ok`, so the
    /// panicking payload decoder never sees torn or foreign bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        const HEADER: usize = 8 + 4 + 8 + 8 + 4 + 8;
        if bytes.len() < HEADER {
            return Err(CheckpointError::Truncated);
        }
        if &bytes[..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        if u64_at(12) != schema_hash() {
            return Err(CheckpointError::SchemaMismatch);
        }
        let config_fp = u64_at(20);
        let epoch = u32_at(28);
        let len = u64_at(32) as usize;
        if bytes.len() < HEADER + len + 8 {
            return Err(CheckpointError::Truncated);
        }
        if bytes.len() > HEADER + len + 8 {
            return Err(CheckpointError::TrailingBytes);
        }
        let payload = &bytes[HEADER..HEADER + len];
        let checksum = u64_at(HEADER + len);
        if fnv1a(payload) != checksum {
            return Err(CheckpointError::ChecksumMismatch);
        }
        Ok(Checkpoint {
            epoch,
            config_fp,
            payload: payload.to_vec(),
        })
    }
}

// --- Shared binary codecs for the engine's result tree. ---
//
// Used by the snapshot payload (loop-carried EpochRecords, failures,
// attribution) and by the bench runner's cell journal, which persists
// whole SimResults between suite runs.

/// Encodes one [`PolicyAction`] (public: policy crates serialize queued
/// actions in their own `save_state` payloads).
pub fn enc_action(e: &mut Enc, a: &PolicyAction) {
    match *a {
        PolicyAction::Migrate(v, node) => {
            e.u8(0);
            e.u64(v);
            e.u16(node.0);
        }
        PolicyAction::Split(v) => {
            e.u8(1);
            e.u64(v);
        }
        PolicyAction::SplitScatter(v) => {
            e.u8(2);
            e.u64(v);
        }
        PolicyAction::Replicate(v) => {
            e.u8(3);
            e.u64(v);
        }
        PolicyAction::SetThpAlloc(b) => {
            e.u8(4);
            e.bool(b);
        }
        PolicyAction::SetThpPromote(b) => {
            e.u8(5);
            e.bool(b);
        }
        PolicyAction::ReplicateTables => {
            e.u8(6);
        }
        PolicyAction::MigrateTables(v, node) => {
            e.u8(7);
            e.u64(v);
            e.u16(node.0);
        }
    }
}

/// Decodes one [`PolicyAction`] written by [`enc_action`].
pub fn dec_action(d: &mut Dec<'_>) -> PolicyAction {
    match d.u8() {
        0 => PolicyAction::Migrate(d.u64(), NodeId(d.u16())),
        1 => PolicyAction::Split(d.u64()),
        2 => PolicyAction::SplitScatter(d.u64()),
        3 => PolicyAction::Replicate(d.u64()),
        4 => PolicyAction::SetThpAlloc(d.bool()),
        5 => PolicyAction::SetThpPromote(d.bool()),
        6 => PolicyAction::ReplicateTables,
        7 => PolicyAction::MigrateTables(d.u64(), NodeId(d.u16())),
        t => panic!("ckpt: invalid PolicyAction tag {t}"),
    }
}

fn enc_action_error(e: &mut Enc, err: ActionError) {
    e.u8(match err {
        ActionError::Busy => 0,
        ActionError::NoMemory => 1,
        ActionError::Gone => 2,
    });
}

fn dec_action_error(d: &mut Dec<'_>) -> ActionError {
    match d.u8() {
        0 => ActionError::Busy,
        1 => ActionError::NoMemory,
        2 => ActionError::Gone,
        t => panic!("ckpt: invalid ActionError tag {t}"),
    }
}

pub(crate) fn enc_failed_action(e: &mut Enc, f: &FailedAction) {
    enc_action(e, &f.action);
    enc_action_error(e, f.error);
}

pub(crate) fn dec_failed_action(d: &mut Dec<'_>) -> FailedAction {
    FailedAction {
        action: dec_action(d),
        error: dec_action_error(d),
    }
}

pub(crate) fn enc_breakdown(e: &mut Enc, b: &CycleBreakdown) {
    e.u64(b.compute);
    e.u64(b.tlb_lookup);
    e.u64(b.cache_l1);
    e.u64(b.cache_l2);
    e.u64(b.cache_l3);
    e.u64(b.dram_service);
    e.u64(b.ctrl_queue);
    e.u64(b.interconnect);
    e.u64(b.walk_pwc_hit_local);
    e.u64(b.walk_pwc_hit_remote);
    e.u64(b.walk_pwc_miss_local);
    e.u64(b.walk_pwc_miss_remote);
    e.u64(b.fault);
    e.u64(b.replica_collapse);
    e.u64(b.khugepaged);
    e.u64(b.ibs_sampling);
    e.u64(b.policy_migration);
    e.u64(b.policy_split);
    e.u64(b.policy_replication);
}

pub(crate) fn dec_breakdown(d: &mut Dec<'_>) -> CycleBreakdown {
    CycleBreakdown {
        compute: d.u64(),
        tlb_lookup: d.u64(),
        cache_l1: d.u64(),
        cache_l2: d.u64(),
        cache_l3: d.u64(),
        dram_service: d.u64(),
        ctrl_queue: d.u64(),
        interconnect: d.u64(),
        walk_pwc_hit_local: d.u64(),
        walk_pwc_hit_remote: d.u64(),
        walk_pwc_miss_local: d.u64(),
        walk_pwc_miss_remote: d.u64(),
        fault: d.u64(),
        replica_collapse: d.u64(),
        khugepaged: d.u64(),
        ibs_sampling: d.u64(),
        policy_migration: d.u64(),
        policy_split: d.u64(),
        policy_replication: d.u64(),
    }
}

fn enc_counters(e: &mut Enc, c: &EpochCounters) {
    e.u64(c.epoch_cycles);
    e.u64(c.l2_accesses);
    e.u64(c.l2_misses);
    e.u64(c.l2_walk_misses);
    e.u64(c.dram_local);
    e.u64(c.dram_remote);
    e.seq(c.controller_requests.iter(), |e, &v| e.u64(v));
    e.seq(c.fault_time.iter(), |e, f| e.u64(f.fault_cycles));
    e.u64(c.mem_ops);
}

fn dec_counters(d: &mut Dec<'_>) -> EpochCounters {
    EpochCounters {
        epoch_cycles: d.u64(),
        l2_accesses: d.u64(),
        l2_misses: d.u64(),
        l2_walk_misses: d.u64(),
        dram_local: d.u64(),
        dram_remote: d.u64(),
        controller_requests: d.seq(|d| d.u64()),
        fault_time: d.seq(|d| CoreFaultTime {
            fault_cycles: d.u64(),
        }),
        mem_ops: d.u64(),
    }
}

pub(crate) fn enc_epoch_record(e: &mut Enc, r: &EpochRecord) {
    enc_counters(e, &r.counters);
    e.u64(r.migrations);
    e.u64(r.splits);
    e.u64(r.collapses);
    e.u64(r.overhead_cycles);
    e.bool(r.thp_alloc_enabled);
    e.bool(r.thp_promote_enabled);
    e.u64(r.failed_actions);
}

pub(crate) fn dec_epoch_record(d: &mut Dec<'_>) -> EpochRecord {
    EpochRecord {
        counters: dec_counters(d),
        migrations: d.u64(),
        splits: d.u64(),
        collapses: d.u64(),
        overhead_cycles: d.u64(),
        thp_alloc_enabled: d.bool(),
        thp_promote_enabled: d.bool(),
        failed_actions: d.u64(),
    }
}

pub(crate) fn enc_robust(e: &mut Enc, r: &RobustnessStats) {
    e.u64(r.failed_migrations);
    e.u64(r.failed_splits);
    e.u64(r.failed_replications);
    e.u64(r.fallback_allocs);
    e.u64(r.busy_rejections);
    e.u64(r.dropped_samples);
    e.u64(r.misattributed_samples);
    e.u64(r.retries);
    e.u64(r.oom_reclaims);
}

pub(crate) fn dec_robust(d: &mut Dec<'_>) -> RobustnessStats {
    RobustnessStats {
        failed_migrations: d.u64(),
        failed_splits: d.u64(),
        failed_replications: d.u64(),
        fallback_allocs: d.u64(),
        busy_rejections: d.u64(),
        dropped_samples: d.u64(),
        misattributed_samples: d.u64(),
        retries: d.u64(),
        oom_reclaims: d.u64(),
    }
}

fn enc_lifetime(e: &mut Enc, l: &LifetimeStats) {
    e.f64(l.lar);
    e.f64(l.imbalance);
    e.f64(l.walk_miss_fraction);
    e.f64(l.tlb_miss_ratio);
    e.u64(l.max_fault_cycles);
    e.f64(l.max_fault_fraction);
    e.u64(l.total_fault_cycles);
    e.u64(l.vmem.faults_4k);
    e.u64(l.vmem.faults_2m);
    e.u64(l.vmem.faults_1g);
    e.u64(l.vmem.migrations_4k);
    e.u64(l.vmem.migrations_2m);
    e.u64(l.vmem.splits);
    e.u64(l.vmem.collapses);
    e.u64(l.vmem.replications);
    e.u64(l.vmem.replica_collapses);
    e.u64(l.vmem.bytes_copied);
    e.u64(l.vmem.table_replications);
    e.u64(l.vmem.table_migrations);
    e.u64(l.overhead_cycles);
    e.u64(l.ibs_samples);
    e.u64(l.total_ops);
}

fn dec_lifetime(d: &mut Dec<'_>) -> LifetimeStats {
    LifetimeStats {
        lar: d.f64(),
        imbalance: d.f64(),
        walk_miss_fraction: d.f64(),
        tlb_miss_ratio: d.f64(),
        max_fault_cycles: d.u64(),
        max_fault_fraction: d.f64(),
        total_fault_cycles: d.u64(),
        vmem: vmem::VmemStats {
            faults_4k: d.u64(),
            faults_2m: d.u64(),
            faults_1g: d.u64(),
            migrations_4k: d.u64(),
            migrations_2m: d.u64(),
            splits: d.u64(),
            collapses: d.u64(),
            replications: d.u64(),
            replica_collapses: d.u64(),
            bytes_copied: d.u64(),
            table_replications: d.u64(),
            table_migrations: d.u64(),
        },
        overhead_cycles: d.u64(),
        ibs_samples: d.u64(),
        total_ops: d.u64(),
    }
}

pub(crate) fn enc_epoch_attribution(e: &mut Enc, a: &EpochAttribution) {
    enc_breakdown(e, &a.wall);
    e.seq(a.cores.iter(), enc_breakdown);
}

pub(crate) fn dec_epoch_attribution(d: &mut Dec<'_>) -> EpochAttribution {
    EpochAttribution {
        wall: dec_breakdown(d),
        cores: d.seq(dec_breakdown),
    }
}

fn enc_ledger(e: &mut Enc, l: &AttributionLedger) {
    enc_breakdown(e, &l.prelude);
    e.seq(l.epochs.iter(), enc_epoch_attribution);
    enc_breakdown(e, &l.total);
    e.seq(l.core_totals.iter(), enc_breakdown);
}

fn dec_ledger(d: &mut Dec<'_>) -> AttributionLedger {
    AttributionLedger {
        prelude: dec_breakdown(d),
        epochs: d.seq(dec_epoch_attribution),
        total: dec_breakdown(d),
        core_totals: d.seq(dec_breakdown),
    }
}

/// Encodes a full [`SimResult`] (with attribution, if present) into a
/// self-checking binary blob — the bench runner journals these per cell
/// so `--resume` can reconstruct completed cells without re-running them.
pub fn encode_result(r: &SimResult) -> Vec<u8> {
    let mut e = Enc::new();
    e.str(&r.workload);
    e.str(&r.policy);
    e.str(&r.machine);
    e.u64(r.runtime_cycles);
    e.f64(r.runtime_ms);
    e.seq(r.epochs.iter(), enc_epoch_record);
    enc_lifetime(&mut e, &r.lifetime);
    e.f64(r.pages.pamup);
    e.usize(r.pages.nhp);
    e.f64(r.pages.psp);
    e.f64(r.pages.pamup_4k);
    e.usize(r.pages.nhp_4k);
    e.f64(r.pages.psp_4k);
    enc_robust(&mut e, &r.robustness);
    e.opt(&r.attribution, enc_ledger);
    let mut bytes = e.into_bytes();
    let checksum = fnv1a(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Decodes a blob written by [`encode_result`]. Returns `None` when the
/// trailing checksum does not match (torn or corrupted journal entry) —
/// callers treat such entries as absent and re-run the cell.
pub fn decode_result(bytes: &[u8]) -> Option<SimResult> {
    if bytes.len() < 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let checksum = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(body) != checksum {
        return None;
    }
    let mut d = Dec::new(body);
    let r = SimResult {
        workload: d.str(),
        policy: d.str(),
        machine: d.str(),
        runtime_cycles: d.u64(),
        runtime_ms: d.f64(),
        epochs: d.seq(dec_epoch_record),
        lifetime: dec_lifetime(&mut d),
        pages: PageMetrics {
            pamup: d.f64(),
            nhp: d.usize(),
            psp: d.f64(),
            pamup_4k: d.f64(),
            nhp_4k: d.usize(),
            psp_4k: d.f64(),
        },
        robustness: dec_robust(&mut d),
        attribution: d.opt(dec_ledger),
    };
    d.finish();
    Some(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> SimResult {
        SimResult {
            workload: "w".into(),
            policy: "p".into(),
            machine: "m".into(),
            runtime_cycles: 123_456,
            runtime_ms: 1.5,
            epochs: vec![EpochRecord {
                counters: EpochCounters {
                    epoch_cycles: 100,
                    l2_accesses: 10,
                    l2_misses: 5,
                    l2_walk_misses: 2,
                    dram_local: 3,
                    dram_remote: 1,
                    controller_requests: vec![4, 0],
                    fault_time: vec![CoreFaultTime { fault_cycles: 7 }],
                    mem_ops: 400,
                },
                migrations: 1,
                splits: 2,
                collapses: 0,
                overhead_cycles: 9,
                thp_alloc_enabled: true,
                thp_promote_enabled: false,
                failed_actions: 1,
            }],
            lifetime: LifetimeStats {
                lar: 0.75,
                ..LifetimeStats::default()
            },
            pages: PageMetrics {
                pamup: 1.25,
                nhp: 3,
                psp: 50.0,
                pamup_4k: 0.5,
                nhp_4k: 8,
                psp_4k: 10.0,
            },
            robustness: RobustnessStats {
                retries: 4,
                ..RobustnessStats::default()
            },
            attribution: Some(AttributionLedger {
                prelude: CycleBreakdown {
                    compute: 11,
                    ..CycleBreakdown::default()
                },
                epochs: vec![EpochAttribution {
                    wall: CycleBreakdown::default(),
                    cores: vec![CycleBreakdown::default(); 2],
                }],
                total: CycleBreakdown::default(),
                core_totals: vec![CycleBreakdown::default(); 2],
            }),
        }
    }

    #[test]
    fn result_codec_round_trips() {
        let r = sample_result();
        let bytes = encode_result(&r);
        assert_eq!(decode_result(&bytes), Some(r));
    }

    #[test]
    fn result_codec_rejects_corruption() {
        let r = sample_result();
        let bytes = encode_result(&r);
        for i in [0, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert_eq!(decode_result(&bad), None, "flipped byte {i} accepted");
        }
        assert_eq!(decode_result(&bytes[..bytes.len() - 1]), None, "truncated");
    }

    #[test]
    fn envelope_round_trips() {
        let ckpt = Checkpoint::new(7, 0xDEAD_BEEF, vec![1, 2, 3, 4, 5]);
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.epoch(), 7);
    }

    #[test]
    fn envelope_rejects_every_tamper_class() {
        let ckpt = Checkpoint::new(1, 42, vec![9; 64]);
        let good = ckpt.to_bytes();

        assert_eq!(
            Checkpoint::from_bytes(&good[..10]),
            Err(CheckpointError::Truncated)
        );

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(Checkpoint::from_bytes(&bad), Err(CheckpointError::BadMagic));

        let mut bad = good.clone();
        bad[8] = 99;
        assert_eq!(
            Checkpoint::from_bytes(&bad),
            Err(CheckpointError::BadVersion(99))
        );

        let mut bad = good.clone();
        bad[12] ^= 1; // schema hash
        assert_eq!(
            Checkpoint::from_bytes(&bad),
            Err(CheckpointError::SchemaMismatch)
        );

        let mut bad = good.clone();
        let payload_start = 8 + 4 + 8 + 8 + 4 + 8;
        bad[payload_start] ^= 1;
        assert_eq!(
            Checkpoint::from_bytes(&bad),
            Err(CheckpointError::ChecksumMismatch)
        );

        let mut bad = good.clone();
        bad.push(0);
        assert_eq!(
            Checkpoint::from_bytes(&bad),
            Err(CheckpointError::TrailingBytes)
        );

        assert!(Checkpoint::from_bytes(&good).is_ok());
    }

    #[test]
    fn action_codec_round_trips_every_variant() {
        let actions = [
            PolicyAction::Migrate(0x20_0000, NodeId(3)),
            PolicyAction::Split(0x40_0000),
            PolicyAction::SplitScatter(0x60_0000),
            PolicyAction::Replicate(0x1000),
            PolicyAction::SetThpAlloc(true),
            PolicyAction::SetThpPromote(false),
            PolicyAction::ReplicateTables,
            PolicyAction::MigrateTables(0x20_0000, NodeId(2)),
        ];
        let errors = [ActionError::Busy, ActionError::NoMemory, ActionError::Gone];
        let mut e = Enc::new();
        for a in &actions {
            enc_action(&mut e, a);
        }
        for (i, &err) in errors.iter().enumerate() {
            enc_failed_action(
                &mut e,
                &FailedAction {
                    action: actions[i],
                    error: err,
                },
            );
        }
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        for a in &actions {
            assert_eq!(dec_action(&mut d), *a);
        }
        for (i, &err) in errors.iter().enumerate() {
            let f = dec_failed_action(&mut d);
            assert_eq!(f.action, actions[i]);
            assert_eq!(f.error, err);
        }
        d.finish();
    }
}
