//! The flight recorder's engine layer: per-epoch metric time-series.
//!
//! A [`MetricsRecorder`] is a `TraceSink`-style hook that the simulation
//! driver calls once per epoch boundary with a [`MetricsSample`] — the
//! paper's derived metrics (imbalance, PAMUP, NHP, PSP), per-controller
//! load, TLB and walk-cache hit rates for the epoch, the policy's
//! retry/breaker state ([`crate::PolicyIntrospection`]), and the
//! attribution ledger's per-epoch delta. Where `engine::trace` answers
//! "what happened", the recorder answers "how did the paper's metrics
//! *evolve*" — the temporal curves Sections 2.2 and 3 of the paper argue
//! from.
//!
//! # Zero-cost-when-off, bit-identity-preserving
//!
//! The contract mirrors the trace layer's (DESIGN.md §9, §16): when no
//! recorder is attached the driver pays one `Option` test per epoch and
//! nothing else; when one *is* attached, every read it performs is
//! `&self` — counters already computed, page-stat aggregation, policy
//! introspection — so a recorded run's `SimResult`, ledger, and trace
//! digest are bit-identical to an unrecorded run's (proptested in
//! `carrefour-bench/tests/metrics_equivalence.rs`). In particular the
//! recorder never turns `SimConfig::track_page_stats` on by itself: when
//! page stats are off, [`MetricsSample::pages`] is `None` and the JSONL
//! field is `null` — forcing them on would change `SimResult::pages`.
//!
//! # `metrics-v1` JSONL
//!
//! [`JsonlMetricsRecorder`] serializes the stream next to the trace
//! output's format: one `{"metrics": "run_start", ...}` header line, one
//! `{"metrics": "epoch", ...}` line per boundary. Schema in DESIGN.md §16.

use crate::policy::PolicyIntrospection;
use profiling::CycleBreakdown;
use std::io::Write;

/// Identity of the run a recorder is attached to — the `run_start`
/// header of a `metrics-v1` stream.
#[derive(Clone, Copy, Debug)]
pub struct RunInfo<'a> {
    /// Workload name (`WorkloadSpec::name`).
    pub workload: &'a str,
    /// Policy display name ([`crate::NumaPolicy::name`]).
    pub policy: &'a str,
    /// Machine name.
    pub machine: &'a str,
    /// Worker thread count of the workload.
    pub threads: usize,
    /// NUMA node count of the machine.
    pub nodes: usize,
}

/// The paper's page-granularity metrics at one boundary, over every
/// access recorded since the run started (page stats are cumulative).
/// Present only when `SimConfig::track_page_stats` is on.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PageSnapshot {
    /// Percentage of accesses to the most-used page (mapped granularity).
    pub pamup: f64,
    /// Number of hot pages (> 6 % of accesses).
    pub nhp: usize,
    /// Percentage of accesses to pages shared by ≥ 2 threads.
    pub psp: f64,
}

/// One epoch boundary's metric sample. TLB and walk-cache counts are
/// per-epoch deltas (the recorder differences the lifetime counters);
/// everything else is this epoch's value as the policy saw it.
#[derive(Clone, Copy, Debug)]
pub struct MetricsSample<'a> {
    /// The epoch this boundary closed.
    pub epoch: u32,
    /// Wall cycles of the epoch, boundary overhead included.
    pub epoch_cycles: u64,
    /// Memory operations executed during the epoch.
    pub mem_ops: u64,
    /// Controller-load imbalance (stddev % of mean) this epoch.
    pub imbalance: f64,
    /// Local access ratio of the epoch's DRAM traffic.
    pub lar: f64,
    /// Fraction of L2 misses that were page-walk references.
    pub walk_miss_fraction: f64,
    /// Per-controller request counts this epoch.
    pub controller_requests: &'a [u64],
    /// TLB L1 hits this epoch (summed over threads).
    pub tlb_l1_hits: u64,
    /// TLB L2 hits this epoch.
    pub tlb_l2_hits: u64,
    /// TLB misses (full walks) this epoch.
    pub tlb_misses: u64,
    /// Walk-cache hits this epoch.
    pub walk_cache_hits: u64,
    /// Walk-cache misses this epoch.
    pub walk_cache_misses: u64,
    /// Pages migrated by the policy at this boundary.
    pub migrations: u64,
    /// Pages split at this boundary.
    pub splits: u64,
    /// khugepaged collapses at this boundary.
    pub collapses: u64,
    /// Policy actions that failed at this boundary.
    pub failed_actions: u64,
    /// PAMUP/NHP/PSP (cumulative) — `None` when page stats are off.
    pub pages: Option<PageSnapshot>,
    /// Retry-queue / circuit-breaker state — `None` for policies without
    /// that machinery.
    pub policy: Option<PolicyIntrospection>,
    /// The attribution ledger's delta for this epoch (wall buckets) —
    /// `None` when `SimConfig::attribution` is off.
    pub attrib: Option<&'a CycleBreakdown>,
    /// Free lanes in the process-wide shard-lane pool at this boundary
    /// (host-side observability; never affects simulated results).
    pub lanes_free: usize,
}

impl MetricsSample<'_> {
    /// TLB hit rate this epoch (L1 + L2 hits over all lookups); 1.0 for
    /// an epoch with no lookups.
    pub fn tlb_hit_rate(&self) -> f64 {
        let total = self.tlb_l1_hits + self.tlb_l2_hits + self.tlb_misses;
        if total == 0 {
            1.0
        } else {
            (self.tlb_l1_hits + self.tlb_l2_hits) as f64 / total as f64
        }
    }

    /// Walk-cache hit rate this epoch; 1.0 for an epoch with no walks.
    pub fn walk_cache_hit_rate(&self) -> f64 {
        let total = self.walk_cache_hits + self.walk_cache_misses;
        if total == 0 {
            1.0
        } else {
            self.walk_cache_hits as f64 / total as f64
        }
    }

    /// Serializes the sample as one `metrics-v1` JSONL line (no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"metrics\":\"epoch\",\"epoch\":{},\"epoch_cycles\":{},\"mem_ops\":{},\
             \"imbalance\":{},\"lar\":{},\"walk_miss_fraction\":{},\
             \"controller_requests\":{},\"tlb_l1_hits\":{},\"tlb_l2_hits\":{},\
             \"tlb_misses\":{},\"tlb_hit_rate\":{},\"walk_cache_hits\":{},\
             \"walk_cache_misses\":{},\"walk_cache_hit_rate\":{},\
             \"migrations\":{},\"splits\":{},\"collapses\":{},\"failed_actions\":{},\
             \"lanes_free\":{}",
            self.epoch,
            self.epoch_cycles,
            self.mem_ops,
            num(self.imbalance),
            num(self.lar),
            num(self.walk_miss_fraction),
            u64_array(self.controller_requests),
            self.tlb_l1_hits,
            self.tlb_l2_hits,
            self.tlb_misses,
            num(self.tlb_hit_rate()),
            self.walk_cache_hits,
            self.walk_cache_misses,
            num(self.walk_cache_hit_rate()),
            self.migrations,
            self.splits,
            self.collapses,
            self.failed_actions,
            self.lanes_free,
        );
        match &self.pages {
            Some(p) => s.push_str(&format!(
                ",\"pages\":{{\"pamup\":{},\"nhp\":{},\"psp\":{}}}",
                num(p.pamup),
                p.nhp,
                num(p.psp)
            )),
            None => s.push_str(",\"pages\":null"),
        }
        match &self.policy {
            Some(p) => s.push_str(&format!(
                ",\"policy\":{{\"retry_queue_depth\":{},\"retries_abandoned\":{},\
                 \"split_breaker_open\":{},\"move_breaker_open\":{},\
                 \"split_breaker_trips\":{},\"move_breaker_trips\":{}}}",
                p.retry_queue_depth,
                p.retries_abandoned,
                p.split_breaker_open,
                p.move_breaker_open,
                p.split_breaker_trips,
                p.move_breaker_trips,
            )),
            None => s.push_str(",\"policy\":null"),
        }
        match self.attrib {
            Some(bd) => {
                s.push_str(",\"attrib\":{");
                for (i, (name, v)) in bd.pairs().iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("\"{name}\":{v}"));
                }
                s.push('}');
            }
            None => s.push_str(",\"attrib\":null"),
        }
        s.push('}');
        s
    }
}

/// Formats a float as a JSON value (`null` for non-finite, a forced
/// `.0` for integral values — same convention as the trace layer's).
fn num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn u64_array(values: &[u64]) -> String {
    let inner: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", inner.join(","))
}

/// Escapes a string for a JSON string literal (without quotes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The per-epoch metrics hook. Like `TraceSink`, implementations must be
/// pure consumers: a recorder that mutated simulation state would break
/// the bit-identity contract.
pub trait MetricsRecorder {
    /// Called once, before the first round executes (only on full runs —
    /// checkpoint/resume segments do not re-announce themselves).
    fn on_run_start(&mut self, _info: &RunInfo<'_>) {}

    /// Called at every epoch boundary, after the policy ran and its
    /// actions were applied (so `epoch_cycles` includes the boundary
    /// overhead), before the next epoch begins.
    fn on_epoch(&mut self, sample: &MetricsSample<'_>);

    /// Called when the run completes (flush point for buffering
    /// recorders). Not called when a `checkpoint_at` run stops early.
    fn finish(&mut self) {}
}

/// An owned copy of one sample — what [`VecMetricsRecorder`] stores and
/// report tooling charts from.
#[derive(Clone, Debug)]
pub struct MetricsRow {
    /// The epoch this boundary closed.
    pub epoch: u32,
    /// Wall cycles of the epoch, boundary overhead included.
    pub epoch_cycles: u64,
    /// Memory operations executed during the epoch.
    pub mem_ops: u64,
    /// Controller-load imbalance (stddev % of mean) this epoch.
    pub imbalance: f64,
    /// Local access ratio of the epoch's DRAM traffic.
    pub lar: f64,
    /// Fraction of L2 misses that were page-walk references.
    pub walk_miss_fraction: f64,
    /// Per-controller request counts this epoch.
    pub controller_requests: Vec<u64>,
    /// TLB hit rate this epoch.
    pub tlb_hit_rate: f64,
    /// Walk-cache hit rate this epoch.
    pub walk_cache_hit_rate: f64,
    /// Pages migrated at this boundary.
    pub migrations: u64,
    /// Pages split at this boundary.
    pub splits: u64,
    /// khugepaged collapses at this boundary.
    pub collapses: u64,
    /// Failed policy actions at this boundary.
    pub failed_actions: u64,
    /// PAMUP/NHP/PSP, when page stats were on.
    pub pages: Option<PageSnapshot>,
    /// Retry/breaker state, when the policy reports it.
    pub policy: Option<PolicyIntrospection>,
    /// This epoch's attribution delta, when the ledger was on.
    pub attrib: Option<CycleBreakdown>,
    /// Free shard lanes at this boundary.
    pub lanes_free: usize,
}

impl MetricsRow {
    fn from_sample(s: &MetricsSample<'_>) -> Self {
        MetricsRow {
            epoch: s.epoch,
            epoch_cycles: s.epoch_cycles,
            mem_ops: s.mem_ops,
            imbalance: s.imbalance,
            lar: s.lar,
            walk_miss_fraction: s.walk_miss_fraction,
            controller_requests: s.controller_requests.to_vec(),
            tlb_hit_rate: s.tlb_hit_rate(),
            walk_cache_hit_rate: s.walk_cache_hit_rate(),
            migrations: s.migrations,
            splits: s.splits,
            collapses: s.collapses,
            failed_actions: s.failed_actions,
            pages: s.pages,
            policy: s.policy,
            attrib: s.attrib.copied(),
            lanes_free: s.lanes_free,
        }
    }
}

/// Buffers every sample in memory — the report binary's recorder.
#[derive(Default)]
pub struct VecMetricsRecorder {
    /// The run header, when one was announced.
    pub header: Option<(String, String, String)>,
    /// One row per epoch boundary, in order.
    pub rows: Vec<MetricsRow>,
}

impl VecMetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        VecMetricsRecorder::default()
    }
}

impl MetricsRecorder for VecMetricsRecorder {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        self.header = Some((
            info.workload.to_string(),
            info.policy.to_string(),
            info.machine.to_string(),
        ));
    }

    fn on_epoch(&mut self, sample: &MetricsSample<'_>) {
        self.rows.push(MetricsRow::from_sample(sample));
    }
}

/// Streams `metrics-v1` JSONL to any writer. Mirrors `JsonlSink`'s error
/// handling: the first `io::Error` is stored (inspect via
/// [`JsonlMetricsRecorder::error`]) and later writes are skipped — a
/// recorder must never panic mid-simulation over a full disk.
pub struct JsonlMetricsRecorder<W: Write> {
    out: W,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlMetricsRecorder<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonlMetricsRecorder { out, error: None }
    }

    /// The first write error, if any occurred.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Unwraps the writer (callers that need the file back).
    pub fn into_inner(self) -> W {
        self.out
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }
}

impl<W: Write> MetricsRecorder for JsonlMetricsRecorder<W> {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        self.write_line(&format!(
            "{{\"metrics\":\"run_start\",\"schema\":\"metrics-v1\",\
             \"workload\":\"{}\",\"policy\":\"{}\",\"machine\":\"{}\",\
             \"threads\":{},\"nodes\":{}}}",
            esc(info.workload),
            esc(info.policy),
            esc(info.machine),
            info.threads,
            info.nodes,
        ));
    }

    fn on_epoch(&mut self, sample: &MetricsSample<'_>) {
        self.write_line(&sample.to_json());
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Forwards every call to two recorders (tee).
pub struct TeeMetricsRecorder<'a> {
    a: &'a mut dyn MetricsRecorder,
    b: &'a mut dyn MetricsRecorder,
}

impl<'a> TeeMetricsRecorder<'a> {
    /// Combines two recorders.
    pub fn new(a: &'a mut dyn MetricsRecorder, b: &'a mut dyn MetricsRecorder) -> Self {
        TeeMetricsRecorder { a, b }
    }
}

impl MetricsRecorder for TeeMetricsRecorder<'_> {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        self.a.on_run_start(info);
        self.b.on_run_start(info);
    }

    fn on_epoch(&mut self, sample: &MetricsSample<'_>) {
        self.a.on_epoch(sample);
        self.b.on_epoch(sample);
    }

    fn finish(&mut self) {
        self.a.finish();
        self.b.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample<'a>(reqs: &'a [u64], attrib: Option<&'a CycleBreakdown>) -> MetricsSample<'a> {
        MetricsSample {
            epoch: 3,
            epoch_cycles: 1000,
            mem_ops: 50,
            imbalance: 12.5,
            lar: 0.75,
            walk_miss_fraction: 0.1,
            controller_requests: reqs,
            tlb_l1_hits: 90,
            tlb_l2_hits: 5,
            tlb_misses: 5,
            walk_cache_hits: 4,
            walk_cache_misses: 1,
            migrations: 2,
            splits: 1,
            collapses: 0,
            failed_actions: 0,
            pages: Some(PageSnapshot {
                pamup: 50.0,
                nhp: 2,
                psp: 100.0,
            }),
            policy: Some(PolicyIntrospection {
                retry_queue_depth: 1,
                retries_abandoned: 0,
                split_breaker_open: false,
                move_breaker_open: true,
                split_breaker_trips: 0,
                move_breaker_trips: 2,
            }),
            attrib,
            lanes_free: 3,
        }
    }

    #[test]
    fn rates_handle_empty_epochs() {
        let s = MetricsSample {
            tlb_l1_hits: 0,
            tlb_l2_hits: 0,
            tlb_misses: 0,
            walk_cache_hits: 0,
            walk_cache_misses: 0,
            ..sample(&[], None)
        };
        assert_eq!(s.tlb_hit_rate(), 1.0);
        assert_eq!(s.walk_cache_hit_rate(), 1.0);
    }

    #[test]
    fn jsonl_lines_are_wellformed() {
        let reqs = [10u64, 20, 30, 40];
        let bd = CycleBreakdown {
            compute: 7,
            ..CycleBreakdown::default()
        };
        let s = sample(&reqs, Some(&bd));
        let mut rec = JsonlMetricsRecorder::new(Vec::new());
        rec.on_run_start(&RunInfo {
            workload: "UA.B",
            policy: "Carrefour-LP",
            machine: "machine-a",
            threads: 16,
            nodes: 4,
        });
        rec.on_epoch(&s);
        rec.finish();
        assert!(rec.error().is_none());
        let text = String::from_utf8(rec.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"schema\":\"metrics-v1\""));
        assert!(lines[0].contains("\"workload\":\"UA.B\""));
        assert!(lines[1].contains("\"controller_requests\":[10,20,30,40]"));
        assert!(lines[1].contains("\"tlb_hit_rate\":0.95"));
        assert!(lines[1].contains("\"compute\":7"));
        assert!(lines[1].contains("\"move_breaker_open\":true"));
        // Every line is balanced JSON (cheap structural check).
        for l in lines {
            assert_eq!(
                l.matches('{').count(),
                l.matches('}').count(),
                "unbalanced braces in {l}"
            );
        }
    }

    #[test]
    fn absent_sections_serialize_as_null() {
        let reqs = [1u64];
        let s = MetricsSample {
            pages: None,
            policy: None,
            ..sample(&reqs, None)
        };
        let j = s.to_json();
        assert!(j.contains("\"pages\":null"));
        assert!(j.contains("\"policy\":null"));
        assert!(j.contains("\"attrib\":null"));
    }

    #[test]
    fn vec_recorder_keeps_rows_in_order() {
        let reqs = [1u64, 2];
        let mut rec = VecMetricsRecorder::new();
        for e in 0..4u32 {
            let s = MetricsSample {
                epoch: e,
                ..sample(&reqs, None)
            };
            rec.on_epoch(&s);
        }
        assert_eq!(rec.rows.len(), 4);
        assert!(rec.rows.windows(2).all(|w| w[0].epoch + 1 == w[1].epoch));
    }

    #[test]
    fn write_errors_are_stored_not_raised() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _b: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let reqs = [1u64];
        let mut rec = JsonlMetricsRecorder::new(Failing);
        rec.on_epoch(&sample(&reqs, None));
        rec.finish();
        assert!(rec.error().is_some());
    }
}
