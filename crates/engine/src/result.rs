//! Simulation results and derived reporting.

use profiling::{CycleBreakdown, EpochCounters};
use serde::{Deserialize, Serialize};
use vmem::VmemStats;

/// One closed epoch's record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Counters over the epoch.
    pub counters: EpochCounters,
    /// Pages migrated by the policy this epoch.
    pub migrations: u64,
    /// Pages split by the policy this epoch.
    pub splits: u64,
    /// Pages collapsed by khugepaged this epoch.
    pub collapses: u64,
    /// Cycles of policy + daemon overhead charged to wall time this epoch.
    pub overhead_cycles: u64,
    /// Whether 2 MiB allocation was enabled when the epoch closed.
    pub thp_alloc_enabled: bool,
    /// Whether khugepaged promotion was enabled when the epoch closed.
    pub thp_promote_enabled: bool,
    /// Policy actions that failed this epoch: injected busy pins and
    /// allocation failures, but also natural refusals of stale targets
    /// (page already split or collapsed) that were previously skipped
    /// silently — so this can be nonzero even without fault injection.
    pub failed_actions: u64,
}

/// Failure-and-recovery accounting of one run.
///
/// The injection-specific counters (`fallback_allocs`, `busy_rejections`,
/// `dropped_samples`, `misattributed_samples`, `oom_reclaims`, `retries`)
/// are all-zero on a fault-free run: the fault layer draws no random
/// numbers unless a [`crate::FaultConfig`] enables it, and failed-action
/// feedback — the trigger for retries — is only delivered to policies on
/// fault-injected runs. The `failed_*` counters additionally record
/// natural vmem refusals of stale actions, which can occur on any run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessStats {
    /// Migrations requested by the policy that failed.
    pub failed_migrations: u64,
    /// Splits (plain and scatter) requested by the policy that failed.
    pub failed_splits: u64,
    /// Replications requested by the policy that failed.
    pub failed_replications: u64,
    /// Huge allocations vetoed at fault time (forced 4 KiB fallback).
    pub fallback_allocs: u64,
    /// Actions rejected because their target page was pinned busy.
    pub busy_rejections: u64,
    /// IBS samples lost before the policy saw them.
    pub dropped_samples: u64,
    /// IBS samples delivered with a falsified accessing node.
    pub misattributed_samples: u64,
    /// Actions re-issued by a policy's retry machinery.
    pub retries: u64,
    /// Allocation failures answered by reclaiming pressure-reserved memory.
    pub oom_reclaims: u64,
}

impl RobustnessStats {
    /// Total failed policy actions (migrations + splits + replications).
    pub fn failed_actions(&self) -> u64 {
        self.failed_migrations + self.failed_splits + self.failed_replications
    }
}

/// Whole-run aggregates.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LifetimeStats {
    /// Local access ratio over the whole run, in `[0, 1]`.
    pub lar: f64,
    /// Memory-controller imbalance over the whole run (percent of mean).
    pub imbalance: f64,
    /// Fraction of L2 misses caused by page-table walks, in `[0, 1]`.
    pub walk_miss_fraction: f64,
    /// TLB miss ratio across all cores, in `[0, 1]`.
    pub tlb_miss_ratio: f64,
    /// Cycles the worst core spent in the page-fault handler.
    pub max_fault_cycles: u64,
    /// The worst core's fault time as a fraction of the runtime.
    pub max_fault_fraction: f64,
    /// Total cycles spent in the fault handler, summed over cores.
    pub total_fault_cycles: u64,
    /// Virtual-memory operation counts (faults, migrations, splits, ...).
    pub vmem: VmemStats,
    /// Cycles of policy/daemon overhead charged to wall time.
    pub overhead_cycles: u64,
    /// IBS samples taken.
    pub ibs_samples: u64,
    /// Total memory operations executed.
    pub total_ops: u64,
}

/// The paper's Table 2 page metrics at two granularities.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PageMetrics {
    /// Percent of accesses to the most-used page, at the final mapping
    /// granularity (2 MiB pages count as one page).
    pub pamup: f64,
    /// Hot pages (> 6 % of accesses) at the final mapping granularity.
    pub nhp: usize,
    /// Percent of accesses to pages shared by ≥ 2 threads, at the final
    /// mapping granularity.
    pub psp: f64,
    /// Same metrics computed at fixed 4 KiB granularity, for comparison.
    pub pamup_4k: f64,
    /// Hot 4 KiB pages.
    pub nhp_4k: usize,
    /// PSP at 4 KiB granularity.
    pub psp_4k: f64,
}

/// One closed epoch's cycle attribution.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochAttribution {
    /// The epoch's *wall* cycles attributed: per round, the slowest
    /// thread's breakdown (its critical path is the round's wall time),
    /// plus the per-thread share of epoch overhead. Sums exactly to the
    /// epoch's contribution to `SimResult.runtime_cycles`.
    pub wall: CycleBreakdown,
    /// Per-core *busy* cycles attributed (every thread's own work, not
    /// just the critical path's). Cores do not sum to `wall`: in a
    /// barrier-synchronized round only the slowest thread's time is wall
    /// time; the others overlap under it.
    pub cores: Vec<CycleBreakdown>,
}

/// The run's full cycle-attribution ledger
/// (`SimResult.attribution`, recorded when `SimConfig.attribution` is on).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributionLedger {
    /// The serial prelude (loader thread touching headers alone).
    pub prelude: CycleBreakdown,
    /// Per-epoch attribution, in epoch order (parallel to
    /// `SimResult.epochs`).
    pub epochs: Vec<EpochAttribution>,
    /// Whole-run wall attribution: `prelude` plus every epoch's `wall`.
    /// **Conservation invariant**: `total.total() == runtime_cycles`,
    /// exactly, as integers.
    pub total: CycleBreakdown,
    /// Per-core lifetime busy breakdowns (epoch cores summed; the prelude
    /// is reported separately, not folded into core 0).
    pub core_totals: Vec<CycleBreakdown>,
}

impl AttributionLedger {
    /// Checks the conservation invariant against a run's total cycles:
    /// the bucket sum must equal `runtime_cycles` exactly, and `total`
    /// must equal prelude + Σ epoch walls fieldwise.
    pub fn conserves(&self, runtime_cycles: u64) -> bool {
        let mut rebuilt = self.prelude;
        for e in &self.epochs {
            rebuilt.add(&e.wall);
        }
        rebuilt == self.total && self.total.total() == runtime_cycles
    }
}

/// Everything a simulation run produces.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Machine name.
    pub machine: String,
    /// Total simulated wall time in cycles.
    pub runtime_cycles: u64,
    /// Total simulated wall time in milliseconds (machine clock applied).
    pub runtime_ms: f64,
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
    /// Whole-run aggregates.
    pub lifetime: LifetimeStats,
    /// Table 2 metrics.
    pub pages: PageMetrics,
    /// Failure-and-recovery accounting (all-zero without fault injection).
    pub robustness: RobustnessStats,
    /// Cycle-attribution ledger; `None` unless `SimConfig.attribution` was
    /// on for the run.
    pub attribution: Option<AttributionLedger>,
}

impl SimResult {
    /// Performance improvement of this run over a baseline runtime, as the
    /// paper reports it: `(baseline / this - 1) * 100` percent (positive =
    /// faster than the baseline).
    pub fn improvement_over(&self, baseline: &SimResult) -> f64 {
        (baseline.runtime_cycles as f64 / self.runtime_cycles as f64 - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with_runtime(cycles: u64) -> SimResult {
        SimResult {
            workload: "w".into(),
            policy: "p".into(),
            machine: "m".into(),
            runtime_cycles: cycles,
            runtime_ms: 0.0,
            epochs: Vec::new(),
            lifetime: LifetimeStats::default(),
            pages: PageMetrics::default(),
            robustness: RobustnessStats::default(),
            attribution: None,
        }
    }

    #[test]
    fn ledger_conservation_check_is_exact() {
        let mut prelude = CycleBreakdown::default();
        prelude.compute = 100;
        let mut wall = CycleBreakdown::default();
        wall.dram_service = 40;
        wall.ctrl_queue = 2;
        let mut total = prelude;
        total.add(&wall);
        let ledger = AttributionLedger {
            prelude,
            epochs: vec![EpochAttribution {
                wall,
                cores: Vec::new(),
            }],
            total,
            core_totals: Vec::new(),
        };
        assert!(ledger.conserves(142));
        // Off by a single cycle: rejected.
        assert!(!ledger.conserves(141));
        assert!(!ledger.conserves(143));
        // A total that disagrees with its parts: rejected even when the
        // scalar sum happens to match.
        let mut bad = ledger.clone();
        bad.total.dram_service -= 1;
        bad.total.cache_l1 += 1;
        assert!(!bad.conserves(142));
    }

    #[test]
    fn improvement_is_paper_style() {
        let baseline = result_with_runtime(200);
        let twice_as_fast = result_with_runtime(100);
        let slower = result_with_runtime(250);
        assert!((twice_as_fast.improvement_over(&baseline) - 100.0).abs() < 1e-9);
        assert!((slower.improvement_over(&baseline) + 20.0).abs() < 1e-9);
    }
}
