//! Simulation configuration.

use crate::faults::FaultConfig;
use memsys::MemSysConfig;
use profiling::IbsConfig;
use serde::{Deserialize, Serialize};
use vmem::{ThpControls, TlbConfig, VmemConfig};

/// Full configuration of one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Down-scaling factor applied to caches and TLBs (working sets in the
    /// workload specs are pre-scaled by the same ~64× factor; the hardware
    /// scale is smaller because miss *ratios*, not sizes, must match).
    pub scale: usize,
    /// Seed for workload generation and policy randomness.
    pub seed: u64,
    /// Rounds per policy epoch (the paper's 1-second monitoring interval).
    pub rounds_per_epoch: u32,
    /// Operations each thread runs per scheduling batch within a round.
    /// Threads interleave batch-by-batch, which models the allocation races
    /// of concurrent first-touch: no single thread can claim every huge
    /// page of a shared region just because it is simulated first.
    pub ops_per_batch: u64,
    /// IBS sampler configuration.
    pub ibs: IbsConfig,
    /// Memory-system configuration (caches, controllers, interconnect).
    pub memsys: MemSysConfig,
    /// Virtual-memory configuration (TLBs, cost model, initial THP state).
    pub vmem: VmemConfig,
    /// khugepaged: 2 MiB candidates examined per epoch.
    pub khugepaged_scan_limit: usize,
    /// Record exact per-page statistics (Table 2 metrics). Small overhead;
    /// disable for pure-performance benches.
    pub track_page_stats: bool,
    /// Fault injection. [`FaultConfig::none()`] (the default) is guaranteed
    /// bit-identical to a build without the fault layer.
    pub faults: FaultConfig,
    /// Run the `vmem` invariant walker after every epoch, panicking on the
    /// first violation. Expensive; for tests and chaos runs only.
    pub validate_each_epoch: bool,
    /// Record the cycle-attribution ledger ([`crate::AttributionLedger`] in
    /// `SimResult.attribution`): every wall cycle charged to its
    /// architectural cause, per epoch and per core. Off by default;
    /// attribution is purely observational — every other output is
    /// bit-identical either way (tier-1 tested).
    pub attribution: bool,
    /// Intra-run shard lanes: fault-free epochs are partitioned by NUMA
    /// node group and simulated on that many OS threads, merged
    /// deterministically at each epoch boundary. `0` (the default) sizes
    /// the lane count from the process-wide [`crate::lanes`] pool at every
    /// epoch boundary; an explicit value is capped at the workload's
    /// node-group count. The
    /// `CARREFOUR_SHARDS` environment variable overrides this field.
    /// Purely an execution knob: every output — results, digests,
    /// checkpoints — is bit-identical for ANY value (tier-1 tested), and
    /// checkpoints resume across different shard counts.
    #[serde(default)]
    pub shards: u32,
}

impl SimConfig {
    /// The default experiment configuration at the standard scale.
    pub fn standard() -> Self {
        let scale = 8;
        SimConfig {
            scale,
            seed: 42,
            rounds_per_epoch: 2,
            ops_per_batch: 4,
            ibs: IbsConfig {
                period: 128,
                sample_overhead_cycles: 800,
            },
            memsys: MemSysConfig::scaled_default(scale),
            vmem: VmemConfig {
                tlb: TlbConfig::scaled_default(scale),
                ..VmemConfig::default()
            },
            khugepaged_scan_limit: 24,
            track_page_stats: true,
            faults: FaultConfig::none(),
            validate_each_epoch: false,
            attribution: false,
            shards: 0,
        }
    }

    /// A configuration with the given initial THP switches.
    pub fn with_thp(thp: ThpControls) -> Self {
        let mut c = SimConfig::standard();
        c.vmem.thp = thp;
        c
    }

    /// A configuration calibrated for one machine: the per-hop interconnect
    /// latency is normalized by the network diameter so that the worst-case
    /// remote access costs ≈150 extra cycles on either machine (the ~1.5×
    /// remote/local ratio of the paper's Opterons; machine B has twice the
    /// hops but faster links relative to its clock).
    pub fn for_machine(machine: &numa_topology::MachineSpec, thp: ThpControls) -> Self {
        let mut c = SimConfig::with_thp(thp);
        let diameter = machine.topology().diameter().max(1);
        c.memsys.hop_latency = 150 / diameter;
        // Interlagos (machine B) nodes have roughly twice the per-node
        // memory bandwidth of Magny-Cours relative to demand: lower
        // controller occupancy per request.
        if machine.num_nodes() > 4 {
            c.memsys.controller_service_cycles = 13;
        }
        c
    }

    /// Small and fast, for unit tests and doctests.
    pub fn fast_test() -> Self {
        let mut c = SimConfig::standard();
        c.ibs.period = 128;
        c
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_config_is_scaled() {
        let c = SimConfig::standard();
        assert_eq!(c.scale, 8);
        assert!(c.vmem.tlb.l2_entries < 1024);
        assert!(c.memsys.l3.sets < 12288);
    }

    #[test]
    fn with_thp_sets_initial_controls() {
        let c = SimConfig::with_thp(ThpControls::small_only());
        assert!(!c.vmem.thp.alloc_2m);
        let c = SimConfig::with_thp(ThpControls::giant());
        assert!(c.vmem.thp.alloc_1g);
    }
}
