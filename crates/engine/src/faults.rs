//! Deterministic fault injection: the simulator's chaos layer.
//!
//! A [`FaultPlan`] perturbs a run with the failure modes a real
//! Carrefour-LP deployment sees:
//!
//! * **THP allocation failure** — compaction cannot produce a contiguous
//!   2 MiB/1 GiB block; the fault falls back to 4 KiB pages
//!   (`thp_fault_fallback`). Injected through the [`AllocGate`] veto
//!   point in `vmem`.
//! * **Migration/split `-EBUSY`** — the target page is transiently pinned
//!   (DMA, `get_user_pages`); the operation fails and the page stays
//!   pinned for a configurable number of epochs, so immediate retries
//!   fail too and backoff pays off.
//! * **IBS sample loss and misattribution** — NMI skid and overflow drop
//!   samples or tag them with the wrong accessing node, degrading the
//!   information every placement decision rests on.
//! * **Memory pressure** — at a chosen epoch another "process" claims a
//!   chunk of one node's free frames; allocations that then fail can be
//!   answered by reclaiming from that reservation (the kernel's reclaim
//!   path), at the cost of counting an OOM-reclaim event.
//!
//! Determinism: the plan owns a seeded [`SmallRng`] and every probability
//! roll is gated on its rate being positive, so a zero plan draws **no**
//! random numbers and a run with `FaultConfig::none()` is bit-identical
//! to one without the fault layer at all (pay-for-what-you-use).

use numa_topology::NodeId;
use profiling::IbsSample;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vmem::{AddressSpace, AllocGate, PageSize, PhysAddr};

/// Per-class fault probabilities; every rate lives in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability that one huge/giant allocation at fault time fails
    /// (THP compaction failure; the fault falls back to smaller pages).
    pub huge_alloc_fail: f64,
    /// Probability that a migrate/split target page turns out pinned
    /// (`-EBUSY`), staying pinned for [`FaultRates::pin_epochs`] epochs.
    pub migrate_busy: f64,
    /// Epochs a busy page stays pinned once hit.
    pub pin_epochs: u32,
    /// Probability that an IBS sample is lost before the daemon sees it.
    pub sample_loss: f64,
    /// Probability that a surviving sample reports the wrong accessing
    /// node (uniformly among the other nodes).
    pub sample_misattribution: f64,
}

impl FaultRates {
    /// All rates zero (no faults).
    pub fn zero() -> Self {
        FaultRates {
            huge_alloc_fail: 0.0,
            migrate_busy: 0.0,
            pin_epochs: 2,
            sample_loss: 0.0,
            sample_misattribution: 0.0,
        }
    }

    /// One-knob sweep over *operational* faults: structural failures
    /// (allocation, `-EBUSY`) at `rate`, sample loss at half of it.
    /// Misattribution stays zero — it is a *corruption* fault, a
    /// different failure class: an operation that fails is visible and
    /// retryable, a sample that lies is neither. Sweep it separately
    /// with [`FaultRates::corruption`]. The split is also physical: IBS
    /// overflow and NMI skid drop samples routinely, but a delivered
    /// sample carries the sampling core's id, so tagging the wrong node
    /// needs a rarer confusion (offline core maps, hotplug windows).
    pub fn uniform(rate: f64) -> Self {
        FaultRates {
            huge_alloc_fail: rate,
            migrate_busy: rate,
            pin_epochs: 2,
            sample_loss: rate / 2.0,
            sample_misattribution: 0.0,
        }
    }

    /// Corruption-only setting: delivered samples report the wrong
    /// accessing node with probability `rate`; nothing else fails.
    /// Isolates the policy's sensitivity to *wrong* (not missing)
    /// profiling data.
    pub fn corruption(rate: f64) -> Self {
        FaultRates {
            sample_misattribution: rate,
            ..FaultRates::zero()
        }
    }

    /// Whether every rate is zero.
    pub fn is_zero(&self) -> bool {
        self.huge_alloc_fail <= 0.0
            && self.migrate_busy <= 0.0
            && self.sample_loss <= 0.0
            && self.sample_misattribution <= 0.0
    }
}

/// Mid-run memory pressure: at `epoch`, `bytes` of `node`'s free memory
/// vanish into another process's reservation; they return at
/// `release_epoch` (or never, when `None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryPressure {
    /// Epoch index at which the pressure sets in (0 = before the run).
    pub epoch: u32,
    /// The node whose free frames shrink.
    pub node: NodeId,
    /// Bytes reserved away.
    pub bytes: u64,
    /// Epoch at which the reservation is released again.
    pub release_epoch: Option<u32>,
}

/// The full fault-injection configuration of one run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the plan's own RNG (independent of the workload seed, so
    /// the same workload can be replayed under different fault draws).
    pub seed: u64,
    /// Per-class probabilities.
    pub rates: FaultRates,
    /// Optional memory-pressure event.
    pub pressure: Option<MemoryPressure>,
}

impl FaultConfig {
    /// No faults at all; guaranteed bit-identical behaviour to a build
    /// without the fault layer.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            rates: FaultRates::zero(),
            pressure: None,
        }
    }

    /// The one-knob operational-fault sweep used by the `chaos`
    /// experiment.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            rates: FaultRates::uniform(rate),
            pressure: None,
        }
    }

    /// Sample-corruption-only configuration (see
    /// [`FaultRates::corruption`]).
    pub fn corruption(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            rates: FaultRates::corruption(rate),
            pressure: None,
        }
    }

    /// Whether this plan can never inject anything.
    pub fn is_zero(&self) -> bool {
        self.rates.is_zero() && self.pressure.is_none()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Counters a plan accumulates over one run (merged into
/// [`crate::RobustnessStats`] by the engine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Huge allocations vetoed (4 KiB fallbacks forced).
    pub fallback_allocs: u64,
    /// Actions rejected because their page was pinned busy.
    pub busy_rejections: u64,
    /// IBS samples dropped.
    pub dropped_samples: u64,
    /// IBS samples with a falsified accessing node.
    pub misattributed_samples: u64,
    /// Allocation failures answered by reclaiming reserved memory.
    pub oom_reclaims: u64,
}

/// The live, per-run fault injector built from a [`FaultConfig`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SmallRng,
    active: bool,
    /// Pages pinned busy: vbase → first epoch at which they are free again.
    pins: BTreeMap<u64, u32>,
    /// Current epoch index (advanced by [`FaultPlan::begin_epoch`]).
    epoch: u32,
    /// Frames reserved by the pressure event, reclaimable one by one.
    reserved: Vec<(PhysAddr, PageSize)>,
    pressure_applied: bool,
    /// Counters merged into the run's `RobustnessStats` at the end.
    pub counters: FaultCounters,
}

impl FaultPlan {
    /// Builds the injector for one run.
    pub fn new(cfg: &FaultConfig) -> Self {
        FaultPlan {
            cfg: *cfg,
            // Fixed xor so a workload seed reused as fault seed still
            // yields an unrelated stream.
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x00FA_017F_A017),
            active: !cfg.is_zero(),
            pins: BTreeMap::new(),
            epoch: 0,
            reserved: Vec::new(),
            pressure_applied: false,
            counters: FaultCounters::default(),
        }
    }

    /// Whether this plan can inject anything at all. Inactive plans draw
    /// no random numbers and never alter behaviour.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Advances the plan to `epoch`: expires pins and applies or releases
    /// the memory-pressure reservation. Called by the engine before the
    /// run (epoch 0) and after each epoch boundary.
    pub fn begin_epoch(&mut self, epoch: u32, space: &mut AddressSpace) {
        if !self.active {
            return;
        }
        self.epoch = epoch;
        self.pins.retain(|_, &mut until| until > epoch);
        if let Some(p) = self.cfg.pressure {
            if !self.pressure_applied && epoch >= p.epoch {
                self.pressure_applied = true;
                self.reserve(space, p.node, p.bytes);
            }
            if let Some(release) = p.release_epoch {
                if self.pressure_applied && epoch >= release {
                    self.release_all(space);
                }
            }
        }
    }

    /// Reserves up to `bytes` of `node`'s free memory, huge frames first
    /// (so the reservation also fragments the node the way a real
    /// neighbour's allocations would).
    fn reserve(&mut self, space: &mut AddressSpace, node: NodeId, bytes: u64) {
        let mut taken: u64 = 0;
        while taken + PageSize::Size2M.bytes() <= bytes {
            match space.alloc_frame(node, PageSize::Size2M) {
                Ok(f) => {
                    self.reserved.push((f, PageSize::Size2M));
                    taken += PageSize::Size2M.bytes();
                }
                Err(_) => break,
            }
        }
        while taken + PageSize::Size4K.bytes() <= bytes {
            match space.alloc_frame(node, PageSize::Size4K) {
                Ok(f) => {
                    self.reserved.push((f, PageSize::Size4K));
                    taken += PageSize::Size4K.bytes();
                }
                Err(_) => break,
            }
        }
    }

    /// Returns every reserved frame (pressure lifted).
    fn release_all(&mut self, space: &mut AddressSpace) {
        for (frame, size) in self.reserved.drain(..) {
            space.free_frame(frame, size);
        }
    }

    /// Answers an allocation failure by reclaiming one reserved frame
    /// (the kernel shrinking another process under pressure). Returns
    /// whether anything could be reclaimed — callers retry on `true`.
    pub fn reclaim_one(&mut self, space: &mut AddressSpace) -> bool {
        match self.reserved.pop() {
            Some((frame, size)) => {
                space.free_frame(frame, size);
                self.counters.oom_reclaims += 1;
                true
            }
            None => false,
        }
    }

    /// Whether the page at `vbase` is busy for an operation this epoch:
    /// either still pinned from an earlier hit, or freshly rolled busy
    /// (which pins it for `pin_epochs`).
    pub fn check_busy(&mut self, vbase: u64) -> bool {
        if !self.active {
            return false;
        }
        if self.pins.contains_key(&vbase) {
            self.counters.busy_rejections += 1;
            return true;
        }
        if self.cfg.rates.migrate_busy > 0.0 && self.rng.random_bool(self.cfg.rates.migrate_busy) {
            self.pins
                .insert(vbase, self.epoch + self.cfg.rates.pin_epochs.max(1));
            self.counters.busy_rejections += 1;
            return true;
        }
        false
    }

    /// Serializes the plan's mutable state — RNG stream, pin table, epoch,
    /// pressure reservation, and counters — for the `ckpt-v1` snapshot
    /// (the config and `active` flag are constructor-fixed).
    pub fn save_into(&self, e: &mut codec::Enc) {
        for w in self.rng.state() {
            e.u64(w);
        }
        e.seq(self.pins.iter(), |e, (&vbase, &until)| {
            e.u64(vbase);
            e.u32(until);
        });
        e.u32(self.epoch);
        e.seq(self.reserved.iter(), |e, &(frame, size)| {
            e.u64(frame.0);
            e.u8(match size {
                PageSize::Size4K => 0,
                PageSize::Size2M => 1,
                PageSize::Size1G => 2,
            });
        });
        e.bool(self.pressure_applied);
        e.u64(self.counters.fallback_allocs);
        e.u64(self.counters.busy_rejections);
        e.u64(self.counters.dropped_samples);
        e.u64(self.counters.misattributed_samples);
        e.u64(self.counters.oom_reclaims);
    }

    /// Restores state captured by [`FaultPlan::save_into`] onto a plan
    /// built from the same [`FaultConfig`].
    pub fn load_from(&mut self, d: &mut codec::Dec<'_>) {
        let s = [d.u64(), d.u64(), d.u64(), d.u64()];
        self.rng = SmallRng::from_state(s);
        self.pins.clear();
        let n = d.usize();
        for _ in 0..n {
            let vbase = d.u64();
            self.pins.insert(vbase, d.u32());
        }
        self.epoch = d.u32();
        self.reserved = d.seq(|d| {
            let frame = PhysAddr(d.u64());
            let size = match d.u8() {
                0 => PageSize::Size4K,
                1 => PageSize::Size2M,
                2 => PageSize::Size1G,
                t => panic!("ckpt: invalid PageSize tag {t}"),
            };
            (frame, size)
        });
        self.pressure_applied = d.bool();
        self.counters.fallback_allocs = d.u64();
        self.counters.busy_rejections = d.u64();
        self.counters.dropped_samples = d.u64();
        self.counters.misattributed_samples = d.u64();
        self.counters.oom_reclaims = d.u64();
    }

    /// Applies sample loss and misattribution to one epoch's drained
    /// samples, in place.
    pub fn filter_samples(&mut self, samples: &mut Vec<IbsSample>, num_nodes: usize) {
        if !self.active {
            return;
        }
        let loss = self.cfg.rates.sample_loss;
        if loss > 0.0 {
            let before = samples.len();
            let rng = &mut self.rng;
            samples.retain(|_| !rng.random_bool(loss));
            self.counters.dropped_samples += (before - samples.len()) as u64;
        }
        let mis = self.cfg.rates.sample_misattribution;
        if mis > 0.0 && num_nodes > 1 {
            for s in samples.iter_mut() {
                if self.rng.random_bool(mis) {
                    // Uniform among the *other* nodes.
                    let shift = self.rng.random_range(1..num_nodes as u64);
                    let node = (u64::from(s.accessing_node.0) + shift) % num_nodes as u64;
                    s.accessing_node = NodeId(node as u16);
                    self.counters.misattributed_samples += 1;
                }
            }
        }
    }
}

impl AllocGate for FaultPlan {
    fn allow_huge(&mut self, _size: PageSize) -> bool {
        if !self.active || self.cfg.rates.huge_alloc_fail <= 0.0 {
            return true;
        }
        if self.rng.random_bool(self.cfg.rates.huge_alloc_fail) {
            self.counters.fallback_allocs += 1;
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::MachineSpec;
    use vmem::{VirtAddr, VmemConfig};

    fn sample(node: u16) -> IbsSample {
        IbsSample {
            vaddr: VirtAddr(0x1000),
            accessing_node: NodeId(node),
            thread: node,
            home_node: NodeId(0),
            from_dram: true,
            is_store: false,
            page_size: PageSize::Size4K,
            walk_remote_steps: 0,
        }
    }

    #[test]
    fn zero_plan_is_inert() {
        let mut plan = FaultPlan::new(&FaultConfig::none());
        assert!(!plan.is_active());
        assert!(plan.allow_huge(PageSize::Size2M));
        assert!(!plan.check_busy(0x20_0000));
        let mut samples = vec![sample(0); 100];
        plan.filter_samples(&mut samples, 4);
        assert_eq!(samples.len(), 100);
        assert_eq!(plan.counters, FaultCounters::default());
    }

    #[test]
    fn uniform_plan_injects_at_roughly_the_rate() {
        let mut plan = FaultPlan::new(&FaultConfig::uniform(7, 0.3));
        let mut vetoed = 0;
        for _ in 0..1000 {
            if !plan.allow_huge(PageSize::Size2M) {
                vetoed += 1;
            }
        }
        assert!((200..400).contains(&vetoed), "vetoed {vetoed}");
        assert_eq!(plan.counters.fallback_allocs, vetoed);
    }

    #[test]
    fn corruption_plan_only_misattributes() {
        let mut plan = FaultPlan::new(&FaultConfig::corruption(5, 0.5));
        assert!(plan.allow_huge(PageSize::Size2M), "allocs never fail");
        assert!(!plan.check_busy(0x20_0000), "pages never pin");
        let mut samples = vec![sample(0); 1000];
        plan.filter_samples(&mut samples, 4);
        assert_eq!(samples.len(), 1000, "no samples are lost");
        assert!(plan.counters.misattributed_samples > 300);
        assert_eq!(plan.counters.dropped_samples, 0);
    }

    #[test]
    fn busy_pages_stay_pinned_for_pin_epochs() {
        let machine = MachineSpec::test_machine();
        let mut space = AddressSpace::new(&machine, VmemConfig::default());
        let mut cfg = FaultConfig::uniform(3, 1.0);
        cfg.rates.pin_epochs = 2;
        let mut plan = FaultPlan::new(&cfg);
        plan.begin_epoch(0, &mut space);
        assert!(plan.check_busy(0x20_0000), "rate 1.0 always pins");
        // Pinned through epochs 0 and 1, free again at 2.
        plan.begin_epoch(1, &mut space);
        assert!(plan.check_busy(0x20_0000));
        plan.begin_epoch(2, &mut space);
        // The pin expired; with rate 1.0 the next roll re-pins, but the
        // counter separates the expiry from a fresh roll.
        let before = plan.counters.busy_rejections;
        assert!(plan.check_busy(0x20_0000));
        assert_eq!(plan.counters.busy_rejections, before + 1);
    }

    #[test]
    fn sample_filtering_drops_and_misattributes() {
        let mut cfg = FaultConfig::none();
        cfg.rates.sample_loss = 0.5;
        cfg.rates.sample_misattribution = 0.5;
        cfg.seed = 11;
        let mut plan = FaultPlan::new(&cfg);
        let mut samples = vec![sample(0); 1000];
        plan.filter_samples(&mut samples, 4);
        assert!(samples.len() < 700, "kept {}", samples.len());
        assert!(plan.counters.dropped_samples > 300);
        assert!(plan.counters.misattributed_samples > 0);
        // Misattributed samples never claim their true node.
        let moved = samples
            .iter()
            .filter(|s| s.accessing_node != NodeId(0))
            .count();
        assert_eq!(moved as u64, plan.counters.misattributed_samples);
    }

    #[test]
    fn pressure_reserves_and_reclaims() {
        let machine = MachineSpec::test_machine(); // 1 GiB per node
        let mut space = AddressSpace::new(&machine, VmemConfig::default());
        let free_before = space.free_bytes(NodeId(1));
        let mut cfg = FaultConfig::none();
        cfg.pressure = Some(MemoryPressure {
            epoch: 1,
            node: NodeId(1),
            bytes: 512 << 20,
            release_epoch: None,
        });
        let mut plan = FaultPlan::new(&cfg);
        assert!(plan.is_active());
        plan.begin_epoch(0, &mut space);
        assert_eq!(space.free_bytes(NodeId(1)), free_before);
        plan.begin_epoch(1, &mut space);
        assert_eq!(space.free_bytes(NodeId(1)), free_before - (512 << 20));
        // Reclaim gives frames back one at a time.
        assert!(plan.reclaim_one(&mut space));
        assert!(space.free_bytes(NodeId(1)) > free_before - (512 << 20));
        assert_eq!(plan.counters.oom_reclaims, 1);
    }

    #[test]
    fn pressure_release_returns_everything() {
        let machine = MachineSpec::test_machine();
        let mut space = AddressSpace::new(&machine, VmemConfig::default());
        let free_before = space.free_bytes(NodeId(0));
        let mut cfg = FaultConfig::none();
        cfg.pressure = Some(MemoryPressure {
            epoch: 0,
            node: NodeId(0),
            bytes: 256 << 20,
            release_epoch: Some(3),
        });
        let mut plan = FaultPlan::new(&cfg);
        plan.begin_epoch(0, &mut space);
        assert!(space.free_bytes(NodeId(0)) < free_before);
        plan.begin_epoch(3, &mut space);
        assert_eq!(space.free_bytes(NodeId(0)), free_before);
        space.validate().unwrap();
    }

    #[test]
    fn plans_are_deterministic() {
        let mut a = FaultPlan::new(&FaultConfig::uniform(9, 0.4));
        let mut b = FaultPlan::new(&FaultConfig::uniform(9, 0.4));
        for i in 0..200 {
            assert_eq!(a.check_busy(i * 4096), b.check_busy(i * 4096));
            assert_eq!(
                a.allow_huge(PageSize::Size2M),
                b.allow_huge(PageSize::Size2M)
            );
        }
    }
}
